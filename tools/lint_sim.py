#!/usr/bin/env python
"""Run the simulator-hazard linter over the repository.

Usage::

    python tools/lint_sim.py              # lint src/ and benchmarks/
    python tools/lint_sim.py src tests    # lint explicit paths
    python tools/lint_sim.py --json       # machine-readable records
    python tools/lint_sim.py --list-rules

Exits 1 when any violation remains (CI's ``lint`` job gates on this).
Suppress single lines with ``# lint-sim: ignore[RPV002]``; see
:mod:`repro.verify.lint` for the rule catalogue.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.verify.lint import RULES, lint_paths  # noqa: E402

DEFAULT_PATHS = ("src", "benchmarks")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_sim", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit one JSON array of {file, line, col, rule, message} "
            "records on stdout instead of the human format"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, text in sorted(RULES.items()):
            print(f"{rule}  {text}")
        return 0

    roots = [
        p if p.is_absolute() else REPO_ROOT / p
        for p in (Path(p) for p in args.paths)
    ]
    missing = [str(p) for p in roots if not p.exists()]
    if missing:
        print(f"lint_sim: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    violations = lint_paths(roots)

    def rel(path: str) -> str:
        try:
            return str(Path(path).relative_to(REPO_ROOT))
        except ValueError:
            return path

    if args.json:
        records = [
            {
                "file": rel(v.path),
                "line": v.line,
                "col": v.col,
                "rule": v.rule,
                "message": v.message,
            }
            for v in violations
        ]
        print(json.dumps(records, indent=2))
        return 1 if violations else 0

    for v in violations:
        print(f"{rel(v.path)}:{v.line}:{v.col}: {v.rule} {v.message}")
    if violations:
        print(f"lint_sim: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint_sim: clean ({', '.join(str(p) for p in args.paths)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
