#!/usr/bin/env python3
"""Generate a recorded workload trace for ``--replay`` and the tests.

    PYTHONPATH=src python tools/trace_gen.py out.bin --nodes 64 --count 500
    PYTHONPATH=src python tools/trace_gen.py out.bin --arrival pareto --seed 7

Writes the versioned, checksummed binary format of
:mod:`repro.traffic.trace` (magic ``REPROTRC``); replay it with::

    PYTHONPATH=src python -m repro.experiments --replay out.bin --network dmin

The generator is seeded and deterministic: the same arguments always
produce byte-identical traces, so CI can regenerate its smoke trace on
the fly instead of committing a binary fixture.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.rng import RandomStream  # noqa: E402
from repro.traffic.bursty import ARRIVAL_KINDS, ArrivalSpec  # noqa: E402
from repro.traffic.trace import synthesize_trace, write_trace  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/trace_gen.py",
        description="Synthesize a seeded uniform-destination trace.",
    )
    parser.add_argument("out", help="output path for the binary trace")
    parser.add_argument(
        "--nodes", type=int, default=64, help="node count (default: 64)"
    )
    parser.add_argument(
        "--count", type=int, default=500, help="message count (default: 500)"
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="RNG seed (default: 42)"
    )
    parser.add_argument(
        "--mean-iat",
        type=float,
        default=16.0,
        help="mean inter-arrival time in cycles across the whole "
        "fabric (default: 16)",
    )
    parser.add_argument(
        "--arrival",
        choices=ARRIVAL_KINDS,
        default="poisson",
        help="arrival process shaping the timestamps (default: poisson)",
    )
    parser.add_argument(
        "--size-low", type=int, default=8, help="min message flits (default: 8)"
    )
    parser.add_argument(
        "--size-high",
        type=int,
        default=64,
        help="max message flits (default: 64)",
    )
    args = parser.parse_args(argv)

    spec = ArrivalSpec(kind=args.arrival)
    rng = RandomStream(args.seed, name="trace-gen")
    trace = synthesize_trace(
        args.nodes,
        args.count,
        rng,
        mean_iat=args.mean_iat,
        arrival=spec.instantiate(),
        size_low=args.size_low,
        size_high=args.size_high,
    )
    write_trace(args.out, trace)
    horizon = trace.records[-1].t if trace.records else 0.0
    print(
        f"wrote {len(trace.records)} records over {trace.n_nodes} nodes "
        f"(horizon {horizon:g} cycles, seed {args.seed}, "
        f"{args.arrival}) -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
