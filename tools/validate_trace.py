#!/usr/bin/env python
"""Structurally validate a Perfetto/Chrome ``trace_event`` JSON file.

Usage::

    python tools/validate_trace.py out.json [more.json ...]

Checks (CI's ``obs`` job gates on these):

* the file parses as JSON with a ``traceEvents`` list and the
  exporter's ``otherData`` block;
* every event carries the required keys for its phase;
* timestamps are non-negative and **monotone per track** (``tid``);
* ``"X"`` slices have positive duration;
* flow arrows balance: every packet id opens with exactly one ``s``
  before any ``t``/``f`` step (flows still open at trace end are worms
  in flight at window close -- legal, counted in the summary);
* every referenced ``tid`` has a ``thread_name`` metadata record.

Exits 0 and prints a one-line summary per file when valid; exits 1
with the first failure otherwise.  Pure standard library -- runnable
anywhere a trace lands.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


class TraceError(Exception):
    """One structural violation in a trace file."""


def _fail(msg: str) -> None:
    raise TraceError(msg)


def validate_doc(doc: dict) -> dict:
    """Validate one parsed trace document; returns summary counters."""
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        _fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        _fail("traceEvents must be a non-empty list")
    other = doc.get("otherData")
    if not isinstance(other, dict):
        _fail("missing otherData block")
    for key in ("cycle_us", "network", "dropped_events"):
        if key not in other:
            _fail(f"otherData missing {key!r}")

    named_tids: set[int] = set()
    used_tids: set[int] = set()
    last_ts: dict[int, float] = {}
    flows: dict[int, str] = {}  # packet id -> last phase seen
    counts = {"M": 0, "X": 0, "s": 0, "t": 0, "f": 0}

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in counts:
            _fail(f"event {i}: unknown phase {ph!r}")
        counts[ph] += 1
        if ph == "M":
            if ev.get("name") == "thread_name":
                named_tids.add(ev["tid"])
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in ev:
                _fail(f"event {i}: missing {key!r}")
        ts, tid = ev["ts"], ev["tid"]
        if ts < 0:
            _fail(f"event {i}: negative ts {ts}")
        if ts < last_ts.get(tid, float("-inf")):
            _fail(
                f"event {i}: ts {ts} goes backwards on track {tid} "
                f"(last {last_ts[tid]})"
            )
        last_ts[tid] = ts
        used_tids.add(tid)
        if ph == "X":
            if ev.get("dur", 0) <= 0:
                _fail(f"event {i}: X slice with non-positive dur")
        else:  # flow arrow
            fid = ev.get("id")
            if fid is None:
                _fail(f"event {i}: flow event without id")
            prev = flows.get(fid)
            if ph == "s" and prev is not None:
                _fail(f"flow {fid}: second 's' at event {i}")
            if ph in ("t", "f") and prev not in ("s", "t"):
                _fail(f"flow {fid}: '{ph}' at event {i} without open 's'")
            flows[fid] = ph

    # Flows still open at trace end are worms in flight when the
    # observation window closed -- legal, but counted.
    counts["open_flows"] = sum(1 for ph in flows.values() if ph != "f")
    unnamed = sorted(used_tids - named_tids)
    if unnamed:
        _fail(f"tracks without thread_name metadata: {unnamed[:5]}")
    counts["tracks"] = len(used_tids)
    counts["flows"] = len(flows)
    return counts


def validate_file(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        _fail(f"not valid JSON: {exc}")
    return validate_doc(doc)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate Perfetto trace_event JSON files."
    )
    parser.add_argument("paths", nargs="+", type=Path)
    args = parser.parse_args(argv)
    status = 0
    for path in args.paths:
        try:
            c = validate_file(path)
        except TraceError as exc:
            print(f"{path}: INVALID -- {exc}", file=sys.stderr)
            status = 1
            continue
        print(
            f"{path}: ok -- {c['X']} slices, {c['flows']} flows "
            f"({c['s']}s/{c['t']}t/{c['f']}f, {c['open_flows']} open), "
            f"{c['tracks']} tracks, {c['M']} metadata"
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
