#!/usr/bin/env python
"""End-to-end crash drill for the sweep service (CI's ``serve`` job).

The drill:

1. launch ``python -m repro.serve`` on an inline spec;
2. wait until at least one result lands in the content-addressed cache,
   then SIGTERM the service mid-job;
3. expect a graceful exit (code 3) with a partial manifest
   (``complete: false``, non-empty ``incomplete`` list);
4. re-run the identical command and expect completion (code 0) with the
   first run's points served from cache;
5. verify one cached entry is byte-identical to an in-process
   recomputation (the determinism gate, end to end).

Usage::

    python tools/serve_smoke.py [--workdir DIR] [--keep] [--verbose]

Exits 0 on PASS, 1 on any failed expectation.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: 6 smoke points (1 network x 3 loads x 2 seeds) -- enough runway that
#: the SIGTERM reliably lands mid-job, small enough for CI.
SERVE_ARGS = [
    "--networks", "dmin",
    "--mode", "smoke",
    "--loads", "0.2", "0.4", "0.6",
    "--seeds", "1", "2",
    "--workers", "2",
    "--quiet",
]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    return env


def _cache_entries(cache: Path) -> list[Path]:
    return [
        p
        for d in cache.iterdir()
        if d.is_dir() and d.name not in ("quarantine", "jobs")
        for p in d.glob("*.json")
    ]


def _serve(cache: Path, verbose: bool) -> subprocess.Popen:
    cmd = [sys.executable, "-m", "repro.serve", "--cache", str(cache),
           *SERVE_ARGS]
    if verbose:
        print(f"[smoke] $ {' '.join(cmd)}")
    return subprocess.Popen(
        cmd, env=_env(), cwd=str(REPO),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def _fail(msg: str) -> None:
    print(f"[smoke] FAIL: {msg}")
    sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=None,
                        help="working directory (default: a fresh tempdir)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the workdir for inspection")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    workdir = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="serve_smoke_")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    cache = workdir / "cache"
    print(f"[smoke] workdir {workdir}")

    try:
        # ---- phase 1: start, let some points finish, SIGTERM ----------
        proc = _serve(cache, args.verbose)
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if cache.exists() and _cache_entries(cache):
                break
            if proc.poll() is not None:
                out, err = proc.communicate()
                _fail(
                    "service exited before any point finished "
                    f"(rc={proc.returncode})\n{out}\n{err}"
                )
            time.sleep(0.05)
        else:
            proc.kill()
            _fail("no cache entry appeared within 120s")

        persisted = len(_cache_entries(cache))
        print(f"[smoke] {persisted} point(s) persisted; sending SIGTERM")
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
        if args.verbose:
            print(out, err, sep="\n")

        manifests = list((cache / "jobs").glob("*.manifest.json"))
        if proc.returncode == 0:
            # The whole grid finished before the signal landed (very
            # fast machine).  The resume leg still proves its point.
            print("[smoke] note: job completed before SIGTERM landed")
        elif proc.returncode == 3:
            if len(manifests) != 1:
                _fail(f"expected one partial manifest, found {manifests}")
            partial = json.loads(manifests[0].read_text())
            if partial["complete"] or not partial["incomplete"]:
                _fail("interrupted run should report an incomplete manifest")
            print(
                f"[smoke] partial manifest: "
                f"{len(partial['incomplete'])} point(s) incomplete"
            )
        else:
            _fail(f"unexpected exit code {proc.returncode}\n{out}\n{err}")

        # ---- phase 2: identical command resumes to completion ---------
        proc = _serve(cache, args.verbose)
        out, err = proc.communicate(timeout=300)
        if proc.returncode != 0:
            _fail(f"resume run failed (rc={proc.returncode})\n{out}\n{err}")
        manifests = list((cache / "jobs").glob("*.manifest.json"))
        if len(manifests) != 1:
            _fail(f"resume should rewrite the same manifest: {manifests}")
        final = json.loads(manifests[0].read_text())
        if not final["complete"] or final["incomplete"]:
            _fail(f"resumed manifest not complete: {final['counts']}")
        counts = final["counts"]
        if counts["cached"] < persisted:
            _fail(
                f"resume recomputed persisted points: {counts} "
                f"(expected >= {persisted} cached)"
            )
        if counts["cached"] + counts["computed"] != counts["unique"]:
            _fail(f"served points do not cover the grid: {counts}")
        print(
            f"[smoke] resumed to completion: {counts['cached']} cached + "
            f"{counts['computed']} computed of {counts['unique']} unique"
        )

        # ---- phase 3: cache determinism, end to end -------------------
        sys.path.insert(0, str(REPO / "src"))
        from repro.serve.cache import ResultCache
        from repro.serve.canonical import payload_json
        from repro.serve.compute import run_point_spec
        from repro.serve.job import JobSpec

        spec = JobSpec.from_dict(final["spec"])
        point = spec.points()[0]
        store = ResultCache(cache)
        cached = store.get(point.key())
        if cached is None:
            _fail(f"first grid point {point.label} missing from cache")
        fresh = run_point_spec(point)
        if payload_json(cached) != payload_json(fresh):
            _fail(f"cached payload differs from recomputation for {point.label}")
        print(f"[smoke] cache entry for {point.label} byte-equals recomputation")
        print("[smoke] PASS")
        return 0
    finally:
        if not args.keep and args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
