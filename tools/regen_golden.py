#!/usr/bin/env python3
"""Regenerate the golden-scenario fixtures under ``tests/golden/``.

    PYTHONPATH=src python tools/regen_golden.py            # write all
    PYTHONPATH=src python tools/regen_golden.py --check    # verify only
    PYTHONPATH=src python tools/regen_golden.py tmin_uniform_l03  # one

Each golden scenario pins the *exact* numeric outcome of one seeded
simulation point -- every measurement field, every engine counter, and
a digest of the full delivery-record stream -- as a JSON fixture.  The
suite in ``tests/golden`` re-runs each scenario and diffs field by
field, so any behavioural drift in the simulator (routing, allocation
order, RNG consumption, latency accounting) turns into a readable test
failure naming the exact field that moved, instead of a silent shift
in the paper's curves.

Fixtures are engine-independent: the differential suite certifies the
fast and reference paths bit-identical, so goldens are regenerated
with whatever ``REPRO_ENGINE`` selects (default fast) and verified the
same way.

Regenerate (and commit the diff) only when an intentional behavioural
change invalidates the pinned numbers.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

FIXTURES = REPO / "tests" / "golden" / "fixtures"

#: Format version of the fixture files (bump on layout changes).
SCHEMA = 1

#: The golden grid: all four networks under uniform traffic at a light
#: and a heavy load, plus permutation/hotspot spot checks (12 total).
SCENARIOS: dict[str, tuple[str, str, float]] = {
    "tmin_uniform_l03": ("tmin", "uniform", 0.3),
    "tmin_uniform_l08": ("tmin", "uniform", 0.8),
    "dmin_uniform_l03": ("dmin", "uniform", 0.3),
    "dmin_uniform_l08": ("dmin", "uniform", 0.8),
    "vmin_uniform_l03": ("vmin", "uniform", 0.3),
    "vmin_uniform_l08": ("vmin", "uniform", 0.8),
    "bmin_uniform_l03": ("bmin", "uniform", 0.3),
    "bmin_uniform_l08": ("bmin", "uniform", 0.8),
    "dmin_shuffle_l06": ("dmin", "shuffle", 0.6),
    "bmin_shuffle_l06": ("bmin", "shuffle", 0.6),
    "tmin_hotspot_l05": ("tmin", "hotspot", 0.5),
    "vmin_butterfly_l05": ("vmin", "butterfly", 0.5),
}


def compute_fixture(name: str) -> dict:
    """Run one golden scenario and build its canonical fixture dict."""
    from dataclasses import asdict

    from repro.experiments.config import PRESETS, NetworkConfig
    from repro.experiments.runner import _run_until_delivered, build_point
    from repro.experiments.workload_spec import WorkloadSpec
    from repro.metrics.collector import MeasurementWindow

    kind, pattern, load = SCENARIOS[name]
    run_cfg = PRESETS["smoke"]
    network = NetworkConfig(kind)
    spec = WorkloadSpec(pattern=pattern)

    # Same plumbing as runner.run_point, but the engine is kept so the
    # fixture can digest its delivery-record stream and counters.

    env, engine, root = build_point(network, load, run_cfg)
    workload = spec.builder(run_cfg)(load)
    workload.install(env, engine, root.fork(f"workload/{network.label}/{load}"))
    engine.start()
    _run_until_delivered(
        engine, run_cfg.warmup_packets, env.now + run_cfg.max_cycles / 4
    )
    window = MeasurementWindow(engine)
    window.begin()
    _run_until_delivered(
        engine, run_cfg.measure_packets, env.now + run_cfg.max_cycles
    )
    measurement = window.finish()

    records = engine.stats.records
    lines = [
        f"{r.pid},{r.src},{r.dst},{r.length},{r.created!r},"
        f"{r.inject_start!r},{r.delivered_at!r}"
        for r in records
    ]
    digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    return {
        "schema": SCHEMA,
        "scenario": {
            "name": name,
            "network": kind,
            "pattern": pattern,
            "load": load,
            "preset": "smoke",
            "seed": run_cfg.seed,
        },
        "measurement": asdict(measurement),
        "stats": {
            "offered_packets": engine.stats.offered_packets,
            "offered_flits": engine.stats.offered_flits,
            "delivered_packets": engine.stats.delivered_packets,
            "delivered_flits": engine.stats.delivered_flits,
            "failed_packets": engine.stats.failed_packets,
            "max_queue_len": engine.stats.max_queue_len,
            "cycles_run": engine.cycles_run,
            "final_time": env.now,
        },
        "records": {
            "count": len(records),
            "sha256": digest,
            "head": [lines[i] for i in range(min(5, len(lines)))],
        },
    }


def dumps(fixture: dict) -> str:
    """Canonical serialization (stable key order, exact float reprs)."""
    return json.dumps(fixture, indent=2, sort_keys=True) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names",
        nargs="*",
        help="scenario names to regenerate (default: all)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify fixtures against fresh runs instead of writing",
    )
    args = parser.parse_args(argv)
    names = args.names or sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenarios: {', '.join(unknown)}")
    FIXTURES.mkdir(parents=True, exist_ok=True)
    stale = 0
    for name in names:
        path = FIXTURES / f"{name}.json"
        text = dumps(compute_fixture(name))
        if args.check:
            on_disk = path.read_text() if path.exists() else "<missing>"
            status = "ok" if on_disk == text else "STALE"
            if status == "STALE":
                stale += 1
            print(f"{status:5s}  {name}")
        else:
            path.write_text(text)
            print(f"wrote  {path.relative_to(REPO)}")
    return 1 if stale else 0


if __name__ == "__main__":
    sys.exit(main())
