#!/usr/bin/env python3
"""Assemble benchmarks/results/*.txt into a single REPORT.md.

Run after ``pytest benchmarks/ --benchmark-only``:

    python tools/make_report.py [output.md]

The report orders the paper's figures first, then the extension
studies, and prefixes each with its provenance so the file stands alone.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

RESULTS = Path(__file__).parent.parent / "benchmarks" / "results"

#: Section order and titles; anything else found is appended at the end.
SECTIONS = [
    ("fig16", "Figure 16 — cube vs. butterfly TMIN (uniform)"),
    ("fig17", "Figure 17 — uneven cluster traffic ratios"),
    ("fig18", "Figure 18 — four networks, uniform traffic"),
    ("fig19", "Figure 19 — hot-spot traffic"),
    ("fig20", "Figure 20 — permutation traffic"),
    ("ablation_msgsize", "Ablation — message sizes (future work §6)"),
    ("ablation_lanes", "Ablation — lane multiplicity (future work §6)"),
    ("ablation_scale", "Ablation — network/switch geometry (future work §6)"),
    ("ablation_cluster32", "Ablation — cluster-32 workload (§5 remark)"),
    ("saturation", "Extension — bisected saturation loads"),
    ("switching", "Extension — switching techniques (§1)"),
    ("multicast", "Extension — software multicast (ref [32])"),
]


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("REPORT.md")
    if not RESULTS.is_dir():
        print(f"no results at {RESULTS}; run the benchmark suite first")
        return 1

    chunks = [
        "# Regenerated results — Ni, Gui & Moore, switch-based wormhole networks",
        "",
        f"Assembled {time.strftime('%Y-%m-%d %H:%M:%S')} from "
        f"`benchmarks/results/` (see EXPERIMENTS.md for analysis).",
        "",
    ]
    seen = set()
    for stem, title in SECTIONS:
        path = RESULTS / f"{stem}.txt"
        if not path.exists():
            continue
        seen.add(path.name)
        chunks += [f"## {title}", "", "```", path.read_text().rstrip(), "```", ""]
    for path in sorted(RESULTS.glob("*.txt")):
        if path.name in seen:
            continue
        chunks += [f"## {path.stem}", "", "```", path.read_text().rstrip(), "```", ""]

    out_path.write_text("\n".join(chunks))
    print(f"wrote {out_path} ({out_path.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
