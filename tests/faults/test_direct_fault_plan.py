"""Fault plans against direct-topology networks.

Satellite regression: ``find_channel`` near-miss suggestions and
``FaultPlan.validate`` must understand direct-topology channel names
(``"x+[1,2,0].e0"``-style labels, ``(0, node)`` switch addresses), so a
typo'd plan fails loudly at install time with useful hints.
"""

import pytest

from repro.direct import DirectNetwork, DirectTopology
from repro.faults.mtbf import fabric_channels
from repro.faults.plan import FaultEvent, FaultPlan, switch_output_channels


@pytest.fixture
def torus():
    return DirectNetwork(
        DirectTopology(k=3, n=3, wrap=True), router="adaptive"
    )


def test_find_channel_near_miss_suggests_direct_labels(torus):
    with pytest.raises(KeyError) as exc:
        torus.find_channel("x+[1,2,0].e9")
    msg = exc.value.args[0]
    assert "did you mean" in msg
    assert "x+[1,2,0].e0" in msg


def test_validate_aggregates_direct_problems(torus):
    plan = FaultPlan(
        (
            FaultEvent(at=10.0, channels=("x+[1,2,0].e0",)),  # real
            FaultEvent(at=20.0, channels=("y-[0,0].e0",)),    # 2D-style typo
            FaultEvent(at=30.0, switch=(1, 5)),               # bad stage
            FaultEvent(at=40.0, switch=(0, 99)),              # bad node
        )
    )
    with pytest.raises(ValueError) as exc:
        plan.validate(torus)
    msg = str(exc.value)
    assert "y-[0,0].e0" in msg
    assert "single router stage" in msg
    assert "out of range" in msg
    # Three bad events reported together; the good one is silent.
    assert msg.count("event[") == 3


def test_switch_output_channels_is_the_node_router(torus):
    out = switch_output_channels(torus, 0, 13)
    assert torus.dlv[13] in out
    # Every outgoing fabric lane of node 13, nothing of other nodes.
    for ch in out:
        if ch.is_delivery:
            continue
        assert ch.meta[2] == 13
    fabric = [ch for ch in out if not ch.is_delivery]
    # Torus interior node: 6 directed links x (2 escape + 1 adaptive).
    assert len(fabric) == 6 * 3


def test_whole_node_fault_installs(torus):
    """A (0, node) switch fault resolves and fires on a live run."""
    from repro.sim.core import Environment

    env = Environment()
    plan = FaultPlan((FaultEvent(at=5.0, switch=(0, 2), duration=10.0),))
    injector = plan.install(env, torus)
    env.run(until=6.0)
    assert injector.injected == len(switch_output_channels(torus, 0, 2))
    assert all(ch.faulty for ch in torus.node_output_channels(2))
    env.run(until=20.0)
    assert injector.repaired == injector.injected
    assert not torus.faulty_channels()


def test_fabric_channels_excludes_injection_and_delivery(torus):
    fabric = fabric_channels(torus)
    assert len(fabric) == torus.channel_count - 2 * torus.N
    assert all(not ch.is_delivery for ch in fabric)
    assert all(not ch.label.startswith("inj[") for ch in fabric)
