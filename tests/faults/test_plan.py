"""FaultPlan / FaultInjector: scheduled mid-flight fault injection."""

import pytest

from repro.faults import FaultEvent, FaultPlan, switch_output_channels
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.packet import PacketState


def _engine(kind, seed=0, **kwargs):
    env = Environment()
    net = build_network(kind, k=2, n=3, **kwargs)
    return env, WormholeEngine(env, net, rng=RandomStream(seed))


# ---------------------------------------------------------------- validation


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(at=-1, channels=("b1[0].0",))
    with pytest.raises(ValueError):
        FaultEvent(at=0, channels=("b1[0].0",), duration=0)
    with pytest.raises(ValueError):
        FaultEvent(at=0, channels=("b1[0].0",), severity="fatal")
    with pytest.raises(ValueError):
        FaultEvent(at=0)  # neither channels nor switch
    assert FaultEvent(at=0, channels=("x",), duration=5).transient
    assert not FaultEvent(at=0, channels=("x",)).transient


def test_empty_plan_rejected():
    with pytest.raises(ValueError):
        FaultPlan(())


def test_hard_event_requires_engine():
    env, eng = _engine("tmin")
    plan = FaultPlan.single(at=10, channel="b1[3].0", severity="hard")
    with pytest.raises(ValueError):
        plan.install(env, eng.network)  # no engine passed


# ------------------------------------------------------------ timed behavior


def test_transient_fault_fails_then_repairs():
    env, eng = _engine("tmin")
    ch = eng.network.find_channel("b1[3].0")
    plan = FaultPlan.single(at=100, channel="b1[3].0", duration=50)
    inj = plan.install(env, eng.network)
    eng.start()
    env.run(until=99)
    assert not ch.faulty
    env.run(until=101)
    assert ch.faulty
    env.run(until=151)
    assert not ch.faulty
    assert inj.injected == 1 and inj.repaired == 1


def test_permanent_fault_never_repairs():
    env, eng = _engine("tmin")
    ch = eng.network.find_channel("b1[3].0")
    FaultPlan.single(at=10, channel="b1[3].0").install(env, eng.network)
    eng.start()
    env.run(until=10_000)
    assert ch.faulty


def test_install_time_is_relative():
    """Event times count from install, not from cycle zero."""
    env, eng = _engine("tmin")
    eng.start()
    env.run(until=500)
    ch = eng.network.find_channel("b1[3].0")
    FaultPlan.single(at=100, channel="b1[3].0").install(env, eng.network)
    env.run(until=599)
    assert not ch.faulty
    env.run(until=601)
    assert ch.faulty


# --------------------------------------------------------------- hard faults


def test_hard_fault_aborts_worm_mid_flight():
    """A wire cut kills the worm streaming across it; soft lets it by."""
    env, eng = _engine("tmin")
    path = eng.network.spec.channels_of_path(1, 6)
    label = eng.network.slots[path[2]][0].label
    plan = FaultPlan.single(
        at=20, channel=label, duration=1_000, severity="hard"
    )
    inj = plan.install(env, eng.network, eng)
    victim = eng.offer(1, 6, 200)  # long worm: still streaming at t=20
    eng.drain(max_cycles=5_000)
    assert victim.state is PacketState.FAILED
    assert inj.killed_worms == 1
    # Clean abort: no residual flits or ownership anywhere.
    for ch in eng.network.topo_channels:
        for lane in ch.lanes:
            assert lane.owner is None and lane.buf == 0


def test_soft_fault_lets_streaming_worm_finish():
    env, eng = _engine("tmin")
    path = eng.network.spec.channels_of_path(1, 6)
    label = eng.network.slots[path[2]][0].label
    FaultPlan.single(at=20, channel=label, duration=1_000).install(
        env, eng.network
    )
    worm = eng.offer(1, 6, 200)
    eng.drain(max_cycles=5_000)
    assert worm.state is PacketState.DELIVERED


# ------------------------------------------------------------- switch faults


def test_switch_output_channels_unidirectional():
    env, eng = _engine("dmin")
    chans = switch_output_channels(eng.network, 1, 2)
    # k=2 output ports, dilation 2: four physical channels.
    assert len(chans) == 4
    labels = {ch.label for ch in chans}
    assert all(lbl.startswith("b2[") for lbl in labels)
    with pytest.raises(ValueError):
        switch_output_channels(eng.network, 9, 0)
    with pytest.raises(ValueError):
        switch_output_channels(eng.network, 0, 99)


def test_switch_output_channels_bmin():
    env, eng = _engine("bmin")
    chans = switch_output_channels(eng.network, 1, 0)
    assert chans  # forward right lines + backward left lines
    assert all(not ch.is_delivery for ch in chans) or any(
        ch.is_delivery for ch in chans
    )  # structural sanity: list resolves without KeyError
    # A stage-1 switch of a 3-stage BMIN has both directions.
    metas = {ch.meta[0] for ch in chans}
    assert metas == {"fwd", "bwd"}


def test_whole_switch_fault_disconnects_its_routes():
    """Killing a stage-1 switch severs every path through it."""
    env, eng = _engine("tmin")
    spec = eng.network.spec
    # Find a pair routed through stage-1 switch 0: path's boundary-2
    # link positions 0..k-1 are driven by that switch.
    plan = FaultPlan((FaultEvent(at=0, switch=(1, 0)),))
    plan.install(env, eng.network)
    env.run(until=1)
    hit = [
        (s, d)
        for s in range(8)
        for d in range(8)
        if s != d
        and any(
            b == 2 and pos // spec.k == 0
            for b, pos in spec.channels_of_path(s, d)
        )
    ]
    assert hit
    s, d = hit[0]
    p = eng.offer(s, d, 8)
    eng.drain()
    assert p.state is PacketState.FAILED


# ------------------------------------------------------- plan validation


def test_install_rejects_unknown_label_with_suggestions():
    env, eng = _engine("tmin")
    plan = FaultPlan.single(at=10, channel="b1[3].7")
    with pytest.raises(ValueError) as exc:
        plan.install(env, eng.network)
    msg = str(exc.value)
    assert "does not match the topology" in msg
    assert "event[0] at t=10" in msg
    assert "did you mean" in msg


def test_install_rejects_out_of_range_switch():
    env, eng = _engine("tmin")
    plan = FaultPlan((FaultEvent(at=0, switch=(9, 0)),))
    with pytest.raises(ValueError, match="stage 9 out of range"):
        plan.install(env, eng.network)


def test_validate_reports_every_problem_at_once():
    env, eng = _engine("tmin")
    plan = FaultPlan(
        (
            FaultEvent(at=1, channels=("b1[3].7",)),
            FaultEvent(at=2, channels=("b1[3].0",)),  # this one is fine
            FaultEvent(at=3, switch=(0, 99)),
        )
    )
    with pytest.raises(ValueError) as exc:
        plan.validate(eng.network)
    msg = str(exc.value)
    assert "event[0]" in msg and "event[2]" in msg
    assert "event[1]" not in msg


def test_validate_passes_clean_plan():
    env, eng = _engine("bmin")
    plan = FaultPlan(
        (
            FaultEvent(at=1, channels=("fwd1[0]",), duration=10),
            FaultEvent(at=2, switch=(1, 1)),
        )
    )
    plan.validate(eng.network)  # must not raise
