"""SourceRetry: backoff schedule, recovery accounting, drops, watchdog."""

import pytest

from repro.faults import FaultPlan, RetryPolicy, SourceRetry
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.packet import PacketState


def _engine(kind, seed=0, **kwargs):
    env = Environment()
    net = build_network(kind, k=2, n=3, **kwargs)
    return env, WormholeEngine(env, net, rng=RandomStream(seed))


# ---------------------------------------------------------------- RetryPolicy


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=0)
    with pytest.raises(ValueError):
        RetryPolicy(factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(attempt_timeout=0)


def test_policy_delay_grows_and_caps():
    policy = RetryPolicy(base_delay=10, factor=2.0, max_delay=35, jitter=0.0)
    rng = RandomStream(0)
    assert policy.delay(1, rng) == 10
    assert policy.delay(2, rng) == 20
    assert policy.delay(3, rng) == 35  # capped, not 40
    assert policy.delay(9, rng) == 35


def test_policy_jitter_stays_in_band():
    policy = RetryPolicy(base_delay=100, factor=1.0, max_delay=100, jitter=0.25)
    rng = RandomStream(3)
    for _ in range(200):
        d = policy.delay(1, rng)
        assert 75.0 <= d <= 125.0


# -------------------------------------------------------- retry-and-recover


def test_retry_after_repair_delivers():
    """A transient hard fault kills the worm; the retry (after backoff
    outlasting the repair) lands it -- recovered, not dropped."""
    env, eng = _engine("tmin")
    path = eng.network.spec.channels_of_path(1, 6)
    label = eng.network.slots[path[2]][0].label
    FaultPlan.single(at=3, channel=label, duration=40, severity="hard").install(
        env, eng.network, eng
    )
    policy = RetryPolicy(max_attempts=3, base_delay=64, jitter=0.0)
    retry = SourceRetry(eng, policy, RandomStream(1))
    first = eng.offer(1, 6, 100)
    retry.quiesce(max_cycles=10_000)
    assert first.state is PacketState.FAILED  # the original died
    assert retry.retried == 1
    assert retry.recovered == 1
    assert retry.dropped == 0
    assert retry.delivered_ratio() == 1.0
    assert eng.stats.retried_packets == 1
    assert eng.stats.dropped_packets == 0


def test_permanent_fault_exhausts_attempts_and_drops():
    env, eng = _engine("tmin")
    path = eng.network.spec.channels_of_path(1, 6)
    label = eng.network.slots[path[2]][0].label
    FaultPlan.single(at=0, channel=label).install(env, eng.network)
    env.run(until=1)
    policy = RetryPolicy(max_attempts=3, base_delay=16, jitter=0.0)
    retry = SourceRetry(eng, policy, RandomStream(1))
    eng.offer(1, 6, 8)
    retry.quiesce(max_cycles=10_000)
    assert retry.retried == 2          # attempts 2 and 3
    assert retry.dropped == 1
    assert retry.delivered_ratio() == 0.0
    assert eng.stats.dropped_packets == 1
    assert eng.stats.failed_packets == 3  # every attempt failed


def test_max_attempts_one_disables_retry():
    env, eng = _engine("tmin")
    path = eng.network.spec.channels_of_path(1, 6)
    label = eng.network.slots[path[2]][0].label
    FaultPlan.single(at=0, channel=label).install(env, eng.network)
    env.run(until=1)
    retry = SourceRetry(eng, RetryPolicy(max_attempts=1), RandomStream(1))
    eng.offer(1, 6, 8)
    retry.quiesce()
    assert retry.retried == 0
    assert retry.dropped == 1


def test_unaffected_traffic_counts_as_delivered():
    env, eng = _engine("dmin")
    retry = SourceRetry(eng, RetryPolicy(), RandomStream(2))
    for s, d in ((0, 5), (3, 1), (7, 2)):
        eng.offer(s, d, 8)
    retry.quiesce()
    assert retry.delivered_ratio() == 1.0
    assert retry.retried == 0 and retry.dropped == 0 and retry.recovered == 0
    assert len(retry.outcomes) == 3


def test_attempt_timeout_watchdog_aborts_and_retries():
    """A worm parked forever behind a blocker is timed out at the source
    and re-injected; once the blocker leaves, the retry delivers."""
    env, eng = _engine("tmin")
    # Blocker first, *before* the retry manager exists: no watchdog is
    # attached to it.  Run a few cycles so it owns the shared delivery
    # channel of node 4 for the next ~400 cycles.
    blocker = eng.offer(0, 4, 400)
    eng.run_cycles(20)
    policy = RetryPolicy(
        max_attempts=6, base_delay=32, jitter=0.0, attempt_timeout=150
    )
    retry = SourceRetry(eng, policy, RandomStream(1))
    # The victim's unique path ends on the blocker's delivery channel.
    victim = eng.offer(1, 4, 8)
    retry.quiesce(max_cycles=50_000)
    assert blocker.state is PacketState.DELIVERED
    # The victim was timed out at least once while parked, then a retry
    # landed after the blocker's tail cleared the path.
    assert victim.state is PacketState.FAILED
    assert retry.retried >= 1
    assert retry.recovered == 1
    assert retry.dropped == 0
    assert retry.delivered_ratio() == 1.0


def test_quiesce_raises_when_pipeline_cannot_settle():
    env, eng = _engine("tmin")
    path = eng.network.spec.channels_of_path(1, 6)
    label = eng.network.slots[path[2]][0].label
    FaultPlan.single(at=0, channel=label).install(env, eng.network)
    env.run(until=1)
    policy = RetryPolicy(max_attempts=50, base_delay=512, jitter=0.0)
    retry = SourceRetry(eng, policy, RandomStream(1))
    eng.offer(1, 6, 8)
    with pytest.raises(RuntimeError):
        retry.quiesce(max_cycles=600)  # budget < one backoff round trip
