"""Property-based certification of the batch tier's SoA kernel.

Three contracts back the batch engine's bit-identity claim
(:mod:`repro.wormhole.batch`), and each gets a randomized oracle here:

* :class:`BatchStream` -- every public variate, drawn from the numpy
  ``MT19937`` mirror, must equal the stdlib :class:`RandomStream`'s
  draw *by draw* over arbitrary interleaved call sequences, including
  mid-stream :meth:`BatchStream.adopt` and the fused
  :meth:`BatchStream.shuffle_k` (``k`` deferred service-order shuffles
  must consume exactly the words, and produce exactly the permutation,
  of ``k`` sequential ``shuffle`` calls);
* :func:`plan_moves` -- the vectorized one-cycle advance plan must
  equal an independent *sequential* walk of the reference semantics
  (downstream-first flit movement over single-flit lane buffers,
  mutating state as it goes) on every randomized worm suffix;
* :class:`SoALedger` -- the action schedule expanded by :meth:`add`
  must match an independent reimplementation of the documented
  free-run schedule bucket for bucket (keys, tuples, and within-bucket
  insertion order), ``next_due`` must never overshoot the true
  horizon, and the slot columns must round-trip through
  add/remove/grow/clear.

The suite skips cleanly when Hypothesis or numpy is absent (both ship
in the dev environment; neither is a runtime dependency of tier 1).
"""

from __future__ import annotations

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.sim.rng import RandomStream  # noqa: E402
from repro.wormhole.batch import numpy_available  # noqa: E402

if not numpy_available():  # pragma: no cover - numpy ships in dev env
    pytest.skip("batch tier requires numpy", allow_module_level=True)

from repro.wormhole.batch import (  # noqa: E402
    FAR,
    BatchStream,
    SoALedger,
    plan_moves,
)

# ------------------------------------------------------------ RNG mirror

seeds = st.integers(min_value=0, max_value=2**32 - 1)

#: One RNG call: (method name, args) applied identically to both
#: streams.  Arguments are kept small so rejection sampling terminates
#: fast; the *values* drawn are what must match, bit for bit.
_ops = st.one_of(
    st.tuples(st.just("random")),
    st.tuples(st.just("uniform"), st.floats(-5, 5), st.floats(5, 10)),
    st.tuples(
        st.just("uniform_int"), st.integers(-50, 50), st.integers(0, 2000)
    ),
    st.tuples(st.just("exponential"), st.floats(0.01, 100)),
    st.tuples(st.just("choice"), st.integers(1, 70)),
    st.tuples(st.just("shuffle"), st.integers(0, 70)),
    st.tuples(
        st.just("bimodal_int"),
        st.integers(1, 5),
        st.integers(6, 20),
        st.floats(0, 1),
    ),
    st.tuples(
        st.just("weighted_index"),
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=8),
    ),
)


def _apply(stream, op):
    """Run one op; return its observable result."""
    name = op[0]
    if name == "random":
        return stream.random()
    if name == "uniform":
        return stream.uniform(op[1], op[1] + abs(op[2]))
    if name == "uniform_int":
        return stream.uniform_int(op[1], op[1] + op[2])
    if name == "exponential":
        return stream.exponential(op[1])
    if name == "choice":
        return stream.choice(list(range(op[1])))
    if name == "shuffle":
        seq = list(range(op[1]))
        stream.shuffle(seq)
        return seq
    if name == "bimodal_int":
        low, width, frac = op[1], op[2], op[3]
        return stream.bimodal_int(low, low + width, frac, low)
    if name == "weighted_index":
        weights = op[1]
        if sum(weights) <= 0:
            return None  # invalid input; skip rather than filter upstream
        return stream.weighted_index(weights)
    raise AssertionError(name)  # pragma: no cover


@given(seed=seeds, ops=st.lists(_ops, max_size=40))
@settings(max_examples=150, deadline=None)
def test_batchstream_draw_identity(seed, ops):
    """Arbitrary interleaved variate sequences match draw by draw."""
    ref = RandomStream(seed)
    mir = BatchStream(seed)
    for op in ops:
        assert _apply(ref, op) == _apply(mir, op), op


@given(seed=seeds, warm=st.lists(_ops, max_size=15), ops=st.lists(_ops, max_size=25))
@settings(max_examples=100, deadline=None)
def test_batchstream_adopt_continues_stream(seed, warm, ops):
    """Adoption mid-stream continues the stdlib stream verbatim --
    exactly what the engine does to its allocation stream at batch
    construction time."""
    ref = RandomStream(seed)
    victim = RandomStream(seed)
    for op in warm:
        _apply(ref, op)
        _apply(victim, op)
    mir = BatchStream.adopt(victim)
    for op in ops:
        assert _apply(ref, op) == _apply(mir, op), op


@given(
    seed=seeds,
    n=st.integers(min_value=0, max_value=80),
    k=st.integers(min_value=0, max_value=12),
    tail=st.lists(_ops, max_size=10),
)
@settings(max_examples=150, deadline=None)
def test_shuffle_k_equals_k_shuffles(seed, n, k, tail):
    """``shuffle_k(seq, k)`` == ``k`` sequential shuffles: the same
    permutation AND the same number of words consumed (the ``tail``
    draws diverge otherwise)."""
    ref = RandomStream(seed)
    mir = BatchStream(seed)
    a = list(range(n))
    b = list(range(n))
    for _ in range(k):
        ref.shuffle(a)
    mir.shuffle_k(b, k)
    assert a == b
    for op in tail:
        assert _apply(ref, op) == _apply(mir, op), op


@given(seed=seeds, ks=st.lists(st.integers(1, 64), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_getrandbits_word_derivation(seed, ks):
    """The raw-word ``getrandbits`` derivation (the base of every
    variate) matches CPython for widths spanning multiple words."""
    ref = random.Random(seed)  # lint-sim: ignore[RPV001] -- oracle
    mir = BatchStream(seed)
    for k in ks:
        assert ref.getrandbits(k) == mir._getrandbits(k), k


# ------------------------------------------------------- plan_moves oracle


class _Chan:
    __slots__ = ("topo_order", "is_delivery", "label")

    def __init__(self, topo_order, is_delivery=False):
        self.topo_order = topo_order
        self.is_delivery = is_delivery
        self.label = f"c{topo_order}"


class _Lane:
    __slots__ = ("sent", "buf", "channel")

    def __init__(self, sent, buf, channel):
        self.sent = sent
        self.buf = buf
        self.channel = channel


class _Pkt:
    def __init__(self, lanes, length, token=7):
        self.lanes = lanes
        self.length = length
        self._lz_token = token


#: One worm: (s, owned suffix length, message length, head delivers,
#: per-lane (sent offset, buf) pairs).  Buffers are single-flit, so
#: ``buf`` is 0 or 1; ``sent`` is clamped to the message length.
_worm = st.tuples(
    st.integers(0, 2),
    st.integers(1, 6),
    st.integers(1, 40),
    st.booleans(),
    st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 1)),
        min_size=9,
        max_size=9,
    ),
)


def _build_worm(spec):
    s, m, length, is_delivery, lane_specs = spec
    n1 = s + m - 1
    lanes = []
    for i in range(n1 + 1):
        sent, buf = lane_specs[i]
        chan = _Chan(i, is_delivery=is_delivery and i == n1)
        lanes.append(_Lane(min(sent, length), buf, chan))
    return _Pkt(lanes, length), s, n1


def _scalar_cycle(p, s, n1):
    """Independent oracle: the reference engine's downstream-first walk
    over the owned suffix, moving real (mutable) flit counters.

    A lane moves when it still has flits to send, its upstream feed
    buffer holds a flit *right now*, and its own buffer can accept one
    (head delivery lanes emit straight into the node).  Moves mutate
    the buffers as they happen, which is exactly how an earlier
    (downstream) move enables a later one within the same cycle.
    """
    m = n1 - s + 1
    lanes = p.lanes
    sent = [lanes[n1 - j].sent for j in range(m)]
    buf = [lanes[n1 - j].buf for j in range(m)]
    # Feed of the tail position: the released lane just upstream, or
    # the source's unbounded supply when the suffix starts at the head
    # of the path.
    tail_feed = lanes[s - 1].buf if s else 1 << 30
    isdlv = lanes[n1].channel.is_delivery
    mv = [False] * m
    feed_take = 0
    for j in range(m):
        if sent[j] >= p.length:
            continue
        feed = buf[j + 1] if j + 1 < m else tail_feed
        if feed <= 0:
            continue
        if buf[j] != 0 and not (j == 0 and isdlv):
            continue
        mv[j] = True
        sent[j] += 1
        if j + 1 < m:
            buf[j + 1] -= 1
        else:
            tail_feed -= 1
            if s:
                feed_take = 1
        if not (j == 0 and isdlv):
            buf[j] += 1
    return any(mv), mv, sent, buf, feed_take


@given(specs=st.lists(_worm, min_size=1, max_size=8))
@settings(max_examples=200, deadline=None)
def test_plan_moves_matches_scalar_walk(specs):
    """The vectorized plan equals the sequential reference walk on
    every worm of a random batch -- movement bits, new counters, and
    the upstream feed consumption."""
    worms = [_build_worm(spec) for spec in specs]
    plans = plan_moves(worms)
    assert len(plans) == len(worms)
    for (p, s, n1), plan in zip(worms, plans):
        moved, mv, new_sent, new_buf, feed_take = plan
        o_moved, o_mv, o_sent, o_buf, o_take = _scalar_cycle(p, s, n1)
        assert moved == o_moved
        assert [bool(x) for x in mv] == o_mv
        assert new_sent == o_sent
        assert new_buf == o_buf
        assert feed_take == o_take


# -------------------------------------------------------- SoALedger oracle

#: One free-run registration: (s, suffix length, entry cycle, slack).
#: ``deliver`` is placed so every expanded action lands strictly after
#: the entry cycle, as the engine guarantees.
_entry = st.tuples(
    st.integers(0, 2),
    st.integers(1, 5),
    st.integers(0, 400),
    st.integers(1, 50),
)


def _model_schedule(p, s, n1, cycle, deliver):
    """The documented free-run schedule, reimplemented from scratch."""
    lanes = p.lanes
    tok = p._lz_token
    out: dict = {}
    for i in range(s, n1):
        t = deliver - (n1 - i)
        out.setdefault(t, []).append(
            (lanes[i].channel.topo_order, 1, p, tok, lanes[i])
        )
        out.setdefault(t + 1, []).append(
            (lanes[i + 1].channel.topo_order, 0, p, tok, lanes[i])
        )
    if s:
        out.setdefault(cycle + 1, []).append(
            (lanes[s].channel.topo_order, 0, p, tok, lanes[s - 1])
        )
    out.setdefault(deliver, []).append(
        (lanes[n1].channel.topo_order, 2, p, tok, lanes[n1])
    )
    return out


@given(entries=st.lists(_entry, min_size=1, max_size=10))
@settings(max_examples=150, deadline=None)
def test_ledger_schedule_equivalence(entries):
    """Every bucket the ledger expands -- keys, tuples, insertion
    order -- matches the independent model, and draining by ascending
    cycle empties both the same way."""
    ledger = SoALedger(capacity=2)  # force _grow on the way
    model: dict = {}
    for token, (s, m, cycle, slack) in enumerate(entries):
        n1 = s + m - 1
        lanes = [
            _Lane(0, 0, _Chan(i, is_delivery=i == n1)) for i in range(n1 + 1)
        ]
        p = _Pkt(lanes, 16, token=token)
        deliver = cycle + (n1 - s) + slack
        ledger.add(p, s, n1, cycle, deliver)
        for t, acts in _model_schedule(p, s, n1, cycle, deliver).items():
            model.setdefault(t, []).extend(acts)
    assert ledger.count == len(entries)
    while model:
        t = min(model)
        assert ledger.next_due() <= t  # never overshoots the horizon
        got = ledger.pop_due(t)
        assert got == model.pop(t)
    assert ledger.next_due() == FAR
    assert ledger.pop_due(10**9) is None


@given(
    entries=st.lists(_entry, min_size=1, max_size=12),
    drops=st.lists(st.integers(0, 11), max_size=12),
)
@settings(max_examples=150, deadline=None)
def test_ledger_slot_round_trip(entries, drops):
    """SoA columns round-trip through add/remove/grow, and the live
    set (what bulk materialization reads) always equals the model."""
    ledger = SoALedger(capacity=1)
    slots = {}
    worms = {}
    for token, (s, m, cycle, slack) in enumerate(entries):
        n1 = s + m - 1
        lanes = [_Lane(3 + token, 0, _Chan(i)) for i in range(n1 + 1)]
        p = _Pkt(lanes, 16, token=token)
        deliver = cycle + (n1 - s) + slack
        slots[token] = ledger.add(p, s, n1, cycle, deliver)
        worms[token] = (p, s, n1, cycle, deliver)
    for token in drops:
        if token in slots:
            ledger.remove(slots.pop(token))
            del worms[token]
    assert ledger.count == len(slots)
    for token, slot in slots.items():
        p, s, n1, cycle, deliver = worms[token]
        assert bool(ledger.live[slot])
        assert ledger.pkts[slot] is p
        assert int(ledger.base[slot]) == cycle
        assert int(ledger.sent0[slot]) == p.lanes[n1].sent
        assert int(ledger.s[slot]) == s
        assert int(ledger.n1[slot]) == n1
        assert int(ledger.deliver[slot]) == deliver
    assert set(ledger.live_packets()) == {p for p, *_ in worms.values()}
    ledger.clear()
    assert ledger.count == 0
    assert ledger.live_packets() == []
    assert ledger.next_due() == FAR
