"""Property-based tests of the statistics layer (Hypothesis).

Randomized inputs certify the algebraic contracts the example-based
suites cannot sweep:

* :class:`repro.obs.histogram.LatencyHistogram` -- chunked recording +
  ``merge`` equals bulk recording (associativity/commutativity of the
  monoid), percentiles are monotone in ``q``, and every quantile
  estimate stays within the documented ``2**-sub_bucket_bits`` bounded
  relative error of the exact rank statistic;
* :class:`repro.metrics.summary.LatencySummary` -- order statistics
  are ordered (p50 <= p95 <= p99 <= max), summaries are permutation
  invariant (modulo the order-sensitive CI), and the histogram-backed
  constructor agrees with the exact one on the exact fields.

The suite skips cleanly when Hypothesis is absent (it ships in the dev
environment but is not a runtime dependency).
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.metrics.summary import LatencySummary  # noqa: E402
from repro.obs.histogram import LatencyHistogram  # noqa: E402

#: Latencies are cycle counts: non-negative, finite, up to "huge run".
latencies = st.lists(
    st.floats(min_value=0.0, max_value=1e7, allow_nan=False,
              allow_infinity=False),
    min_size=1,
    max_size=200,
)

bits = st.integers(min_value=0, max_value=8)


def _hist(values, sub_bucket_bits: int = 5) -> LatencyHistogram:
    h = LatencyHistogram(sub_bucket_bits=sub_bucket_bits)
    h.record_many(values)
    return h


def _state(h: LatencyHistogram):
    """Observable state of a histogram for equality checks.

    ``total`` is a float accumulator, so different summation orders can
    differ in the last ulp -- it is compared with a tolerance instead of
    bit-for-bit (the integer fields and bucket counts must match exactly).
    """
    return (h.count, h.min_value, h.max_value, dict(h._counts))


def _exact_rank(ordered, q: float) -> float:
    """The exact order statistic under the histogram's rank convention
    (first value whose cumulative count reaches ``q% * n``)."""
    target = q / 100.0 * len(ordered)
    return ordered[max(0, math.ceil(target) - 1)]


# ------------------------------------------------------------- histogram


@given(latencies, st.integers(min_value=1, max_value=5), bits)
@settings(max_examples=60, deadline=None)
def test_chunked_merge_equals_bulk_record(values, chunks, b) -> None:
    """Splitting a stream into chunks and merging loses nothing."""
    bulk = _hist(values, b)
    merged = LatencyHistogram(sub_bucket_bits=b)
    size = max(1, -(-len(values) // chunks))  # ceil division
    for i in range(0, len(values), size):
        merged.merge(_hist(values[i : i + size], b))
    assert _state(merged) == _state(bulk)
    assert merged.total == pytest.approx(bulk.total, rel=1e-12, abs=1e-9)


@given(latencies, latencies, latencies)
@settings(max_examples=40, deadline=None)
def test_merge_is_associative_and_commutative(xs, ys, zs) -> None:
    """(x + y) + z == x + (y + z) == (z + y) + x, state for state."""
    left = _hist(xs)
    left.merge(_hist(ys))
    left.merge(_hist(zs))
    right = _hist(ys)
    right.merge(_hist(zs))
    pre = _hist(xs)
    pre.merge(right)
    flipped = _hist(zs)
    flipped.merge(_hist(ys))
    flipped.merge(_hist(xs))
    assert _state(left) == _state(pre) == _state(flipped)
    assert left.total == pytest.approx(pre.total, rel=1e-12, abs=1e-9)
    assert left.total == pytest.approx(flipped.total, rel=1e-12, abs=1e-9)


@given(latencies, st.lists(st.floats(min_value=0, max_value=100),
                           min_size=2, max_size=6))
@settings(max_examples=60, deadline=None)
def test_percentiles_are_monotone_in_q(values, qs) -> None:
    """q1 <= q2 implies percentile(q1) <= percentile(q2)."""
    h = _hist(values)
    qs = sorted(qs)
    estimates = [h.percentile(q) for q in qs]
    assert estimates == sorted(estimates)
    assert h.min_value <= estimates[0]
    assert estimates[-1] <= h.max_value


@given(latencies, st.floats(min_value=0, max_value=100), bits)
@settings(max_examples=80, deadline=None)
def test_percentile_bounded_relative_error(values, q, b) -> None:
    """Any quantile is within one bucket width of the exact rank
    statistic: absolute error <= max(1, value * 2**-bits)."""
    h = _hist(values, b)
    exact = _exact_rank(sorted(values), q)
    estimate = h.percentile(q)
    bound = max(1.0, exact * 2.0 ** -b) + 1e-9
    assert abs(estimate - exact) <= bound, (
        f"p{q}: estimate {estimate} vs exact {exact} "
        f"(bound {bound}, bits {b})"
    )


@given(latencies)
@settings(max_examples=60, deadline=None)
def test_mean_and_extrema_are_exact(values) -> None:
    """The histogram keeps sum/min/max exactly, not bucketed."""
    h = _hist(values)
    assert h.count == len(values)
    assert h.min_value == min(values)
    assert h.max_value == max(values)
    assert h.mean == pytest.approx(math.fsum(values) / len(values),
                                   rel=1e-9, abs=1e-9)


@given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False,
                 allow_infinity=False), bits)
@settings(max_examples=80, deadline=None)
def test_bucket_index_bounds_its_value(value, b) -> None:
    """_lower_bound/_bucket_width invert _index: every value lands in
    the half-open bucket that claims it."""
    h = LatencyHistogram(sub_bucket_bits=b)
    i = h._index(value)
    lo = h._lower_bound(i)
    width = h._bucket_width(i)
    assert lo <= value < lo + width + 1.0  # +1 absorbs the int() floor


# --------------------------------------------------------------- summary


@given(latencies)
@settings(max_examples=60, deadline=None)
def test_summary_order_statistics_are_ordered(values) -> None:
    s = LatencySummary.from_values(values)
    assert s.count == len(values)
    # The mean is a float sum: allow one ulp of slack at the endpoints.
    slack = 1e-9 * max(1.0, s.max)
    assert min(values) - slack <= s.mean <= s.max + slack
    assert s.p50 <= s.p95 <= s.p99 <= s.max
    assert s.max == max(values)


@given(latencies, st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_summary_is_permutation_invariant(values, rnd) -> None:
    """Shuffling the samples changes nothing but the (order-sensitive,
    batch-means) confidence interval."""
    shuffled = list(values)
    rnd.shuffle(shuffled)
    a = LatencySummary.from_values(values)
    b = LatencySummary.from_values(shuffled)
    assert (a.count, a.mean, a.p50, a.p95, a.p99, a.max) == (
        b.count, b.mean, b.p50, b.p95, b.p99, b.max
    )


@given(latencies)
@settings(max_examples=40, deadline=None)
def test_summary_from_histogram_matches_exact_fields(values) -> None:
    """The histogram-backed summary agrees on every exact field and
    keeps percentile estimates inside the observed range."""
    exact = LatencySummary.from_values(values)
    approx = LatencySummary.from_histogram(_hist(values))
    assert approx.count == exact.count
    assert approx.max == exact.max
    assert approx.mean == pytest.approx(exact.mean, rel=1e-9, abs=1e-9)
    for q_est in (approx.p50, approx.p95, approx.p99):
        assert min(values) <= q_est <= max(values)


def test_summary_empty_is_all_nan() -> None:
    s = LatencySummary.from_values([])
    assert s == LatencySummary.empty()
    assert s.count == 0
    for field in ("mean", "p50", "p95", "p99", "max", "ci_half"):
        assert math.isnan(getattr(s, field)), field
