"""Property-based tests of the recorded-trace format (Hypothesis).

Randomized record sets certify the format's algebraic contracts:

* **write -> read identity** for arbitrary valid traces (timestamps
  spanning many orders of magnitude, duplicate records, empty traces);
* **canonical-sort permutation invariance** -- any shuffling of the
  same record multiset produces the identical replay order, so a trace
  file's record order is never load-bearing;
* **serialized-byte determinism** -- equal traces serialize to equal
  bytes (the checksummed format has no hidden nondeterminism).

The suite skips cleanly when Hypothesis is absent.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.traffic.trace import (  # noqa: E402
    Trace,
    TraceRecord,
    read_trace,
    write_trace,
)

N_NODES = 16

#: Timestamps: non-negative finite cycle counts, fractional allowed.
times = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


@st.composite
def records(draw):
    src = draw(st.integers(min_value=0, max_value=N_NODES - 1))
    dst = draw(
        st.integers(min_value=0, max_value=N_NODES - 2).map(
            lambda d: d + 1 if d >= src else d
        )
    )
    return TraceRecord(
        t=draw(times),
        src=src,
        dst=dst,
        size=draw(st.integers(min_value=1, max_value=1024)),
    )


traces = st.lists(records(), max_size=60).map(
    lambda rs: Trace(N_NODES, tuple(rs))
)

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@COMMON
@given(trace=traces)
def test_write_read_identity(tmp_path, trace):
    path = tmp_path / "prop.bin"
    write_trace(path, trace)
    assert read_trace(path) == trace


@COMMON
@given(trace=traces, seed=st.randoms(use_true_random=False))
def test_sorted_is_permutation_invariant(tmp_path, trace, seed):
    shuffled = list(trace.records)
    seed.shuffle(shuffled)
    permuted = Trace(trace.n_nodes, tuple(shuffled))
    assert permuted.sorted() == trace.sorted()
    # ...and the canonical forms serialize to identical bytes.
    a, b = tmp_path / "a.bin", tmp_path / "b.bin"
    write_trace(a, trace.sorted())
    write_trace(b, permuted.sorted())
    assert a.read_bytes() == b.read_bytes()


@COMMON
@given(trace=traces)
def test_serialization_is_deterministic(tmp_path, trace):
    a, b = tmp_path / "a.bin", tmp_path / "b.bin"
    write_trace(a, trace)
    write_trace(b, trace)
    assert a.read_bytes() == b.read_bytes()


@COMMON
@given(trace=traces, flip=st.integers(min_value=0, max_value=2**31))
def test_any_bit_flip_is_detected(tmp_path, trace, flip):
    """Flipping any single bit anywhere in the file is rejected."""
    from repro.traffic.trace import TraceFormatError

    path = tmp_path / "flip.bin"
    write_trace(path, trace)
    blob = bytearray(path.read_bytes())
    bit = flip % (len(blob) * 8)
    blob[bit // 8] ^= 1 << (bit % 8)
    path.write_bytes(bytes(blob))
    with pytest.raises(TraceFormatError):
        read_trace(path)
