"""Cross-process determinism: same seed, same bytes, any worker count.

The paper's curves are only reproducible if a seeded run is a pure
function of its configuration -- independent of process boundaries,
worker scheduling, and the engine fast path.  Three certificates:

* two *separate* interpreter processes exporting the same seeded
  figure produce byte-identical CSV and JSON files;
* ``parallel_sweep`` with 1 worker and with 4 workers returns the
  same measurements (process-pool dispatch order must not leak into
  results);
* the fast, reference, and batch engines export byte-identical files,
  so the engine switch can never silently change published numbers.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import asdict, replace
from pathlib import Path

from repro.experiments.config import PRESETS, NetworkConfig
from repro.experiments.parallel import parallel_sweep
from repro.experiments.workload_spec import WorkloadSpec

REPO = Path(__file__).resolve().parent.parent.parent

#: Small enough to run four subprocess sweeps in a few seconds, big
#: enough to exercise warmup, measurement, and multi-series export.
_EXPORT_SCRIPT = """
import sys
from dataclasses import replace

from repro.experiments.config import PRESETS, NetworkConfig
from repro.experiments.export import write_figure_csv, write_figure_json
from repro.experiments.figures import FigureResult
from repro.experiments.runner import sweep
from repro.experiments.workload_spec import WorkloadSpec

out = sys.argv[1]
cfg = replace(
    PRESETS["smoke"], warmup_packets=20, measure_packets=80, max_cycles=8000
)
spec = WorkloadSpec(pattern="uniform")
series = tuple(
    sweep(NetworkConfig(kind), spec.builder(cfg), cfg, loads=(0.3, 0.7))
    for kind in ("tmin", "dmin")
)
fig = FigureResult("det", "determinism probe", "probe", series)
write_figure_csv(fig, out + "/fig.csv")
write_figure_json(fig, out + "/fig.json")
"""


def _export_in_subprocess(out_dir: Path, engine: str | None = None) -> None:
    """Run the export script in a fresh interpreter; files land in out_dir."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_SANITIZE", None)
    if engine is None:
        env.pop("REPRO_ENGINE", None)
    else:
        env["REPRO_ENGINE"] = engine
    subprocess.run(
        [sys.executable, "-c", _EXPORT_SCRIPT, str(out_dir)],
        check=True,
        env=env,
        cwd=REPO,
        timeout=300,
    )


def test_two_processes_byte_identical_exports(tmp_path: Path) -> None:
    """Two fresh interpreters, same seed: byte-identical CSV and JSON."""
    a, b = tmp_path / "a", tmp_path / "b"
    a.mkdir()
    b.mkdir()
    _export_in_subprocess(a)
    _export_in_subprocess(b)
    for name in ("fig.csv", "fig.json"):
        first = (a / name).read_bytes()
        second = (b / name).read_bytes()
        assert first == second, f"{name} differs across process runs"
    # Sanity: the files are real exports, not empty stubs.
    rows = (a / "fig.csv").read_text().splitlines()
    assert len(rows) == 1 + 4  # header + 2 series x 2 loads
    payload = json.loads((a / "fig.json").read_text())
    labels = [s["label"] for s in payload["series"]]
    assert labels[0].startswith("TMIN") and labels[1].startswith("DMIN")


def test_fast_and_reference_exports_byte_identical(tmp_path: Path) -> None:
    """REPRO_ENGINE=fast and =reference publish the exact same bytes."""
    fast, ref = tmp_path / "fast", tmp_path / "ref"
    fast.mkdir()
    ref.mkdir()
    _export_in_subprocess(fast, engine="fast")
    _export_in_subprocess(ref, engine="reference")
    for name in ("fig.csv", "fig.json"):
        assert (fast / name).read_bytes() == (ref / name).read_bytes(), (
            f"{name} differs between fast and reference engines"
        )


def test_batch_and_fast_exports_byte_identical(tmp_path: Path) -> None:
    """REPRO_ENGINE=batch publishes the exact bytes of the fast tier:
    the vectorized kernel is an execution detail, never a result
    change.  Skipped when numpy (the batch tier's optional extra) is
    absent."""
    from repro.wormhole.batch import numpy_available

    if not numpy_available():
        import pytest

        pytest.skip("batch tier requires numpy")
    batch, fast = tmp_path / "batch", tmp_path / "fast"
    batch.mkdir()
    fast.mkdir()
    _export_in_subprocess(batch, engine="batch")
    _export_in_subprocess(fast, engine="fast")
    for name in ("fig.csv", "fig.json"):
        assert (batch / name).read_bytes() == (fast / name).read_bytes(), (
            f"{name} differs between batch and fast engines"
        )


def _canonical(sweep_result) -> list[tuple[float, str]]:
    """NaN-stable canonical form of a sweep (JSON text per measurement)."""
    out = []
    for p in sweep_result.points:
        assert p.ok, p.error
        out.append(
            (p.offered_load, json.dumps(asdict(p.measurement), sort_keys=True))
        )
    return out


def test_worker_count_does_not_change_results() -> None:
    """parallel_sweep: 1 worker and 4 workers agree point for point."""
    cfg = replace(
        PRESETS["smoke"],
        warmup_packets=20,
        measure_packets=80,
        max_cycles=8000,
        loads=(0.2, 0.4, 0.6, 0.8),
    )
    net = NetworkConfig("bmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    solo = parallel_sweep(net, spec, cfg, max_workers=1)
    quad = parallel_sweep(net, spec, cfg, max_workers=4)
    assert _canonical(solo) == _canonical(quad)
