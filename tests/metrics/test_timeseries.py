"""Tests for the interval throughput sampler, including the hot-spot
transient it exists to expose."""

import pytest

from repro.metrics.timeseries import IntervalSample, ThroughputSampler
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.traffic.clusters import global_cluster
from repro.traffic.patterns import HotSpotPattern, UniformPattern
from repro.traffic.workload import MessageSizeModel, Workload
from repro.wormhole import WormholeEngine, build_network


def _driven_engine(pattern_factory, load, seed=0):
    env = Environment()
    eng = WormholeEngine(env, build_network("dmin", 4, 3), rng=RandomStream(seed))
    wl = Workload(
        global_cluster(),
        pattern_factory,
        offered_load=load,
        sizes=MessageSizeModel.scaled(),
    )
    wl.install(env, eng, RandomStream(seed + 1))
    return env, eng


def test_sampler_validation():
    env, eng = _driven_engine(UniformPattern, 0.3)
    with pytest.raises(ValueError):
        ThroughputSampler(eng, interval=0)
    sampler = ThroughputSampler(eng, interval=100)
    sampler.install(env)
    with pytest.raises(RuntimeError):
        sampler.install(env)


def test_sampler_interval_accounting():
    env, eng = _driven_engine(UniformPattern, 0.3)
    sampler = ThroughputSampler(eng, interval=250)
    sampler.install(env)
    eng.start()
    # One past the boundary: the stop event outprioritizes a timeout at
    # exactly t=2000, which would drop the final interval.
    env.run(until=2001)
    assert len(sampler.samples) == 8
    assert all(s.end - s.start == 250 for s in sampler.samples)
    # Interval deliveries sum to the engine's total.
    assert sum(s.delivered_flits for s in sampler.samples) == pytest.approx(
        eng.stats.delivered_flits, abs=eng.stats.delivered_flits * 0.01 + 200
    )


def test_sampler_throughput_fractions_track_load():
    env, eng = _driven_engine(UniformPattern, 0.3, seed=4)
    sampler = ThroughputSampler(eng, interval=500)
    sampler.install(env)
    eng.start()
    env.run(until=4000)
    fractions = sampler.throughput_fractions()
    # Skip the cold-start interval; the rest hover near the load.
    steady = fractions[2:]
    assert all(0.15 < f < 0.45 for f in steady), steady


def test_hotspot_transient_exceeds_steady_cap():
    """The measurement-window story of Fig. 19: early intervals deliver
    above the hot-spot cap; the backlog then climbs monotonically as
    tree saturation develops."""
    from repro.analysis.bounds import hot_spot_cap

    def hot(members):
        return HotSpotPattern(members, 0.10)

    env, eng = _driven_engine(hot, 0.6, seed=2)
    sampler = ThroughputSampler(eng, interval=500)
    sampler.install(env)
    eng.start()
    env.run(until=8000)
    fractions = sampler.throughput_fractions()
    cap = hot_spot_cap(64, 0.10)
    # Transient: at least one early interval beats the steady-state cap.
    assert max(fractions[:4]) > cap
    # Saturation: the backlog grows throughout.
    backlog = sampler.backlog_series()
    assert backlog[-1] > backlog[2] > 0
    # And late throughput has fallen back toward the cap.
    assert fractions[-1] < max(fractions[:4])


def test_interval_sample_throughput_property():
    s = IntervalSample(0, 100, delivered_flits=320, offered_flits=400,
                       in_flight=5, total_queued=7)
    assert s.throughput == 3.2


# -- edge cases -------------------------------------------------------------


def test_empty_series_queries_return_empty():
    """A sampler that never fired yields empty series, not errors."""
    env, eng = _driven_engine(UniformPattern, 0.3)
    sampler = ThroughputSampler(eng, interval=500)
    sampler.install(env)
    # No run: zero samples collected.
    assert sampler.samples == []
    assert sampler.throughput_fractions() == []
    assert sampler.backlog_series() == []


def test_single_sample_series():
    """One interval is a valid series; rates come from that window alone."""
    env, eng = _driven_engine(UniformPattern, 0.3, seed=9)
    sampler = ThroughputSampler(eng, interval=400)
    sampler.install(env)
    eng.start()
    env.run(until=401)
    assert len(sampler.samples) == 1
    (s,) = sampler.samples
    assert (s.start, s.end) == (0, 400)
    (f,) = sampler.throughput_fractions()
    assert f == s.delivered_flits / (64 * 400)
    assert sampler.backlog_series() == [s.total_queued]


def test_out_of_order_timestamps_rejected():
    """end <= start would yield negative/undefined rates; both raise."""
    with pytest.raises(ValueError, match="out of order"):
        IntervalSample(100, 50, delivered_flits=0, offered_flits=0,
                       in_flight=0, total_queued=0)
    with pytest.raises(ValueError, match="out of order"):
        IntervalSample(100, 100, delivered_flits=0, offered_flits=0,
                       in_flight=0, total_queued=0)
