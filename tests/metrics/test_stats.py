"""Tests for the numeric helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import batch_means, mean, percentile, stddev


def test_mean_basic():
    assert mean([1, 2, 3]) == 2
    with pytest.raises(ValueError):
        mean([])


def test_stddev_basic():
    assert stddev([5]) == 0.0
    assert math.isclose(stddev([2, 4, 4, 4, 5, 5, 7, 9]), 2.138, rel_tol=1e-3)
    with pytest.raises(ValueError):
        stddev([])


def test_percentile_interpolation():
    values = [10, 20, 30, 40]
    assert percentile(values, 0) == 10
    assert percentile(values, 100) == 40
    assert percentile(values, 50) == 25
    assert percentile([7], 95) == 7
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_batch_means_constant_data():
    m, half = batch_means([5.0] * 100, batches=10)
    assert m == 5.0
    assert half == 0.0


def test_batch_means_ci_contains_true_mean():
    import random

    r = random.Random(0)
    data = [r.gauss(50, 5) for _ in range(1000)]
    m, half = batch_means(data, batches=10)
    assert abs(m - 50) < half + 1.0


def test_batch_means_validation():
    with pytest.raises(ValueError):
        batch_means([1, 2, 3], batches=1)
    with pytest.raises(ValueError):
        batch_means([1, 2, 3], batches=5)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_mean_bounds_property(xs):
    m = mean(xs)
    assert min(xs) - 1e-9 <= m <= max(xs) + 1e-9


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
    st.floats(min_value=0, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_percentile_bounds_property(xs, q):
    p = percentile(xs, q)
    assert min(xs) - 1e-9 <= p <= max(xs) + 1e-9


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=20, max_size=200))
@settings(max_examples=50, deadline=None)
def test_batch_means_mean_close_to_plain_mean(xs):
    m, _ = batch_means(xs, batches=10)
    size = len(xs) // 10
    used = xs[: size * 10]
    assert math.isclose(m, mean(used), rel_tol=1e-9, abs_tol=1e-9)
