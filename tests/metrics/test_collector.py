"""Tests for measurement windows over a live engine."""

import math

import pytest

from repro.metrics.collector import (
    SUSTAINABILITY_QUEUE_LIMIT,
    Measurement,
    MeasurementWindow,
)
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network


def _engine(seed=0):
    env = Environment()
    net = build_network("tmin", 2, 3)
    return env, WormholeEngine(env, net, rng=RandomStream(seed))


def test_window_requires_begin():
    env, eng = _engine()
    window = MeasurementWindow(eng)
    with pytest.raises(RuntimeError):
        window.finish()


def test_window_zero_length_rejected():
    env, eng = _engine()
    window = MeasurementWindow(eng)
    window.begin()
    with pytest.raises(RuntimeError):
        window.finish()


def test_window_measures_single_packet():
    env, eng = _engine()
    window = MeasurementWindow(eng)
    window.begin()
    p = eng.offer(0, 5, 16)
    eng.drain()
    m = window.finish()
    assert m.delivered_packets == 1
    assert m.delivered_flits == 16
    assert m.avg_latency == p.latency
    assert m.avg_network_latency == p.network_latency
    assert m.p95_latency == p.latency
    assert math.isnan(m.latency_ci_half)  # too few packets for batches
    assert m.sustainable
    assert 0 < m.throughput <= 1.0
    assert m.throughput_percent == 100 * m.throughput


def test_window_excludes_warmup_traffic():
    env, eng = _engine()
    eng.offer(0, 5, 16)
    eng.drain()
    window = MeasurementWindow(eng)
    window.begin()
    eng.offer(1, 6, 16)
    eng.drain()
    m = window.finish()
    assert m.delivered_packets == 1  # the warmup packet is not counted


def test_unsustainable_flag():
    env, eng = _engine()
    window = MeasurementWindow(eng, queue_limit=3)
    window.begin()
    for _ in range(6):
        eng.offer(0, 5, 8)
    eng.drain()
    m = window.finish()
    assert not m.sustainable
    assert m.max_queue_len == 6


def test_default_queue_limit_is_the_papers():
    assert SUSTAINABILITY_QUEUE_LIMIT == 100


def test_latency_microseconds_conversion():
    """20 flits/us -> one cycle is 0.05 us."""
    env, eng = _engine()
    window = MeasurementWindow(eng)
    window.begin()
    eng.offer(0, 5, 16)
    eng.drain()
    m = window.finish()
    assert math.isclose(m.avg_latency_us, m.avg_latency / 20.0)


def test_ci_computed_with_enough_packets():
    env, eng = _engine(seed=2)
    window = MeasurementWindow(eng)
    window.begin()
    rs = RandomStream(3)
    for _ in range(30):
        s = rs.uniform_int(0, 7)
        d = rs.uniform_int(0, 6)
        if d >= s:
            d += 1
        eng.offer(s, d, rs.uniform_int(4, 20))
        eng.drain()
    m = window.finish()
    assert m.delivered_packets == 30
    assert not math.isnan(m.latency_ci_half)
    assert m.latency_ci_half >= 0


def test_measurement_str_rendering():
    m = Measurement(
        cycles=1000,
        delivered_packets=10,
        delivered_flits=100,
        offered_packets=12,
        offered_flits=120,
        avg_latency=55.5,
        avg_network_latency=50.0,
        p95_latency=80.0,
        latency_ci_half=2.0,
        throughput=0.5,
        max_queue_len=3,
        sustainable=True,
    )
    text = str(m)
    assert "50.0" in text and "UNSUSTAINABLE" not in text
    bad = Measurement(
        cycles=1000,
        delivered_packets=10,
        delivered_flits=100,
        offered_packets=12,
        offered_flits=120,
        avg_latency=55.5,
        avg_network_latency=50.0,
        p95_latency=80.0,
        latency_ci_half=2.0,
        throughput=0.5,
        max_queue_len=500,
        sustainable=False,
    )
    assert "UNSUSTAINABLE" in str(bad)
