"""Tests for LatencySummary and the shared Measurement column registry."""

import math

import pytest

from repro.metrics.stats import percentile
from repro.metrics.summary import (
    MEASUREMENT_COLUMNS,
    ColumnSpec,
    LatencySummary,
    measurement_row,
    report_columns,
)
from repro.obs.histogram import LatencyHistogram


def test_empty_summary_is_all_nan():
    s = LatencySummary.empty()
    assert s.count == 0
    for v in (s.mean, s.p50, s.p95, s.p99, s.max, s.ci_half):
        assert math.isnan(v)
    assert LatencySummary.from_values([]) == s
    d = s.to_dict()
    assert d["count"] == 0 and d["mean"] is None and d["p99"] is None


def test_from_values_matches_stats_helpers():
    values = [float(v) for v in range(1, 101)]
    s = LatencySummary.from_values(values)
    assert s.count == 100
    assert s.mean == pytest.approx(50.5)
    assert s.p50 == percentile(sorted(values), 50)
    assert s.p99 == percentile(sorted(values), 99)
    assert s.max == 100.0
    assert not math.isnan(s.ci_half)  # 100 >= 2*batches


def test_from_values_small_sample_has_no_ci():
    s = LatencySummary.from_values([5.0, 7.0, 9.0])
    assert s.count == 3
    assert math.isnan(s.ci_half)
    assert s.max == 9.0


def test_from_histogram_matches_from_values_within_bucket_error():
    values = [float(v) for v in range(1, 2001)]
    hist = LatencyHistogram(sub_bucket_bits=5)
    hist.record_many(values)
    hs = LatencySummary.from_histogram(hist)
    vs = LatencySummary.from_values(values)
    assert hs.count == vs.count
    assert hs.mean == pytest.approx(vs.mean)  # sum kept exactly
    assert hs.max == vs.max
    for a, b in ((hs.p50, vs.p50), (hs.p95, vs.p95), (hs.p99, vs.p99)):
        assert abs(a - b) / b < 2**-5 + 0.01
    assert LatencySummary.from_histogram(LatencyHistogram()).count == 0


def test_column_spec_validation_and_conversion():
    with pytest.raises(ValueError):
        ColumnSpec("x", "x", "complex")
    f = ColumnSpec("x", "x", "float")
    assert f.convert("1.5") == 1.5
    assert math.isnan(f.convert(""))
    i = ColumnSpec("x", "x", "int")
    assert i.convert("7") == 7 and i.convert("") == 0
    b = ColumnSpec("x", "x", "bool")
    assert b.convert("True") is True and b.convert("False") is False


def test_registry_names_are_unique_measurement_attrs():
    from repro.metrics.collector import Measurement

    names = [c.name for c in MEASUREMENT_COLUMNS]
    assert len(names) == len(set(names))
    fields = set(Measurement.__dataclass_fields__) | {
        n for n in dir(Measurement) if not n.startswith("_")
    }
    for c in MEASUREMENT_COLUMNS:
        assert c.attr in fields, c.attr


def test_measurement_row_and_report_columns():
    from repro.metrics.collector import Measurement

    m = Measurement(
        cycles=1000.0,
        delivered_packets=10,
        delivered_flits=100,
        offered_packets=10,
        offered_flits=100,
        avg_latency=50.0,
        avg_network_latency=40.0,
        p95_latency=80.0,
        latency_ci_half=float("nan"),
        throughput=0.1,
        max_queue_len=2,
        sustainable=True,
        p50_latency=45.0,
        p99_latency=90.0,
        max_latency=95.0,
    )
    row = measurement_row(m)
    assert set(row) == {c.name for c in MEASUREMENT_COLUMNS}
    assert row["p99_latency"] == 90.0
    clean = report_columns(degraded=False)
    assert all(not c.fault_only for c in clean)
    degraded = report_columns(degraded=True)
    assert {c.name for c in degraded} - {c.name for c in clean} == {
        "failed_packets",
        "retried_packets",
        "dropped_packets",
        "shed_packets",
        "throttled_packets",
        "stall_aborted_packets",
    }
    # Cells render with the declared width; nan shows as '-'.
    p99_col = next(c for c in clean if c.name == "p99_latency")
    assert p99_col.cell(m).strip() == "90"
    ci_col = next(c for c in MEASUREMENT_COLUMNS if c.name == "latency_ci_half")
    assert ci_col.cell(m).strip() == "-"
