"""Tests for the HDR-style latency histogram."""

import math
import random

import pytest

from repro.obs.histogram import LatencyHistogram


def test_empty_histogram_queries():
    h = LatencyHistogram()
    assert h.count == 0
    assert math.isnan(h.mean)
    assert math.isnan(h.percentile(50))
    assert h.render() == "(empty histogram)"
    d = h.to_dict()
    assert d["count"] == 0 and d["p99"] is None and d["buckets"] == []


def test_validation():
    with pytest.raises(ValueError):
        LatencyHistogram(sub_bucket_bits=13)
    h = LatencyHistogram()
    with pytest.raises(ValueError):
        h.record(-1.0)
    with pytest.raises(ValueError):
        h.record(5.0, count=0)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_small_integers_are_exact():
    """Values below 2**sub_bucket_bits land in unit buckets: no error."""
    h = LatencyHistogram(sub_bucket_bits=5)
    h.record_many([3, 3, 7, 12, 31])
    assert h.count == 5
    # Unit buckets report midpoints (x.5); p100 clamps to the exact max.
    assert h.percentile(0) == 3.5
    assert h.percentile(100) == 31
    assert h.mean == pytest.approx((3 + 3 + 7 + 12 + 31) / 5)


def test_percentile_relative_error_bound():
    """Quantiles of log-spaced values stay within 2**-bits relative error."""
    bits = 5
    h = LatencyHistogram(sub_bucket_bits=bits)
    rng = random.Random(7)
    values = sorted(rng.uniform(1, 50_000) for _ in range(5_000))
    h.record_many(values)
    for q in (50, 90, 95, 99):
        exact = values[min(len(values) - 1, int(q / 100 * len(values)))]
        approx = h.percentile(q)
        assert abs(approx - exact) / exact < 2.0 ** -bits + 0.01, (q, exact, approx)


def test_mean_is_exact_not_bucketed():
    h = LatencyHistogram(sub_bucket_bits=0)  # coarsest buckets
    values = [17.25, 1000.5, 123456.0]
    h.record_many(values)
    assert h.mean == pytest.approx(sum(values) / 3, rel=1e-12)


def test_merge_equals_recording_everything():
    a, b, both = (LatencyHistogram(3) for _ in range(3))
    rng = random.Random(1)
    va = [rng.expovariate(1 / 300) for _ in range(400)]
    vb = [rng.expovariate(1 / 800) for _ in range(300)]
    a.record_many(va)
    b.record_many(vb)
    both.record_many(va + vb)
    a.merge(b)
    assert a.count == both.count
    assert a.total == pytest.approx(both.total)
    assert a.min_value == both.min_value and a.max_value == both.max_value
    for q in (10, 50, 95, 99.9):
        assert a.percentile(q) == both.percentile(q)
    assert list(a.buckets()) == list(both.buckets())


def test_merge_mismatched_precision_raises():
    with pytest.raises(ValueError, match="sub_bucket_bits"):
        LatencyHistogram(4).merge(LatencyHistogram(5))


def test_record_with_count_weights():
    h = LatencyHistogram()
    h.record(10.0, count=99)
    h.record(1000.0)
    assert h.count == 100
    assert h.percentile(50) == 10.5  # midpoint of the unit bucket [10, 11)
    assert h.percentile(100) == 1000.0  # clamped to the observed max


def test_bucket_bounds_tile_the_line():
    """Occupied buckets report consistent (lower, width) geometry."""
    h = LatencyHistogram(sub_bucket_bits=2)
    h.record_many([0, 1, 3, 4, 5, 9, 17, 33, 1025, 70000])
    for lo, width, count in h.buckets():
        assert width >= 1.0 and count >= 1
    total = sum(n for _, _, n in h.buckets())
    assert total == h.count


@pytest.mark.parametrize("bits", [0, 2, 5, 12])
def test_index_lower_bound_round_trip(bits):
    """Every value lands inside the bucket it reports (regression: an
    off-by-one in the index exponent once shifted values >= 2**bits into
    the *next* range's buckets, so lower bounds exceeded the values)."""
    h = LatencyHistogram(sub_bucket_bits=bits)
    values = (
        list(range(0, 3000))
        + [2**k for k in range(40)]
        + [2**k - 1 for k in range(2, 40)]
    )
    prev = -1
    for v in sorted(values):
        i = h._index(v)
        assert i >= prev, f"bucket index not monotone at {v}"
        prev = i
        lo, w = h._lower_bound(i), h._bucket_width(i)
        assert lo <= v < lo + w, (bits, v, i, lo, w)


def test_render_mentions_percentiles():
    h = LatencyHistogram()
    h.record_many(range(1, 200))
    text = h.render()
    assert "p50=" in text and "p99=" in text and "n=199" in text
