"""Tests for ObsSession (lifecycle), KernelProfiler, and ProgressMeter."""

import io

import pytest

from repro.obs.profiler import KernelProfiler
from repro.obs.progress import ProgressMeter
from repro.obs.session import ObsSession
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network


def _engine(kind="tmin", seed=0):
    env = Environment()
    eng = WormholeEngine(env, build_network(kind, 2, 3), rng=RandomStream(seed))
    return env, eng


# ---------------------------------------------------------------- ObsSession


def test_session_records_latency_histograms():
    env, eng = _engine()
    with ObsSession(eng) as obs:
        eng.offer(1, 6, 8)
        eng.offer(0, 7, 8)
        eng.drain()
    assert obs.latency.count == 2
    assert obs.network_latency.count == 2
    # Queueing included in one, excluded in the other.
    assert obs.latency.mean >= obs.network_latency.mean


def test_session_detaches_restoring_fast_path():
    env, eng = _engine()
    obs = ObsSession(eng)
    assert eng.bus.enabled and eng.bus.hot
    obs.close()
    assert not eng.bus.enabled and not eng.bus.hot
    obs.close()  # idempotent
    obs.detach()


def test_session_write_trace_requires_trace_flag():
    env, eng = _engine()
    obs = ObsSession(eng)
    with pytest.raises(RuntimeError, match="trace=True"):
        obs.write_trace(io.StringIO())


def test_session_trace_mode_writes(tmp_path):
    env, eng = _engine()
    obs = ObsSession(eng, trace=True)
    eng.offer(1, 6, 8)
    eng.drain()
    obs.close()
    count = obs.write_trace(str(tmp_path / "t.json"))
    assert count > 0


def test_session_to_dict_and_report():
    env, eng = _engine()
    with ObsSession(eng) as obs:
        eng.offer(0, 7, 10)
        eng.offer(1, 7, 10)
        eng.drain()
    d = obs.to_dict()
    assert {"elapsed_cycles", "latency", "stages", "channels", "kernel"} <= set(d)
    assert d["latency"]["count"] == 2
    text = obs.report()
    for section in ("contention over", "heatmap", "latency", "kernel profile"):
        assert section in text


def test_session_windows_align():
    """Busy-interval sums == flits in the session window (the identity
    run_traced_point relies on for the trace/utilization criterion)."""
    env, eng = _engine()
    with ObsSession(eng) as obs:
        eng.offer(1, 6, 32)
        eng.drain()
    for led in obs.contention.ledgers.values():
        assert led.busy_cycles() == led.flits


# ------------------------------------------------------------ KernelProfiler


def test_profiler_counts_kernel_activity():
    env, eng = _engine()
    prof = KernelProfiler().install(eng)
    eng.offer(1, 6, 8)
    eng.drain()
    prof.finish()
    assert prof.events_fired > 0
    assert prof.events_scheduled > 0
    assert prof.cycles_run > 0
    assert prof.sim_cycles_elapsed > 0
    assert prof.wall_seconds > 0
    assert prof.max_heap_depth >= 1
    d = prof.to_dict()
    assert d["events_fired"] == prof.events_fired
    assert "wall time" in prof.render()


def test_profiler_finish_is_idempotent():
    env, eng = _engine()
    prof = KernelProfiler().install(eng)
    eng.offer(1, 6, 8)
    eng.drain()
    prof.finish()
    frozen = prof.wall_seconds
    eng.offer(2, 5, 8)
    eng.drain()
    prof.finish()
    assert prof.wall_seconds == frozen


def test_environment_kernel_counters():
    env = Environment()
    assert env.events_scheduled == 0 and env.events_fired == 0
    env.schedule(env.event(), delay=1.0)
    env.schedule(env.event(), delay=2.0)
    assert env.events_scheduled == 2
    assert env.max_heap_depth == 2
    env.run(until=3)
    assert env.events_fired >= 2


# ------------------------------------------------------------- ProgressMeter


def test_progress_meter_throttles_and_finishes():
    out = io.StringIO()
    meter = ProgressMeter(interval=3600.0, stream=out, prefix="sweep")
    meter(1, 10, "a")   # first call prints (last print at -inf)
    meter(2, 10, "b")   # throttled
    meter(3, 10, "c")   # throttled
    meter(10, 10, "z")  # final always prints
    lines = out.getvalue().strip().splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("[sweep] 1/10")
    assert "100%" in lines[1] and "z" in lines[1]
    assert meter.lines_printed == 2


def test_progress_meter_interval_zero_prints_everything():
    out = io.StringIO()
    meter = ProgressMeter(interval=0.0, stream=out)
    for i in range(4):
        meter(i, 4)
    assert len(out.getvalue().strip().splitlines()) == 4


def test_progress_meter_unknown_total():
    out = io.StringIO()
    meter = ProgressMeter(interval=0.0, stream=out)
    meter(5, 0, "open-ended")
    assert "5 done" in out.getvalue()


def test_progress_meter_validation():
    with pytest.raises(ValueError):
        ProgressMeter(interval=-1)
