"""Tests for the contention-attribution sink."""

import pytest

from repro.obs.contention import ContentionSink, stage_of
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network


def _engine(kind="tmin", seed=0):
    env = Environment()
    eng = WormholeEngine(env, build_network(kind, 2, 3), rng=RandomStream(seed))
    return env, eng


def _attached(kind="tmin", seed=0, bucket=64.0):
    env, eng = _engine(kind, seed)
    sink = ContentionSink(bucket=bucket).install(eng)
    eng.bus.attach(sink)
    return env, eng, sink


def test_stage_of():
    assert stage_of("b1[12].0") == "b1"
    assert stage_of("inj[3]") == "inj"
    assert stage_of("weird") == "weird"


def test_bucket_validation():
    with pytest.raises(ValueError):
        ContentionSink(bucket=0)


def test_busy_intervals_sum_to_flit_count():
    """The acceptance identity: coalesced busy time == flits moved,
    per channel, exactly."""
    env, eng, sink = _attached()
    for s, d in ((1, 6), (0, 7), (2, 5)):
        eng.offer(s, d, 12)
    eng.drain()
    sink.finish()
    moved = 0
    for led in sink.ledgers.values():
        assert led.busy_cycles() == led.flits
        moved += led.flits
    # Each of the 3 worms crosses 4 channels (n+1 hops), 12 flits each.
    assert moved == 3 * 4 * 12


def test_blocked_ledger_totals_conserved():
    """1/n attribution: per-channel blocked time sums to the total."""
    env, eng, sink = _attached()
    eng.offer(0, 7, 40)
    eng.offer(1, 7, 40)  # same destination: one must wait
    eng.drain()
    sink.finish()
    per_channel = sum(led.blocked_time for led in sink.ledgers.values())
    assert per_channel == pytest.approx(sink.total_blocked_time)
    assert sink.total_blocked_time > 0


def test_acquisitions_match_releases_when_drained():
    env, eng, sink = _attached("vmin", seed=3)
    for s, d in ((0, 7), (1, 7), (2, 4)):
        eng.offer(s, d, 9)
    eng.drain()
    for led in sink.ledgers.values():
        assert led.acquisitions == led.releases


def test_utilization_and_stage_table():
    env, eng, sink = _attached()
    eng.offer(1, 6, 16)
    eng.drain()
    sink.finish()
    elapsed = sink.elapsed
    assert elapsed > 0
    table = {row["stage"]: row for row in sink.stage_table()}
    assert set(table) == {"inj", "b1", "b2", "dlv"}
    for row in table.values():
        assert row["flits"] == 16
        assert 0 < row["max_utilization"] <= 1.0
        # mean over the stage's 8 channels, only one of which worked
        assert row["mean_utilization"] == pytest.approx(16 / (8 * elapsed))


def test_hot_channels_sorting_and_validation():
    env, eng, sink = _attached()
    eng.offer(0, 7, 30)
    eng.offer(1, 7, 30)
    eng.drain()
    hot = sink.hot_channels(top=3)
    blocked = [led.blocked_time for led in hot]
    assert blocked == sorted(blocked, reverse=True)
    by_flits = sink.hot_channels(top=3, by="flits")
    assert by_flits[0].flits >= by_flits[-1].flits
    with pytest.raises(ValueError):
        sink.hot_channels(by="vibes")


def test_timeline_buckets_account_for_all_flits():
    env, eng, sink = _attached(bucket=16.0)
    eng.offer(1, 6, 40)
    eng.drain()
    for led in sink.ledgers.values():
        assert sum(led.timeline.values()) == led.flits
        if led.flits:
            assert len(led.timeline) >= 2  # 40 flits span > one 16-cycle bucket


def test_render_and_heatmap_are_strings():
    env, eng, sink = _attached()
    eng.offer(0, 7, 20)
    eng.offer(3, 7, 20)
    eng.drain()
    sink.finish()
    text = sink.render()
    assert "contention over" in text and "stage" in text
    heat = sink.stage_heatmap()
    assert "heatmap" in heat and "|" in heat
    rows = sink.channel_rows()
    assert len(rows) == len(sink.ledgers)
    assert {"channel", "stage", "flits", "utilization"} <= set(rows[0])


def test_window_alignment_excludes_pre_attach_traffic():
    """A sink attached later only sees the traffic after its install."""
    env, eng = _engine()
    eng.offer(1, 6, 10)
    eng.drain()
    sink = ContentionSink().install(eng)
    eng.bus.attach(sink)
    start = env.now
    eng.offer(2, 5, 10)
    eng.drain()
    sink.finish()
    assert sink.start_time == start
    assert sum(led.flits for led in sink.ledgers.values()) == 4 * 10
