"""Perfetto exporter tests, including the JSON round-trip and the
busy-interval == utilization identity the ISSUE acceptance names."""

import io
import json

import pytest

from repro.obs.contention import ContentionSink
from repro.obs.perfetto import CYCLE_MICROSECONDS, TRACE_PID, PerfettoSink
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network


def _traced_run(kind="tmin", seed=0, offers=((1, 6, 8), (0, 7, 12))):
    env = Environment()
    eng = WormholeEngine(env, build_network(kind, 2, 3), rng=RandomStream(seed))
    sink = PerfettoSink().install(eng)
    contention = ContentionSink().install(eng)
    eng.bus.attach(sink)
    eng.bus.attach(contention)
    for s, d, length in offers:
        eng.offer(s, d, length)
    eng.drain()
    sink.finish()
    contention.finish()
    return eng, sink, contention


def test_round_trip_reparses():
    """write_trace emits JSON that json.loads round-trips losslessly."""
    eng, sink, _ = _traced_run()
    buf = io.StringIO()
    count = sink.write_trace(buf)
    doc = json.loads(buf.getvalue())
    assert len(doc["traceEvents"]) == count
    assert doc["traceEvents"] == sink.trace_events()
    assert doc["otherData"]["cycle_us"] == CYCLE_MICROSECONDS
    assert doc["otherData"]["dropped_events"] == 0
    assert "tmin" in doc["otherData"]["network"]


def test_write_trace_to_path(tmp_path):
    eng, sink, _ = _traced_run()
    path = tmp_path / "run.json"
    count = sink.write_trace(str(path))
    assert count == len(json.loads(path.read_text())["traceEvents"])


def test_ts_monotone_per_track():
    eng, sink, _ = _traced_run(offers=((0, 7, 20), (1, 7, 20), (2, 5, 9)))
    last: dict[int, float] = {}
    for ev in sink.trace_events():
        if ev["ph"] == "M":
            continue
        assert ev["pid"] == TRACE_PID
        tid = ev["tid"]
        assert ev["ts"] >= last.get(tid, -1.0)
        last[tid] = ev["ts"]


def test_metadata_names_every_lane_track():
    eng, sink, _ = _traced_run("vmin")
    names = {
        ev["tid"]: ev["args"]["name"]
        for ev in sink.trace_events()
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    lanes = sum(ch.num_lanes for ch in eng.network.topo_channels)
    assert len(names) == lanes
    # Multi-lane channels get .<lane> suffixes; the VMIN shares wires.
    assert any(".0" in n or ".1" in n for n in names.values())


def test_xmit_slices_equal_contention_busy_intervals():
    """The exporter's transmit slices are exactly the contention sink's
    coalesced busy intervals, so slice durations sum to flit counts --
    utilization in the trace matches the reported utilization by
    construction (the <=1% acceptance criterion, satisfied exactly)."""
    eng, sink, contention = _traced_run(
        "tmin", seed=2, offers=((0, 7, 25), (1, 7, 25), (3, 4, 10))
    )
    # Group xmit slices per physical channel label via the tid map.
    label_of_tid = {tid: key[0] for key, tid in sink._tids.items()}
    flits_by_label: dict[str, float] = {}
    for ev in sink.trace_events():
        if ev["ph"] == "X" and ev["cat"] == "xmit":
            label = label_of_tid[ev["tid"]]
            flits_by_label[label] = (
                flits_by_label.get(label, 0.0) + ev["dur"] / CYCLE_MICROSECONDS
            )
    for label, led in contention.ledgers.items():
        got = round(flits_by_label.get(label, 0.0))
        assert got == led.flits, (label, got, led.flits)
        assert led.busy_cycles() == led.flits


def test_occupancy_slices_cover_worm_lifetimes():
    eng, sink, _ = _traced_run(offers=((1, 6, 8),))
    occ = [
        ev for ev in sink.trace_events() if ev["ph"] == "X" and ev["cat"] == "occupancy"
    ]
    # One spell per channel of the 4-hop path.
    assert len(occ) == 4
    assert all(ev["name"].startswith("pkt#0 1->6") for ev in occ)
    assert all(ev["dur"] > 0 for ev in occ)


def test_flow_arrows_start_step_finish():
    eng, sink, _ = _traced_run(offers=((1, 6, 8),))
    worm = [ev for ev in sink.trace_events() if ev.get("cat") == "worm"]
    phases = [ev["ph"] for ev in worm]
    assert phases[0] == "s"
    assert phases[-1] == "f"
    assert phases.count("s") == 1
    assert phases.count("t") == 3  # remaining acquisitions of the 4-hop path
    assert all(ev["id"] == 0 for ev in worm)


def test_max_events_cap_counts_drops():
    env = Environment()
    eng = WormholeEngine(env, build_network("tmin", 2, 3), rng=RandomStream(0))
    sink = PerfettoSink(max_events=10).install(eng)
    eng.bus.attach(sink)
    for s, d in ((0, 7), (1, 6), (2, 5)):
        eng.offer(s, d, 20)
    eng.drain()
    sink.finish()
    assert len(sink._events) == 10
    assert sink.dropped > 0
    assert sink.to_dict()["otherData"]["dropped_events"] == sink.dropped


def test_max_events_validation():
    with pytest.raises(ValueError):
        PerfettoSink(max_events=0)


def test_tools_validator_accepts_sink_output(tmp_path):
    """tools/validate_trace.py (the CI gate) passes a real trace."""
    import importlib.util
    from pathlib import Path

    tool = (
        Path(__file__).resolve().parent.parent.parent
        / "tools"
        / "validate_trace.py"
    )
    spec = importlib.util.spec_from_file_location("validate_trace", tool)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)

    eng, sink, _ = _traced_run(offers=((0, 7, 20), (1, 6, 20), (2, 5, 9)))
    path = tmp_path / "run.json"
    sink.write_trace(str(path))
    counts = mod.validate_file(path)
    assert counts["X"] > 0 and counts["s"] == 3 and counts["f"] == 3
    assert counts["open_flows"] == 0  # drained network: all flows closed

    with pytest.raises(mod.TraceError, match="traceEvents"):
        mod.validate_doc({"nope": 1})
