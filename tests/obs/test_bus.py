"""Tests for the telemetry event bus (subscription tiers, fan-out)."""

import pytest

from repro.obs.bus import HOT_KINDS, KIND_METHODS, KINDS, EventBus


class ColdSink:
    """Subscribes only to packet-lifecycle (cold) kinds."""

    def __init__(self):
        self.seen = []

    def on_offer(self, t, p):
        self.seen.append(("offer", t, p))

    def on_deliver(self, t, p):
        self.seen.append(("deliver", t, p))


class HotSink(ColdSink):
    def on_transmit(self, t, ch, lane):
        self.seen.append(("transmit", t, ch, lane))


def test_fresh_bus_is_idle():
    bus = EventBus()
    assert not bus.enabled and not bus.hot
    assert bus.subscriber_count() == 0
    # Publishing with no subscribers is legal (the guards make it rare).
    bus.publish_offer(0.0, object())
    assert bus.published == 1


def test_kind_tables_are_consistent():
    assert set(KINDS) == set(KIND_METHODS)
    assert HOT_KINDS < set(KINDS)
    # The block kind dispatches to on_blocked (Tracer compatibility).
    assert KIND_METHODS["block"] == "on_blocked"


def test_cold_sink_enables_but_does_not_heat():
    bus = EventBus()
    kinds = bus.attach(ColdSink())
    assert sorted(kinds) == ["deliver", "offer"]
    assert bus.enabled and not bus.hot


def test_hot_sink_sets_both_tiers():
    bus = EventBus()
    bus.attach(HotSink())
    assert bus.enabled and bus.hot


def test_publish_fans_out_in_attach_order():
    bus = EventBus()
    a, b = ColdSink(), ColdSink()
    bus.attach(a)
    bus.attach(b)
    bus.publish_offer(3.0, "pkt")
    assert a.seen == [("offer", 3.0, "pkt")]
    assert b.seen == [("offer", 3.0, "pkt")]
    assert bus.published == 1  # per publish call, not per subscriber


def test_detach_restores_fast_path():
    bus = EventBus()
    sink = HotSink()
    bus.attach(sink)
    bus.detach(sink)
    assert not bus.enabled and not bus.hot
    bus.detach(sink)  # idempotent
    bus.publish_deliver(1.0, "pkt")
    assert sink.seen == []


def test_double_attach_raises():
    bus = EventBus()
    sink = ColdSink()
    bus.attach(sink)
    with pytest.raises(ValueError, match="already attached"):
        bus.attach(sink)


def test_attach_without_sink_methods_raises():
    bus = EventBus()
    with pytest.raises(ValueError, match="defines none"):
        bus.attach(object())


def test_subscribe_unknown_kind_raises():
    bus = EventBus()
    with pytest.raises(KeyError, match="unknown event kind"):
        bus.subscribe("teleport", lambda *a: None)


def test_subscribe_unsubscribe_individual_callable():
    bus = EventBus()
    hits = []
    fn = lambda t, ch, lane: hits.append(t)  # noqa: E731
    bus.subscribe("transmit", fn)
    assert bus.hot
    bus.publish_transmit(7.0, None, None)
    bus.unsubscribe("transmit", fn)
    assert not bus.enabled
    with pytest.raises(ValueError):
        bus.unsubscribe("transmit", fn)
    assert hits == [7.0]


def test_subscriber_count_by_kind():
    bus = EventBus()
    bus.attach(ColdSink())
    assert bus.subscriber_count("offer") == 1
    assert bus.subscriber_count("transmit") == 0
    assert bus.subscriber_count() == 2


def test_repr_shows_state():
    bus = EventBus()
    assert "idle" in repr(bus)
    bus.attach(ColdSink())
    assert "enabled" in repr(bus)
    bus.attach(HotSink())
    assert "hot" in repr(bus)
