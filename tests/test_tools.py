"""Tests for the repository tooling (report assembler)."""

import sys
from pathlib import Path

TOOLS = Path(__file__).parent.parent / "tools"


def test_make_report_assembles_results(tmp_path, monkeypatch, capsys):
    # Point the tool at a fabricated results directory.
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "make_report", TOOLS / "make_report.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)

    results = tmp_path / "results"
    results.mkdir()
    (results / "fig18.txt").write_text("fig18 data rows\n")
    (results / "custom_extra.txt").write_text("extra study\n")
    monkeypatch.setattr(mod, "RESULTS", results)

    out = tmp_path / "REPORT.md"
    monkeypatch.setattr(sys, "argv", ["make_report.py", str(out)])
    assert mod.main() == 0
    text = out.read_text()
    assert "Figure 18" in text
    assert "fig18 data rows" in text
    # Unknown result files are appended under their stem.
    assert "custom_extra" in text and "extra study" in text


def test_make_report_handles_missing_results(tmp_path, monkeypatch):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "make_report", TOOLS / "make_report.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    monkeypatch.setattr(mod, "RESULTS", tmp_path / "nope")
    monkeypatch.setattr(sys, "argv", ["make_report.py", str(tmp_path / "r.md")])
    assert mod.main() == 1
