"""Tests for the repository tooling (report assembler, lint driver)."""

import importlib.util
import json
import sys
from pathlib import Path

TOOLS = Path(__file__).parent.parent / "tools"


def load_tool(name: str):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_make_report_assembles_results(tmp_path, monkeypatch, capsys):
    # Point the tool at a fabricated results directory.
    mod = load_tool("make_report")

    results = tmp_path / "results"
    results.mkdir()
    (results / "fig18.txt").write_text("fig18 data rows\n")
    (results / "custom_extra.txt").write_text("extra study\n")
    monkeypatch.setattr(mod, "RESULTS", results)

    out = tmp_path / "REPORT.md"
    monkeypatch.setattr(sys, "argv", ["make_report.py", str(out)])
    assert mod.main() == 0
    text = out.read_text()
    assert "Figure 18" in text
    assert "fig18 data rows" in text
    # Unknown result files are appended under their stem.
    assert "custom_extra" in text and "extra study" in text


def test_make_report_handles_missing_results(tmp_path, monkeypatch):
    mod = load_tool("make_report")
    monkeypatch.setattr(mod, "RESULTS", tmp_path / "nope")
    monkeypatch.setattr(sys, "argv", ["make_report.py", str(tmp_path / "r.md")])
    assert mod.main() == 1


# ------------------------------------------------------- lint_sim --json


DIRTY = "import random\nx = random.random()\n"


def test_lint_sim_json_clean_is_empty_array(tmp_path, capsys):
    mod = load_tool("lint_sim")
    clean = tmp_path / "clean.py"
    clean.write_text("def f(xs=None):\n    return xs or []\n")
    assert mod.main(["--json", str(clean)]) == 0
    assert json.loads(capsys.readouterr().out) == []


def test_lint_sim_json_records(tmp_path, capsys):
    mod = load_tool("lint_sim")
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    assert mod.main(["--json", str(dirty)]) == 1
    records = json.loads(capsys.readouterr().out)
    assert records, "violations expected"
    rec = records[0]
    assert set(rec) == {"file", "line", "col", "rule", "message"}
    assert rec["rule"] == "RPV001"
    assert rec["file"].endswith("dirty.py")
    assert isinstance(rec["line"], int) and isinstance(rec["col"], int)


def test_lint_sim_human_mode_unchanged(tmp_path, capsys):
    mod = load_tool("lint_sim")
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    assert mod.main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "RPV001" in out and not out.lstrip().startswith("[")


def test_lint_sim_missing_path_exits_2(tmp_path, capsys):
    mod = load_tool("lint_sim")
    assert mod.main(["--json", str(tmp_path / "nope.py")]) == 2
