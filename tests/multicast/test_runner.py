"""Tests for multicast execution on the wormhole engine."""

import pytest

from repro.multicast.runner import run_multicast
from repro.multicast.schedule import (
    UnicastStep,
    binomial_schedule,
    sequential_schedule,
)
from repro.wormhole import build_network


def test_single_destination_multicast():
    net = build_network("bmin", 2, 3)
    sched = sequential_schedule(0, [5])
    result = run_multicast(net, 0, [5], sched, message_length=16)
    assert result.phases == 1
    assert result.unicasts == 1
    assert result.total_cycles > 16


def test_invalid_schedule_rejected():
    net = build_network("bmin", 2, 3)
    with pytest.raises(ValueError):
        run_multicast(net, 0, [1, 2], [[UnicastStep(1, 2)]])


def test_binomial_beats_sequential_broadcast():
    """The log-phase schedule finishes a broadcast far sooner than the
    source trickling out unicasts (the point of software multicast)."""
    dests = list(range(1, 8))
    seq = run_multicast(
        build_network("bmin", 2, 3),
        0,
        dests,
        sequential_schedule(0, dests),
        message_length=64,
    )
    bin_ = run_multicast(
        build_network("bmin", 2, 3),
        0,
        dests,
        binomial_schedule(0, dests),
        message_length=64,
    )
    assert bin_.phases == 3 and seq.phases == 7
    assert bin_.total_cycles < seq.total_cycles
    # With 64-flit messages the 7 serial sends cost ~7L; the binomial
    # tree costs ~3L: expect at least a 1.8x win.
    assert seq.total_cycles / bin_.total_cycles > 1.8


def test_phase_cycles_reported():
    dests = [1, 2, 3]
    result = run_multicast(
        build_network("bmin", 2, 3),
        0,
        dests,
        binomial_schedule(0, dests),
        message_length=32,
    )
    assert len(result.phase_cycles) == result.phases
    assert sum(result.phase_cycles) == result.total_cycles
    assert "phases" in str(result)


def test_multicast_runs_on_all_network_kinds():
    dests = [2, 5, 7]
    sched = binomial_schedule(0, dests)
    for kind in ("tmin", "dmin", "vmin", "bmin"):
        result = run_multicast(
            build_network(kind, 2, 3), 0, dests, sched, message_length=16
        )
        assert result.unicasts == 3


def test_broadcast_64_nodes_on_bmin():
    dests = list(range(1, 64))
    result = run_multicast(
        build_network("bmin", 4, 3),
        0,
        dests,
        binomial_schedule(0, dests),
        message_length=32,
        seed=7,
    )
    assert result.phases == 6
    assert result.unicasts == 63
    # Conflict-free phases of 32-flit messages: each phase takes about
    # one message time (32 + path + sync); the whole broadcast should
    # be far below the 63 serial message times.
    assert result.total_cycles < 63 * 32
