"""Tests for multicast schedule planners and conflict analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multicast.schedule import (
    UnicastStep,
    binomial_schedule,
    phase_conflicts,
    sequential_schedule,
    validate_schedule,
)
from repro.topology.bmin import BidirectionalMIN


def test_sequential_schedule_shape():
    sched = sequential_schedule(0, [3, 5, 6])
    assert len(sched) == 3
    assert all(len(phase) == 1 for phase in sched)
    assert all(step.sender == 0 for phase in sched for step in phase)
    validate_schedule(0, [3, 5, 6], sched)


def test_binomial_schedule_is_logarithmic():
    for m in (1, 2, 3, 7, 15, 31, 63):
        dests = list(range(1, m + 1))
        sched = binomial_schedule(0, dests)
        assert len(sched) == math.ceil(math.log2(m + 1))
        validate_schedule(0, dests, sched)


def test_binomial_doubles_holders_each_phase():
    dests = list(range(1, 16))
    sched = binomial_schedule(0, dests)
    holders = 1
    for phase in sched:
        assert len(phase) == holders  # every holder forwards
        holders += len(phase)


def test_request_validation():
    with pytest.raises(ValueError):
        sequential_schedule(0, [])
    with pytest.raises(ValueError):
        binomial_schedule(0, [0, 1])  # source in destinations
    # duplicates are deduped, not an error
    sched = binomial_schedule(0, [1, 1, 2])
    validate_schedule(0, [1, 2], sched)


def test_validate_schedule_rejects_bad_plans():
    with pytest.raises(ValueError, match="does not hold"):
        validate_schedule(0, [1, 2], [[UnicastStep(1, 2)]])
    with pytest.raises(ValueError, match="sends twice"):
        validate_schedule(
            0, [1, 2], [[UnicastStep(0, 1), UnicastStep(0, 2)]]
        )
    with pytest.raises(ValueError, match="not a pending"):
        validate_schedule(0, [1], [[UnicastStep(0, 1)], [UnicastStep(0, 1)]])
    with pytest.raises(ValueError, match="never reached"):
        validate_schedule(0, [1, 2], [[UnicastStep(0, 1)]])


def test_broadcast_on_paper_geometry():
    """Broadcast to all 63 other nodes of the 64-node system: 6 phases."""
    sched = binomial_schedule(0, list(range(1, 64)))
    assert len(sched) == 6
    validate_schedule(0, list(range(1, 64)), sched)


@given(
    st.integers(min_value=0, max_value=31),
    st.sets(st.integers(min_value=0, max_value=31), min_size=1, max_size=31),
)
@settings(max_examples=80, deadline=None)
def test_binomial_schedule_valid_property(source, dest_set):
    dests = sorted(dest_set - {source})
    if not dests:
        return
    sched = binomial_schedule(source, dests)
    validate_schedule(source, dests, sched)
    assert len(sched) == math.ceil(math.log2(len(dests) + 1))


def test_phase_conflicts_empty_and_single():
    bmin = BidirectionalMIN(2, 3)
    assert phase_conflicts(bmin, []) == 0
    assert phase_conflicts(bmin, [UnicastStep(0, 7)]) == 0


def test_binomial_phases_are_nearly_conflict_free_on_bmin():
    """Block-aligned binomial steps use disjoint subtrees: the greedy
    analysis finds conflict-free path assignments for a broadcast."""
    bmin = BidirectionalMIN(2, 3)
    sched = binomial_schedule(0, list(range(1, 8)))
    for phase in sched:
        assert phase_conflicts(bmin, phase) == 0


def test_conflicting_phase_detected():
    """Two steps forced onto the same delivery line must conflict."""
    bmin = BidirectionalMIN(2, 3)
    # Same receiver is invalid in a schedule, but the analysis is
    # standalone: both steps need the identical boundary-0 line.
    conflicts = phase_conflicts(
        bmin, [UnicastStep(0, 7), UnicastStep(1, 7)]
    )
    assert conflicts == 1


def test_broadcast_phases_conflict_free_64():
    bmin = BidirectionalMIN(4, 3)
    sched = binomial_schedule(0, list(range(1, 64)))
    for phase in sched:
        assert phase_conflicts(bmin, phase) == 0


@given(
    st.sets(st.integers(min_value=1, max_value=7), min_size=1, max_size=7),
)
@settings(max_examples=40, deadline=None)
def test_binomial_phases_conflict_free_property(dest_set):
    """Random destination sets from node 0 on the 8-node BMIN: every
    binomial phase admits a conflict-free path assignment (the greedy
    bound finds one)."""
    bmin = BidirectionalMIN(2, 3)
    dests = sorted(dest_set)
    sched = binomial_schedule(0, dests)
    for phase in sched:
        assert phase_conflicts(bmin, phase) == 0
