"""Unit tests of the end-to-end reliable transport protocol machinery.

Clean-fabric delivery, config validation, the serve-layer defaults
pin, window dynamics, duplicate suppression under aggressive timers,
and the graceful-degradation path (flow abort, never a hang) are each
exercised on small networks where the exact behaviour is checkable.
"""

import pytest

from repro.serve.job import TRANSPORT_DEFAULTS
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.transport import ReliableTransport, TransportConfig
from repro.wormhole import WormholeEngine, build_network


def _setup(kind="tmin", k=2, n=2, seed=0, config=None):
    env = Environment()
    net = build_network(kind, k=k, n=n)
    eng = WormholeEngine(env, net, rng=RandomStream(seed, name="engine"))
    tp = ReliableTransport(
        eng, config, RandomStream(seed + 1, name="transport")
    )
    return env, eng, tp


# ------------------------------------------------------------- config


def test_config_defaults_mirror_serve_layer():
    """The serve layer's TRANSPORT_DEFAULTS and the dataclass defaults
    are the same ten values -- two spellings of one configuration."""
    assert TransportConfig(**TRANSPORT_DEFAULTS) == TransportConfig()
    assert len(TRANSPORT_DEFAULTS) == 10


@pytest.mark.parametrize(
    "bad",
    [
        {"window": 0},
        {"window": 8, "max_window": 4},
        {"ai_step": 0},
        {"rto_base": 0.0},
        {"rto_factor": 0.5},
        {"rto_max": -1.0},
        {"jitter": 1.0},
        {"jitter": -0.1},
        {"max_attempts": 0},
        {"ack_length": 0},
        {"ack_delay": 0.0},
    ],
)
def test_config_validation(bad):
    with pytest.raises(ValueError):
        TransportConfig(**bad)


def test_send_validation():
    _env, _eng, tp = _setup()
    with pytest.raises(ValueError, match="src != dst"):
        tp.send(1, 1, 16)
    with pytest.raises(ValueError, match="length"):
        tp.send(0, 1, 0)


# ------------------------------------------------- clean-fabric delivery


def test_clean_fabric_delivers_everything():
    env, eng, tp = _setup()
    keys = [tp.send(0, 3, 16) for _ in range(20)]
    keys += [tp.send(2, 1, 8) for _ in range(10)]
    tp.quiesce()
    assert tp.messages_sent == 30
    assert tp.messages_delivered == 30
    assert tp.messages_aborted == 0
    assert tp.flows_aborted == 0
    assert tp.delivered_ratio() == 1.0
    assert all(tp.outcomes[k] == "delivered" for k in keys)
    # Sequence numbers are per-flow and dense from zero.
    assert keys[0] == (0, 3, 0)
    assert keys[19] == (0, 3, 19)
    assert keys[20] == (2, 1, 0)
    assert eng.stats.goodput_flits == 20 * 16 + 10 * 8
    # Every unique delivery was acked (dups would add more).
    assert eng.stats.ack_packets >= 30
    assert tp.idle


def test_window_grows_on_clean_acks():
    """AIMD additive increase: a loss-free flow's window climbs from
    the initial size toward max_window."""
    cfg = TransportConfig(window=1, max_window=8)
    env, eng, tp = _setup(config=cfg)
    for _ in range(30):
        tp.send(0, 3, 8)
    tp.quiesce()
    flow = tp._flows[(0, 3)]
    assert flow.window > 1
    assert flow.window <= 8
    assert tp.messages_delivered == 30


def test_outcome_keys_returned_by_send():
    _env, _eng, tp = _setup()
    key = tp.send(1, 2, 12)
    assert key == (1, 2, 0)
    tp.quiesce()
    assert tp.outcomes[key] == "delivered"


# ---------------------------------------- duplicates under tight timers


def test_aggressive_rto_duplicates_suppressed():
    """An RTO shorter than the delivery latency makes retransmissions
    cross their slow originals: the receiver must suppress every
    duplicate, so end-to-end deliveries still equal messages sent."""
    cfg = TransportConfig(
        window=1, rto_base=8.0, rto_max=4096.0, ack_delay=1.0,
        max_attempts=1000,
    )
    env, eng, tp = _setup(config=cfg)
    for _ in range(4):
        tp.send(0, 3, 64)
    tp.quiesce()
    assert eng.stats.rto_fires > 0
    assert eng.stats.retransmitted_packets > 0
    assert eng.stats.dup_acks > 0
    # Exactly-once: dups never double-count.
    assert tp.messages_delivered == tp.messages_sent == 4
    assert all(o == "delivered" for o in tp.outcomes.values())
    # Goodput counted unique payloads only.
    assert eng.stats.goodput_flits == 4 * 64


# ----------------------------------------- graceful degradation (abort)


def test_total_loss_aborts_flow_never_hangs(monkeypatch):
    """With every injection refused, attempts exhaust max_attempts and
    the flow aborts: outcomes settle, quiesce returns, no hang."""
    cfg = TransportConfig(
        window=2, rto_base=8.0, rto_max=32.0, max_attempts=3
    )
    env, eng, tp = _setup(config=cfg)
    monkeypatch.setattr(eng, "offer", lambda src, dst, length: None)
    keys = [tp.send(0, 3, 16) for _ in range(5)]
    tp.quiesce()
    assert tp.messages_delivered == 0
    assert tp.messages_aborted == 5
    assert tp.flows_aborted >= 1
    assert eng.stats.flows_aborted == tp.flows_aborted
    assert all(tp.outcomes[k] == "aborted" for k in keys)
    assert tp.delivered_ratio() == 0.0
    # The aborted flow collapsed to the minimum window but stays usable.
    assert tp._flows[(0, 3)].window == 1
    assert tp.idle


def test_flow_usable_after_abort(monkeypatch):
    """A later send on an aborted flow goes through once the fabric
    heals -- the abort cancels the backlog, not the flow."""
    cfg = TransportConfig(rto_base=8.0, max_attempts=2)
    env, eng, tp = _setup(config=cfg)
    real_offer = eng.offer
    monkeypatch.setattr(eng, "offer", lambda src, dst, length: None)
    dead = tp.send(0, 3, 16)
    tp.quiesce()
    assert tp.outcomes[dead] == "aborted"
    monkeypatch.setattr(eng, "offer", real_offer)
    alive = tp.send(0, 3, 16)
    tp.quiesce()
    assert tp.outcomes[alive] == "delivered"
    assert tp.messages_delivered == 1


def test_refused_admission_spends_attempts_without_shrink(monkeypatch):
    """A blocked-admission refusal (offer -> None) costs an attempt and
    backs off but does not halve the window -- only real losses do."""
    cfg = TransportConfig(
        window=4, rto_base=8.0, max_attempts=10, jitter=0.0
    )
    env, eng, tp = _setup(config=cfg)
    refusals = {"n": 0}
    real_offer = eng.offer

    def flaky(src, dst, length):
        if refusals["n"] < 3:
            refusals["n"] += 1
            return None
        return real_offer(src, dst, length)

    monkeypatch.setattr(eng, "offer", flaky)
    tp.send(0, 3, 16)
    tp.quiesce()
    assert refusals["n"] == 3
    assert tp.messages_delivered == 1
    assert tp._flows[(0, 3)].window >= 4  # never halved


# ------------------------------------------------------------ reporting


def test_delivered_ratio_nan_before_any_outcome():
    _env, _eng, tp = _setup()
    assert tp.delivered_ratio() != tp.delivered_ratio()  # NaN


def test_repr_mentions_tallies():
    _env, _eng, tp = _setup()
    tp.send(0, 1, 8)
    assert "sent=1" in repr(tp)
