"""The acceptance drill: exactly-once delivery under a seeded loss storm.

Each case replays a recorded trace through the reliable transport on a
fabric that is actively losing packets -- shed-newest admission under
pressure plus hard MTBF churn (wire cuts abort in-flight worms) with a
recovering watchdog armed.  The assertions are the ISSUE's acceptance
bar: every admitted message of a non-aborted flow is delivered exactly
once (duplicates suppressed), retransmissions are bounded, outcomes
all settle (no deadlock or livelock -- quiesce returns and the
watchdog saw no deadlock verdicts), and the whole storm is
bit-identical across the reference, fast, and batch engine tiers.
"""

import pytest

from repro.experiments.config import NetworkConfig
from repro.faults.mtbf import MTBFChurn
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.stability import BoundedQueue, ProgressWatchdog
from repro.stability.admission import SHED_NEWEST
from repro.traffic.trace import TraceWorkload, synthesize_trace
from repro.transport import ReliableTransport, TransportConfig
from repro.wormhole.engine import WormholeEngine
from tests.differential.harness import BATCH_AVAILABLE

#: All four of the paper's MINs plus one direct fabric, small geometry.
STORM_KINDS = ("tmin", "dmin", "vmin", "bmin", "mesh3d")

#: 10% per-channel unavailability, hard severity (the acceptance storm).
RATE = 0.1
MTTR = 200.0

CFG = TransportConfig(
    rto_base=32.0, rto_max=512.0, ack_delay=2.0, max_attempts=6
)


def run_storm(kind: str, engine: str = "fast", seed: int = 17):
    """One seeded storm; returns (transport, engine, watchdog, workload)."""
    network = NetworkConfig(kind, k=2, n=3)
    env = Environment(
        scheduler="heap" if engine == "reference" else "calendar"
    )
    root = RandomStream(seed, name="root")
    eng = WormholeEngine(
        env,
        network.build(),
        rng=root.fork("engine"),
        fast=engine != "reference",
        batch=engine == "batch",
    )
    BoundedQueue(capacity=8, mode=SHED_NEWEST).install(eng)
    MTBFChurn(
        env,
        eng.network,
        root.fork("faults"),
        mtbf=MTTR * (1.0 - RATE) / RATE,
        mttr=MTTR,
        engine=eng,
        severity="hard",
    )
    wd = ProgressWatchdog(
        eng, check_every=32, stall_age=1024, deadlock_after=512, recover=True
    )
    eng.watchdog = wd
    tp = ReliableTransport(eng, CFG, root.fork("transport"))
    trace = synthesize_trace(
        network.N, 120, root.fork("trace"), mean_iat=4.0,
        size_low=8, size_high=32,
    )
    wl = TraceWorkload(trace, transport=tp)
    wl.install(env, eng, root.fork("workload"))
    eng.start()
    total = len(trace.records)
    horizon = trace.records[-1].t + 200_000
    while wl.replayed < total and env.now < horizon:
        env.run(until=min(env.now + 256, horizon))
    tp.quiesce(200_000)
    return tp, eng, wd, wl


@pytest.mark.parametrize("kind", STORM_KINDS)
def test_exactly_once_under_storm(kind):
    tp, eng, wd, wl = run_storm(kind)
    assert wl.replayed == 120
    assert tp.messages_sent == 120
    # Every message settled to exactly one outcome -- no hang, no loss.
    assert len(tp.outcomes) == 120
    delivered = sum(1 for o in tp.outcomes.values() if o == "delivered")
    aborted = sum(1 for o in tp.outcomes.values() if o == "aborted")
    assert delivered + aborted == 120
    # Exactly-once: the tally counts unique deliveries, dups suppressed.
    assert tp.messages_delivered == delivered
    assert tp.messages_aborted == aborted
    # The storm actually stormed: losses happened and were recovered.
    assert eng.stats.retransmitted_packets > 0
    # Bounded retransmissions: each segment injects at most max_attempts.
    assert eng.stats.retransmitted_packets <= 120 * CFG.max_attempts
    # Watchdog clean: congestion, but never a deadlock or livelock.
    assert wd.deadlocks == 0
    assert wd.livelocks == 0
    # Goodput counts unique payload flits only.
    assert eng.stats.goodput_flits <= eng.stats.delivered_flits


def test_storm_survives_most_messages():
    """With backoff and 6 attempts the 10% storm is survivable: the
    vast majority of messages deliver even on the smallest fabric."""
    tp, _eng, _wd, _wl = run_storm("dmin")
    assert tp.delivered_ratio() > 0.9


def _snapshot(kind: str, engine: str):
    tp, eng, wd, wl = run_storm(kind, engine=engine)
    s = eng.stats
    return (
        tuple(sorted(tp.outcomes.items())),
        tp.messages_sent,
        tp.messages_delivered,
        tp.messages_aborted,
        tp.flows_aborted,
        tp.acks_lost,
        s.retransmitted_packets,
        s.rto_fires,
        s.dup_acks,
        s.ack_packets,
        s.goodput_flits,
        s.delivered_packets,
        s.shed_packets,
        tuple(s.records),
        eng.cycles_run,
        eng.env.now,
        (wd.aborted, wd.deadlocks, wd.livelocks),
    )


@pytest.mark.parametrize("kind", ("tmin", "mesh3d"))
def test_storm_bit_identical_across_tiers(kind):
    ref = _snapshot(kind, "reference")
    fast = _snapshot(kind, "fast")
    assert fast == ref
    if BATCH_AVAILABLE:
        batch = _snapshot(kind, "batch")
        assert batch == ref
