"""Freshness tests: the quick examples must run end to end.

Each example is executed in-process (imported as a script) so API drift
breaks the build rather than rotting silently.  The longer studies
(hotspot_study, saturation_search) are exercised with reduced scope via
their library entry points elsewhere; here we run the fast ones whole.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "partitioning_demo.py",
    "turnaround_routing_demo.py",
    "network_atlas.py",
    "multicast_broadcast.py",
    "hot_channels.py",
    "torus_adaptive.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced real output


def test_quickstart_reports_all_sections(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py", "bmin", "0.3"])
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "BMIN" in out
    assert "latency" in out and "thruput" in out and "queues" in out


def test_atlas_with_kary_args(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["network_atlas.py", "4", "2"])
    runpy.run_path(str(EXAMPLES / "network_atlas.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "N=16" in out
