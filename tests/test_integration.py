"""Cross-module integration tests: workload -> engine -> metrics -> theory.

These tie the full pipeline together: the traffic generators drive the
flit-level engine, the collector measures it, and the results must obey
the analytic structure (uncontended latency formulas, monotonicity,
conservation, locality) across all four networks.
"""

from dataclasses import replace

import pytest

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.figures import uniform_workload
from repro.experiments.runner import run_point
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.traffic.clusters import cluster_16, global_cluster
from repro.traffic.patterns import UniformPattern
from repro.traffic.workload import MessageSizeModel, Workload
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.trace import Tracer

KINDS = ["tmin", "dmin", "vmin", "bmin"]
QUICK = replace(SMOKE, warmup_packets=30, measure_packets=250)


@pytest.mark.parametrize("kind", KINDS)
def test_low_load_accepts_everything(kind):
    """At 10% load every network delivers what is offered."""
    m = run_point(
        NetworkConfig(kind), uniform_workload(global_cluster(), QUICK), 0.1, QUICK
    )
    assert m.sustainable
    offered_rate = 0.1
    assert m.throughput == pytest.approx(offered_rate, rel=0.15)


@pytest.mark.parametrize("kind", KINDS)
def test_low_load_latency_near_uncontended(kind):
    """At 5% load the mean latency approaches hops + E[L]: queueing and
    contention nearly vanish."""
    cfg = replace(QUICK, sizes=MessageSizeModel("fixed", low=16))
    m = run_point(
        NetworkConfig(kind, k=2, n=3),
        uniform_workload(global_cluster(nbits=3), cfg),
        0.05,
        cfg,
    )
    # Uncontended: 4 hops + 16 - 2 = 18 (TMIN); BMIN averages less.
    assert m.avg_network_latency < 18 * 1.6


def test_latency_monotone_in_load():
    cfg = QUICK
    wb = uniform_workload(global_cluster(), cfg)
    lats = [
        run_point(NetworkConfig("dmin"), wb, load, cfg).avg_latency
        for load in (0.1, 0.3, 0.6)
    ]
    assert lats[0] < lats[1] < lats[2]


def test_throughput_tracks_load_below_saturation():
    cfg = QUICK
    wb = uniform_workload(global_cluster(), cfg)
    thr = [
        run_point(NetworkConfig("dmin"), wb, load, cfg).throughput
        for load in (0.1, 0.2, 0.3)
    ]
    for expected, measured in zip((0.1, 0.2, 0.3), thr):
        assert measured == pytest.approx(expected, rel=0.2)


@pytest.mark.parametrize("kind", KINDS)
def test_conservation_snapshot(kind):
    """offered == delivered + failed + queued + in flight, at any time."""
    env = Environment()
    eng = WormholeEngine(env, build_network(kind, 4, 3), rng=RandomStream(3))
    wl = Workload(
        global_cluster(),
        UniformPattern,
        offered_load=0.7,
        sizes=MessageSizeModel.scaled(),
    )
    wl.install(env, eng, RandomStream(4))
    eng.start()
    for _ in range(5):
        env.run(until=env.now + 400)
        queued = sum(eng.queue_length(node) for node in range(64))
        assert (
            eng.stats.offered_packets
            == eng.stats.delivered_packets
            + eng.stats.failed_packets
            + queued
            + eng.in_flight
        )


def test_bmin_cluster_traffic_never_leaves_subtrees():
    """Theorem 4 dynamically: cluster-16 traffic on the BMIN never
    acquires a top-boundary channel (locality observed, not assumed)."""
    env = Environment()
    eng = WormholeEngine(env, build_network("bmin", 4, 3), rng=RandomStream(5))
    eng.tracer = Tracer()
    wl = Workload(
        cluster_16("cube"),
        UniformPattern,
        offered_load=0.5,
        sizes=MessageSizeModel.scaled(),
    )
    wl.install(env, eng, RandomStream(6))
    eng.start()
    env.run(until=3000)
    assert eng.stats.delivered_packets > 100
    acquired = [
        e.detail for e in eng.tracer.events if e.kind == "acquired"
    ]
    assert acquired
    # Boundary-2 channels (fwd2/bwd2) belong to the top of the tree.
    assert not any(d.startswith(("fwd2", "bwd2")) for d in acquired)


def test_global_traffic_does_use_the_top():
    env = Environment()
    eng = WormholeEngine(env, build_network("bmin", 4, 3), rng=RandomStream(5))
    eng.tracer = Tracer()
    wl = Workload(
        global_cluster(),
        UniformPattern,
        offered_load=0.5,
        sizes=MessageSizeModel.scaled(),
    )
    wl.install(env, eng, RandomStream(6))
    eng.start()
    env.run(until=2000)
    acquired = [e.detail for e in eng.tracer.events if e.kind == "acquired"]
    assert any(d.startswith("fwd2") for d in acquired)


def test_run_point_reproducible_across_processes():
    """The full pipeline is a pure function of (config, seed)."""
    cfg = QUICK
    wb = uniform_workload(global_cluster(), cfg)
    a = run_point(NetworkConfig("vmin"), wb, 0.4, cfg)
    b = run_point(NetworkConfig("vmin"), wb, 0.4, cfg)
    assert a == b


def test_all_four_networks_agree_at_vanishing_load():
    """As load -> 0 contention vanishes; the four networks differ only
    by path length, so their latencies converge within a few cycles."""
    cfg = replace(QUICK, sizes=MessageSizeModel("fixed", low=32))
    wb = uniform_workload(global_cluster(), cfg)
    lats = {
        kind: run_point(NetworkConfig(kind), wb, 0.02, cfg).avg_network_latency
        for kind in KINDS
    }
    assert max(lats.values()) - min(lats.values()) < 8.0, lats


def test_paper_units_conversion_end_to_end():
    """Latency in us = cycles / 20 all the way through the pipeline."""
    cfg = QUICK
    wb = uniform_workload(global_cluster(), cfg)
    m = run_point(NetworkConfig("tmin"), wb, 0.2, cfg)
    assert m.avg_latency_us == pytest.approx(m.avg_latency / 20.0)
