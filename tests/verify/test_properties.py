"""Property checks: Theorem 1 paths, Lemma 1 / Theorems 2-4 partitions."""

import pytest

from repro.verify import (
    VerificationReport,
    all_small_configs,
    build_negative_control,
    verify_config,
    verify_network,
)
from repro.verify.properties import base_kary_partitions
from repro.wormhole import build_network


# --------------------------------------------------------------- report


def test_report_accumulates_and_fails():
    r = VerificationReport("demo")
    r.add("a", True, "fine")
    r.add("b", False, "broken")
    assert not r.ok
    assert [c.name for c in r.failures()] == ["b"]
    text = str(r)
    assert "PASS" in text and "FAIL" in text and "broken" in text


# ------------------------------------------------------- verify_config


@pytest.mark.parametrize("kind", ["tmin", "dmin", "vmin", "bmin"])
def test_verify_config_passes_small_cube(kind):
    report = verify_config(kind, 2, 3)
    assert report.ok, str(report)
    names = {c.name for c in report.checks}
    assert "cdg-acyclic" in names
    assert any("path" in n for n in names)


def test_verify_config_butterfly_theorem3():
    """Theorem 3's *negative* case: butterfly must fail to partition,
    and the verifier certifies exactly that (the report still passes)."""
    report = verify_config("tmin", 2, 3, topology="butterfly")
    assert report.ok, str(report)
    assert any("partition" in c.name for c in report.checks)


def test_verify_network_rejects_negative_control():
    report = verify_network(build_negative_control(k=2, n=3))
    assert not report.ok
    failed = report.failures()
    assert any(c.name == "cdg-acyclic" for c in failed)
    # The failure detail carries a usable cycle witness.
    assert any("->" in c.detail for c in failed)


def test_verify_network_skips_selected_checks():
    net = build_network("tmin", k=2, n=2)
    report = verify_network(net, check_paths=False, check_partitions=False)
    assert report.ok
    names = {c.name for c in report.checks}
    assert all("path" not in n for n in names)
    assert all("partition" not in n for n in names)


def test_vmin_gets_lane_granularity_check():
    report = verify_config("vmin", 2, 2, virtual_channels=2)
    assert report.ok
    assert "cdg-acyclic-lanes" in {c.name for c in report.checks}


# -------------------------------------------------------- partitions


def test_base_kary_partitions_shapes():
    parts = dict(base_kary_partitions(2, 3))
    assert set(parts) == {1, 2}
    # k**(n-m) clusters of size k**m, disjoint, covering all nodes.
    for m, clusters in parts.items():
        assert len(clusters) == 2 ** (3 - m)
        nodes = [x for c in clusters for x in c.members()]
        assert sorted(nodes) == list(range(8))


# ------------------------------------------------------- all_small


def test_all_small_configs_inventory():
    configs = list(all_small_configs(max_nodes=64))
    # Each (k, n) with k**n <= 64 contributes the four kinds on the
    # cube plus a TMIN butterfly.
    kn = {(k, n) for _, k, n, _ in configs}
    assert kn == {
        (2, 1), (2, 2), (2, 3), (2, 4), (2, 5), (2, 6),
        (4, 1), (4, 2), (4, 3),
        (8, 1), (8, 2),
    }
    assert all(k**n <= 64 for _, k, n, _ in configs)
    assert ("tmin", 2, 3, "butterfly") in configs
    assert ("bmin", 2, 3, "cube") in configs


def test_all_small_configs_respects_ceiling():
    configs = list(all_small_configs(max_nodes=8))
    assert all(k**n <= 8 for _, k, n, _ in configs)
    assert ("tmin", 2, 4, "cube") not in configs
