"""Escape-channel certification of the direct topologies.

Positive direction: every small mesh/torus passes under both routers
(the escape sub-CDG -- including indirect dependencies threaded through
held adaptive lanes -- is acyclic, and every reachable routing state
keeps an escape candidate).  Negative direction: a torus whose escape
scheme ignores the dateline must be rejected with a concrete ring-cycle
witness, and an adaptive router that drops its escape fallback must be
flagged by the coverage check.
"""

import pytest

from repro.direct import DirectNetwork, DirectTopology
from repro.verify import (
    BrokenDatelineTorus,
    EscapelessNetwork,
    all_small_direct_configs,
    build_direct_negative_control,
    check_acyclic,
    check_escape_acyclic,
    check_escape_coverage,
    verify_config,
)
from repro.verify.__main__ import main


@pytest.mark.parametrize(
    "kind,k,n,router", list(all_small_direct_configs(max_nodes=27))
)
def test_all_small_direct_configs_verify(kind, k, n, router):
    report = verify_config(kind, k, n, router=router)
    assert report.ok, report.render()
    names = {c.name for c in report.checks}
    assert "escape-cdg-acyclic" in names
    assert "escape-coverage" in names
    assert "routes-minimal" in names
    if router == "dor":
        assert "cdg-acyclic" in names
        assert "dor-unique-route" in names


def test_adaptive_full_cdg_is_cyclic_but_escape_subcdg_is_not():
    """The point of Duato's construction: adaptivity cycles the full
    CDG, the escape restriction breaks the knot."""
    net = DirectNetwork(
        DirectTopology(k=3, n=2, wrap=True), router="adaptive"
    )
    assert not check_acyclic(net).acyclic
    assert check_escape_acyclic(net).acyclic
    ok, witness = check_escape_coverage(net)
    assert ok, witness


def test_broken_dateline_rejected_with_ring_witness():
    net = build_direct_negative_control()
    result = check_escape_acyclic(net)
    assert not result.acyclic
    assert result.cycle, "expected a concrete cycle witness"
    # The witness is a ring: every hop is an escape lane of one
    # dimension/direction.
    prefixes = {label.split("[")[0] for label in result.cycle}
    assert len(prefixes) == 1
    assert all(".e" in label for label in result.cycle)


@pytest.mark.parametrize("k", [2, 3])
def test_broken_dateline_harmless_below_k4(k):
    """Minimal routes take at most floor(k/2) hops per dimension, so
    short rings cannot chain a cycle even without a dateline."""
    net = BrokenDatelineTorus(
        DirectTopology(k=k, n=2, wrap=True), router="adaptive"
    )
    assert check_escape_acyclic(net).acyclic


def test_escapeless_network_fails_coverage():
    net = EscapelessNetwork(
        DirectTopology(k=3, n=2, wrap=True), router="adaptive"
    )
    ok, witness = check_escape_coverage(net)
    assert not ok
    assert witness  # names a concrete uncovered routing state


def test_escape_checks_ignore_dor_trivially():
    """A DOR network is all escape lanes; its escape sub-CDG equals the
    full CDG and both checks agree."""
    net = DirectNetwork(DirectTopology(k=3, n=2, wrap=True))
    assert check_acyclic(net).acyclic
    assert check_escape_acyclic(net).acyclic


# -- command line ---------------------------------------------------------


def test_cli_direct_config(capsys):
    rc = main(
        ["--network", "torus3d", "--k", "2", "--n", "3",
         "--router", "adaptive", "-q"]
    )
    assert rc == 0
    assert "verified 1 configuration(s)" in capsys.readouterr().out


def test_cli_all_small_includes_direct(capsys):
    assert main(["--all-small", "--max-nodes", "8"]) == 0
    out = capsys.readouterr().out
    assert "mesh3d" in out
    assert "torus3d" in out
    assert "adaptive" in out


def test_cli_negative_control_covers_direct(capsys):
    assert main(["--negative-control"]) == 0
    out = capsys.readouterr().out
    assert "direct negative control rejected as required" in out
