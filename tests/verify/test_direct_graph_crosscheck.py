"""Cross-validation: networkx graph model vs. the direct builders.

Same philosophy as ``test_graph_crosscheck.py`` for the MINs: two
*independent* implementations of each claim must agree.

* :func:`repro.topology.graph.direct_to_digraph` builds a plain link
  graph straight from :meth:`DirectTopology.links`; BFS distances over
  it check the builders' closed-form ``distance`` / ``diameter`` /
  ``average_distance`` arithmetic.
* :func:`repro.verify.cdg.enumerate_routes` walks the live simulator's
  routing interface; DOR route lengths must equal graph distance plus
  the injection and delivery hops.
"""

import networkx as nx
import pytest

from repro.direct import DirectNetwork, DirectTopology
from repro.topology.graph import (
    direct_average_distance,
    direct_diameter_hops,
    direct_to_digraph,
)
from repro.verify import enumerate_routes

GEOMETRIES = [
    (2, 3, False), (3, 3, False), (4, 3, False),
    (2, 3, True), (3, 3, True), (4, 3, True),
    (5, 2, True),
]


@pytest.mark.parametrize("k,n,wrap", GEOMETRIES)
def test_distances_agree_with_bfs(k, n, wrap):
    topo = DirectTopology(k=k, n=n, wrap=wrap)
    g = direct_to_digraph(topo)
    lengths = dict(nx.all_pairs_shortest_path_length(g))
    for a in range(topo.N):
        for b in range(topo.N):
            assert topo.distance(a, b) == lengths[a][b]


@pytest.mark.parametrize("k,n,wrap", GEOMETRIES)
def test_diameter_agrees(k, n, wrap):
    topo = DirectTopology(k=k, n=n, wrap=wrap)
    assert direct_diameter_hops(direct_to_digraph(topo)) == topo.diameter


@pytest.mark.parametrize("k,n,wrap", GEOMETRIES)
def test_average_distance_agrees(k, n, wrap):
    topo = DirectTopology(k=k, n=n, wrap=wrap)
    got = direct_average_distance(direct_to_digraph(topo))
    assert got == pytest.approx(topo.average_distance, abs=1e-12)


@pytest.mark.parametrize("k,n,wrap", [(3, 2, False), (3, 2, True), (2, 3, False)])
def test_dor_route_lengths_match_graph_distance(k, n, wrap):
    """Every DOR route spans distance(s, d) fabric channels plus the
    injection and delivery wires."""
    topo = DirectTopology(k=k, n=n, wrap=wrap)
    net = DirectNetwork(topo)
    g = direct_to_digraph(topo)
    lengths = dict(nx.all_pairs_shortest_path_length(g))
    for s in range(topo.N):
        for d in range(topo.N):
            if s == d:
                continue
            routes = enumerate_routes(net, s, d)
            assert len(routes) == 1  # DOR is deterministic
            assert len(routes[0]) == lengths[s][d] + 2


def test_graph_edge_attributes_match_links():
    topo = DirectTopology(k=3, n=3, wrap=True)
    g = direct_to_digraph(topo)
    assert g.number_of_nodes() == topo.N
    assert g.number_of_edges() == len(
        {(u, v) for u, v, _, _ in topo.links()}
    )
    for u, v, dim, sign in topo.links():
        attrs = g.edges[u, v]
        # A k=2 ring stores one of the two parallel links; larger
        # radices are 1:1.
        if topo.k > 2:
            assert attrs["sign"] == sign
            assert attrs["dim"] == "xyz"[dim]
