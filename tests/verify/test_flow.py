"""Tests for the interprocedural purity analyzer (``repro.verify.flow``).

Three layers: resolution-precision units on tiny in-memory projects
(the cases that made early drafts cry wolf), the seeded negative
control (an env read three calls deep **must** be convicted -- a
vacuous analyzer fails CI), and the repo gate itself (the shipped
compute closure certifies PURE with every allowlist entry used and
justified).
"""

from pathlib import Path

import pytest

from repro.verify.flow import (
    DEFAULT_ENTRY_POINTS,
    IMPURE_FIXTURE_ENTRY,
    PURITY_ALLOWLIST,
    ProjectAnalysis,
    ProjectGraph,
    certify,
    negative_control_certificate,
)
from repro.verify.flow.__main__ import main as flow_main

REPO = Path(__file__).resolve().parent.parent.parent
SRC = REPO / "src" / "repro"


def analyze(sources: dict) -> ProjectAnalysis:
    return ProjectAnalysis.from_sources(sources, package="fixture")


def kinds_of(cert) -> set:
    return {v.effect.kind for v in cert.violations}


# ------------------------------------------------- effect classification


def test_env_read_is_flagged():
    cert = certify(
        analyze({"fixture.m": "import os\ndef f():\n    return os.environ['X']\n"}),
        entries=("fixture.m.f",), allowlist={},
    )
    assert kinds_of(cert) == {"env-read"}


def test_wall_clock_and_unseeded_rng_flagged():
    src = (
        "import random\nimport time\n"
        "def f():\n    return time.monotonic() + random.random()\n"
    )
    cert = certify(
        analyze({"fixture.m": src}), entries=("fixture.m.f",), allowlist={}
    )
    assert kinds_of(cert) == {"wall-clock", "unseeded-rng"}


def test_seeded_random_is_sanctioned():
    """random.Random(seed) is the RandomStream core -- never flagged."""
    src = "import random\ndef f(seed):\n    return random.Random(seed)\n"
    cert = certify(
        analyze({"fixture.m": src}), entries=("fixture.m.f",), allowlist={}
    )
    assert cert.ok


def test_zero_arg_random_constructor_is_flagged():
    src = "import random\ndef f():\n    return random.Random()\n"
    cert = certify(
        analyze({"fixture.m": src}), entries=("fixture.m.f",), allowlist={}
    )
    assert kinds_of(cert) == {"unseeded-rng"}


def test_str_replace_is_not_filesystem():
    src = "def f(s):\n    return s.replace('a', 'b')\n"
    cert = certify(
        analyze({"fixture.m": src}), entries=("fixture.m.f",), allowlist={}
    )
    assert cert.ok


def test_global_mutation_flagged():
    src = "COUNT = 0\ndef f():\n    global COUNT\n    COUNT += 1\n"
    cert = certify(
        analyze({"fixture.m": src}), entries=("fixture.m.f",), allowlist={}
    )
    assert kinds_of(cert) == {"global-mut"}


# --------------------------------------------------- call-graph precision


def test_effect_propagates_through_calls():
    srcs = {
        "fixture.inner": "import os\ndef leaf():\n    return os.getenv('X')\n",
        "fixture.outer": (
            "from fixture.inner import leaf\n"
            "def entry():\n    return leaf()\n"
        ),
    }
    cert = certify(analyze(srcs), entries=("fixture.outer.entry",), allowlist={})
    assert not cert.ok
    assert cert.violations[0].chain == (
        "fixture.outer.entry", "fixture.inner.leaf",
    )


def test_unreachable_impurity_is_not_charged():
    srcs = {
        "fixture.m": (
            "import os\n"
            "def pure():\n    return 1\n"
            "def dirty():\n    return os.environ['X']\n"
        ),
    }
    cert = certify(analyze(srcs), entries=("fixture.m.pure",), allowlist={})
    assert cert.ok


def test_function_level_import_resolves():
    srcs = {
        "fixture.inner": "import time\ndef leaf():\n    return time.time()\n",
        "fixture.outer": (
            "def entry():\n"
            "    from fixture.inner import leaf\n"
            "    return leaf()\n"
        ),
    }
    cert = certify(analyze(srcs), entries=("fixture.outer.entry",), allowlist={})
    assert kinds_of(cert) == {"wall-clock"}


def test_super_call_resolves_through_bases_only():
    """`super().__init__()` must not union every __init__ in the project."""
    srcs = {
        "fixture.base": (
            "class Base:\n"
            "    def __init__(self):\n        self.x = 1\n"
        ),
        "fixture.sub": (
            "from fixture.base import Base\n"
            "import os\n"
            "class Unrelated:\n"
            "    def __init__(self):\n        self.y = os.environ['X']\n"
            "class Child(Base):\n"
            "    def __init__(self):\n        super().__init__()\n"
            "def entry():\n    return Child()\n"
        ),
    }
    cert = certify(analyze(srcs), entries=("fixture.sub.entry",), allowlist={})
    assert cert.ok, [v.witness() for v in cert.violations]


def test_typed_receiver_does_not_name_match():
    """A receiver typed by annotation resolves in its own class, not to
    every same-named method in the project."""
    srcs = {
        "fixture.m": (
            "import time\n"
            "class Quiet:\n"
            "    def ping(self):\n        return 1\n"
            "class Loud:\n"
            "    def ping(self):\n        return time.time()\n"
            "def entry(q: Quiet):\n    return q.ping()\n"
        ),
    }
    cert = certify(analyze(srcs), entries=("fixture.m.entry",), allowlist={})
    assert cert.ok


def test_untyped_receiver_unions_conservatively():
    srcs = {
        "fixture.m": (
            "import time\n"
            "class Loud:\n"
            "    def ping(self):\n        return time.time()\n"
            "def entry(q):\n    return q.ping()\n"
        ),
    }
    cert = certify(analyze(srcs), entries=("fixture.m.entry",), allowlist={})
    assert kinds_of(cert) == {"wall-clock"}


def test_tuple_unpack_types_from_return_annotation():
    srcs = {
        "fixture.m": (
            "import time\n"
            "class Env:\n"
            "    def run(self):\n        return 1\n"
            "class Svc:\n"
            "    def run(self):\n        return time.time()\n"
            "def build() -> tuple[Env, int]:\n    return Env(), 0\n"
            "def entry():\n"
            "    env, n = build()\n"
            "    return env.run()\n"
        ),
    }
    cert = certify(analyze(srcs), entries=("fixture.m.entry",), allowlist={})
    assert cert.ok, [v.witness() for v in cert.violations]


def test_allowlist_is_a_summary_barrier():
    srcs = {
        "fixture.m": (
            "import os\n"
            "def sink():\n    return os.environ['X']\n"
            "def entry():\n    return sink()\n"
        ),
    }
    cert = certify(
        analyze(srcs),
        entries=("fixture.m.entry",),
        allowlist={"fixture.m.sink": "proven benign for this test"},
    )
    assert cert.ok
    assert cert.allowlist_uses == {
        "fixture.m.sink": "proven benign for this test"
    }


def test_missing_entry_point_fails_certification():
    cert = certify(
        analyze({"fixture.m": "def f():\n    return 1\n"}),
        entries=("fixture.m.nope",), allowlist={},
    )
    assert not cert.ok and cert.missing_entries == ["fixture.m.nope"]


# ------------------------------------------------------- negative control


def test_negative_control_convicts_the_impure_fixture():
    cert = negative_control_certificate()
    assert not cert.ok
    assert {"env-read", "wall-clock"} <= kinds_of(cert)


def test_negative_control_witness_chain_is_three_deep():
    cert = negative_control_certificate()
    env_chains = [
        v.chain for v in cert.violations if v.effect.kind == "env-read"
    ]
    assert env_chains, "env read not convicted"
    chain = env_chains[0]
    assert chain[0] == IMPURE_FIXTURE_ENTRY
    assert len(chain) == 4  # entry -> build_config -> choose_mode -> read_mode
    assert chain[-1] == "fixture.depths.read_mode"


def test_witness_renders_entry_to_sink():
    cert = negative_control_certificate()
    witness = cert.violations[0].witness()
    assert IMPURE_FIXTURE_ENTRY in witness and "::" in witness


# ------------------------------------------------------------- repo gate


@pytest.fixture(scope="module")
def repo_cert():
    analysis = ProjectAnalysis.from_package(SRC, "repro")
    return certify(analysis, entries=DEFAULT_ENTRY_POINTS)


def test_repo_compute_closure_certifies_pure(repo_cert):
    assert repo_cert.ok, "\n".join(v.witness() for v in repo_cert.violations)


def test_repo_every_allowlist_entry_is_used(repo_cert):
    """No dead allowlist weight: every justified exception is live."""
    assert repo_cert.unused_allowlist == []
    assert set(repo_cert.allowlist_uses) == set(PURITY_ALLOWLIST)


def test_repo_entry_points_all_exist(repo_cert):
    assert repo_cert.missing_entries == []
    assert repo_cert.reachable > 100  # the closure is the real engine


def test_certificate_json_shape(repo_cert):
    d = repo_cert.to_dict()
    assert d["ok"] is True
    assert d["version"] == 1
    assert set(d["assumptions"]) == {
        "dynamic_calls_unresolved", "generic_methods_skipped",
    }
    for name, why in d["allowlist_uses"].items():
        assert name.startswith("repro.") and len(why) > 20


# -------------------------------------------------------------------- CLI


def test_cli_negative_control_passes():
    assert flow_main(["--negative-control", "-q"]) == 0


def test_cli_certify_writes_json(tmp_path, capsys):
    out = tmp_path / "cert.json"
    rc = flow_main(["--certify", "--json", str(out), "-q"])
    assert rc == 0
    assert out.exists()
    capsys.readouterr()


def test_cli_fails_on_impure_entries(capsys):
    # Certifying the whole serve layer (cache writes!) must fail and
    # print a witness -- proving the gate can reject real code, not
    # just fixtures.
    rc = flow_main(["--certify", "--entry", "repro.serve.cache.ResultCache.put"])
    assert rc == 1
    outerr = capsys.readouterr()
    assert "WITNESS" in outerr.out and "filesystem" in outerr.out


def test_graph_from_package_parses_everything():
    graph = ProjectGraph.from_package(SRC, "repro")
    assert "repro.serve.compute.run_point_spec" in graph.functions
    assert "repro.wormhole.engine.WormholeEngine.step_cycle" in graph.functions
