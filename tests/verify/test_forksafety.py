"""Unit tests for the fork-/signal-safety lint rules (RPV007-RPV010).

The deliberately-unsafe fixtures mirror real supervisor bugs: a lock
created before the fork, a signal handler that prints, a heartbeat
array poked without its accessors, a process started under a held
lock.  Each has a minimally-different clean twin, so the rules are
pinned from both sides.
"""

import re
from pathlib import Path

from repro.verify.lint import RULES, lint_paths, lint_source

REPO = Path(__file__).resolve().parent.parent.parent
FORK_RULE_IDS = ("RPV007", "RPV008", "RPV009", "RPV010")


def rules_of(source: str) -> list[str]:
    return [v.rule for v in lint_source(source)]


# ------------------------------------------------------------ RPV007


def test_rpv007_lock_before_fork():
    src = (
        "import threading\n"
        "import multiprocessing\n"
        "def spawn():\n"
        "    lock = threading.Lock()\n"
        "    p = multiprocessing.Process(target=print)\n"
        "    p.start()\n"
    )
    assert "RPV007" in rules_of(src)


def test_rpv007_from_import_alias():
    src = (
        "from threading import Lock\n"
        "import multiprocessing\n"
        "def spawn():\n"
        "    lock = Lock()\n"
        "    multiprocessing.Process(target=print).start()\n"
    )
    assert "RPV007" in rules_of(src)


def test_rpv007_primitive_after_start_is_fine():
    src = (
        "import threading\n"
        "import multiprocessing\n"
        "def spawn():\n"
        "    p = multiprocessing.Process(target=print)\n"
        "    p.start()\n"
        "    lock = threading.Lock()\n"
    )
    assert "RPV007" not in rules_of(src)


def test_rpv007_module_level_primitive_in_forking_module():
    src = (
        "import threading\n"
        "import multiprocessing\n"
        "LOCK = threading.Lock()\n"
        "def spawn():\n"
        "    multiprocessing.Process(target=print).start()\n"
    )
    assert "RPV007" in rules_of(src)


def test_rpv007_no_fork_no_flag():
    src = "import threading\ndef f():\n    lock = threading.Lock()\n"
    assert "RPV007" not in rules_of(src)


# ------------------------------------------------------------ RPV008


def test_rpv008_handler_calls_print():
    src = (
        "import signal\n"
        "def _handler(signum, frame):\n"
        "    print('going down')\n"
        "signal.signal(signal.SIGTERM, _handler)\n"
    )
    assert "RPV008" in rules_of(src)


def test_rpv008_flag_set_and_os_write_are_fine():
    src = (
        "import os\n"
        "import signal\n"
        "class S:\n"
        "    def stop(self):\n"
        "        pass\n"
        "svc = S()\n"
        "def _handler(signum, frame):\n"
        "    os.write(2, b'down\\n')\n"
        "    svc.request_stop()\n"
        "signal.signal(signal.SIGTERM, _handler)\n"
    )
    assert "RPV008" not in rules_of(src)


def test_rpv008_raise_is_the_sanctioned_timeout_idiom():
    src = (
        "import signal\n"
        "def _fire(signum, frame):\n"
        "    raise TimeoutError('too slow')\n"
        "signal.signal(signal.SIGALRM, _fire)\n"
    )
    assert "RPV008" not in rules_of(src)


def test_rpv008_fstring_encode_receiver_is_fine():
    src = (
        "import os\n"
        "import signal\n"
        "def _handler(signum, frame):\n"
        "    os.write(2, f'sig {signum}\\n'.encode())\n"
        "signal.signal(signal.SIGTERM, _handler)\n"
    )
    assert "RPV008" not in rules_of(src)


def test_rpv008_unregistered_function_not_audited():
    src = "def noisy():\n    print('fine, not a handler')\n"
    assert "RPV008" not in rules_of(src)


# ------------------------------------------------------------ RPV009


def test_rpv009_raw_subscript_on_shared_array():
    src = (
        "import multiprocessing\n"
        "def pool(n):\n"
        "    beats = multiprocessing.RawArray('d', n)\n"
        "    beats[0] = 1.0\n"
    )
    assert "RPV009" in rules_of(src)


def test_rpv009_closure_subscript_also_flagged():
    # The supervisor's own historical shape: a nested spawn() closure
    # captures the array and pokes it directly.
    src = (
        "import multiprocessing\n"
        "def pool(ctx, n):\n"
        "    beats = ctx.RawArray('d', n)\n"
        "    def spawn(i):\n"
        "        beats[i] = 0.0\n"
        "    return spawn\n"
    )
    assert "RPV009" in rules_of(src)


def test_rpv009_accessor_use_is_fine():
    src = (
        "import multiprocessing\n"
        "from repro.obs.progress import HeartbeatSlot\n"
        "def pool(n):\n"
        "    beats = multiprocessing.RawArray('d', n)\n"
        "    HeartbeatSlot(beats, 0).beat()\n"
    )
    assert "RPV009" not in rules_of(src)


def test_rpv009_ordinary_list_subscript_is_fine():
    src = "def f():\n    xs = [0.0]\n    xs[0] = 1.0\n"
    assert "RPV009" not in rules_of(src)


# ------------------------------------------------------------ RPV010


def test_rpv010_start_under_lock():
    src = (
        "import multiprocessing\n"
        "import threading\n"
        "LOCK = threading.Lock()\n"
        "def f():\n"
        "    p = multiprocessing.Process(target=print)\n"
        "    with LOCK:\n"
        "        p.start()\n"
    )
    assert "RPV010" in rules_of(src)


def test_rpv010_start_outside_with_is_fine():
    src = (
        "import multiprocessing\n"
        "import threading\n"
        "LOCK = threading.Lock()\n"
        "def f():\n"
        "    p = multiprocessing.Process(target=print)\n"
        "    with LOCK:\n"
        "        pass\n"
        "    p.start()\n"
    )
    assert "RPV010" not in rules_of(src)


def test_rpv010_non_lock_context_is_fine():
    src = (
        "import multiprocessing\n"
        "def f(path):\n"
        "    p = multiprocessing.Process(target=print)\n"
        "    with open(path) as fh:\n"
        "        p.start()\n"
    )
    assert "RPV010" not in rules_of(src)


# --------------------------------------------------- suppressions & catalog


def test_fork_rules_in_catalog():
    for rule in FORK_RULE_IDS:
        assert rule in RULES and RULES[rule]


def test_fork_rule_line_suppression():
    src = (
        "import multiprocessing\n"
        "def pool(n):\n"
        "    beats = multiprocessing.RawArray('d', n)\n"
        "    beats[0] = 1.0  # lint-sim: ignore[RPV009]\n"
    )
    assert "RPV009" not in rules_of(src)


# ------------------------------------------------------ repo hygiene


def test_repo_clean_of_fork_safety_rules():
    """src/ and benchmarks/ carry zero RPV007-RPV010 violations."""
    violations = [
        v
        for v in lint_paths([REPO / "src", REPO / "benchmarks"])
        if v.rule in FORK_RULE_IDS
    ]
    assert violations == [], "\n".join(str(v) for v in violations)


def test_repo_has_no_fork_safety_suppressions():
    """The clean bill of health is earned, not suppressed: no source
    line under src/ waives any fork-safety rule."""
    pattern = re.compile(r"lint-sim:\s*ignore(\[([^\]]*)\])?")
    offenders = []
    for path in sorted((REPO / "src").rglob("*.py")):
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            m = pattern.search(line)
            if not m:
                continue
            if "``" in line:
                continue  # docstring showing the suppression syntax
            rules = m.group(2)
            if rules is None:
                # bare `ignore` waives everything, fork rules included
                offenders.append(f"{path}:{lineno}: blanket ignore")
            elif any(r in rules for r in FORK_RULE_IDS):
                offenders.append(f"{path}:{lineno}: {rules}")
    assert offenders == [], "\n".join(offenders)
