"""The ``python -m repro.verify`` command-line interface."""

import pytest

from repro.verify.__main__ import main


def test_single_network_ok(capsys):
    assert main(["--network", "tmin", "--k", "2", "--n", "2"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "OK" in out


def test_quiet_only_prints_summary(capsys):
    assert main(["--network", "bmin", "--k", "2", "--n", "2", "-q"]) == 0
    out = capsys.readouterr().out
    assert "PASS" not in out
    assert "verified 1 configuration(s)" in out


def test_butterfly_topology_flag(capsys):
    rc = main(
        ["--network", "tmin", "--k", "2", "--n", "3",
         "--topology", "butterfly", "-q"]
    )
    assert rc == 0


def test_skip_flags(capsys):
    rc = main(
        ["--network", "vmin", "--k", "2", "--n", "2",
         "--skip-paths", "--skip-partitions", "-q"]
    )
    assert rc == 0
    # Only the CDG checks remain; the summary still prints.
    assert "OK" in capsys.readouterr().out


def test_negative_control_rejected_means_exit_zero(capsys):
    assert main(["--negative-control"]) == 0
    out = capsys.readouterr().out
    assert "cycle witness" in out
    assert "->" in out


def test_all_small_tiny_ceiling(capsys):
    """--all-small with a small ceiling stays fast and runs the
    negative control too."""
    assert main(["--all-small", "--max-nodes", "8", "-q"]) == 0
    out = capsys.readouterr().out
    assert "+ negative control" in out
    assert "OK" in out


def test_no_action_errors():
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2
