"""Channel-dependency-graph construction and the Dally-Seitz check.

The CDG is derived by exhaustively walking the simulator's own routing
interface (``prepare`` / ``candidates`` / ``advance``), so these tests
certify the *live* code paths, not a hand-derived model.
"""

import pytest

from repro.verify import (
    CyclicRouteError,
    build_cdg,
    build_negative_control,
    check_acyclic,
    enumerate_routes,
    find_cycle_witness,
)
from repro.wormhole import build_network


# ----------------------------------------------------------- acyclicity


@pytest.mark.parametrize("kind", ["tmin", "dmin", "vmin", "bmin"])
@pytest.mark.parametrize("k,n", [(2, 2), (2, 3), (4, 2)])
def test_paper_networks_are_acyclic(kind, k, n):
    net = build_network(kind, k=k, n=n)
    result = check_acyclic(net)
    assert result.acyclic, result.witness()
    assert result.cycle is None
    assert result.witness() == ""
    assert result.num_channels > 0
    assert result.num_dependencies > 0
    assert result.granularity == "channel"


@pytest.mark.parametrize("kind", ["tmin", "bmin"])
def test_butterfly_and_bmin_variants_acyclic(kind):
    if kind == "tmin":
        net = build_network("tmin", k=2, n=3, topology="butterfly")
    else:
        net = build_network("bmin", k=2, n=3, bmin_virtual_channels=2)
    assert check_acyclic(net).acyclic


def test_lane_expansion_granularity():
    net = build_network("vmin", k=2, n=2, virtual_channels=3)
    chan = check_acyclic(net)
    lanes = check_acyclic(net, expand_lanes=True)
    assert chan.acyclic and lanes.acyclic
    assert lanes.granularity == "lane"
    # Lane expansion multiplies the multi-lane nodes, never shrinks.
    assert lanes.num_channels > chan.num_channels


def test_cdg_nodes_are_channel_labels():
    net = build_network("tmin", k=2, n=2)
    g = build_cdg(net)
    labels = {ch.label for ch in net.topo_channels}
    assert set(g.nodes) <= labels
    # Dependencies follow the pipeline: every injection channel that
    # appears must have out-edges only.
    for node in g.nodes:
        if node.startswith("inj"):
            assert g.in_degree(node) == 0


def test_find_cycle_witness_shapes():
    import networkx as nx

    g = nx.DiGraph([("a", "b"), ("b", "c")])
    assert find_cycle_witness(g) is None
    g.add_edge("c", "a")
    cyc = find_cycle_witness(g)
    assert cyc is not None
    assert cyc[0] == cyc[-1]  # closed walk
    assert set(cyc) <= {"a", "b", "c"}


# ------------------------------------------------- negative control


def test_negative_control_is_rejected():
    net = build_negative_control(k=2, n=3)
    result = check_acyclic(net)
    assert not result.acyclic
    assert result.cycle is not None
    # The witness is a closed chain of real channel labels.
    assert result.cycle[0] == result.cycle[-1]
    labels = {ch.label for ch in net.topo_channels}
    assert set(result.cycle) <= labels
    assert " -> " in result.witness()


def test_negative_control_cycle_mixes_directions():
    """The injected cycle is a backward->forward re-ascent loop."""
    result = check_acyclic(build_negative_control(k=2, n=3))
    kinds = {lbl[:3] for lbl in result.cycle}
    assert "fwd" in kinds and "bwd" in kinds


# ------------------------------------------------- route enumeration


def test_enumerate_routes_unique_path_tmin():
    net = build_network("tmin", k=2, n=3)
    routes = enumerate_routes(net, 1, 6)
    assert len(routes) == 1
    # n+1 channels end to end (injection is boundary 0, delivery is
    # boundary n).
    assert len(routes[0]) == net.spec.n + 1


def test_enumerate_routes_bmin_theorem1_count():
    net = build_network("bmin", k=2, n=3)
    bmin = net.bmin
    for src, dst in [(0, 7), (0, 1), (3, 5)]:
        t = bmin.turn_stage(src, dst)
        routes = enumerate_routes(net, src, dst)
        assert len(routes) == 2**t
        for route in routes:
            # Theorem 1: 2(t+1) channels per shortest turnaround path.
            assert len(route) == 2 * (t + 1)


def test_enumerate_routes_raises_on_cyclic_routing():
    net = build_negative_control(k=2, n=3)
    with pytest.raises((CyclicRouteError, RuntimeError)):
        # Some pair whose routing can revisit a state.
        for src in range(net.N):
            for dst in range(net.N):
                if src != dst:
                    enumerate_routes(net, src, dst, max_routes=10_000)
