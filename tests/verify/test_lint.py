"""Unit tests for the simulator-hazard AST linter (rules RPV001-006)."""

from pathlib import Path

from repro.verify.lint import RULES, lint_paths, lint_source

REPO = Path(__file__).resolve().parent.parent.parent


def rules_of(source: str) -> list[str]:
    return [v.rule for v in lint_source(source)]


# ------------------------------------------------------------ RPV001


def test_rpv001_raw_random_import_use():
    src = "import random\nx = random.random()\n"
    assert "RPV001" in rules_of(src)


def test_rpv001_from_import():
    src = "from random import randint\nx = randint(0, 5)\n"
    assert "RPV001" in rules_of(src)


def test_rpv001_clean_randomstream():
    src = (
        "from repro.sim.rng import RandomStream\n"
        "rng = RandomStream(42)\nx = rng.random()\n"
    )
    assert rules_of(src) == []


# ------------------------------------------------------------ RPV002


def test_rpv002_wallclock_calls():
    for fn in ("time", "perf_counter", "monotonic"):
        src = f"import time\nt = time.{fn}()\n"
        assert "RPV002" in rules_of(src), fn


def test_rpv002_env_now_is_fine():
    assert rules_of("t = env.now\n") == []


# ------------------------------------------------------------ RPV003


def test_rpv003_eq_on_sim_time():
    assert "RPV003" in rules_of("if env.now == 5.0:\n    pass\n")
    assert "RPV003" in rules_of("ok = now != deadline\n")


def test_rpv003_ordering_is_fine():
    assert rules_of("if env.now >= 5.0:\n    pass\n") == []


# ------------------------------------------------------------ RPV004


def test_rpv004_mutable_default():
    assert "RPV004" in rules_of("def f(xs=[]):\n    return xs\n")
    assert "RPV004" in rules_of("def f(m={}):\n    return m\n")
    assert "RPV004" in rules_of("def f(s=set()):\n    return s\n")


def test_rpv004_dataclass_field_literal():
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class C:\n"
        "    xs: list = []\n"
    )
    assert "RPV004" in rules_of(src)


def test_rpv004_none_default_is_fine():
    assert rules_of("def f(xs=None):\n    return xs or []\n") == []


# ------------------------------------------------------------ RPV005


def test_rpv005_hold_without_release():
    src = (
        "def proc(env, res):\n"
        "    yield res.request()\n"
        "    yield env.timeout(5)\n"
    )
    assert "RPV005" in rules_of(src)


def test_rpv005_release_suppresses():
    src = (
        "def proc(env, res):\n"
        "    yield res.request()\n"
        "    yield env.timeout(5)\n"
        "    res.release()\n"
    )
    assert "RPV005" not in rules_of(src)


def test_rpv005_with_block_suppresses():
    src = (
        "def proc(env, res):\n"
        "    with res.request() as req:\n"
        "        yield req\n"
        "        yield env.timeout(5)\n"
    )
    assert "RPV005" not in rules_of(src)


def test_rpv005_nested_function_is_separate():
    """A release inside a *nested* def must not excuse the outer hold."""
    src = (
        "def proc(env, res):\n"
        "    yield res.request()\n"
        "    def helper():\n"
        "        res.release()\n"
    )
    assert "RPV005" in rules_of(src)


# ------------------------------------------------------------ RPV006


def test_rpv006_unguarded_publish_in_loop():
    src = (
        "def advance(self):\n"
        "    for ch in self.channels:\n"
        "        self.bus.publish_transmit(now, ch, lane)\n"
    )
    assert "RPV006" in rules_of(src)


def test_rpv006_while_loop_also_hot():
    src = (
        "def run(self):\n"
        "    while pending:\n"
        "        bus.publish_acquire(now, p, ch, 0)\n"
    )
    assert "RPV006" in rules_of(src)


def test_rpv006_enabled_guard_is_fine():
    src = (
        "def advance(self):\n"
        "    for ch in self.channels:\n"
        "        if self.bus.enabled:\n"
        "            self.bus.publish_transmit(now, ch, lane)\n"
    )
    assert rules_of(src) == []


def test_rpv006_hoisted_none_guard_is_fine():
    """The engine's hoisted pattern: obs = bus if bus.hot else None."""
    src = (
        "def advance(self):\n"
        "    bus = self.bus\n"
        "    obs = bus if bus.hot else None\n"
        "    for ch in self.channels:\n"
        "        if obs is not None:\n"
        "            obs.publish_transmit(now, ch, lane)\n"
    )
    assert rules_of(src) == []


def test_rpv006_guard_enclosing_whole_loop_is_fine():
    src = (
        "def advance(self):\n"
        "    if self.bus.hot:\n"
        "        for ch in self.channels:\n"
        "            self.bus.publish_transmit(now, ch, lane)\n"
    )
    assert rules_of(src) == []


def test_rpv006_cold_publish_outside_loop_is_fine():
    src = "def deliver(self):\n    self.bus.publish_deliver(now, p)\n"
    assert rules_of(src) == []


def test_rpv006_else_branch_is_not_guarded():
    src = (
        "def advance(self):\n"
        "    for ch in self.channels:\n"
        "        if self.bus.hot:\n"
        "            pass\n"
        "        else:\n"
        "            self.bus.publish_transmit(now, ch, lane)\n"
    )
    assert "RPV006" in rules_of(src)


def test_rpv006_nested_function_resets_loop_context():
    """A def inside a loop is a new scope: calling publish there is not
    (lexically) a hot-loop site."""
    src = (
        "def outer(self):\n"
        "    for ch in self.channels:\n"
        "        def cb():\n"
        "            bus.publish_offer(t, p)\n"
        "        register(cb)\n"
    )
    assert rules_of(src) == []


# ------------------------------------------------------- suppression


def test_line_suppression_all_rules():
    src = "import random  # lint-sim: ignore\nx = random.random()  # lint-sim: ignore\n"
    assert rules_of(src) == []


def test_line_suppression_specific_rule():
    src = "import random\nx = random.random()  # lint-sim: ignore[RPV001]\n"
    assert rules_of(src) == []
    # The wrong rule id does not suppress.
    src = "import random\nx = random.random()  # lint-sim: ignore[RPV002]\n"
    assert "RPV001" in rules_of(src)


def test_skip_file():
    src = "# lint-sim: skip-file\nimport random\nx = random.random()\n"
    assert rules_of(src) == []


def test_violation_str_has_location_and_rule():
    (v,) = lint_source("from random import randint\n", path="pkg/mod.py")
    assert str(v).startswith("pkg/mod.py:1:")
    assert "RPV001" in str(v)


def test_rules_table_complete():
    assert set(RULES) == {
        "RPV001",
        "RPV002",
        "RPV003",
        "RPV004",
        "RPV005",
        "RPV006",
        # fork-/signal-safety family (repro.verify.flow.forksafety)
        "RPV007",
        "RPV008",
        "RPV009",
        "RPV010",
    }


# ------------------------------------------------------ repo hygiene


def test_repo_simulation_code_is_clean():
    """The shipped simulator passes its own linter (CI's lint job)."""
    violations = lint_paths([REPO / "src", REPO / "benchmarks"])
    assert violations == [], "\n".join(str(v) for v in violations)
