"""Cross-validation: topology.graph helpers vs. the CDG verifier.

Two *independent* machine checks of the same claims must agree:

* :mod:`repro.topology.graph` reasons about the abstract wiring
  (networkx graphs built straight from the topology specs);
* :mod:`repro.verify.cdg` walks the live simulator's routing interface
  (``prepare`` / ``candidates`` / ``advance``) channel by channel.

If the two ever disagree -- on acyclicity, on path counts, on path
lengths -- one of the models has drifted from the other, which is
exactly the class of regression the static verifier exists to catch.
"""

import pytest

from repro.topology.bmin import BidirectionalMIN
from repro.topology.graph import (
    bmin_to_digraph,
    count_paths,
    is_acyclic,
    min_to_digraph,
    network_diameter_hops,
)
from repro.topology.mins import cube_min
from repro.verify import check_acyclic, enumerate_routes
from repro.wormhole import build_network

GEOMETRIES = [(2, 2), (2, 3), (4, 2), (4, 3)]


@pytest.mark.parametrize("k,n", GEOMETRIES)
def test_tmin_acyclicity_agrees(k, n):
    spec = cube_min(k, n)
    net = build_network("tmin", k=k, n=n)
    assert is_acyclic(min_to_digraph(spec))
    assert check_acyclic(net).acyclic


@pytest.mark.parametrize("k,n", GEOMETRIES)
def test_bmin_acyclicity_agrees(k, n):
    bmin = BidirectionalMIN(k, n)
    net = build_network("bmin", k=k, n=n)
    assert is_acyclic(bmin_to_digraph(bmin))
    assert check_acyclic(net).acyclic


@pytest.mark.parametrize("k,n", [(2, 2), (2, 3), (4, 2)])
def test_tmin_path_counts_agree(k, n):
    """Banyan unique path: graph count == simulated route count == 1."""
    spec = cube_min(k, n)
    g = min_to_digraph(spec)
    net = build_network("tmin", k=k, n=n)
    for s in range(spec.N):
        for d in range(spec.N):
            assert count_paths(g, s, d) == 1
            assert len(enumerate_routes(net, s, d)) == 1


@pytest.mark.parametrize("k,n", [(2, 2), (2, 3), (4, 2)])
def test_bmin_path_counts_agree(k, n):
    """Theorem 1 two ways: graph paths (cut at 2t+3 edges) vs. the
    simulator's enumerated routes, for every (source, destination)."""
    bmin = BidirectionalMIN(k, n)
    g = bmin_to_digraph(bmin)
    net = build_network("bmin", k=k, n=n)
    for s in range(bmin.N):
        for d in range(bmin.N):
            if s == d:
                continue
            t = bmin.turn_stage(s, d)
            expected = k**t
            assert count_paths(g, s, d, cutoff=2 * t + 3) == expected
            routes = enumerate_routes(net, s, d)
            assert len(routes) == expected
            assert all(len(r) == 2 * (t + 1) for r in routes)


@pytest.mark.parametrize("k,n", [(2, 2), (2, 3), (4, 2), (4, 3)])
def test_diameters_agree_with_route_lengths(k, n):
    """network_diameter_hops == the longest simulated route."""
    spec = cube_min(k, n)
    assert network_diameter_hops(min_to_digraph(spec), spec.N) == n + 1

    net = build_network("tmin", k=k, n=n)
    longest = max(
        len(enumerate_routes(net, s, d)[0])
        for s in range(net.N)
        for d in range(net.N)
        if s != d
    )
    assert longest == n + 1

    bmin = BidirectionalMIN(k, n)
    assert network_diameter_hops(bmin_to_digraph(bmin), bmin.N) == 2 * n
    bnet = build_network("bmin", k=k, n=n)
    blongest = max(
        max(len(r) for r in enumerate_routes(bnet, s, d))
        for s in range(bnet.N)
        for d in range(bnet.N)
        if s != d
    )
    assert blongest == 2 * n
