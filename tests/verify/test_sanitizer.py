"""Runtime sanitizer: clean runs pass, corrupted state is caught."""

import pytest

from repro.sim import Environment, ProcessCrash
from repro.sim.rng import RandomStream
from repro.verify import Sanitizer, SanitizerError, sanitize_enabled
from repro.verify.sanitizer import check_interval
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole import channel as channel_mod
from repro.wormhole.packet import PacketState


@pytest.fixture(autouse=True)
def _restore_release_observer():
    """The pairing hook is module-global; never leak it across tests."""
    saved = channel_mod.release_observer
    yield
    channel_mod.release_observer = saved


def make_engine(kind="tmin", sanitize=True, **kwargs):
    env = Environment()
    net = build_network(kind, k=2, n=3, **kwargs)
    eng = WormholeEngine(env, net, rng=RandomStream(7), sanitize=sanitize)
    return env, eng


# ------------------------------------------------------------- opt-in


def test_enable_flag_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "yes")
    assert sanitize_enabled()


def test_check_interval_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE_EVERY", raising=False)
    assert check_interval() == 1
    monkeypatch.setenv("REPRO_SANITIZE_EVERY", "16")
    assert check_interval() == 16
    monkeypatch.setenv("REPRO_SANITIZE_EVERY", "junk")
    assert check_interval() == 1
    monkeypatch.setenv("REPRO_SANITIZE_EVERY", "-3")
    assert check_interval() == 1


def test_engine_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    _, eng = make_engine(sanitize=None)
    assert eng.sanitizer is None


def test_engine_on_via_env(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    _, eng = make_engine(sanitize=None)
    assert isinstance(eng.sanitizer, Sanitizer)


# ---------------------------------------------------------- clean runs


@pytest.mark.parametrize("kind", ["tmin", "dmin", "vmin", "bmin"])
def test_clean_traffic_passes(kind):
    env, eng = make_engine(kind)
    rng = RandomStream(3)
    packets = []
    for i in range(40):
        src = rng.uniform_int(0, 7)
        dst = rng.uniform_int(0, 7)
        while dst == src:
            dst = rng.uniform_int(0, 7)
        packets.append(eng.offer(src, dst, rng.uniform_int(1, 24)))
    eng.drain()
    assert all(p.state is PacketState.DELIVERED for p in packets)
    assert eng.sanitizer.cycles_checked > 0
    assert eng.sanitizer.violations == 0


def test_hard_fault_abort_is_exempt():
    """Fault recovery flushes a worm mid-flight; the pairing check must
    accept the abort's early releases."""
    from repro.faults import FaultPlan

    env, eng = make_engine("tmin")
    p = eng.offer(0, 6, 200)
    eng.start()
    env.run(until=5)
    route_labels = [ln.channel.label for ln in p.lanes]
    # Fail a channel the worm actually holds, to force an abort.
    plan = FaultPlan.single(at=1, channel=route_labels[1], severity="hard")
    inj = plan.install(env, eng.network, eng)
    env.run(until=50)
    assert inj.killed_worms == 1
    assert p.state is PacketState.FAILED
    assert eng.sanitizer.violations == 0


# ----------------------------------------------------- corruption traps


def _first_owned_lane(eng):
    for ch in eng.network.topo_channels:
        for lane in ch.lanes:
            if lane.owner is not None and not ch.is_delivery:
                return lane
    raise AssertionError("no owned lane in flight")


def _run_until_in_flight(env, eng):
    eng.offer(0, 6, 500)
    eng.start()
    env.run(until=6)


def test_catches_buffer_overflow(monkeypatch):
    env, eng = make_engine()
    _run_until_in_flight(env, eng)
    lane = _first_owned_lane(eng)
    lane.buf = 5  # cosmic ray
    with pytest.raises((SanitizerError, ProcessCrash), match="1-flit buffer"):
        env.run(until=env.now + 5)


def test_catches_ownership_drift(monkeypatch):
    env, eng = make_engine()
    _run_until_in_flight(env, eng)
    lane = _first_owned_lane(eng)
    lane.channel.owned_count += 1
    with pytest.raises((SanitizerError, ProcessCrash), match="owned_count"):
        env.run(until=env.now + 5)


def test_catches_conservation_break(monkeypatch):
    env, eng = make_engine()
    _run_until_in_flight(env, eng)
    lane = _first_owned_lane(eng)
    lane.sent += 3  # downstream claims flits upstream never sent
    with pytest.raises((SanitizerError, ProcessCrash)):
        env.run(until=env.now + 5)


def test_catches_early_release():
    env, eng = make_engine()
    _run_until_in_flight(env, eng)
    lane = _first_owned_lane(eng)
    assert lane.sent < lane.owner.length
    with pytest.raises(SanitizerError, match="pairing"):
        lane.release()


def test_catches_release_of_free_lane():
    env, eng = make_engine()
    free = None
    for ch in eng.network.topo_channels:
        for lane in ch.lanes:
            if lane.owner is None:
                free = lane
                break
        if free:
            break
    with pytest.raises(SanitizerError, match="unowned"):
        free.release()


def test_foreign_channels_are_not_policed():
    """The global release hook ignores channels outside the sanitized
    network (unit-test fixtures, other engines)."""
    from repro.wormhole.channel import PhysChannel
    from repro.wormhole.packet import Packet

    _, eng = make_engine()  # installs the observer
    ch = PhysChannel("standalone")
    lane = ch.lanes[0]
    lane.acquire(Packet(0, 0, 1, 4, 0.0))
    lane.release()  # mid-worm, but not our network: no SanitizerError
    assert eng.sanitizer.violations == 0


def test_zero_cost_when_disabled():
    """sanitize=False engines neither create a Sanitizer nor hook the
    channel layer."""
    channel_mod.release_observer = None
    _, eng = make_engine(sanitize=False)
    assert eng.sanitizer is None
    assert channel_mod.release_observer is None
