"""Tests for AllOf / AnyOf condition events."""

import pytest

from repro.sim import AllOf, AnyOf, Environment


def test_all_of_waits_for_every_event():
    env = Environment()
    t1, t2, t3 = env.timeout(1, "a"), env.timeout(5, "b"), env.timeout(3, "c")
    done = []

    def proc():
        result = yield AllOf(env, [t1, t2, t3])
        done.append((env.now, list(result.values())))

    env.process(proc())
    env.run()
    assert done == [(5, ["a", "b", "c"])]


def test_any_of_triggers_on_first():
    env = Environment()
    t1, t2 = env.timeout(4, "slow"), env.timeout(1, "fast")
    done = []

    def proc():
        result = yield AnyOf(env, [t1, t2])
        done.append((env.now, list(result.values())))

    env.process(proc())
    env.run()
    assert done == [(1, ["fast"])]


def test_operator_and_builds_all_of():
    env = Environment()
    got = []

    def proc():
        res = yield env.timeout(2, "x") & env.timeout(3, "y")
        got.append((env.now, sorted(res.values())))

    env.process(proc())
    env.run()
    assert got == [(3, ["x", "y"])]


def test_operator_or_builds_any_of():
    env = Environment()
    got = []

    def proc():
        res = yield env.timeout(2, "x") | env.timeout(9, "y")
        got.append((env.now, list(res.values())))

    env.process(proc())
    env.run()
    assert got == [(2, ["x"])]


def test_all_of_empty_triggers_immediately():
    env = Environment()
    got = []

    def proc():
        res = yield AllOf(env, [])
        got.append((env.now, res))

    env.process(proc())
    env.run()
    assert got == [(0, {})]


def test_all_of_fails_if_any_child_fails():
    env = Environment()
    ev = env.event()
    t = env.timeout(10)
    caught = []

    def proc():
        try:
            yield AllOf(env, [ev, t])
        except ValueError as exc:
            caught.append((env.now, str(exc)))

    env.process(proc())

    def failer():
        yield env.timeout(2)
        ev.fail(ValueError("child broke"))

    env.process(failer())
    env.run()
    assert caught == [(2, "child broke")]


def test_any_of_with_already_processed_event():
    env = Environment()
    pre = env.event()
    pre.succeed("early")
    env.run()  # process `pre`
    got = []

    def proc():
        res = yield AnyOf(env, [pre, env.timeout(50)])
        got.append((env.now, list(res.values())))

    env.process(proc())
    env.run(until=10)
    assert got == [(0, ["early"])]


def test_condition_rejects_mixed_environments():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env1.timeout(1), env2.timeout(1)])


def test_late_failure_after_any_of_satisfied_is_defused():
    """A child failing after the AnyOf fired must not crash the run."""
    env = Environment()
    ev = env.event()
    done = []

    def proc():
        res = yield AnyOf(env, [env.timeout(1, "ok"), ev])
        done.append(list(res.values()))

    env.process(proc())

    def failer():
        yield env.timeout(5)
        ev.fail(RuntimeError("too late"))

    env.process(failer())
    env.run()
    assert done == [["ok"]]
