"""Unit tests for the DES kernel's environment and event loop."""

import pytest

from repro.sim import (
    EmptySchedule,
    Environment,
    Interrupt,
    ProcessCrash,
    Timeout,
)


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=42.5).now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(10)
    env.run()
    assert env.now == 10


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_exactly():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1)

    env.process(ticker())
    env.run(until=5)
    assert env.now == 5


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(3)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"
    assert env.now == 3


def test_run_with_no_events_returns_none():
    env = Environment()
    assert env.run() is None


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_events_processed_in_time_order():
    env = Environment()
    log = []

    def waiter(delay, tag):
        yield env.timeout(delay)
        log.append((env.now, tag))

    env.process(waiter(5, "b"))
    env.process(waiter(2, "a"))
    env.process(waiter(9, "c"))
    env.run()
    assert log == [(2, "a"), (5, "b"), (9, "c")]


def test_fifo_order_at_equal_times():
    env = Environment()
    log = []

    def waiter(tag):
        yield env.timeout(1)
        log.append(tag)

    for tag in "abcd":
        env.process(waiter(tag))
    env.run()
    assert log == list("abcd")


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.run()
    assert env.peek() == float("inf")


def test_event_succeed_value_propagates():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        got.append((yield ev))

    env.process(waiter())
    ev.succeed("payload")
    env.run()
    assert got == ["payload"]


def test_event_fail_raises_inside_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_crashes_run():
    env = Environment()
    env.event().fail(ValueError("nobody listens"))
    with pytest.raises(ProcessCrash):
        env.run()


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()
    with pytest.raises(RuntimeError):
        ev.fail(RuntimeError())


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_event_state_properties():
    env = Environment()
    ev = env.event()
    assert not ev.triggered and not ev.processed
    with pytest.raises(AttributeError):
        _ = ev.value
    with pytest.raises(AttributeError):
        _ = ev.ok
    ev.succeed(5)
    assert ev.triggered and not ev.processed
    assert ev.ok and ev.value == 5
    env.run()
    assert ev.processed


def test_process_return_value_is_event_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 99

    p = env.process(proc())
    env.run()
    assert p.value == 99


def test_process_waits_on_other_process():
    env = Environment()

    def child():
        yield env.timeout(4)
        return "child-result"

    def parent():
        result = yield env.process(child())
        return result + "!"

    p = env.process(parent())
    env.run()
    assert p.value == "child-result!"
    assert env.now == 4


def test_yield_already_processed_event_continues_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("x")
    times = []

    def proc():
        yield env.timeout(1)  # let ev be processed first
        val = yield ev
        times.append((env.now, val))

    env.process(proc())
    env.run()
    assert times == [(1, "x")]


def test_yield_non_event_kills_process():
    env = Environment()

    def bad():
        yield 42  # type: ignore[misc]

    env.process(bad())
    with pytest.raises(ProcessCrash):
        env.run()


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def boomer():
        yield env.timeout(1)
        raise KeyError("k")

    caught = []

    def waiter():
        try:
            yield env.process(boomer())
        except KeyError as exc:
            caught.append(exc)

    env.process(waiter())
    env.run()
    assert len(caught) == 1


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(2)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            causes.append((env.now, i.cause))

    def attacker(victim_proc):
        yield env.timeout(3)
        victim_proc.interrupt("stop it")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert causes == [(3, "stop it")]


def test_interrupted_process_can_keep_running():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(5)
        log.append(env.now)

    def attacker(vp):
        yield env.timeout(1)
        vp.interrupt()

    env.process(attacker(env.process(victim())))
    env.run()
    assert log == [6]


def test_interrupt_detaches_from_old_target():
    """After an interrupt, the original timeout must not resume the process."""
    env = Environment()
    resumes = []

    def victim():
        try:
            yield env.timeout(10)
        except Interrupt:
            resumes.append("interrupted")
        yield env.timeout(100)
        resumes.append("finished")

    def attacker(vp):
        yield env.timeout(1)
        vp.interrupt()

    env.process(attacker(env.process(victim())))
    env.run()
    # Exactly one interrupt and one finish; the orphaned timeout at t=10
    # must not cause a duplicate resume.
    assert resumes == ["interrupted", "finished"]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(0)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()
    errors = []

    def proc(handle):
        try:
            handle[0].interrupt()
        except RuntimeError as exc:
            errors.append(exc)
        yield env.timeout(0)

    handle = []
    handle.append(env.process(proc(handle)))
    env.run()
    assert len(errors) == 1


def test_timeout_carries_value():
    env = Environment()
    got = []

    def proc():
        got.append((yield env.timeout(2, value="tick")))

    env.process(proc())
    env.run()
    assert got == ["tick"]


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_len_counts_scheduled_events():
    env = Environment()
    env.timeout(1)
    env.timeout(2)
    assert len(env) == 2


def test_isolated_environments_do_not_interact():
    env1, env2 = Environment(), Environment()
    env1.timeout(5)
    env2.run()
    assert env2.now == 0.0
    env1.run()
    assert env1.now == 5


def test_nested_simulation_time_interleaving():
    """Two ticker processes at different periods interleave correctly."""
    env = Environment()
    log = []

    def ticker(period, tag, n):
        for _ in range(n):
            yield env.timeout(period)
            log.append((env.now, tag))

    env.process(ticker(2, "fast", 3))
    env.process(ticker(3, "slow", 2))
    env.run()
    # At t=6 the slow tick fires first: its timeout was scheduled at t=3,
    # before the fast ticker's (scheduled at t=4), and ties break FIFO.
    assert log == [(2, "fast"), (3, "slow"), (4, "fast"), (6, "slow"), (6, "fast")]


def test_repr_smoke():
    env = Environment()
    ev = env.event()
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
    t = env.timeout(3)
    assert "Timeout" in repr(t)

    def proc():
        yield env.timeout(0)

    p = env.process(proc(), name="worker")
    assert "worker" in repr(p)
    env.run()
    assert "processed" in repr(ev)


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
def test_reset_restores_fresh_kernel(scheduler):
    """reset() zeroes the profiler counters and empties the schedule.

    Regression: back-to-back simulation points reusing one Environment
    must not leak ``events_scheduled`` / ``events_fired`` /
    ``max_heap_depth`` from the previous point into the next kernel
    profile.
    """
    env = Environment(initial_time=5.0, scheduler=scheduler)

    def ticker():
        for _ in range(4):
            yield env.timeout(1.5)  # fractional: exercises the heap too

    env.process(ticker())
    env.process(ticker())
    env.run()
    assert env.events_scheduled > 0
    assert env.events_fired > 0
    assert env.max_heap_depth > 0
    assert env.now > 5.0

    env.reset()
    assert env.now == 5.0
    assert env.events_scheduled == 0
    assert env.events_fired == 0
    assert env.max_heap_depth == 0
    assert env.peek() == float("inf")

    # The reset kernel must behave exactly like a fresh one.
    fresh = Environment(initial_time=5.0, scheduler=scheduler)
    log = {}
    for name, e in (("reset", env), ("fresh", fresh)):
        order = []

        def proc(tag, e=e, order=order):
            yield e.timeout(1.0)
            order.append((e.now, tag))
            yield e.timeout(0.25)
            order.append((e.now, tag))

        e.process(proc("a"))
        e.process(proc("b"))
        e.run()
        log[name] = (order, e.events_scheduled, e.events_fired, e.now)
    assert log["reset"] == log["fresh"]
