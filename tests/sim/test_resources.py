"""Tests for Resource / PriorityResource / Store / Container."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


# ---------------------------------------------------------------- Resource


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.count == 2


def test_resource_release_grants_next_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert not r2.triggered
    res.release(r1)
    assert r2.triggered


def test_resource_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(tag, hold):
        with res.request() as req:
            yield req
            log.append(("got", tag, env.now))
            yield env.timeout(hold)
        log.append(("rel", tag, env.now))

    env.process(user("a", 3))
    env.process(user("b", 2))
    env.run()
    assert log == [
        ("got", "a", 0),
        ("rel", "a", 3),
        ("got", "b", 3),
        ("rel", "b", 5),
    ]


def test_resource_release_of_nonholder_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    stranger = Resource(env, capacity=1).request()
    with pytest.raises(RuntimeError):
        res.release(stranger)


def test_resource_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    r2.cancel()
    res.release(r1)
    assert not r2.triggered
    assert res.count == 0


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_fifo_fairness():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    for tag in range(5):
        env.process(user(tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


# -------------------------------------------------------- PriorityResource


def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def user(tag, prio, start):
        yield env.timeout(start)
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        yield env.timeout(10)
        res.release(req)

    env.process(user("first", 5, 0))    # holds the slot
    env.process(user("low", 9, 1))      # queued
    env.process(user("high", 1, 2))     # queued later but higher priority
    env.run()
    assert order == ["first", "high", "low"]


def test_priority_resource_ties_broken_fifo():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    hold = res.request(priority=0)
    a = res.request(priority=3)
    b = res.request(priority=3)
    res.release(hold)
    assert a.triggered and not b.triggered


def test_priority_resource_cancel():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    hold = res.request(priority=0)
    a = res.request(priority=1)
    a.cancel()
    b = res.request(priority=2)
    res.release(hold)
    assert not a.triggered and b.triggered


# -------------------------------------------------------------------- Store


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("x")
    got = store.get()
    assert got.triggered and got.value == "x"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(4)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(4, "late")]


def test_store_is_fifo():
    env = Environment()
    store = Store(env)
    for i in range(3):
        store.put(i)
    assert [store.get().value for _ in range(3)] == [0, 1, 2]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    p1 = store.put("a")
    p2 = store.put("b")
    assert p1.triggered and not p2.triggered
    g = store.get()
    assert g.value == "a"
    assert p2.triggered
    assert store.items == ["b"]


def test_store_filtered_get():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    store.put(3)
    g = store.get(filter=lambda x: x % 2 == 0)
    assert g.value == 2
    assert store.items == [1, 3]


def test_store_filtered_get_waits_for_match():
    env = Environment()
    store = Store(env)
    store.put("nope")
    matched = []

    def consumer():
        item = yield store.get(filter=lambda x: x == "yes")
        matched.append((env.now, item))

    def producer():
        yield env.timeout(2)
        yield store.put("yes")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert matched == [(2, "yes")]
    assert store.items == ["nope"]


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    assert len(store) == 2


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


# ---------------------------------------------------------------- Container


def test_container_levels():
    env = Environment()
    c = Container(env, capacity=10, init=5)
    assert c.level == 5
    c.put(3)
    assert c.level == 8
    c.get(6)
    assert c.level == 2


def test_container_get_blocks_until_enough():
    env = Environment()
    c = Container(env, capacity=100, init=0)
    got = []

    def consumer():
        yield c.get(10)
        got.append(env.now)

    def producer():
        for _ in range(2):
            yield env.timeout(3)
            yield c.put(5)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [6]
    assert c.level == 0


def test_container_put_blocks_at_capacity():
    env = Environment()
    c = Container(env, capacity=10, init=9)
    p = c.put(5)
    assert not p.triggered
    c.get(4)
    assert p.triggered
    assert c.level == 10


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    c = Container(env, capacity=5)
    with pytest.raises(ValueError):
        c.put(0)
    with pytest.raises(ValueError):
        c.get(-1)
