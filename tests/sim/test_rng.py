"""Tests for the reproducible random streams."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RandomStream


def test_same_seed_same_sequence():
    a = RandomStream(123)
    b = RandomStream(123)
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_seeds_differ():
    a = RandomStream(1)
    b = RandomStream(2)
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_fork_is_deterministic_and_independent():
    root1, root2 = RandomStream(7), RandomStream(7)
    c1, c2 = root1.fork("node-3"), root2.fork("node-3")
    assert [c1.random() for _ in range(10)] == [c2.random() for _ in range(10)]
    other = RandomStream(7).fork("node-4")
    assert [RandomStream(7).fork("node-3").random() for _ in range(5)] != [
        other.random() for _ in range(5)
    ]


def test_fork_does_not_consume_parent_state():
    root = RandomStream(99)
    before = RandomStream(99)
    root.fork("x")
    assert root.random() == before.random()


def test_exponential_mean_close():
    rs = RandomStream(42)
    n = 20_000
    xs = [rs.exponential(10.0) for _ in range(n)]
    assert all(x > 0 for x in xs)
    assert abs(statistics.fmean(xs) - 10.0) < 0.3


def test_exponential_rejects_nonpositive_mean():
    rs = RandomStream(0)
    with pytest.raises(ValueError):
        rs.exponential(0)
    with pytest.raises(ValueError):
        rs.exponential(-1)


def test_uniform_int_bounds_and_coverage():
    rs = RandomStream(5)
    seen = {rs.uniform_int(3, 6) for _ in range(200)}
    assert seen == {3, 4, 5, 6}


def test_uniform_int_empty_range_rejected():
    with pytest.raises(ValueError):
        RandomStream(0).uniform_int(5, 4)


def test_choice_uniformity_and_validation():
    rs = RandomStream(11)
    seen = {rs.choice("abc") for _ in range(100)}
    assert seen == {"a", "b", "c"}
    with pytest.raises(ValueError):
        rs.choice([])


def test_shuffle_preserves_multiset():
    rs = RandomStream(2)
    xs = list(range(10))
    rs.shuffle(xs)
    assert sorted(xs) == list(range(10))


def test_bimodal_int_modes():
    rs = RandomStream(3)
    shorts = 0
    n = 5000
    for _ in range(n):
        x = rs.bimodal_int(8, 1024, short_fraction=0.7, split=32)
        assert 8 <= x <= 1024
        if x <= 32:
            shorts += 1
    assert abs(shorts / n - 0.7) < 0.05


def test_bimodal_validation():
    rs = RandomStream(0)
    with pytest.raises(ValueError):
        rs.bimodal_int(10, 5, 0.5, 7)
    with pytest.raises(ValueError):
        rs.bimodal_int(1, 10, 1.5, 5)


def test_weighted_index_respects_weights():
    rs = RandomStream(8)
    counts = [0, 0, 0]
    n = 9000
    for _ in range(n):
        counts[rs.weighted_index([1, 2, 0])] += 1
    assert counts[2] == 0
    assert abs(counts[0] / n - 1 / 3) < 0.05
    assert abs(counts[1] / n - 2 / 3) < 0.05


def test_weighted_index_validation():
    rs = RandomStream(0)
    with pytest.raises(ValueError):
        rs.weighted_index([0, 0])
    with pytest.raises(ValueError):
        rs.weighted_index([1, -1, 3])


@given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
@settings(max_examples=50, deadline=None)
def test_fork_seed_stable_property(seed, key):
    """Forked seeds depend only on (seed, key), not interpreter state."""
    s1 = RandomStream(seed).fork(key).seed
    s2 = RandomStream(seed).fork(key).seed
    assert s1 == s2


@given(st.integers(min_value=1, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_exponential_positive_property(mean):
    rs = RandomStream(1)
    assert rs.exponential(mean) > 0


@given(
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=0, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_uniform_int_in_bounds_property(low, width):
    rs = RandomStream(low * 31 + width)
    x = rs.uniform_int(low, low + width)
    assert low <= x <= low + width
