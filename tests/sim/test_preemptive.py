"""Tests for the preemptive resource."""

from repro.sim import Environment, Interrupt, Preempted, PreemptiveResource


def test_high_priority_evicts_low():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    log = []

    def low():
        req = res.request(priority=5)
        yield req
        log.append(("low-got", env.now))
        try:
            yield env.timeout(100)
            res.release(req)
        except Interrupt as i:
            assert isinstance(i.cause, Preempted)
            log.append(("low-evicted", env.now, i.cause.usage_since))

    def high():
        yield env.timeout(10)
        req = res.request(priority=1)
        yield req
        log.append(("high-got", env.now))
        yield env.timeout(5)
        res.release(req)

    env.process(low())
    env.process(high())
    env.run()
    assert ("low-got", 0) in log
    assert ("low-evicted", 10, 0) in log
    assert ("high-got", 10) in log


def test_equal_priority_does_not_preempt():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    order = []

    def user(tag, prio, start):
        yield env.timeout(start)
        req = res.request(priority=prio)
        yield req
        order.append((tag, env.now))
        yield env.timeout(20)
        res.release(req)

    env.process(user("a", 3, 0))
    env.process(user("b", 3, 5))
    env.run()
    assert order == [("a", 0), ("b", 20)]


def test_preempt_false_waits_politely():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    got = []

    def low():
        req = res.request(priority=9)
        yield req
        yield env.timeout(30)
        res.release(req)
        got.append(("low-done", env.now))

    def high_polite():
        yield env.timeout(1)
        req = res.request(priority=0, preempt=False)
        yield req
        got.append(("high-got", env.now))
        res.release(req)

    env.process(low())
    env.process(high_polite())
    env.run()
    assert got == [("low-done", 30), ("high-got", 30)]


def test_victim_context_manager_exit_is_safe():
    """A victim using `with` must not crash on double release."""
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    outcome = []

    def low():
        with res.request(priority=5) as req:
            try:
                yield req
                yield env.timeout(100)
            except Interrupt:
                outcome.append("evicted")
        outcome.append("exited-cleanly")

    def high():
        yield env.timeout(3)
        req = res.request(priority=1)
        yield req
        res.release(req)

    env.process(low())
    env.process(high())
    env.run()
    assert outcome == ["evicted", "exited-cleanly"]


def test_preemption_picks_worst_victim():
    env = Environment()
    res = PreemptiveResource(env, capacity=2)
    evicted = []

    def holder(tag, prio):
        req = res.request(priority=prio)
        yield req
        try:
            yield env.timeout(100)
            res.release(req)
        except Interrupt:
            evicted.append(tag)

    def intruder():
        yield env.timeout(5)
        req = res.request(priority=0)
        yield req

    env.process(holder("mild", 4))
    env.process(holder("worst", 9))
    env.process(intruder())
    env.run(until=50)
    assert evicted == ["worst"]


def test_queued_preemptive_request_granted_on_release():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    log = []

    def first():
        req = res.request(priority=1)
        yield req
        yield env.timeout(10)
        res.release(req)

    def second():
        yield env.timeout(1)
        # Same priority: cannot preempt, must queue.
        req = res.request(priority=1)
        yield req
        log.append(env.now)
        res.release(req)

    env.process(first())
    env.process(second())
    env.run()
    assert log == [10]


def test_preempted_repr():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    req = res.request(priority=2)
    cause = Preempted(req, usage_since=4.0)
    assert "priority 2" in repr(cause)
