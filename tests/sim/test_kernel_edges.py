"""Edge-case tests for the DES kernel: trigger(), late waits, chains."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, ProcessCrash


def test_event_trigger_copies_state():
    env = Environment()
    src = env.event()
    dst = env.event()
    src.callbacks.append(dst.trigger)
    src.succeed("payload")
    env.run()
    assert dst.processed and dst.ok and dst.value == "payload"


def test_event_trigger_copies_failure():
    env = Environment()
    src = env.event()
    dst = env.event()
    dst.defused = True  # we only inspect, nobody handles
    src.callbacks.append(dst.trigger)
    src.defused = True
    src.fail(ValueError("x"))
    env.run()
    assert dst.processed and not dst.ok
    assert isinstance(dst.value, ValueError)


def test_event_trigger_is_noop_when_already_triggered():
    env = Environment()
    src = env.event()
    dst = env.event()
    dst.succeed("mine")
    src.callbacks.append(dst.trigger)
    src.succeed("theirs")
    env.run()
    assert dst.value == "mine"


def test_process_chain_of_immediate_events():
    """A process yielding a chain of already-processed events never
    re-enters the scheduler (the _resume fast loop)."""
    env = Environment()
    done = []
    pre = [env.event() for _ in range(5)]
    for i, ev in enumerate(pre):
        ev.succeed(i)
    env.run()  # process them all

    def proc():
        total = 0
        for ev in pre:
            total += yield ev
        done.append((env.now, total))

    env.process(proc())
    env.run()
    assert done == [(0, 10)]


def test_waiting_on_already_failed_event_raises_in_process():
    env = Environment()
    bad = env.event()
    bad.defused = True
    bad.fail(KeyError("gone"))
    env.run()
    caught = []

    def proc():
        try:
            yield bad
        except KeyError:
            caught.append(True)

    env.process(proc())
    env.run()
    assert caught == [True]


def test_condition_of_conditions():
    env = Environment()
    got = []

    def proc():
        inner_a = AllOf(env, [env.timeout(1), env.timeout(2)])
        inner_b = AnyOf(env, [env.timeout(10), env.timeout(3)])
        yield AllOf(env, [inner_a, inner_b])
        got.append(env.now)

    env.process(proc())
    env.run()
    assert got == [3]


def test_crash_propagates_original_exception_as_cause():
    env = Environment()

    def boom():
        yield env.timeout(1)
        raise ZeroDivisionError("kaboom")

    env.process(boom())
    with pytest.raises(ProcessCrash) as excinfo:
        env.run()
    assert isinstance(excinfo.value.__cause__, ZeroDivisionError)


def test_two_processes_wait_on_same_event():
    env = Environment()
    gate = env.event()
    woken = []

    def waiter(tag):
        val = yield gate
        woken.append((tag, val))

    env.process(waiter("a"))
    env.process(waiter("b"))

    def opener():
        yield env.timeout(5)
        gate.succeed("open")

    env.process(opener())
    env.run()
    assert sorted(woken) == [("a", "open"), ("b", "open")]


def test_schedule_with_delay_direct():
    env = Environment()
    ev = Event(env)
    ev._ok = True
    ev._value = "late"
    env.schedule(ev, delay=7)
    seen = []
    ev.callbacks.append(lambda e: seen.append((env.now, e.value)))
    env.run()
    assert seen == [(7, "late")]
