"""Result-cache integrity: roundtrip, corruption quarantine, byte identity.

The acceptance bar for the service's determinism claim lives here:
for every one of the paper's four networks, on both engines, the cached
record is *byte-equal* (canonical payload JSON) to a fresh
recomputation.
"""

import dataclasses
import json

import pytest

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.workload_spec import WorkloadSpec
from repro.serve.cache import CorruptEntry, ResultCache
from repro.serve.canonical import payload_json
from repro.serve.compute import run_point_spec
from repro.serve.job import PointSpec

#: Small geometry + tiny windows: 8-node networks, a few dozen packets.
TINY = dataclasses.replace(
    SMOKE, warmup_packets=10, measure_packets=40, max_cycles=20_000
)

KEY_A = "a" * 64
KEY_B = "b" * 64


def _payload(value=1.5):
    return {"version": 1, "measurement": {"x": value, "nan_ok": float("nan")}}


# ------------------------------------------------------------- basic API


def test_roundtrip_and_stats(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get(KEY_A) is None
    path = cache.put(KEY_A, _payload())
    assert path.exists() and path == cache.path_for(KEY_A)
    got = cache.get(KEY_A)
    assert payload_json(got) == payload_json(_payload())
    assert cache.stats.to_dict() == {
        "hits": 1, "misses": 1, "corrupt": 0, "writes": 1,
    }
    assert len(cache) == 1


def test_two_level_fanout_layout(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.path_for(KEY_A).parent.name == "aa"
    assert cache.path_for(KEY_B).parent.name == "bb"


def test_invalid_keys_rejected(tmp_path):
    cache = ResultCache(tmp_path)
    for bad in ("", "abc", "A" * 64, "../" + "a" * 61, "g" * 64):
        with pytest.raises(ValueError, match="content key"):
            cache.path_for(bad)


def test_no_temp_files_left_behind(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(5):
        cache.put(KEY_A, _payload(float(i)))
    leftovers = [p for p in tmp_path.rglob("*.tmp")]
    assert leftovers == []
    # last write wins
    assert cache.get(KEY_A)["measurement"]["x"] == 4.0


def test_overwrite_is_idempotent(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(KEY_A, _payload())
    first = cache.path_for(KEY_A).read_bytes()
    cache.put(KEY_A, _payload())
    assert cache.path_for(KEY_A).read_bytes() == first


# ------------------------------------------------------- corruption paths


def _corruption_cases():
    return [
        ("truncated", lambda raw: raw[: len(raw) // 2]),
        ("bit_flip", lambda raw: raw.replace(b'"x":1.5', b'"x":1.6')),
        ("not_json", lambda raw: b"hello, entropy"),
        ("not_object", lambda raw: b'["array"]'),
        ("bad_version", lambda raw: raw.replace(b'"version":1', b'"version":9')),
        ("no_payload", lambda raw: b'{"version":1,"key":"' + b"a" * 64 + b'"}'),
    ]


@pytest.mark.parametrize(
    "name,mutate", _corruption_cases(), ids=[c[0] for c in _corruption_cases()]
)
def test_corruption_quarantined_and_recomputed(tmp_path, name, mutate):
    cache = ResultCache(tmp_path)
    path = cache.put(KEY_A, _payload())
    path.write_bytes(mutate(path.read_bytes()))

    assert cache.get(KEY_A) is None           # read as a miss, not a crash
    assert not path.exists()                  # moved aside ...
    quarantined = list(cache.quarantine_dir.iterdir())
    assert len(quarantined) == 1              # ... never deleted
    assert quarantined[0].name.endswith(".corrupt")
    assert cache.stats.corrupt == 1 and cache.stats.misses == 1

    # the rewrite heals the slot
    cache.put(KEY_A, _payload())
    assert cache.get(KEY_A)["measurement"]["x"] == 1.5


def test_wrong_key_entry_quarantined(tmp_path):
    """An entry copied under another name fails the self-key check."""
    cache = ResultCache(tmp_path)
    src = cache.put(KEY_A, _payload())
    dst = cache.path_for(KEY_B)
    dst.parent.mkdir(parents=True, exist_ok=True)
    dst.write_bytes(src.read_bytes())
    assert cache.get(KEY_B) is None
    assert cache.stats.corrupt == 1
    assert cache.get(KEY_A) is not None       # the original is untouched


def test_repeated_corruption_serializes_quarantine_names(tmp_path):
    cache = ResultCache(tmp_path)
    for _ in range(3):
        path = cache.put(KEY_A, _payload())
        path.write_text("garbage")
        assert cache.get(KEY_A) is None
    names = sorted(p.name for p in cache.quarantine_dir.iterdir())
    assert len(names) == 3 and len(set(names)) == 3


def test_verify_reports_checksum_mismatch(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(KEY_A, _payload())
    raw = json.loads(path.read_text())
    raw["payload"]["measurement"]["x"] = 99.0
    with pytest.raises(CorruptEntry, match="checksum mismatch"):
        cache._verify(KEY_A, json.dumps(raw))


# --------------------------------------------- determinism acceptance bar


@pytest.mark.parametrize("kind", ["tmin", "dmin", "vmin", "bmin"])
@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_cache_hit_byte_equals_recomputation(tmp_path, kind, engine):
    """Cached record == fresh recomputation, byte for byte.

    All four networks, both engines (the issue's determinism gate).
    """
    point = PointSpec(
        network=NetworkConfig(kind, k=2, n=3),
        workload=WorkloadSpec(k=2, n=3),
        load=0.4,
        seed=11,
        run=TINY,
        engine=engine,
    )
    cache = ResultCache(tmp_path)
    first = run_point_spec(point)
    cache.put(point.key(), first)

    cached = cache.get(point.key())
    recomputed = run_point_spec(point)
    assert payload_json(cached) == payload_json(recomputed)
    assert payload_json(cached) == payload_json(first)
    # a sanity floor: the payload carries a real measurement
    assert cached["measurement"]["delivered_packets"] > 0
