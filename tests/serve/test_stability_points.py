"""Stability-config points through the serving layer (PR 7 wiring).

`PointSpec.stability` selects the overload-toolkit execution path
(:func:`repro.experiments.stability.stability_point`).  These tests pin
the three contracts that keep the cache sound around it: canonical
normalization (two spellings of one config cannot split keys), job_id
stability for pre-existing plain jobs, and deterministic payloads.
"""

import json

import pytest

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.workload_spec import WorkloadSpec
from repro.serve.canonical import payload_json
from repro.serve.compute import run_point_spec
from repro.serve.job import (
    STABILITY_DEFAULTS,
    FaultSpec,
    JobSpec,
    PointSpec,
    validate_stability,
)

NET = NetworkConfig(kind="dmin", k=2, n=3)
WL = WorkloadSpec(k=2, n=3)


def spec_with(stability):
    return JobSpec(
        networks=(NET,),
        run=SMOKE,
        workload=WL,
        loads=(0.4,),
        seeds=(7,),
        stability=stability,
    )


# -------------------------------------------------------- normalization


def test_defaults_are_materialized():
    assert validate_stability({}) == dict(sorted(STABILITY_DEFAULTS.items()))
    assert validate_stability(None) is None


def test_two_spellings_one_key():
    """Omitted-vs-explicit defaults must hash identically."""
    implicit = PointSpec(NET, WL, 0.4, 7, SMOKE, stability={"capacity": 64})
    explicit = PointSpec(
        NET, WL, 0.4, 7, SMOKE,
        stability={**STABILITY_DEFAULTS, "capacity": 64},
    )
    assert implicit.stability == explicit.stability
    assert implicit.key() == explicit.key()


def test_unknown_key_rejected():
    with pytest.raises(ValueError, match="unknown stability key"):
        validate_stability({"admission": "aimd"})


def test_bad_values_rejected():
    with pytest.raises(ValueError, match="batches"):
        validate_stability({"batches": 4})
    with pytest.raises(ValueError, match="capacity"):
        validate_stability({"capacity": 0})
    with pytest.raises(ValueError, match="mode"):
        validate_stability({"mode": "yolo"})


def test_stability_and_faults_exclusive():
    with pytest.raises(ValueError, match="combine stability and faults"):
        PointSpec(
            NET, WL, 0.4, 7, SMOKE,
            faults=FaultSpec(rate=0.01),
            stability={},
        )


# ------------------------------------------------------------ round-trip


def test_jobspec_round_trips_with_stability():
    spec = spec_with({"capacity": 64, "governed": False})
    again = JobSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.job_id == spec.job_id
    assert again.points()[0].stability == spec.points()[0].stability


def test_plain_jobs_keep_their_job_id():
    """`to_dict` omits a None stability block, so every job_id minted
    before the field existed still addresses the same manifest."""
    spec = spec_with(None)
    assert "stability" not in spec.to_dict()
    assert JobSpec.from_dict(spec.to_dict()) == spec


def test_points_inherit_job_stability():
    (point,) = spec_with({"capacity": 64}).points()
    assert point.stability is not None
    assert point.stability["capacity"] == 64
    assert point.stability["batches"] == STABILITY_DEFAULTS["batches"]


# --------------------------------------------------------------- payload


@pytest.fixture(scope="module")
def payload():
    (point,) = spec_with({"capacity": 64}).points()
    return run_point_spec(point)


def test_payload_carries_classification(payload):
    block = payload["stability"]
    assert block["classification"] in ("stable", "metastable", "collapsed")
    assert block["config"]["capacity"] == 64
    assert set(block["steady"]) == {
        "samples", "truncation", "mean", "cv", "drift",
    }
    assert payload["measurement"]["delivered_packets"] > 0


def test_payload_is_deterministic(payload):
    (point,) = spec_with({"capacity": 64}).points()
    again = run_point_spec(point)
    assert payload_json(again) == payload_json(payload)


def test_payload_is_json_serializable(payload):
    json.loads(payload_json(payload))
