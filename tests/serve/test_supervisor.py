"""Supervised worker pool: completion, death recovery, poison, hedging.

The runners here are module-level functions (they cross the process
boundary).  Crash drills coordinate through sentinel files passed via
environment variables, which forked workers inherit.
"""

import dataclasses
import os
import signal
import time
from pathlib import Path

import pytest

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.workload_spec import WorkloadSpec
from repro.faults.recovery import RetryPolicy
from repro.serve.canonical import payload_json
from repro.serve.compute import run_point_spec
from repro.serve.job import PointSpec
from repro.serve.supervisor import (
    PointOutcome,
    SupervisePolicy,
    SupervisorReport,
    WorkerSupervisor,
)

TINY = dataclasses.replace(
    SMOKE, warmup_packets=10, measure_packets=40, max_cycles=20_000
)

FAST_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.01, factor=2.0, max_delay=0.05, jitter=0.0
)

_KILL_ENV = "REPRO_SERVE_TEST_KILL_SENTINEL"
_SLOW_ENV = "REPRO_SERVE_TEST_SLOW_DIR"


def _tiny_points(loads=(0.2, 0.4, 0.6)):
    net = NetworkConfig("dmin", k=2, n=3)
    wl = WorkloadSpec(k=2, n=3)
    return [PointSpec(net, wl, load, 5, TINY) for load in loads]


# ------------------------------------------------------- picklable runners


def _echo_runner(task):
    return {"value": task["value"] * 2}


def _fail_marked_runner(task):
    if task.get("fail"):
        raise RuntimeError("marked to fail")
    return {"value": task["value"]}


def _always_fail_runner(task):
    raise RuntimeError("always fails")


def _kill_once_runner(point):
    """SIGKILL this worker on the marked point's first attempt."""
    sentinel = Path(os.environ[_KILL_ENV])
    if point.load == 0.4 and not sentinel.exists():
        sentinel.write_text("killed here")
        os.kill(os.getpid(), signal.SIGKILL)
    return run_point_spec(point)


def _slow_first_runner(task):
    """First dispatch of each task wedges; any later twin returns fast."""
    marker = Path(os.environ[_SLOW_ENV]) / f"{task['id']}.first"
    try:
        marker.touch(exist_ok=False)
    except FileExistsError:
        return {"value": task["id"]}
    time.sleep(30.0)
    return {"value": task["id"]}


def _sleep_runner(task):
    time.sleep(30.0)  # never beats the heartbeat
    return {"value": 0}


# ------------------------------------------------------------ happy paths


def test_completes_all_tasks():
    tasks = [(f"k{i}", {"value": i}) for i in range(7)]
    report = WorkerSupervisor(
        _echo_runner, SupervisePolicy(workers=3, retry=FAST_RETRY)
    ).run(tasks)
    assert report.complete
    assert report.results == {f"k{i}": {"value": 2 * i} for i in range(7)}
    assert report.counters() == {
        "retries": 0, "worker_deaths": 0, "stall_kills": 0,
        "hedges": 0, "interrupted": False,
    }


def test_empty_task_list():
    report = WorkerSupervisor(_echo_runner).run([])
    assert report.complete and report.outcomes == {}


def test_duplicate_keys_rejected():
    with pytest.raises(ValueError, match="duplicate task keys"):
        WorkerSupervisor(_echo_runner).run([("k", 1), ("k", 2)])


def test_on_result_called_per_settled_point():
    seen = {}
    sup = WorkerSupervisor(
        _echo_runner,
        SupervisePolicy(workers=2, retry=FAST_RETRY),
        on_result=lambda key, outcome: seen.setdefault(key, outcome),
    )
    sup.run([(f"k{i}", {"value": i}) for i in range(4)])
    assert set(seen) == {f"k{i}" for i in range(4)}
    assert all(isinstance(o, PointOutcome) and o.ok for o in seen.values())


def test_matches_single_process_execution():
    """Supervised answers are byte-identical to in-process ones."""
    points = _tiny_points()
    tasks = [(p.key(), p) for p in points]
    report = WorkerSupervisor(
        run_point_spec, SupervisePolicy(workers=2, retry=FAST_RETRY)
    ).run(tasks)
    assert report.complete
    for p in points:
        assert (
            payload_json(report.results[p.key()])
            == payload_json(run_point_spec(p))
        )


# -------------------------------------------------------- failure policy


def test_poison_point_degrades_not_wedges():
    """A persistently failing point settles as failed; the rest finish."""
    tasks = [
        ("good1", {"value": 1}),
        ("bad", {"value": 2, "fail": True}),
        ("good2", {"value": 3}),
    ]
    events = []
    report = WorkerSupervisor(
        _fail_marked_runner,
        SupervisePolicy(workers=2, retry=FAST_RETRY),
        on_event=lambda kind, **info: events.append(kind),
    ).run(tasks)
    assert not report.complete
    assert report.outcomes["bad"].status == "failed"
    assert report.outcomes["bad"].attempts == FAST_RETRY.max_attempts
    assert "marked to fail" in report.outcomes["bad"].error
    assert report.results == {"good1": {"value": 1}, "good2": {"value": 3}}
    assert report.retries == FAST_RETRY.max_attempts - 1
    assert events.count("poison") == 1


def test_all_points_poisoned():
    report = WorkerSupervisor(
        _always_fail_runner,
        SupervisePolicy(workers=1, retry=RetryPolicy(
            max_attempts=1, base_delay=0.01, factor=2.0,
            max_delay=0.05, jitter=0.0,
        )),
    ).run([("a" * 64, {"x": 1}), ("b" * 64, {"x": 2})])
    assert not report.complete
    assert set(report.failures) == {"a" * 64, "b" * 64}


# -------------------------------------------------------- crash recovery


def test_worker_sigkill_recovery_byte_identical(tmp_path, monkeypatch):
    """SIGKILL a worker mid-point: the supervisor respawns and retries,
    and the final answers are byte-identical to a single-process run."""
    monkeypatch.setenv(_KILL_ENV, str(tmp_path / "killed"))
    points = _tiny_points(loads=(0.2, 0.4, 0.6))
    tasks = [(p.key(), p) for p in points]
    events = []
    report = WorkerSupervisor(
        _kill_once_runner,
        SupervisePolicy(workers=2, retry=FAST_RETRY, poll_interval=0.02),
        on_event=lambda kind, **info: events.append((kind, info)),
    ).run(tasks)

    assert (tmp_path / "killed").exists(), "the drill never fired"
    assert report.worker_deaths >= 1
    assert any(k == "worker_death" for k, _ in events)
    assert report.complete, f"failures: {report.failures}"
    killed = next(p for p in points if p.load == 0.4)
    assert report.outcomes[killed.key()].attempts >= 2
    for p in points:
        assert (
            payload_json(report.results[p.key()])
            == payload_json(run_point_spec(p))
        )


def test_wedged_worker_stall_killed():
    """A live-but-silent worker is killed once its heartbeat goes stale."""
    report = WorkerSupervisor(
        _sleep_runner,
        SupervisePolicy(
            workers=1,
            retry=RetryPolicy(
                max_attempts=1, base_delay=0.01, factor=2.0,
                max_delay=0.05, jitter=0.0,
            ),
            stall_after=0.4,
            poll_interval=0.02,
        ),
    ).run([("wedge", {})])
    assert report.stall_kills >= 1
    assert not report.complete
    assert "wedged" in report.outcomes["wedge"].error


def test_cooperative_timeout_beats_inside_simulation():
    """A runaway simulation point trips the cooperative deadline -- and
    because the sim loop beats the heartbeat, it is *not* a stall kill."""
    endless = dataclasses.replace(
        TINY, measure_packets=10**9, max_cycles=10**9
    )
    point = PointSpec(
        NetworkConfig("dmin", k=2, n=3), WorkloadSpec(k=2, n=3),
        0.4, 5, endless,
    )
    report = WorkerSupervisor(
        run_point_spec,
        SupervisePolicy(
            workers=1,
            retry=RetryPolicy(
                max_attempts=1, base_delay=0.01, factor=2.0,
                max_delay=0.05, jitter=0.0,
            ),
            point_timeout=0.3,
            stall_after=2.0,
            poll_interval=0.02,
        ),
    ).run([(point.key(), point)])
    outcome = report.outcomes[point.key()]
    assert outcome.status == "failed"
    assert "PointTimeout" in outcome.error
    assert report.stall_kills == 0, "heartbeat should keep beating"
    assert report.worker_deaths == 0


def test_hedged_straggler_first_result_wins(tmp_path, monkeypatch):
    monkeypatch.setenv(_SLOW_ENV, str(tmp_path))
    report = WorkerSupervisor(
        _slow_first_runner,
        SupervisePolicy(
            workers=2, retry=FAST_RETRY,
            hedge_after=0.2, stall_after=60.0, poll_interval=0.02,
        ),
    ).run([("only", {"id": 1})])
    assert report.complete
    assert report.hedges == 1
    assert report.results["only"] == {"value": 1}


# -------------------------------------------------------------- stop path


def test_request_stop_interrupts_gracefully(tmp_path, monkeypatch):
    monkeypatch.setenv(_SLOW_ENV, str(tmp_path))
    sup = WorkerSupervisor(
        _slow_first_runner,
        SupervisePolicy(workers=1, retry=FAST_RETRY, poll_interval=0.02),
        on_result=lambda key, outcome: sup.request_stop(),
    )
    # first task settles (its twin marker pre-created), then stop is
    # requested; the second never runs and settles as interrupted.
    (tmp_path / "1.first").touch()
    report = sup.run([("fast", {"id": 1}), ("slow", {"id": 2})])
    assert report.interrupted
    assert report.outcomes["fast"].ok
    assert report.outcomes["slow"].status == "interrupted"


def test_report_helpers():
    r = SupervisorReport()
    r.outcomes["a"] = PointOutcome("a", "ok", payload={"v": 1})
    r.outcomes["b"] = PointOutcome("b", "failed", error="boom")
    assert r.results == {"a": {"v": 1}}
    assert r.failures == {"b": "boom"}
    assert not r.complete
