"""Direct-topology points through the sweep service's cache layer.

Two properties matter:

* **backward compatibility** -- the MIN kinds' canonical forms (and
  hence every existing point key / job id) are byte-identical to what
  they were before the direct-only ``router`` / ``vlink_slowdown``
  fields existed;
* **cacheability** -- direct points hash deterministically, distinct
  routers produce distinct keys, and a cached record byte-equals a
  fresh recomputation.
"""

import dataclasses

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.workload_spec import WorkloadSpec
from repro.serve.canonical import payload_json
from repro.serve.compute import run_point_spec
from repro.serve.job import PointSpec

TINY = dataclasses.replace(
    SMOKE, warmup_packets=10, measure_packets=40, max_cycles=20_000
)


def _point(**net_kwargs) -> PointSpec:
    return PointSpec(
        network=NetworkConfig(k=2, n=3, **net_kwargs),
        workload=WorkloadSpec(k=2, n=3),
        load=0.4,
        seed=11,
        run=TINY,
    )


def test_min_canonical_omits_direct_fields():
    """Pre-direct cache keys stay byte-stable: a MIN config's canonical
    form has no router/vlink entries regardless of field defaults."""
    canon = NetworkConfig("bmin", k=2, n=3).canonical()
    assert "router" not in canon
    assert "vlink_slowdown" not in canon
    assert canon == {
        "kind": "bmin",
        "k": 2,
        "n": 3,
        "topology": "cube",
        "dilation": 2,
        "virtual_channels": 2,
        "bmin_virtual_channels": 1,
    }


def test_direct_canonical_includes_router_fields():
    canon = NetworkConfig(
        "torus3d", k=4, n=3, router="adaptive", vlink_slowdown=2
    ).canonical()
    assert canon["router"] == "adaptive"
    assert canon["vlink_slowdown"] == 2


def test_router_splits_the_point_key():
    dor = _point(kind="torus3d", router="dor")
    adaptive = _point(kind="torus3d", router="adaptive")
    slow = _point(kind="torus3d", router="adaptive", vlink_slowdown=2)
    keys = {dor.key(), adaptive.key(), slow.key()}
    assert len(keys) == 3


def test_direct_point_key_is_stable():
    assert _point(kind="mesh3d").key() == _point(kind="mesh3d").key()


def test_direct_point_recomputation_is_byte_identical():
    point = _point(kind="mesh3d", router="adaptive")
    first = run_point_spec(point)
    second = run_point_spec(point)
    assert payload_json(first) == payload_json(second)
    assert first["measurement"]["delivered_packets"] > 0
