"""End-to-end sweep service tests: dedupe, cache resume, degradation.

The acceptance drills: a corrupted cache entry is transparently
quarantined and recomputed without failing the job, and a re-submitted
spec is served wholly from the cache.
"""

import asyncio
import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.workload_spec import WorkloadSpec
from repro.faults.recovery import RetryPolicy
from repro.serve.canonical import payload_json
from repro.serve.cache import ResultCache
from repro.serve.compute import run_point_spec
from repro.serve.export import MANIFEST_CSV_FIELDS, write_manifest_csv
from repro.serve.job import FaultSpec, JobManifest, JobSpec
from repro.serve.service import SweepService
from repro.serve.supervisor import SupervisePolicy

TINY = dataclasses.replace(
    SMOKE, warmup_packets=10, measure_packets=40, max_cycles=20_000
)

FAST_POLICY = SupervisePolicy(
    workers=2,
    retry=RetryPolicy(
        max_attempts=2, base_delay=0.01, factor=2.0, max_delay=0.05, jitter=0.0
    ),
    poll_interval=0.02,
)


def _tiny_spec(loads=(0.2, 0.5, 0.5), **kwargs):
    """2 small networks x loads (default includes one duplicate)."""
    return JobSpec(
        networks=(
            NetworkConfig("dmin", k=2, n=3),
            NetworkConfig("tmin", k=2, n=3),
        ),
        run=TINY,
        workload=WorkloadSpec(),
        loads=loads,
        **kwargs,
    )


def _service(tmp_path, **kwargs):
    kwargs.setdefault("policy", FAST_POLICY)
    kwargs.setdefault("job_root", tmp_path / "jobs")
    return SweepService(cache=tmp_path / "cache", **kwargs)


def _fail_half_runner(point):
    if point.load == 0.5:
        raise RuntimeError("injected failure")
    return run_point_spec(point)


# --------------------------------------------------------------- cold run


def test_cold_job_end_to_end(tmp_path):
    service = _service(tmp_path)
    spec = _tiny_spec()
    manifest = service.run_job_sync(spec)

    assert manifest.complete and manifest.incomplete == []
    assert manifest.counts == {
        "requested": 6, "unique": 4, "deduplicated": 2,
        "cached": 0, "computed": 4, "failed": 0, "pending": 0,
    }
    # every grid entry (duplicates included) reports its serving status
    assert len(manifest.points) == 6
    assert {p["status"] for p in manifest.points} == {"computed"}
    # the manifest landed on disk and round-trips
    path = service.manifest_path(spec)
    assert path.exists()
    again = JobManifest.read(path)
    assert again.to_dict() == manifest.to_dict()
    assert again.statuses()["computed"] == 6


def test_cached_payloads_match_in_process_run(tmp_path):
    service = _service(tmp_path)
    spec = _tiny_spec(loads=(0.2, 0.5))
    service.run_job_sync(spec)
    for point in spec.points():
        cached = service.cache.get(point.key())
        assert payload_json(cached) == payload_json(run_point_spec(point))


# ----------------------------------------------------------- warm resume


def test_warm_rerun_served_entirely_from_cache(tmp_path):
    spec = _tiny_spec()
    _service(tmp_path).run_job_sync(spec)

    warm = _service(tmp_path)  # fresh service, same cache directory
    manifest = warm.run_job_sync(spec)
    assert manifest.complete
    assert manifest.counts["cached"] == 4
    assert manifest.counts["computed"] == 0
    assert manifest.supervisor == {"interrupted": False}
    assert {p["status"] for p in manifest.points} == {"cached"}


# ------------------------------------------------- corruption acceptance


def test_corrupt_entry_transparently_recomputed(tmp_path):
    """Bit-rot in the cache quarantines + recomputes; the job still
    completes and the healed entry verifies again."""
    spec = _tiny_spec(loads=(0.2, 0.5))
    first = _service(tmp_path).run_job_sync(spec)
    assert first.complete

    victim = spec.points()[0]
    cache = ResultCache(tmp_path / "cache")
    entry = cache.path_for(victim.key())
    entry.write_bytes(entry.read_bytes()[:-40] + b"rot rot rot rot rot rot")

    service = _service(tmp_path)
    manifest = service.run_job_sync(spec)
    assert manifest.complete, f"incomplete: {manifest.incomplete}"
    assert manifest.cache["corrupt"] == 1
    assert manifest.counts["computed"] == 1    # only the victim
    assert manifest.counts["cached"] == 3
    assert list((tmp_path / "cache" / "quarantine").iterdir())

    healed = ResultCache(tmp_path / "cache").get(victim.key())
    assert payload_json(healed) == payload_json(run_point_spec(victim))


# ------------------------------------------------- graceful degradation


def test_poisoned_points_degrade_to_incomplete_manifest(tmp_path):
    spec = _tiny_spec(loads=(0.2, 0.5))
    service = _service(tmp_path, runner=_fail_half_runner)
    manifest = service.run_job_sync(spec)

    assert not manifest.complete
    assert manifest.counts["failed"] == 2      # load 0.5 on both networks
    assert manifest.counts["computed"] == 2
    assert len(manifest.incomplete) == 2
    failed = [p for p in manifest.points if p["status"] == "failed"]
    assert all("injected failure" in p["error"] for p in failed)
    assert all(p["load"] == 0.5 for p in failed)

    # re-running with a healthy runner serves the failures' remainder
    # from cache and computes only the previously poisoned points
    healthy = _service(tmp_path)
    second = healthy.run_job_sync(spec)
    assert second.complete
    assert second.counts["cached"] == 2 and second.counts["computed"] == 2


def test_stop_before_run_leaves_points_pending(tmp_path):
    service = _service(tmp_path)
    service.request_stop()
    manifest = service.run_job_sync(_tiny_spec(loads=(0.2,)))
    assert not manifest.complete
    assert manifest.counts["pending"] == 2
    assert {p["status"] for p in manifest.points} == {"pending"}


# ------------------------------------------------------------- async API


def test_async_submit_and_wait(tmp_path):
    spec = _tiny_spec(loads=(0.2,))
    _service(tmp_path).run_job_sync(spec)       # pre-warm the cache

    async def drive():
        service = _service(tmp_path)
        handle = await service.submit(spec)
        assert handle.job_id == spec.job_id
        return await service.wait(handle.job_id)

    manifest = asyncio.run(drive())
    assert manifest.complete and manifest.counts["cached"] == 2


# ------------------------------------------------------------ fault grid


def test_faulted_points_are_distinct_and_runnable(tmp_path):
    net = (NetworkConfig("dmin", k=2, n=3),)
    clean = JobSpec(networks=net, run=TINY, workload=WorkloadSpec(),
                    loads=(0.3,))
    faulted = JobSpec(networks=net, run=TINY, workload=WorkloadSpec(),
                      loads=(0.3,), faults=FaultSpec(rate=0.05))
    assert clean.points()[0].key() != faulted.points()[0].key()

    service = _service(tmp_path)
    assert service.run_job_sync(clean).complete
    assert service.run_job_sync(faulted).complete
    assert len(service.cache) == 2


# ----------------------------------------------------------------- export


def test_manifest_csv_export(tmp_path):
    spec = _tiny_spec()
    service = _service(tmp_path)
    manifest = service.run_job_sync(spec)
    out = tmp_path / "out.csv"
    write_manifest_csv(manifest, service.cache, out)
    lines = out.read_text().strip().splitlines()
    assert lines[0] == ",".join(MANIFEST_CSV_FIELDS)
    assert len(lines) == 1 + 4                 # header + unique points only


def test_export_identical_after_worker_computation(tmp_path):
    """Satellite drill: the supervised run's final export is
    byte-identical to a single-process run's export."""
    spec = _tiny_spec(loads=(0.2, 0.5))

    supervised = _service(tmp_path / "a")
    manifest_a = supervised.run_job_sync(spec)
    csv_a = tmp_path / "a.csv"
    write_manifest_csv(manifest_a, supervised.cache, csv_a)

    # single process: compute every point inline into a fresh cache
    solo_cache = ResultCache(tmp_path / "b" / "cache")
    for p in spec.points():
        if solo_cache.get(p.key()) is None:
            solo_cache.put(p.key(), run_point_spec(p))
    solo = SweepService(
        cache=solo_cache, policy=FAST_POLICY, job_root=tmp_path / "b" / "jobs"
    )
    manifest_b = solo.run_job_sync(spec)
    assert manifest_b.counts["computed"] == 0
    csv_b = tmp_path / "b.csv"
    write_manifest_csv(manifest_b, solo_cache, csv_b)

    assert csv_a.read_bytes() == csv_b.read_bytes()


# -------------------------------------------------------------------- CLI


def _run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.serve", *args],
        capture_output=True, text=True, cwd=str(cwd),
        env={"PYTHONPATH": str(Path.cwd() / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_inline_spec_round_trip(tmp_path):
    args = [
        "--cache", str(tmp_path / "cache"),
        "--networks", "dmin",
        "--loads", "0.2",
        "--mode", "smoke",
        "--workers", "1",
        "--quiet",
    ]
    cold = _run_cli(args, tmp_path)
    assert cold.returncode == 0, cold.stderr
    assert "COMPLETE" in cold.stdout
    assert "1 unique" in cold.stdout

    warm = _run_cli([*args, "--json"], tmp_path)
    assert warm.returncode == 0, warm.stderr
    manifest = json.loads(warm.stdout)
    assert manifest["complete"] is True
    assert manifest["counts"]["cached"] == 1

    manifests = list((tmp_path / "cache" / "jobs").glob("*.manifest.json"))
    assert len(manifests) == 1


def test_cli_spec_file(tmp_path):
    spec_file = tmp_path / "job.json"
    spec_file.write_text(json.dumps({
        "networks": [{"kind": "dmin", "k": 2, "n": 3}],
        "workload": {"pattern": "uniform", "k": 2, "n": 3},
        "run": {"mode": "smoke", "warmup_packets": 10,
                "measure_packets": 40, "max_cycles": 20000},
        "loads": [0.2, 0.4],
        "seeds": [1, 2],
    }))
    result = _run_cli(
        ["--spec", str(spec_file), "--cache", str(tmp_path / "cache"),
         "--workers", "2", "--quiet", "--csv", str(tmp_path / "out.csv")],
        tmp_path,
    )
    assert result.returncode == 0, result.stderr
    assert "4 unique" in result.stdout
    assert (tmp_path / "out.csv").exists()
    assert len((tmp_path / "out.csv").read_text().strip().splitlines()) == 5


def test_cli_rejects_missing_spec(tmp_path):
    result = _run_cli(["--cache", str(tmp_path / "cache")], tmp_path)
    assert result.returncode != 0
    assert "--networks" in result.stderr or "--spec" in result.stderr


def test_cli_rejects_malformed_spec_before_dispatch(tmp_path):
    """A bad spec must die at parse time (exit 2), not burn workers
    on doomed points."""
    spec_file = tmp_path / "bad.json"
    spec_file.write_text(json.dumps({"networks": "dmin"}))  # str, not list
    result = _run_cli(
        ["--spec", str(spec_file), "--cache", str(tmp_path / "cache")],
        tmp_path,
    )
    assert result.returncode == 2
    assert "bad job spec" in result.stderr
    assert not (tmp_path / "cache").exists()


def test_spec_rejects_non_list_networks():
    with pytest.raises(ValueError, match="'networks' must be a list"):
        JobSpec.from_dict({"networks": "dmin"})


def test_spec_rejects_unknown_network_kind():
    with pytest.raises(ValueError, match="not a valid NetworkKind"):
        JobSpec.from_dict({"networks": ["zmin"]})


def test_sigterm_crash_drill(tmp_path):
    """The scripted CI drill: SIGTERM mid-job -> partial manifest ->
    identical re-run resumes from cache -> complete, byte-stable."""
    result = subprocess.run(
        [sys.executable, str(Path("tools/serve_smoke.py").resolve()),
         "--workdir", str(tmp_path / "drill")],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "PASS" in result.stdout


def test_spec_json_round_trip():
    spec = _tiny_spec(seeds=(1, 2), engine="reference",
                      faults=FaultSpec(rate=0.01))
    again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again.job_id == spec.job_id
    assert [p.key() for p in again.points()] == [
        p.key() for p in spec.points()
    ]
