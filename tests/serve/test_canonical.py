"""Property tests of the canonical form and content hashing.

The cache key must be a pure function of the point's *meaning*, not its
spelling.  Hypothesis drives the invariances (key order, formatting,
container spelling); dataclass defaults and cross-process stability get
directed tests.
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.workload_spec import WorkloadSpec
from repro.serve.canonical import (
    canonical_json,
    canonical_value,
    config_hash,
    payload_json,
)
from repro.serve.job import FaultSpec, PointSpec

# ------------------------------------------------------------ strategies

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=16),
)

_configs = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=16,
)


def _reordered(obj):
    """The same structure with every mapping's keys in reverse order."""
    if isinstance(obj, dict):
        return {k: _reordered(obj[k]) for k in reversed(list(obj))}
    if isinstance(obj, list):
        return [_reordered(v) for v in obj]
    return obj


# ------------------------------------------------------------ invariances


@settings(max_examples=200, deadline=None)
@given(_configs)
def test_key_order_invariance(cfg):
    """Insertion order of mapping keys never changes the hash."""
    assert config_hash(_reordered(cfg)) == config_hash(cfg)


@settings(max_examples=200, deadline=None)
@given(_configs)
def test_whitespace_invariance(cfg):
    """Hashing happens after parsing: formatting cannot split the cache."""
    pretty = json.loads(json.dumps(cfg, indent=4, sort_keys=True))
    compact = json.loads(json.dumps(cfg, separators=(",", ":")))
    assert config_hash(pretty) == config_hash(compact) == config_hash(cfg)


@settings(max_examples=200, deadline=None)
@given(_configs)
def test_canonical_json_round_trips(cfg):
    """The canonical dump re-canonicalizes to itself (a fixed point)."""
    once = canonical_json(cfg)
    assert canonical_json(json.loads(once)) == once


@settings(max_examples=100, deadline=None)
@given(st.lists(_scalars, max_size=6))
def test_tuple_list_equivalence(values):
    assert config_hash(tuple(values)) == config_hash(list(values))


@settings(max_examples=200, deadline=None)
@given(_configs, _configs)
def test_distinct_configs_distinct_hashes(a, b):
    """Different canonical forms never collide (and equal ones always do)."""
    same = canonical_json(a) == canonical_json(b)
    assert (config_hash(a) == config_hash(b)) == same


# ------------------------------------------------- defaults / dataclasses


def test_default_materialization_network():
    """Omitted dataclass fields hash identically to explicit defaults."""
    implicit = NetworkConfig("dmin")
    explicit = NetworkConfig(
        "dmin", k=4, n=3, topology="cube", dilation=2,
        virtual_channels=2, bmin_virtual_channels=1,
    )
    assert canonical_value(implicit) == canonical_value(explicit)
    assert config_hash(implicit) == config_hash(explicit)


def test_default_materialization_point_key():
    net = NetworkConfig("vmin", k=2, n=3)
    a = PointSpec(net, WorkloadSpec(k=2, n=3), 0.4, 7, SMOKE)
    b = PointSpec(
        net,
        WorkloadSpec(
            pattern="uniform", clustering="global", ratios=None,
            hot_fraction=0.05, butterfly_i=2, k=2, n=3,
        ),
        0.4, 7, SMOKE, engine="fast", faults=None, stability=None,
    )
    assert a.key() == b.key()


def test_point_key_sensitivity():
    """Every semantic field of a point splits the key."""
    net = NetworkConfig("dmin", k=2, n=3)
    wl = WorkloadSpec(k=2, n=3)
    base = PointSpec(net, wl, 0.4, 7, SMOKE)
    variants = [
        PointSpec(NetworkConfig("tmin", k=2, n=3), wl, 0.4, 7, SMOKE),
        PointSpec(net, WorkloadSpec(pattern="hotspot", k=2, n=3), 0.4, 7, SMOKE),
        PointSpec(net, wl, 0.5, 7, SMOKE),
        PointSpec(net, wl, 0.4, 8, SMOKE),
        PointSpec(net, wl, 0.4, 7, SMOKE, engine="reference"),
        PointSpec(net, wl, 0.4, 7, SMOKE, faults=FaultSpec(rate=0.01)),
        PointSpec(net, wl, 0.4, 7, SMOKE, stability={"capacity": 64}),
    ]
    keys = {base.key(), *[v.key() for v in variants]}
    assert len(keys) == 1 + len(variants)
    # and recomputation is stable
    assert base.key() == base.key()


def test_seed_and_loads_of_run_config_do_not_split_key():
    """A preset's incidental seed/loads never shadow the point's own."""
    net = NetworkConfig("dmin", k=2, n=3)
    wl = WorkloadSpec(k=2, n=3)
    a = PointSpec(net, wl, 0.4, 7, SMOKE)
    b = PointSpec(net, wl, 0.4, 7, SMOKE.with_seed(999).with_loads((0.1,)))
    assert a.key() == b.key()


# ------------------------------------------------------------ edge cases


def test_negative_zero_normalized():
    assert config_hash({"x": -0.0}) == config_hash({"x": 0.0})
    assert canonical_json({"x": -0.0}) == '{"x":0.0}'


def test_nan_rejected_in_config_hash():
    with pytest.raises(ValueError, match="non-finite"):
        config_hash({"x": float("nan")})
    with pytest.raises(ValueError, match="non-finite"):
        config_hash({"x": float("inf")})


def test_nan_allowed_in_payload_json():
    text = payload_json({"ci": float("nan")})
    assert "NaN" in text


def test_unserializable_config_rejected():
    with pytest.raises(TypeError, match="canonicalize"):
        config_hash({"x": object()})


def test_mapping_keys_stringified():
    assert config_hash({1: "a"}) == config_hash({"1": "a"})


# ----------------------------------------------------- cross-process


def test_hash_stable_across_processes():
    """PYTHONHASHSEED never enters the content address."""
    script = (
        "from repro.experiments.config import SMOKE, NetworkConfig\n"
        "from repro.experiments.workload_spec import WorkloadSpec\n"
        "from repro.serve.job import PointSpec\n"
        "p = PointSpec(NetworkConfig('dmin', k=2, n=3),"
        " WorkloadSpec(k=2, n=3), 0.4, 7, SMOKE)\n"
        "print(p.key())\n"
    )
    expected = PointSpec(
        NetworkConfig("dmin", k=2, n=3), WorkloadSpec(k=2, n=3), 0.4, 7, SMOKE
    ).key()
    for hashseed in ("0", "42"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = (
            "src" + os.pathsep + env.get("PYTHONPATH", "")
        ).rstrip(os.pathsep)
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        )
        assert out.stdout.strip() == expected
