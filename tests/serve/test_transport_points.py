"""Transport-config points through the serving layer.

``PointSpec.transport`` selects the end-to-end reliability execution
path (:func:`repro.serve.compute._run_transport_point`).  These tests
pin the contracts that keep the cache sound around it: canonical
normalization (two spellings of one config cannot split keys), key
stability for pre-existing non-transport jobs, mutual exclusion with
the stability path, engine-tier key equivalence (batch hashes as
fast), and deterministic payloads carrying the end-to-end tallies.
"""

import json

import pytest

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.workload_spec import WorkloadSpec
from repro.serve.canonical import payload_json
from repro.serve.compute import run_point_spec
from repro.serve.job import (
    TRANSPORT_DEFAULTS,
    FaultSpec,
    JobSpec,
    PointSpec,
    validate_transport,
)
from repro.transport import TransportConfig

NET = NetworkConfig(kind="dmin", k=2, n=3)
WL = WorkloadSpec(k=2, n=3)


def spec_with(transport):
    return JobSpec(
        networks=(NET,),
        run=SMOKE,
        workload=WL,
        loads=(0.4,),
        seeds=(7,),
        transport=transport,
    )


# -------------------------------------------------------- normalization


def test_defaults_are_materialized():
    assert validate_transport({}) == dict(sorted(TRANSPORT_DEFAULTS.items()))
    assert validate_transport(None) is None


def test_defaults_match_dataclass():
    assert TransportConfig(**TRANSPORT_DEFAULTS) == TransportConfig()


def test_two_spellings_one_key():
    implicit = PointSpec(NET, WL, 0.4, 7, SMOKE, transport={"window": 8})
    explicit = PointSpec(
        NET, WL, 0.4, 7, SMOKE,
        transport={**TRANSPORT_DEFAULTS, "window": 8},
    )
    assert implicit.transport == explicit.transport
    assert implicit.key() == explicit.key()


def test_unknown_key_rejected():
    with pytest.raises(ValueError, match="unknown transport key"):
        validate_transport({"rto": 100.0})


def test_bad_values_rejected():
    with pytest.raises(ValueError):
        validate_transport({"window": 0})
    with pytest.raises(ValueError):
        validate_transport({"jitter": 2.0})
    with pytest.raises(ValueError, match="mapping"):
        validate_transport([1, 2])


def test_values_coerced():
    cfg = validate_transport({"window": 8.0, "rto_base": 100})
    assert cfg["window"] == 8 and isinstance(cfg["window"], int)
    assert cfg["rto_base"] == 100.0 and isinstance(cfg["rto_base"], float)


def test_transport_and_stability_exclusive():
    with pytest.raises(ValueError, match="combine stability and transport"):
        PointSpec(NET, WL, 0.4, 7, SMOKE, stability={}, transport={})


def test_transport_with_faults_allowed():
    point = PointSpec(
        NET, WL, 0.4, 7, SMOKE,
        faults=FaultSpec(rate=0.05),
        transport={},
    )
    assert point.transport is not None


# ------------------------------------------------------------ round-trip


def test_jobspec_round_trips_with_transport():
    spec = spec_with({"window": 8, "rto_base": 64.0})
    again = JobSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.job_id == spec.job_id
    assert again.points()[0].transport == spec.points()[0].transport


def test_plain_jobs_keep_their_job_id():
    """`to_dict` omits a None transport block, so every job_id minted
    before the field existed still addresses the same manifest."""
    spec = spec_with(None)
    assert "transport" not in spec.to_dict()
    assert JobSpec.from_dict(spec.to_dict()) == spec


def test_plain_point_key_has_no_transport():
    point = PointSpec(NET, WL, 0.4, 7, SMOKE)
    assert "transport" not in point.config()


def test_batch_hashes_as_fast():
    fast = PointSpec(NET, WL, 0.4, 7, SMOKE, transport={}, engine="fast")
    batch = PointSpec(NET, WL, 0.4, 7, SMOKE, transport={}, engine="batch")
    assert fast.key() == batch.key()


# --------------------------------------------------------------- payload


@pytest.fixture(scope="module")
def payload():
    (point,) = spec_with({"rto_base": 64.0, "rto_max": 1024.0}).points()
    return run_point_spec(point)


def test_payload_carries_transport_block(payload):
    block = payload["transport"]
    assert block["config"]["rto_base"] == 64.0
    assert block["messages_sent"] > 0
    assert (
        block["messages_delivered"] + block["messages_aborted"]
        <= block["messages_sent"]
    )
    assert payload["measurement"]["delivered_packets"] > 0


def test_payload_is_deterministic(payload):
    (point,) = spec_with({"rto_base": 64.0, "rto_max": 1024.0}).points()
    again = run_point_spec(point)
    assert payload_json(again) == payload_json(payload)


def test_payload_is_json_serializable(payload):
    json.loads(payload_json(payload))


def test_payload_identical_across_engines(payload):
    (point,) = spec_with({"rto_base": 64.0, "rto_max": 1024.0}).points()
    for engine in ("reference", "batch"):
        other = run_point_spec(
            PointSpec(
                point.network, point.workload, point.load, point.seed,
                point.run, engine=engine, transport=point.transport,
            )
        )
        assert payload_json(other) == payload_json(payload)
