"""Tests for the Delta-network analytic throughput model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.kruskal_snir import (
    asymptotic_bandwidth,
    delta_network_throughput,
    saturation_bandwidth,
    stage_acceptance,
)


def test_stage_acceptance_extremes():
    assert stage_acceptance(0.0, 4) == 0.0
    # Full load on a 2x2 switch: 1 - (1/2)^2 = 0.75
    assert math.isclose(stage_acceptance(1.0, 2), 0.75)
    # k=1 passes traffic through untouched.
    assert math.isclose(stage_acceptance(0.3, 1), 0.3)


def test_stage_acceptance_validation():
    with pytest.raises(ValueError):
        stage_acceptance(1.5, 4)
    with pytest.raises(ValueError):
        stage_acceptance(-0.1, 4)
    with pytest.raises(ValueError):
        stage_acceptance(0.5, 0)


def test_known_saturation_values():
    """Classical results: 2x2 single stage 0.75; the paper's 64-node
    geometry (k=4, n=3) saturates near 0.43 in the unbuffered model."""
    assert math.isclose(saturation_bandwidth(2, 1), 0.75)
    assert abs(saturation_bandwidth(4, 3) - 0.432) < 0.005


def test_zero_stages_is_identity():
    assert delta_network_throughput(0.42, 4, 0) == 0.42


def test_throughput_validation():
    with pytest.raises(ValueError):
        delta_network_throughput(0.5, 4, -1)


def test_more_stages_lose_more():
    values = [saturation_bandwidth(4, n) for n in range(1, 8)]
    assert all(a > b for a, b in zip(values, values[1:]))


def test_larger_switches_lose_more_per_stage():
    """At full load a bigger crossbar has more output contention."""
    assert saturation_bandwidth(2, 1) > saturation_bandwidth(4, 1) > saturation_bandwidth(8, 1)


def test_asymptotic_bandwidth():
    assert asymptotic_bandwidth(2, 100) == pytest.approx(4 / 100)
    assert asymptotic_bandwidth(2, 1) == 1.0  # clamped
    with pytest.raises(ValueError):
        asymptotic_bandwidth(1, 10)
    with pytest.raises(ValueError):
        asymptotic_bandwidth(2, 0)


def test_asymptotic_tracks_exact_for_large_n():
    k, n = 2, 64
    exact = saturation_bandwidth(k, n)
    approx = asymptotic_bandwidth(k, n)
    assert abs(exact - approx) / exact < 0.30


@given(
    st.floats(min_value=0, max_value=1),
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=0, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_throughput_bounded_by_load_property(load, k, n):
    out = delta_network_throughput(load, k, n)
    assert 0.0 <= out <= load + 1e-12


@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=1, max_value=6),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_throughput_monotone_in_load_property(k, n, data):
    a = data.draw(st.floats(min_value=0, max_value=1))
    b = data.draw(st.floats(min_value=0, max_value=1))
    lo, hi = sorted((a, b))
    assert delta_network_throughput(lo, k, n) <= delta_network_throughput(
        hi, k, n
    ) + 1e-12


def test_model_anchors_simulated_tmin_saturation():
    """The unbuffered model (43%) anchors the wormhole TMIN's simulated
    uniform saturation (~35-40% with 1-flit buffers): same order of
    magnitude, and the model is not wildly exceeded."""
    from dataclasses import replace

    from repro.experiments.config import SMOKE, NetworkConfig
    from repro.experiments.figures import uniform_workload
    from repro.experiments.runner import run_point
    from repro.traffic.clusters import global_cluster

    cfg = replace(SMOKE, measure_packets=400)
    wb = uniform_workload(global_cluster(), cfg)
    m = run_point(NetworkConfig("tmin"), wb, 1.0, cfg)
    model = saturation_bandwidth(4, 3)
    assert m.throughput < model + 0.05
    assert m.throughput > model / 3
