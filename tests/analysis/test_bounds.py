"""Tests for the structural throughput ceilings, including the
property tests that pin the simulator against them."""

import math
from dataclasses import replace

import pytest

from repro.analysis.bounds import cluster_ratio_cap, hot_spot_cap, permutation_cap


def test_hot_spot_cap_paper_values():
    """The 64-node caps behind Fig. 19: ~25% at x=5%, ~15% at x=10%."""
    assert math.isclose(hot_spot_cap(64, 0.05), 0.25, rel_tol=0.01)
    assert abs(hot_spot_cap(64, 0.10) - 0.149) < 0.005


def test_hot_spot_cap_no_hotspot():
    """x = 0 gives the trivial cap of 1.0 (uniform delivery balance)."""
    assert hot_spot_cap(64, 0.0) == 1.0


def test_hot_spot_cap_monotone_in_x():
    caps = [hot_spot_cap(64, x) for x in (0.0, 0.02, 0.05, 0.1, 0.5)]
    assert all(a >= b for a, b in zip(caps, caps[1:]))


def test_hot_spot_cap_validation():
    with pytest.raises(ValueError):
        hot_spot_cap(1, 0.05)
    with pytest.raises(ValueError):
        hot_spot_cap(64, -0.01)


def test_permutation_cap_shuffle_on_tmin():
    """Shuffle on the 64-node cube TMIN: 4-way sharing, 60/64 active
    -> cap 25%; with dilation 2 -> 50%; with dilation 4 -> 60/64."""
    active = 60 / 64
    assert permutation_cap(4, 1, active) == 0.25
    assert permutation_cap(4, 2, active) == 0.5
    assert permutation_cap(4, 4, active) == active


def test_permutation_cap_validation():
    with pytest.raises(ValueError):
        permutation_cap(0)
    with pytest.raises(ValueError):
        permutation_cap(4, 0)
    with pytest.raises(ValueError):
        permutation_cap(4, 1, 0.0)
    with pytest.raises(ValueError):
        permutation_cap(4, 1, 1.5)


def test_cluster_ratio_cap_paper_cases():
    sizes = [16, 16, 16, 16]
    assert cluster_ratio_cap(sizes, [1, 1, 1, 1]) == 1.0
    assert cluster_ratio_cap(sizes, [1, 0, 0, 0]) == 0.25
    assert math.isclose(cluster_ratio_cap(sizes, [4, 1, 1, 1]), (16 + 3 * 4) / 64)


def test_cluster_ratio_cap_validation():
    with pytest.raises(ValueError):
        cluster_ratio_cap([16], [1, 2])
    with pytest.raises(ValueError):
        cluster_ratio_cap([], [])
    with pytest.raises(ValueError):
        cluster_ratio_cap([0, 16], [1, 1])
    with pytest.raises(ValueError):
        cluster_ratio_cap([16, 16], [0, 0])
    with pytest.raises(ValueError):
        cluster_ratio_cap([16, 16], [1, -1])


# ------------------------- the simulator must respect every ceiling


def _simulate(network_kind, wb, load, measure=400):
    from repro.experiments.config import SMOKE, NetworkConfig
    from repro.experiments.runner import run_point

    cfg = replace(SMOKE, measure_packets=measure)
    return run_point(NetworkConfig(network_kind), wb, load, cfg)


def test_simulator_respects_hot_spot_cap():
    from repro.experiments.config import SMOKE
    from repro.experiments.figures import hotspot_workload
    from repro.traffic.clusters import global_cluster

    cfg = replace(SMOKE, measure_packets=500)
    wb = hotspot_workload(global_cluster(), 0.10, cfg)
    m = _simulate("dmin", wb, 0.6, measure=500)
    # Allow transient slack: the window may drain queued pre-window
    # traffic, but steady state cannot exceed the cap by much.
    assert m.throughput <= hot_spot_cap(64, 0.10) * 1.35


def test_simulator_respects_permutation_cap():
    from repro.experiments.config import SMOKE
    from repro.experiments.figures import shuffle_workload

    cfg = replace(SMOKE, measure_packets=500)
    wb = shuffle_workload(cfg)
    for kind, channels in (("tmin", 1), ("vmin", 2), ("dmin", 2)):
        m = _simulate(kind, wb, 0.9, measure=500)
        # VMIN's fair flit-multiplexing cannot beat the single wire:
        # its effective cap is the TMIN's.
        effective = 1 if kind == "vmin" else channels
        cap = permutation_cap(4, effective, 60 / 64)
        assert m.throughput <= cap * 1.1, (kind, m.throughput, cap)


def test_simulator_respects_cluster_ratio_cap():
    from repro.experiments.config import SMOKE
    from repro.experiments.figures import uniform_workload
    from repro.traffic.clusters import cluster_16

    cfg = replace(SMOKE, measure_packets=400)
    wb = uniform_workload(cluster_16("cube", (1, 0, 0, 0)), cfg)
    m = _simulate("dmin", wb, 1.0, measure=400)
    assert m.throughput <= cluster_ratio_cap([16] * 4, [1, 0, 0, 0]) * 1.1
