"""Tests for the hardware cost model (Section 6's complexity claims)."""

import pytest

from repro.analysis.cost import (
    bidirectional_switch_cost,
    cost_comparison,
    network_cost,
    unidirectional_switch_cost,
)


def test_tmin_switch_is_cheapest():
    tmin = unidirectional_switch_cost(4)
    dmin = unidirectional_switch_cost(4, dilation=2)
    vmin = unidirectional_switch_cost(4, virtual_channels=2)
    bmin = bidirectional_switch_cost(4)
    assert tmin.gate_proxy < min(
        dmin.gate_proxy, vmin.gate_proxy, bmin.gate_proxy
    )


def test_paper_claim_dmin_and_bmin_similar_complexity():
    """Section 6: DMIN (d=2) and BMIN have similar hardware complexity."""
    dmin = unidirectional_switch_cost(4, dilation=2)
    bmin = bidirectional_switch_cost(4)
    ratio = dmin.gate_proxy / bmin.gate_proxy
    assert 0.6 < ratio < 1.7, (dmin.gate_proxy, bmin.gate_proxy)


def test_paper_claim_vmin_dmin_bmin_similar_switch_complexity():
    """Section 6: 'VMINs, DMINs, and BMINs have a similar hardware
    complexity' at switch level (within a small factor)."""
    costs = [
        unidirectional_switch_cost(4, dilation=2).gate_proxy,
        unidirectional_switch_cost(4, virtual_channels=2).gate_proxy,
        bidirectional_switch_cost(4).gate_proxy,
    ]
    assert max(costs) / min(costs) < 2.5


def test_footnote4_bmin_arbitration_heavier_than_crossbar_share():
    """Footnote 4: the BMIN's switch is slightly more complex because a
    given input has more legal outputs -- visible as arbitration cost
    relative to a plain k x k switch."""
    tmin = unidirectional_switch_cost(4)
    bmin = bidirectional_switch_cost(4)
    assert bmin.arbiter_inputs > 2 * tmin.arbiter_inputs


def test_dilated_crossbar_grows_quadratically():
    d1 = unidirectional_switch_cost(4, dilation=1)
    d2 = unidirectional_switch_cost(4, dilation=2)
    d4 = unidirectional_switch_cost(4, dilation=4)
    assert d2.crosspoints == 4 * d1.crosspoints
    assert d4.crosspoints == 16 * d1.crosspoints


def test_vc_switch_keeps_crossbar_but_grows_buffers():
    v1 = unidirectional_switch_cost(4)
    v2 = unidirectional_switch_cost(4, virtual_channels=2)
    assert v2.crosspoints == v1.crosspoints
    assert v2.flit_buffers == 2 * v1.flit_buffers


def test_mixed_design_rejected():
    with pytest.raises(ValueError):
        unidirectional_switch_cost(4, dilation=2, virtual_channels=2)


def test_network_wiring_costs():
    """The paper's packaging claim, exactly: DMIN (d=2) and BMIN need
    the *same* number of unidirectional channels (384 at 64 nodes),
    1.5x the TMIN's 256; VMIN shares the TMIN's wires."""
    costs = cost_comparison(4, 3)
    assert costs["tmin"].wiring_cost == 256
    assert costs["vmin"].wiring_cost == 256
    assert costs["dmin"].wiring_cost == 384
    assert costs["bmin"].wiring_cost == costs["dmin"].wiring_cost == 384


def test_network_cost_structure():
    nc = network_cost("dmin", 4, 3)
    assert nc.switches == 48
    assert nc.total_gate_proxy == 48 * nc.switch.gate_proxy
    with pytest.raises(ValueError):
        network_cost("xmin", 4, 3)


def test_cost_effectiveness_headline():
    """The paper's conclusion made quantitative: DMIN's sustained
    uniform throughput per gate beats the BMIN's (throughput numbers
    from the recorded scaled run, Fig. 18 global: 52.2% vs 40.1%)."""
    costs = cost_comparison(4, 3)
    dmin_eff = 52.2 / costs["dmin"].total_gate_proxy
    bmin_eff = 40.1 / costs["bmin"].total_gate_proxy
    assert dmin_eff > bmin_eff
