"""Tests for the store-and-forward and circuit-switched simulators,
including the Section 1 latency-structure comparison with wormhole."""

import pytest

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.switching.engines import CircuitSwitchedNetwork, StoreForwardNetwork
from repro.topology.mins import cube_min
from repro.wormhole import WormholeEngine, build_network


def _saf(k=2, n=3, dilation=1):
    env = Environment()
    return env, StoreForwardNetwork(env, cube_min(k, n), dilation=dilation)


def _circuit(k=2, n=3):
    env = Environment()
    return env, CircuitSwitchedNetwork(env, cube_min(k, n))


def test_saf_uncontended_latency_formula():
    """SAF pays (L + 1) per hop: latency = (n+1) * (L+1)."""
    env, net = _saf()
    r = net.send(1, 6, 20)
    env.run()
    assert r.latency == 4 * (20 + 1)


def test_circuit_uncontended_latency_formula():
    """Circuit: (n+1) setup cycles + L streaming cycles."""
    env, net = _circuit()
    r = net.send(1, 6, 20)
    env.run()
    assert r.latency == 4 + 20


def test_wormhole_vs_saf_vs_circuit_structure():
    """Section 1: wormhole and circuit are distance-insensitive-ish and
    linear in L; store-and-forward multiplies hops by message length."""
    L, hops = 100, 4

    env, saf = _saf()
    saf_r = saf.send(0, 7, L)
    env.run()

    env, cir = _circuit()
    cir_r = cir.send(0, 7, L)
    env.run()

    wenv = Environment()
    weng = WormholeEngine(wenv, build_network("tmin", 2, 3), rng=RandomStream(0))
    wp = weng.offer(0, 7, L)
    weng.drain()

    assert saf_r.latency == hops * (L + 1)
    assert cir_r.latency == hops + L
    assert wp.network_latency == hops + L - 2
    # The headline: SAF is ~hops times worse for long messages.
    assert saf_r.latency > 3.5 * wp.network_latency


def test_saf_distance_sensitivity_vs_wormhole():
    """Doubling the path length doubles SAF latency but barely moves
    wormhole's (the distance-insensitivity claim)."""
    L = 64
    env, saf_short = _saf(n=2)
    a = saf_short.send(0, 3, L)
    env.run()
    env, saf_long = _saf(n=4)
    b = saf_long.send(0, 15, L)
    env.run()
    assert b.latency / a.latency > 1.6  # ~5/3 from 3 -> 5 hops

    wenv = Environment()
    short = WormholeEngine(wenv, build_network("tmin", 2, 2), rng=RandomStream(0))
    p1 = short.offer(0, 3, L)
    short.drain()
    wenv2 = Environment()
    long = WormholeEngine(wenv2, build_network("tmin", 2, 4), rng=RandomStream(0))
    p2 = long.offer(0, 15, L)
    long.drain()
    assert p2.network_latency / p1.network_latency < 1.05


def test_saf_contention_serializes_per_channel():
    env, net = _saf()
    a = net.send(0, 7, 30)
    b = net.send(1, 7, 30)  # shares at least the delivery channel
    env.run()
    first, second = sorted(r.delivered_at for r in (a, b))
    assert second >= first + 30  # the loser waits a full transfer


def test_saf_dilation_allows_parallel_transfers():
    env, net = _saf(dilation=2)
    # Two messages sharing an inner slot but not the delivery channel.
    a = net.send(0, 6, 50)
    b = net.send(1, 7, 50)
    env.run()
    # With 2 lanes per inner slot neither waits a full message time.
    assert max(a.latency, b.latency) <= 4 * 51 + 2


def test_circuit_holds_channels_while_waiting():
    """A blocked setup probe keeps its partial circuit -- a third
    message needing those channels queues behind it (head-of-line)."""
    env, net = _circuit()
    a = net.send(0, 7, 200)   # establishes a long-lived circuit
    env.run(until=6)
    b = net.send(1, 7, 10)    # blocks at the delivery channel
    env.run(until=8)
    c = net.send(1, 6, 10)    # needs node 1's injection channel: held by b
    env.run()
    assert a.delivered_at < b.delivered_at
    assert c.delivered_at >= b.created  # c waited behind b's held probe


def test_validation():
    env, net = _saf()
    with pytest.raises(ValueError):
        net.send(0, 5, 0)
    with pytest.raises(ValueError):
        StoreForwardNetwork(env, cube_min(2, 2), dilation=0)


def test_delivered_listing():
    env, net = _saf()
    net.send(0, 5, 10)
    assert net.delivered() == []
    env.run()
    assert len(net.delivered()) == 1
