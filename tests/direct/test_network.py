"""Channel model and routing interface of :class:`DirectNetwork`."""

import pytest

from repro.direct import DirectNetwork, DirectTopology
from repro.wormhole.network import NetworkKind, build_network
from repro.wormhole.packet import Packet


def make_packet(net, src, dst, pid=1):
    p = Packet(pid, src, dst, 4, 0.0)
    net.prepare(p)
    return p


def test_channel_inventory_mesh_dor():
    net = DirectNetwork(DirectTopology(k=3, n=3))
    # Per node: 1 delivery + 1 injection; per directed link: 1 escape.
    links = sum(1 for _ in net.topo.links())
    assert net.escape_classes == 1
    assert net.channel_count == 2 * net.N + links
    assert not net.adaptive


def test_channel_inventory_torus_adaptive():
    net = DirectNetwork(
        DirectTopology(k=3, n=3, wrap=True), router="adaptive",
        adaptive_lanes=2,
    )
    links = sum(1 for _ in net.topo.links())
    assert net.escape_classes == 2
    # 2 escape classes + 2 adaptive lanes per directed link.
    assert net.channel_count == 2 * net.N + 4 * links


def test_labels_and_find_channel():
    net = DirectNetwork(DirectTopology(k=3, n=3, wrap=True), router="adaptive")
    ch = net.find_channel("x+[1,2,0].e0")
    dim, sign, u, v, tag, cls = ch.meta
    assert (dim, sign, tag, cls) == (0, 1, "esc", 0)
    assert net.topo.coords(u) == (1, 2, 0)
    assert net.topo.neighbor(u, 0, 1) == v
    assert net.find_channel("z-[0,0,1].a0").meta[4] == "adp"
    assert net.find_channel("dlv[5]").is_delivery
    assert net.find_channel("inj[5]") is net.injection_channel(5)


def test_topo_order_is_delivery_first_injection_last():
    net = DirectNetwork(DirectTopology(k=2, n=3))
    ordered = net.topo_channels
    assert all(ch.is_delivery for ch in ordered[: net.N])
    assert all(ch.label.startswith("inj[") for ch in ordered[-net.N:])
    # Fabric lanes sit between, by descending dimension (z before y
    # before x): downstream-ish Phase B order for DOR.
    fabric = ordered[net.N: -net.N]
    dims = [ch.meta[0] for ch in fabric]
    assert dims == sorted(dims, reverse=True)


def test_dor_candidates_single_escape_in_dimension_order():
    net = DirectNetwork(DirectTopology(k=3, n=3))
    src = net.topo.node_at((0, 0, 0))
    dst = net.topo.node_at((2, 1, 2))
    p = make_packet(net, src, dst)
    hops = []
    while p.cur != dst:
        cands = net.candidates(p)
        assert len(cands) == 1  # deterministic DOR
        ch = cands[0]
        hops.append(ch.meta[0])
        net.advance(p, ch)
    # Dimension-order: all x hops, then y, then z.
    assert hops == sorted(hops)
    assert len(hops) == net.topo.distance(src, dst)
    assert net.candidates(p) == [net.dlv[dst]]


def test_adaptive_candidates_cover_min_directions_escape_last():
    net = DirectNetwork(
        DirectTopology(k=3, n=3, wrap=True), router="adaptive",
        adaptive_lanes=2,
    )
    src = net.topo.node_at((0, 0, 0))
    dst = net.topo.node_at((1, 2, 0))
    p = make_packet(net, src, dst)
    cands = net.candidates(p)
    assert net.is_escape(cands[-1])
    adp = cands[:-1]
    assert all(ch.meta[4] == "adp" for ch in adp)
    assert {(ch.meta[0], ch.meta[1]) for ch in adp} == set(
        net.topo.min_directions(src, dst)
    )
    assert len(adp) == 2 * len(net.topo.min_directions(src, dst))


def test_candidates_are_memoized():
    net = DirectNetwork(DirectTopology(k=2, n=3))
    p = make_packet(net, 0, 7)
    assert net.candidates(p) is net.candidates(p)


def test_torus_escape_crosses_dateline_once():
    """Escape class starts at 0 pre-wrap and steps to 1 after."""
    net = DirectNetwork(DirectTopology(k=4, n=1, wrap=True))
    p = make_packet(net, 3, 1)  # minimal route 3 -> 0 -> 1 wraps at 3->0
    first = net.candidates(p)[0]
    assert first.meta[5] == 0 and first.meta[1] == 1
    net.advance(p, first)
    second = net.candidates(p)[0]
    assert second.meta[5] == 1  # post-dateline class
    net.advance(p, second)
    assert p.cur == 1


def test_mesh_uses_single_escape_class():
    net = DirectNetwork(DirectTopology(k=4, n=2))
    assert all(key[3] == 0 for key in net.escape)


class FakeLane:
    def __init__(self, channel):
        self.channel = channel


def test_preferred_lane_picks_max_credit_adaptive():
    net = DirectNetwork(
        DirectTopology(k=3, n=1), router="adaptive", adaptive_lanes=1
    )
    p = make_packet(net, 0, 2)
    lane_fwd = FakeLane(net.adaptive[(0, 0, 1)][0])     # downstream node 1
    # Congest node 1's outgoing lanes so its credit drops below node
    # 2's... by occupying them directly.
    for ch in net.node_output_channels(1):
        if not ch.is_delivery:
            ch.lanes[0].owner = p
    lane_esc = FakeLane(net.escape[(0, 0, 1, 0)])
    # Only adaptive lanes are scored; with one adaptive candidate the
    # pick is that lane regardless of the escape's presence.
    pick = net.preferred_lane(p, [lane_fwd, lane_esc], rng=None)
    assert pick is lane_fwd
    # Escape-only candidate set: defer to the engine's default.
    assert net.preferred_lane(p, [lane_esc], rng=None) is None


def test_preferred_lane_round_robin_breaks_credit_ties():
    net = DirectNetwork(
        DirectTopology(k=4, n=1, wrap=True), router="adaptive",
        adaptive_lanes=1,
    )
    p = make_packet(net, 0, 2)  # k/2 away: both directions minimal
    lanes = [
        FakeLane(net.adaptive[(0, 0, 1)][0]),
        FakeLane(net.adaptive[(0, 0, -1)][0]),
    ]
    picks = [net.preferred_lane(p, lanes, rng=None) for _ in range(4)]
    assert picks == [lanes[0], lanes[1], lanes[0], lanes[1]]


def test_dor_network_never_overrides_lane_choice():
    net = DirectNetwork(DirectTopology(k=3, n=1))
    p = make_packet(net, 0, 2)
    lane = FakeLane(net.escape[(0, 0, 1, 0)])
    assert net.preferred_lane(p, [lane], rng=None) is None


def test_vlink_slowdown_marks_last_dimension_only():
    net = DirectNetwork(DirectTopology(k=2, n=3), vlink_slowdown=3)
    for ch in net.topo_channels:
        if ch.meta is None:
            continue
        expected = 3 if ch.meta[0] == net.topo.n - 1 else 1
        assert ch.slowdown == expected


def test_build_network_dispatch():
    mesh = build_network("mesh3d", k=2, n=3)
    torus = build_network(
        "torus3d", k=2, n=3, router="adaptive", vlink_slowdown=2
    )
    assert isinstance(mesh, DirectNetwork)
    assert mesh.kind is NetworkKind.MESH3D
    assert torus.kind is NetworkKind.TORUS3D
    assert torus.router == "adaptive"
    assert torus.vlink_slowdown == 2


def test_validation():
    topo = DirectTopology(k=2, n=2)
    with pytest.raises(ValueError):
        DirectNetwork(topo, router="smart")
    with pytest.raises(ValueError):
        DirectNetwork(topo, adaptive_lanes=0)
    with pytest.raises(ValueError):
        DirectNetwork(topo, vlink_slowdown=0)


def test_worm_phase_stays_off():
    """The engine's per-worm Phase B assumes ascending topo order,
    which adaptive acquisition violates; DirectNetwork opts out."""
    assert DirectNetwork.worm_phase_ok is False
