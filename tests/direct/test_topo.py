"""Geometry of :class:`repro.direct.topo.DirectTopology`.

The closed-form arithmetic (coords, neighbours, distances, diameter,
average distance) is cross-checked against brute force over every node
pair; the graph-theoretic cross-check against networkx BFS lives in
``tests/verify/test_direct_graph_crosscheck.py``.
"""

import itertools

import pytest

from repro.direct.topo import DIM_NAMES, DirectTopology, dim_name

GEOMETRIES = [
    (2, 3, False), (3, 3, False), (4, 3, False),
    (2, 3, True), (3, 3, True), (4, 3, True),
    (4, 2, True), (5, 2, True),
]


def brute_distance(topo, a, b):
    """1-D ring/line distances summed per dimension."""
    total = 0
    for ca, cb in zip(topo.coords(a), topo.coords(b)):
        d = abs(ca - cb)
        if topo.wrap:
            d = min(d, topo.k - d)
        total += d
    return total


@pytest.mark.parametrize("k,n,wrap", GEOMETRIES)
def test_coords_roundtrip(k, n, wrap):
    topo = DirectTopology(k=k, n=n, wrap=wrap)
    assert topo.N == k**n
    for node in range(topo.N):
        assert topo.node_at(topo.coords(node)) == node


def test_coords_dimension_zero_is_fastest_varying():
    topo = DirectTopology(k=3, n=2)
    assert topo.coords(0) == (0, 0)
    assert topo.coords(1) == (1, 0)
    assert topo.coords(3) == (0, 1)


@pytest.mark.parametrize("k,n,wrap", GEOMETRIES)
def test_neighbors(k, n, wrap):
    topo = DirectTopology(k=k, n=n, wrap=wrap)
    for node in range(topo.N):
        coords = topo.coords(node)
        for dim in range(n):
            for sign in (1, -1):
                nb = topo.neighbor(node, dim, sign)
                at_edge = (coords[dim] == k - 1 if sign > 0
                           else coords[dim] == 0)
                if not wrap and at_edge:
                    assert nb is None
                else:
                    expect = list(coords)
                    expect[dim] = (coords[dim] + sign) % k
                    assert nb == topo.node_at(tuple(expect))


@pytest.mark.parametrize("k,n,wrap", GEOMETRIES)
def test_links_are_neighbor_pairs_and_complete(k, n, wrap):
    topo = DirectTopology(k=k, n=n, wrap=wrap)
    links = list(topo.links())
    seen = set()
    for u, v, dim, sign in links:
        assert topo.neighbor(u, dim, sign) == v
        seen.add((u, dim, sign))
    # Every non-edge (node, dim, sign) appears exactly once.
    expected = sum(
        1
        for node in range(topo.N)
        for dim in range(n)
        for sign in (1, -1)
        if topo.neighbor(node, dim, sign) is not None
    )
    assert len(links) == expected == len(seen)


@pytest.mark.parametrize("k,n,wrap", GEOMETRIES)
def test_distance_matches_brute_force(k, n, wrap):
    topo = DirectTopology(k=k, n=n, wrap=wrap)
    for a in range(topo.N):
        for b in range(topo.N):
            assert topo.distance(a, b) == brute_distance(topo, a, b)


@pytest.mark.parametrize("k,n,wrap", GEOMETRIES)
def test_min_directions_are_exactly_the_distance_reducers(k, n, wrap):
    topo = DirectTopology(k=k, n=n, wrap=wrap)
    for a, b in itertools.product(range(topo.N), repeat=2):
        if a == b:
            assert topo.min_directions(a, b) == []
            continue
        got = set(topo.min_directions(a, b))
        want = set()
        for dim in range(n):
            for sign in (1, -1):
                nb = topo.neighbor(a, dim, sign)
                if nb is not None and (
                    topo.distance(nb, b) == topo.distance(a, b) - 1
                ):
                    want.add((dim, sign))
        assert got == want, (a, b)


@pytest.mark.parametrize("k,n,wrap", GEOMETRIES)
def test_diameter_and_average_distance_closed_forms(k, n, wrap):
    topo = DirectTopology(k=k, n=n, wrap=wrap)
    dists = [
        topo.distance(a, b)
        for a, b in itertools.product(range(topo.N), repeat=2)
        if a != b
    ]
    assert topo.diameter == max(dists)
    assert topo.average_distance == pytest.approx(
        sum(dists) / len(dists)
    )


def test_dim_names():
    assert [dim_name(i) for i in range(3)] == list(DIM_NAMES)
    assert dim_name(3) == "d3"


def test_validation():
    with pytest.raises(ValueError):
        DirectTopology(k=1, n=3)
    with pytest.raises(ValueError):
        DirectTopology(k=4, n=0)
