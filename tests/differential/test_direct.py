"""Engine-tier bit-identity on the direct topologies.

The direct networks exercise engine paths the MIN cases cannot: the
``worm_phase_ok`` opt-out (adaptive acquisition order violates the
per-worm Phase B's ascending-rank assumption), the ``preferred_lane``
credit/round-robin override, and the ``vlink_slowdown`` channel
cooldowns.  Each case runs the same seeded point under every engine
tier and asserts byte-equal snapshots (see
:mod:`tests.differential.harness`).
"""

import pytest

from tests.differential.harness import EventRecorder, assert_identical

GEOM = {"k": 2, "n": 3}


@pytest.mark.parametrize("kind", ["mesh3d", "torus3d"])
@pytest.mark.parametrize("router", ["dor", "adaptive"])
def test_direct_uniform(kind, router):
    assert_identical(
        kind, "uniform", 0.6, net_kwargs={**GEOM, "router": router}
    )


@pytest.mark.parametrize("kind", ["mesh3d", "torus3d"])
@pytest.mark.parametrize("router", ["dor", "adaptive"])
def test_direct_with_faults(kind, router):
    assert_identical(
        kind, "uniform", 0.6, faults=True,
        net_kwargs={**GEOM, "router": router},
    )


def test_direct_hotspot_high_load():
    assert_identical(
        "torus3d", "hotspot", 0.9,
        net_kwargs={**GEOM, "router": "adaptive"},
    )


@pytest.mark.parametrize("router", ["dor", "adaptive"])
def test_direct_vlink_slowdown(router):
    assert_identical(
        "torus3d", "uniform", 0.6,
        net_kwargs={**GEOM, "router": router, "vlink_slowdown": 2},
    )


def test_direct_event_streams_identical():
    """Hot-bus mode: the exact publish order must match, not just the
    end state."""
    fast_rec, ref_rec = EventRecorder(), EventRecorder()
    from tests.differential.harness import (
        BATCH_AVAILABLE,
        run_case,
        strip_kernel_counters,
    )

    kwargs = {"net_kwargs": {**GEOM, "router": "adaptive"}}
    fast = run_case("torus3d", "uniform", 0.6, "fast",
                    sink=fast_rec, **kwargs)
    ref = run_case("torus3d", "uniform", 0.6, "reference",
                   sink=ref_rec, **kwargs)
    assert fast == ref
    assert fast_rec.events == ref_rec.events
    if BATCH_AVAILABLE:
        batch_rec = EventRecorder()
        batch = run_case("torus3d", "uniform", 0.6, "batch",
                         sink=batch_rec, **kwargs)
        assert strip_kernel_counters(batch) == strip_kernel_counters(ref)
        assert batch_rec.events == ref_rec.events
