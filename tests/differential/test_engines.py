"""Differential certification: fast engine == reference engine, bitwise.

Each case seeds one simulation point and runs it under both execution
paths, asserting the full outcome snapshot -- measurement window,
engine counters, every delivery record, kernel event counts -- is
equal.  The grid spans all four networks, two traffic patterns, light
and near-saturation loads, fault injection (soft + hard transient
events, which exercise abort/materialization on the fast path), and
runs under the runtime sanitizer (which disables the fast path's
free-run shortcut, covering its fallback behaviour).
"""

from __future__ import annotations

import pytest

from tests.differential.harness import (
    NETWORK_KINDS,
    assert_identical,
)


@pytest.mark.parametrize("kind", NETWORK_KINDS)
@pytest.mark.parametrize("pattern", ("uniform", "shuffle"))
@pytest.mark.parametrize("load", (0.2, 0.9))
def test_fault_free_identity(kind: str, pattern: str, load: float) -> None:
    """4 networks x 2 patterns x 2 loads, no faults (16 cases)."""
    assert_identical(kind, pattern, load)


@pytest.mark.parametrize("kind", NETWORK_KINDS)
@pytest.mark.parametrize("load", (0.3, 0.8))
def test_faulted_identity(kind: str, load: float) -> None:
    """Soft + hard transient faults mid-run (8 cases).

    The hard event aborts in-flight worms, which on the fast path must
    first materialize any free-running worm's lane state; the repair
    events bump the fault epoch and invalidate blocked-header caches.
    """
    assert_identical(kind, "uniform", load, faults=True)


@pytest.mark.parametrize("kind", NETWORK_KINDS)
@pytest.mark.parametrize("pattern", ("uniform", "shuffle"))
def test_sanitized_identity(kind: str, pattern: str) -> None:
    """Same grid under REPRO_SANITIZE=1 (8 cases).

    Both runs self-check the engine invariants every cycle, and the
    fast path runs with its free-run shortcut disabled -- so this also
    certifies the per-worm sweep without fast-forwarding.
    """
    assert_identical(kind, pattern, 0.6, sanitize=True)


@pytest.mark.parametrize("kind", NETWORK_KINDS)
def test_sanitized_faulted_identity(kind: str) -> None:
    """Sanitizer and fault injection together (4 cases)."""
    assert_identical(kind, "uniform", 0.7, faults=True, sanitize=True)
