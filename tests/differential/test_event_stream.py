"""Event-for-event certification of the optimized engines' publish sites.

Attaching a hot bus sink (the :class:`EventRecorder`) makes the fast
and batch engines take their exact-event-order channel sweep, and
every inject / acquire / block / release / transmit / deliver publish
must then match the reference engine's stream element-for-element --
ordering included.  This is strictly stronger than end-state equality:
it pins the *within-cycle* schedule of every path.
"""

from __future__ import annotations

import pytest

from tests.differential.harness import (
    BATCH_AVAILABLE,
    NETWORK_KINDS,
    EventRecorder,
    run_case,
    strip_kernel_counters,
)


@pytest.mark.parametrize("kind", NETWORK_KINDS)
@pytest.mark.parametrize("load", (0.2, 0.8))
def test_event_stream_identity(kind: str, load: float) -> None:
    """4 networks x 2 loads with a hot recording sink (8 cases)."""
    rec_fast = EventRecorder()
    rec_ref = EventRecorder()
    snap_fast = run_case(kind, "uniform", load, "fast", sink=rec_fast)
    snap_ref = run_case(kind, "uniform", load, "reference", sink=rec_ref)
    assert snap_fast == snap_ref
    assert len(rec_fast.events) == len(rec_ref.events)
    # Compare element-wise for a readable first-divergence message.
    for i, (a, b) in enumerate(zip(rec_fast.events, rec_ref.events)):
        assert a == b, (
            f"{kind}/load={load}: event stream diverges at index {i}: "
            f"fast={a} reference={b}"
        )
    if BATCH_AVAILABLE:
        rec_batch = EventRecorder()
        snap_batch = run_case(kind, "uniform", load, "batch", sink=rec_batch)
        assert strip_kernel_counters(snap_batch) == strip_kernel_counters(
            snap_ref
        )
        for i, (a, b) in enumerate(zip(rec_batch.events, rec_ref.events)):
            assert a == b, (
                f"{kind}/load={load}: batch event stream diverges at "
                f"index {i}: batch={a} reference={b}"
            )
        assert len(rec_batch.events) == len(rec_ref.events)


@pytest.mark.parametrize("kind", ("dmin", "bmin"))
def test_event_stream_identity_with_faults(kind: str) -> None:
    """Hot sink + fault injection: aborts and repairs in the stream."""
    rec_fast = EventRecorder()
    rec_ref = EventRecorder()
    snap_fast = run_case(
        kind, "uniform", 0.7, "fast", sink=rec_fast, faults=True
    )
    snap_ref = run_case(
        kind, "uniform", 0.7, "reference", sink=rec_ref, faults=True
    )
    assert snap_fast == snap_ref
    assert rec_fast.events == rec_ref.events
    if BATCH_AVAILABLE:
        rec_batch = EventRecorder()
        snap_batch = run_case(
            kind, "uniform", 0.7, "batch", sink=rec_batch, faults=True
        )
        assert strip_kernel_counters(snap_batch) == strip_kernel_counters(
            snap_ref
        )
        assert rec_batch.events == rec_ref.events
