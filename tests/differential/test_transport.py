"""Engine-tier bit-identity of the end-to-end reliable transport.

The transport (:mod:`repro.transport`) threads an entire reliability
protocol -- sequence numbers, ack packets flowing *backwards* through
the same fabric, RTO timers with seeded jittered backoff, AIMD send
windows -- through the engine's offer path and its cold event bus.
Every one of those mechanisms claims path-independence:

* the transport consumes only its own forked RNG stream (one draw per
  retransmit scheduling), so engine and workload draws are untouched;
* all bus callbacks do bookkeeping and spawn processes whose first
  statement is a timeout yield, so no nested ``offer`` can reorder
  engine work within a cycle;
* timer staleness is token-based, not time-compared, so the calendar
  and heap schedulers' different event orders at equal timestamps
  cannot change which retransmissions fire.

These tests storm every network (hard MTBF-style fault plan + loss at
the admission door where configured) and assert the complete
snapshots -- measurement with the transport counters, delivery
records, end-to-end tallies, and the full sorted outcome map -- are
equal across the fast, reference, and batch tiers.  A short
``rto_base`` makes timeouts actually fire inside the 12k-cycle runs.
"""

import pytest

from tests.differential.harness import NETWORK_KINDS, assert_identical

#: Enough offered traffic that windows fill and sheds recur.
LOAD = 0.7

#: Past-saturation load for the capacity-12 admission queue cases.
OVERLOAD = 0.9

#: Short timers so RTO fires, backoff escalates, and (with the fault
#: plan's hard cut) flows can abort within the differential horizon.
STORM = {"rto_base": 64.0, "rto_max": 512.0, "ack_delay": 2.0}


@pytest.mark.parametrize("kind", NETWORK_KINDS)
def test_transport_under_faults_identical(kind):
    """The acceptance storm: reliable transport recovering from a hard
    wire cut, on all four of the paper's networks."""
    assert_identical(kind, "uniform", LOAD, faults=True, transport=STORM)


@pytest.mark.parametrize("kind", ("tmin", "dmin"))
def test_transport_shed_storm_identical(kind):
    """Loss at the admission door (shed-newest drops fresh offers, so
    retransmissions are the only path to delivery)."""
    assert_identical(
        kind, "uniform", OVERLOAD, overload="shed-newest", transport=STORM
    )


def test_transport_shed_oldest_identical():
    """Shed-oldest evicts a *different* registered packet synchronously
    during the offer call -- the reentrant loss path."""
    assert_identical(
        "dmin", "uniform", OVERLOAD, overload="shed-oldest", transport=STORM
    )


def test_governed_transport_identical():
    """The sweep's "both" mode: AIMD governor throttling sources while
    the transport retransmits around the sheds."""
    assert_identical(
        "vmin",
        "uniform",
        OVERLOAD,
        overload="shed-newest",
        governed=True,
        transport=STORM,
    )


def test_transport_watchdog_identical():
    """A recovering watchdog over the transport (SourceRetry suppressed
    -- retransmission is the recovery layer)."""
    assert_identical(
        "tmin",
        "uniform",
        OVERLOAD,
        overload="shed-oldest",
        watchdog=True,
        transport=STORM,
    )


def test_transport_hotspot_identical():
    """Non-uniform traffic concentrates both data and reverse-direction
    ack contention on the hot module."""
    assert_identical("bmin", "hotspot", LOAD, faults=True, transport=STORM)


@pytest.mark.parametrize("kind", ("tmin", "vmin"))
def test_transport_sanitized_identical(kind):
    """The full storm with the runtime sanitizer armed on every tier."""
    assert_identical(
        kind, "uniform", LOAD, faults=True, transport=STORM, sanitize=True
    )


@pytest.mark.parametrize("arrival", ["pareto", "mmpp"])
def test_bursty_arrivals_identical(arrival):
    """The bursty arrival processes re-draw through the same per-source
    streams; their mixture draws must consume identically on all tiers."""
    assert_identical("dmin", "uniform", LOAD, arrival=arrival)


def test_bursty_transport_identical():
    """Pareto on-off bursts feeding the reliable transport under the
    fault storm: clustered sends stress window exhaustion."""
    assert_identical(
        "tmin", "uniform", LOAD, faults=True, transport=STORM,
        arrival="pareto",
    )


def test_mmpp_shuffle_identical():
    """Modulated arrivals on a permutation pattern (every source has a
    single fixed destination -- one flow per node pair)."""
    assert_identical("bmin", "shuffle", LOAD, arrival="mmpp")
