"""Calendar-queue vs binary-heap scheduler: bit-identical dispatch.

The calendar scheduler is the fast path's O(1) event queue for the
dominant unit-delay clock events, with a heap fallback for fractional
times; the plain heap is the reference.  Both must dispatch in exactly
``(time, priority, insertion order)`` order.  Certified two ways: a
synthetic adversarial schedule (mixed integral/fractional delays,
priorities, and same-time ties) and full engine runs where only the
scheduler differs.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import PRESETS, NetworkConfig
from repro.experiments.runner import _run_until_delivered
from repro.experiments.workload_spec import WorkloadSpec
from repro.sim.core import Environment
from repro.sim.events import PRIORITY_NORMAL, PRIORITY_URGENT
from repro.sim.rng import RandomStream
from repro.wormhole.engine import WormholeEngine
from tests.differential.harness import CFG


def _dispatch_trace(scheduler: str) -> list[tuple[float, int]]:
    """Drive one adversarial schedule; record (time, tag) dispatch order."""
    env = Environment(scheduler=scheduler)
    trace: list[tuple[float, int]] = []
    rng = RandomStream(1234, name="sched")

    def proc(tag: int, delays):
        for d in delays:
            yield env.timeout(d)
            trace.append((env.now, tag))

    for tag in range(20):
        # Mixed integral and fractional delays, many same-time ties.
        delays = [
            1.0 if rng.random() < 0.6 else rng.random() * 3.0
            for _ in range(30)
        ]
        env.process(proc(tag, delays), name=f"p{tag}")
    # Urgent vs normal priority ties at the same instant.
    marks: list[tuple[float, str]] = []

    def marker(label: str, priority: int):
        # White-box: pre-succeed the event so a delayed schedule at an
        # explicit priority is legal (succeed() only schedules "now").
        ev = env.event()
        ev._ok = True
        ev._value = None
        env.schedule(ev, priority=priority, delay=5.0)
        yield ev
        marks.append((env.now, label))

    env.process(marker("urgent", PRIORITY_URGENT), name="u")
    env.process(marker("normal", PRIORITY_NORMAL), name="n")
    env.run(until=40.0)
    trace.extend((t, {"urgent": -1, "normal": -2}[l]) for t, l in marks)
    return trace


def test_adversarial_schedule_identity() -> None:
    """Same dispatch order for mixed integral/fractional schedules."""
    assert _dispatch_trace("calendar") == _dispatch_trace("heap")


def test_urgent_priority_orders_before_normal() -> None:
    """At equal times, urgent events dispatch before normal ones."""
    for scheduler in ("calendar", "heap"):
        env = Environment(scheduler=scheduler)
        order: list[str] = []

        def waiter(label: str, priority: int):
            ev = env.event()
            ev._ok = True
            ev._value = None
            env.schedule(ev, priority=priority, delay=3.0)
            yield ev
            order.append(label)

        env.process(waiter("normal", PRIORITY_NORMAL), name="n")
        env.process(waiter("urgent", PRIORITY_URGENT), name="u")
        env.run(until=10.0)
        assert order == ["urgent", "normal"], scheduler


def _engine_run(kind: str, scheduler: str):
    """One seeded fast-engine point where only the scheduler differs."""
    network = NetworkConfig(kind)
    load = 0.6
    env = Environment(scheduler=scheduler)
    root = RandomStream(CFG.seed, name="root")
    engine = WormholeEngine(
        env,
        network.build(),
        rng=root.fork(f"engine/{network.label}/{load}"),
        fast=True,
    )
    spec = WorkloadSpec(pattern="uniform")
    workload = spec.builder(CFG)(load)
    workload.install(env, engine, root.fork(f"workload/{network.label}/{load}"))
    engine.start()
    _run_until_delivered(engine, CFG.warmup_packets, env.now + 4000)
    _run_until_delivered(
        engine,
        CFG.warmup_packets + CFG.measure_packets,
        env.now + CFG.max_cycles,
    )
    stats = engine.stats
    return (
        tuple(stats.records),
        stats.offered_packets,
        stats.delivered_packets,
        engine.cycles_run,
        env.now,
        env.events_fired,
    )


@pytest.mark.parametrize("kind", ("tmin", "dmin", "vmin", "bmin"))
def test_engine_run_scheduler_identity(kind: str) -> None:
    """Full engine runs differ only in the scheduler: same outcome."""
    assert _engine_run(kind, "calendar") == _engine_run(kind, "heap")
