"""Fast-vs-reference bit-identity under the overload toolkit.

The stability subsystem (:mod:`repro.stability`) is wired into the
engine's offer path (bounded admission), its cycle loop (progress
watchdog) and its RNG-free control plane (AIMD governor reading cold
bus events).  Each of those claims path-independence:

* admission decisions depend only on the source queue length at offer
  time -- process-driven state the schedulers already order
  identically;
* the governor's arithmetic is deterministic and its same-cycle rate
  updates commute (default config: additive increases only on deliver),
  so intra-cycle delivery-order differences between the engine paths
  cannot leak into rates;
* the watchdog samples per-worm progress signatures at cycle
  boundaries from end-of-cycle engine state, exempting fast-path
  free-running worms (progressing by construction) rather than reading
  their stale counters.

These tests drive every network well past its knee with a deliberately
tight queue capacity, so shed/throttle/recovery machinery actually
fires, and assert the complete snapshots -- measurement, delivery
records, overload counters, final governor rate vectors, watchdog
event streams -- are equal between the fast and reference engines.
"""

import pytest

from tests.differential.harness import NETWORK_KINDS, assert_identical

#: Past-saturation load for the tight capacity-12 admission queue.
OVERLOAD = 0.9


@pytest.mark.parametrize("kind", NETWORK_KINDS)
@pytest.mark.parametrize("mode", ["block", "shed-newest", "shed-oldest"])
def test_admission_modes_identical(kind, mode):
    assert_identical(kind, "uniform", OVERLOAD, overload=mode)


@pytest.mark.parametrize("kind", NETWORK_KINDS)
def test_governed_overload_identical(kind):
    assert_identical(
        kind, "uniform", OVERLOAD, overload="shed-newest", governed=True
    )


@pytest.mark.parametrize("kind", NETWORK_KINDS)
def test_watchdog_armed_identical(kind):
    """A recovering watchdog (plus retry layer) must not perturb either
    path: on deadlock-free fabrics under congestion it observes without
    intervening, and its observations are cycle-boundary state."""
    assert_identical(kind, "uniform", OVERLOAD, watchdog=True)


def test_full_stack_identical():
    """Admission + governor + watchdog together, the stability-sweep
    configuration, on the two contention-heavy fabrics."""
    for kind in ("tmin", "bmin"):
        assert_identical(
            kind,
            "uniform",
            OVERLOAD,
            overload="shed-oldest",
            governed=True,
            watchdog=True,
        )


def test_block_mode_sanitized_identical():
    """Backpressure mode with the runtime sanitizer armed on both
    paths: the sanitizer's invariants must hold while offers bounce."""
    assert_identical(
        "dmin", "uniform", OVERLOAD, overload="block", sanitize=True
    )
