"""Adversarial mode-switch cases aimed at the batch tier's seams.

The batch engine's speed comes from three mode switches the scalar
tiers never make: the all-blocked exit (skip Phase A's scan), the
span-sleep clock (skip whole cycles, deferring service-order shuffle
draws as ``_shuffle_debt``), and the vectorized Phase B
(``plan_moves`` over the SoA free-run ledger).  Every switch has an
entry condition proven against engine state -- so the dangerous inputs
are the ones that *invalidate* that state mid-flight: faults landing
inside a burst, hard aborts while worms free-run, a governor
rewriting injection rates under the vectorized path, and saturation
workloads that thrash between quiet spans and contended scans every
few cycles.

Each case runs the full three-tier comparison of
:func:`tests.differential.harness.assert_identical`; the
``REPRO_BATCH_VECTOR_MIN`` cases additionally pin the vectorization
threshold to 1 so ``plan_moves`` engages even for tiny eligible sets
(the default threshold of 24 would route short tests through the
scalar fallback and leave the vector path untested).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.traffic.workload import MessageSizeModel
from tests.differential.harness import CFG, NETWORK_KINDS, assert_identical

#: Long fixed messages: worms stream for 128 cycles per hop-free
#: stretch, so the batch clock builds real spans (and real shuffle
#: debt) for the mid-run fault events at t=250/600 to tear down.
CFG_LONG = replace(
    CFG,
    warmup_packets=20,
    measure_packets=80,
    max_cycles=30_000,
    sizes=MessageSizeModel("fixed", 128, 128),
)

#: Past-saturation load for the governor cases (mirrors test_overload).
OVERLOAD = 0.9


@pytest.mark.parametrize("kind", NETWORK_KINDS)
def test_fault_mid_burst(kind):
    """Soft then hard faults land while long bursts are in flight:
    the fault epoch bump must invalidate blocked-decision caches (and
    the all-blocked exit's ``_blk_valid`` count) on all three tiers
    identically."""
    assert_identical(kind, "uniform", 0.9, faults=True, run_cfg=CFG_LONG)


@pytest.mark.parametrize("kind", ("dmin", "bmin"))
@pytest.mark.parametrize("load", (0.2, 0.4))
def test_abort_during_free_run(kind, load):
    """The t=600 hard fault cuts a wire under a quiet network: on the
    optimized tiers the victims are *free-running* (batch: ledger rows
    mid-span), so the abort must materialize them, unwind lane
    ownership, and settle any deferred shuffle debt before the queue's
    membership changes."""
    assert_identical(kind, "uniform", load, faults=True, run_cfg=CFG_LONG)


@pytest.mark.parametrize("kind", NETWORK_KINDS)
def test_governor_throttle_on_vectorized_path(kind, monkeypatch):
    """AIMD rate rewrites while Phase B runs vectorized: threshold
    pinned to 1 so ``plan_moves`` handles every eligible set, and the
    governor's same-cycle updates must stay commutative under it."""
    monkeypatch.setenv("REPRO_BATCH_VECTOR_MIN", "1")
    assert_identical(
        kind, "uniform", OVERLOAD, overload="shed-newest", governed=True
    )


@pytest.mark.parametrize("kind", ("dmin", "tmin"))
@pytest.mark.parametrize("vec_min", ("1", "4"))
def test_forced_vector_with_faults(kind, vec_min, monkeypatch):
    """Faults against the forced vector path: aborted ledger rows must
    drop out of ``plan_moves`` eligibility on the exact cycle the
    scalar tiers drop them."""
    monkeypatch.setenv("REPRO_BATCH_VECTOR_MIN", vec_min)
    assert_identical(kind, "uniform", 0.7, faults=True)


@pytest.mark.parametrize("kind", ("dmin", "vmin"))
def test_saturation_thrash_sanitized(kind):
    """Hotspot saturation alternates all-blocked spans with contended
    scans every few cycles -- maximal mode-switch churn -- with the
    runtime sanitizer auditing channel state on every tier."""
    assert_identical(kind, "hotspot", 1.0, faults=True, sanitize=True)


@pytest.mark.parametrize("kind", ("dmin", "tmin"))
def test_watchdog_recovery_thrash(kind):
    """A recovering watchdog aborting stalled worms while the batch
    clock span-sleeps: recovery runs at cycle boundaries, so the span
    gate must refuse to sleep past an armed check."""
    assert_identical(kind, "uniform", 0.8, faults=True, watchdog=True,
                     run_cfg=CFG_LONG)


@pytest.mark.parametrize("kind", ("bmin", "vmin"))
def test_shuffle_pattern_faulted_sanitized(kind):
    """Permutation traffic (every source one fixed destination) keeps
    pending queues short and shuffle debt frequent; faults plus the
    sanitizer audit the deferred-draw replay."""
    assert_identical(kind, "shuffle", 0.6, faults=True, sanitize=True)


def test_forced_vector_sanitized(monkeypatch):
    """Vector path + sanitizer: the per-cycle invariant walk reads
    ``_pending_route`` and lane state right after vectorized advances,
    so any stale SoA mirror surfaces immediately."""
    monkeypatch.setenv("REPRO_BATCH_VECTOR_MIN", "1")
    assert_identical("dmin", "uniform", 0.6, sanitize=True)
