"""Shared machinery of the engine-tier differential suite.

The optimized engine paths are certified against the straightforward
reference path ("reference": binary-heap scheduler, full scans) by
running the *same* seeded simulation under every tier and asserting
the outcomes are bit-identical -- not statistically close: the same
packets take the same routes on the same cycles, block on the same
candidate sets, and produce byte-equal delivery records and
measurement windows.

Three tiers are compared:

* ``fast`` (calendar scheduler, active-set allocation, per-worm
  advance, free-run fast-forward, routing memos) must match the
  reference on the *entire* snapshot, kernel event counters included.
* ``batch`` (SoA free-run ledger, deferred service-order shuffles,
  span-sleep clock with inline ticks) must match on every simulation
  observable -- measurement window, all engine counters, delivery
  records, ``cycles_run``, ``env.now``, governor/watchdog/injector
  tallies -- but *not* on the kernel's event-count telemetry
  (``events_scheduled`` / ``events_fired``): skipping provably-empty
  wake events is precisely the batch clock's optimization, and those
  two counters exist to measure scheduler cost, not simulation
  behaviour.  The batch leg is skipped silently when numpy is absent
  (the batch tier refuses to construct without it).

Every helper here builds its point exactly like
:func:`repro.experiments.runner.build_point` does (same RNG fork
labels), so the streams consumed by topology construction, traffic
generation, and allocation shuffles match between the runs by
construction; any observable divergence is then an engine bug.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.experiments.config import PRESETS, NetworkConfig
from repro.experiments.runner import _run_until_delivered, build_point
from repro.experiments.workload_spec import WorkloadSpec
from repro.faults.mtbf import fabric_channels
from repro.faults.plan import FaultEvent, FaultPlan
from repro.metrics.collector import MeasurementWindow
from repro.wormhole import channel as channel_mod

#: Network kinds under test (all four of the paper's networks).
NETWORK_KINDS = ("tmin", "dmin", "vmin", "bmin")

try:
    from repro.wormhole.batch import numpy_available

    BATCH_AVAILABLE = numpy_available()
except Exception:  # pragma: no cover - defensive
    BATCH_AVAILABLE = False

#: Positions of the kernel event counters (``env.events_scheduled``,
#: ``env.events_fired``) in a :func:`run_case` snapshot.  Batch-tier
#: comparisons exclude exactly these two -- see the module docstring.
KERNEL_COUNTER_INDICES = (13, 14)

#: A short but non-trivial run: enough traffic that worms contend,
#: block, wake, and (on the fast path) enter free-run streaming.
CFG = replace(
    PRESETS["smoke"],
    warmup_packets=40,
    measure_packets=200,
    max_cycles=12_000,
)


def fault_plan(engine) -> FaultPlan:
    """A deterministic two-event plan resolved against a live network.

    One soft transient fault early (routing-table removal; in-flight
    worms keep streaming) and one *hard* transient fault mid-run (wire
    cut: worms on the channel are aborted -- on the fast path this
    forces free-running worms to materialize).  Labels are taken from
    the network's own fabric-channel list, so the identical plan
    applies to both engine runs of a case.
    """
    fabric = fabric_channels(engine.network)
    soft = fabric[3 % len(fabric)].label
    hard = fabric[7 % len(fabric)].label
    return FaultPlan(
        (
            FaultEvent(at=250.0, channels=(soft,), duration=500.0),
            FaultEvent(
                at=600.0, channels=(hard,), duration=800.0, severity="hard"
            ),
        )
    )


def run_case(
    kind: str,
    pattern: str,
    load: float,
    engine: str,
    *,
    faults: bool = False,
    sanitize: bool = False,
    sink=None,
    overload: str | None = None,
    governed: bool = False,
    watchdog: bool = False,
    transport: dict | None = None,
    arrival: str | None = None,
    run_cfg=CFG,
    net_kwargs: dict | None = None,
):
    """Run one seeded point under ``engine`` and snapshot its outcome.

    Returns a tuple of every observable the suite compares:
    measurement window, engine counters, the full delivery-record
    stream, simulator-kernel counters, and (with ``faults``) the
    injector's tallies.  Two snapshots compare equal iff the runs were
    bit-identical.

    ``overload`` installs a deliberately tight
    :class:`~repro.stability.BoundedQueue` in the named admission mode
    so the policy actually acts during the short run; ``governed`` adds
    an aggressive AIMD governor closing the injection loop (its default
    latency_target=None keeps same-cycle rate updates commutative, so
    the loop is order-insensitive within a cycle and hence
    path-identical); ``watchdog`` arms a recovering
    :class:`~repro.stability.ProgressWatchdog` with a
    :class:`~repro.faults.recovery.SourceRetry` layer behind it.  The
    snapshot then additionally carries the shed/throttle/stall counters
    and the governor's final per-source rate vector.

    ``transport`` routes every source message through a
    :class:`~repro.transport.ReliableTransport` built from the given
    :class:`~repro.transport.TransportConfig` kwargs (use a short
    ``rto_base`` so retransmissions actually fire inside the 12k-cycle
    run); the snapshot gains the end-to-end tallies and the full sorted
    outcome map.  ``watchdog``'s SourceRetry layer is suppressed when a
    transport is present -- both re-offer the same loss, and stacking
    them double-injects.  ``arrival`` selects a bursty arrival process
    from :data:`repro.traffic.bursty.ARRIVAL_KINDS` in place of the
    Poisson default.
    """
    network = NetworkConfig(kind, **(net_kwargs or {}))
    spec = WorkloadSpec(
        pattern=pattern,
        k=network.k,
        n=network.n,
        arrival=arrival or "poisson",
    )
    saved_env = os.environ.get("REPRO_SANITIZE")
    saved_observer = channel_mod.release_observer
    if sanitize:
        os.environ["REPRO_SANITIZE"] = "1"
    try:
        env, eng, root = build_point(network, load, run_cfg, engine)
        if sink is not None:
            eng.bus.attach(sink)
        injector = None
        if faults:
            injector = fault_plan(eng).install(env, eng.network, eng)
        governor = None
        if overload is not None:
            from repro.stability import AIMDConfig, AIMDGovernor, BoundedQueue

            BoundedQueue(capacity=12, mode=overload).install(eng)
            if governed:
                governor = AIMDGovernor(
                    eng,
                    AIMDConfig(
                        ai_step=0.02,
                        md_factor=0.5,
                        backlog_threshold=6,
                        decrease_holdoff=64.0,
                    ),
                )
        if watchdog:
            from repro.stability import ProgressWatchdog

            if transport is None:
                from repro.faults.recovery import RetryPolicy, SourceRetry

                retry = SourceRetry(  # noqa: F841 -- holds the subscription
                    eng,
                    RetryPolicy(
                        max_attempts=3, base_delay=32.0, max_delay=256.0
                    ),
                    root.fork(f"retry/{network.label}/{load}"),
                )
            eng.watchdog = ProgressWatchdog(
                eng,
                check_every=32,
                stall_age=1024,
                deadlock_after=256,
                recover=True,
            )
        reliability = None
        if transport is not None:
            from repro.transport import ReliableTransport, TransportConfig

            reliability = ReliableTransport(
                eng,
                TransportConfig(**transport),
                root.fork(f"transport/{network.label}/{load}"),
            )
        workload = spec.builder(run_cfg)(load)
        workload.governor = governor
        workload.transport = reliability
        workload.install(
            env, eng, root.fork(f"workload/{network.label}/{load}")
        )
        eng.start()
        _run_until_delivered(
            eng, run_cfg.warmup_packets, env.now + run_cfg.max_cycles / 4
        )
        window = MeasurementWindow(eng)
        window.begin()
        _run_until_delivered(
            eng, run_cfg.measure_packets, env.now + run_cfg.max_cycles
        )
        measurement = window.finish()
    finally:
        if sanitize:
            if saved_env is None:
                os.environ.pop("REPRO_SANITIZE", None)
            else:
                os.environ["REPRO_SANITIZE"] = saved_env
            channel_mod.release_observer = saved_observer
    stats = eng.stats
    wd = eng.watchdog
    return (
        measurement,
        stats.offered_packets,
        stats.offered_flits,
        stats.delivered_packets,
        stats.delivered_flits,
        stats.failed_packets,
        stats.max_queue_len,
        stats.shed_packets,
        stats.throttled_packets,
        stats.stall_aborted_packets,
        tuple(stats.records),
        eng.cycles_run,
        env.now,
        env.events_scheduled,
        env.events_fired,
        None if governor is None else tuple(governor.rates),
        None
        if wd is None
        else (wd.aborted, wd.deadlocks, wd.livelocks,
              tuple(map(_stall_tuple, wd.events))),
        None
        if injector is None
        else (injector.injected, injector.repaired, injector.killed_worms),
        # New observables append at the END: the kernel-counter indices
        # above are positional and must not shift.
        None
        if reliability is None
        else (
            reliability.messages_sent,
            reliability.messages_delivered,
            reliability.messages_aborted,
            reliability.flows_aborted,
            reliability.acks_lost,
            stats.retransmitted_packets,
            stats.rto_fires,
            stats.dup_acks,
            stats.ack_packets,
            stats.goodput_flits,
            tuple(sorted(reliability.outcomes.items())),
        ),
    )


def _stall_tuple(e) -> tuple:
    return (e.t, e.pid, e.age, e.verdict, e.recovered)


class EventRecorder:
    """A bus sink that records every published event as a plain tuple.

    Subscribing to the hot kinds makes ``bus.hot`` true, which forces
    the fast engine onto its exact-event-order channel sweep -- so the
    recorded streams of a fast and a reference run must match
    element-for-element, certifying the fast path's publish sites, not
    just its end state.  Packets/channels are flattened to stable
    identifiers (pid, label, lane index) so tuples compare by value.
    """

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def on_offer(self, t, packet) -> None:
        self.events.append(("offer", t, packet.pid))

    def on_inject(self, t, packet) -> None:
        self.events.append(("inject", t, packet.pid))

    def on_acquire(self, t, packet, channel, lane_index) -> None:
        self.events.append(
            ("acquire", t, packet.pid, channel.label, lane_index)
        )

    def on_blocked(self, t, packet, channels) -> None:
        self.events.append(
            ("block", t, packet.pid, tuple(ch.label for ch in channels))
        )

    def on_release(self, t, packet, channel, lane_index) -> None:
        self.events.append(
            ("release", t, packet.pid, channel.label, lane_index)
        )

    def on_transmit(self, t, channel, lane) -> None:
        owner = lane.owner
        self.events.append(
            (
                "transmit",
                t,
                channel.label,
                lane.index,
                None if owner is None else owner.pid,
            )
        )

    def on_deliver(self, t, packet) -> None:
        self.events.append(("deliver", t, packet.pid))

    def on_abort(self, t, packet) -> None:
        self.events.append(("abort", t, packet.pid))


def strip_kernel_counters(snapshot: tuple) -> tuple:
    """A snapshot without the kernel event-count telemetry."""
    lo, hi = KERNEL_COUNTER_INDICES
    assert hi == lo + 1
    return snapshot[:lo] + snapshot[hi + 1:]


def assert_identical(kind: str, pattern: str, load: float, **kwargs) -> None:
    """Run a case under every engine tier and assert snapshot equality.

    fast vs reference compares the full snapshot; batch vs reference
    compares every simulation observable (kernel event counters
    excluded -- see the module docstring).  The batch leg is skipped
    when numpy is unavailable.
    """
    fast = run_case(kind, pattern, load, "fast", **kwargs)
    ref = run_case(kind, pattern, load, "reference", **kwargs)
    assert fast == ref, (
        f"fast/reference divergence at {kind}/{pattern}/load={load} "
        f"({kwargs or 'no options'})"
    )
    if not BATCH_AVAILABLE:
        return
    batch = run_case(kind, pattern, load, "batch", **kwargs)
    assert strip_kernel_counters(batch) == strip_kernel_counters(ref), (
        f"batch/reference divergence at {kind}/{pattern}/load={load} "
        f"({kwargs or 'no options'})"
    )
