"""Golden-scenario fixtures: exact numeric pins of seeded runs.

Each fixture under ``tests/golden/fixtures/`` holds the full outcome of
one seeded simulation point (see ``tools/regen_golden.py``).  The test
re-runs the scenario and diffs the freshly computed fixture against the
committed one *field by field*, reporting every drifted leaf with its
old and new value -- a behavioural change anywhere in the simulator
(routing order, RNG draws, latency bookkeeping, scheduler dispatch)
shows up as a named field, not a mystery failure.

If a change is intentional, regenerate with::

    PYTHONPATH=src python tools/regen_golden.py

and commit the updated fixtures alongside the change.
"""

from __future__ import annotations

import importlib.util
import json
import math
import pathlib

import pytest

TOOLS = pathlib.Path(__file__).resolve().parent.parent.parent / "tools"
FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

_spec = importlib.util.spec_from_file_location(
    "regen_golden", TOOLS / "regen_golden.py"
)
regen_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regen_golden)


def _leaf_diff(expected, actual, path=""):
    """Recursively diff two JSON-ish trees; yield (path, old, new)."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            yield from _leaf_diff(
                expected.get(key, "<missing>"),
                actual.get(key, "<missing>"),
                f"{path}.{key}" if path else key,
            )
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            yield (f"{path}.<len>", len(expected), len(actual))
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            yield from _leaf_diff(e, a, f"{path}[{i}]")
        return
    same = expected == actual or (
        isinstance(expected, float)
        and isinstance(actual, float)
        and math.isnan(expected)
        and math.isnan(actual)
    )
    if not same:
        yield (path, expected, actual)


def test_fixture_set_matches_scenarios() -> None:
    """Every scenario has a fixture and vice versa (no strays)."""
    on_disk = {p.stem for p in FIXTURES.glob("*.json")}
    assert on_disk == set(regen_golden.SCENARIOS), (
        "fixture files and tools/regen_golden.py SCENARIOS disagree; "
        "run tools/regen_golden.py"
    )


@pytest.mark.parametrize("name", sorted(regen_golden.SCENARIOS))
def test_golden_scenario(name: str) -> None:
    """Re-run one golden scenario and diff it field by field."""
    path = FIXTURES / f"{name}.json"
    expected = json.loads(path.read_text())
    actual = json.loads(regen_golden.dumps(regen_golden.compute_fixture(name)))
    drift = list(_leaf_diff(expected, actual))
    assert not drift, (
        f"golden scenario {name!r} drifted in {len(drift)} field(s):\n"
        + "\n".join(f"  {p}: {old!r} -> {new!r}" for p, old, new in drift[:20])
        + "\n(regenerate with tools/regen_golden.py if intentional)"
    )
