"""Tests for the deadlock watchdog, including a genuinely deadlocking
custom network (a 2-cycle of channel dependencies) to prove it fires."""

import pytest

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.channel import PhysChannel
from repro.wormhole.network import NetworkKind, SimNetwork
from repro.wormhole.packet import Packet


class RingNetwork(SimNetwork):
    """A deliberately unsafe 2-node network.

    Node 0's route: inj0 -> A -> B -> dlv1; node 1's: inj1 -> B -> A
    -> dlv0.  Once packet 0 owns A and packet 1 owns B, each waits for
    the other's channel: a textbook wormhole deadlock (the kind the
    paper's routing restrictions exist to exclude).
    """

    def __init__(self) -> None:
        self.kind = NetworkKind.TMIN
        self.N = 2
        self.inj = [PhysChannel("inj0"), PhysChannel("inj1")]
        self.a = PhysChannel("A")
        self.b = PhysChannel("B")
        self.dlv = [
            PhysChannel("dlv0", is_delivery=True, sink=0),
            PhysChannel("dlv1", is_delivery=True, sink=1),
        ]
        # Any processing order: the graph is cyclic, no topo order exists.
        self._finalize_topo(self.dlv + [self.a, self.b] + self.inj)
        self._routes = {
            0: [self.a, self.b, self.dlv[1]],
            1: [self.b, self.a, self.dlv[0]],
        }

    def injection_channel(self, node: int) -> PhysChannel:
        return self.inj[node]

    def prepare(self, packet: Packet) -> None:
        packet.hop = 0

    def candidates(self, packet: Packet) -> list[PhysChannel]:
        return [self._routes[packet.src][packet.hop]]

    def advance(self, packet: Packet, channel: PhysChannel) -> None:
        packet.hop += 1


def test_ring_network_deadlocks_and_watchdog_fires():
    env = Environment()
    eng = WormholeEngine(env, RingNetwork(), rng=RandomStream(0))
    eng.deadlock_watchdog = 50
    eng.offer(0, 1, 100)
    eng.offer(1, 0, 100)
    eng.start()
    with pytest.raises(Exception) as excinfo:
        env.run(until=10_000)
    # The DeadlockError surfaces through the kernel's crash wrapper.
    cause = excinfo.value
    messages = [str(cause), str(getattr(cause, "__cause__", ""))]
    assert any("no progress" in m or "progress" in m for m in messages)


def test_watchdog_names_held_channels():
    env = Environment()
    eng = WormholeEngine(env, RingNetwork(), rng=RandomStream(0))
    eng.deadlock_watchdog = 20
    eng.offer(0, 1, 100)
    eng.offer(1, 0, 100)
    eng.start()
    try:
        env.run(until=10_000)
        pytest.fail("expected a deadlock")
    except Exception as exc:
        text = str(exc) + str(exc.__cause__ or "")
        assert "A" in text and "B" in text


@pytest.mark.parametrize("kind", ["tmin", "dmin", "vmin", "bmin"])
def test_paper_networks_never_trip_the_watchdog(kind):
    """With the watchdog armed tightly, heavy random traffic on the
    paper's networks still drains: they are deadlock-free for real."""
    env = Environment()
    eng = WormholeEngine(env, build_network(kind, 2, 3), rng=RandomStream(1))
    eng.deadlock_watchdog = 200
    rs = RandomStream(2)
    for _ in range(60):
        s = rs.uniform_int(0, 7)
        d = rs.uniform_int(0, 6)
        if d >= s:
            d += 1
        eng.offer(s, d, rs.uniform_int(4, 40))
    eng.drain(max_cycles=100_000)
    assert eng.idle


def test_watchdog_disabled_by_default():
    env = Environment()
    eng = WormholeEngine(env, build_network("tmin", 2, 3), rng=RandomStream(0))
    assert eng.deadlock_watchdog == 0
    # A ring network without a watchdog just spins silently.
    env2 = Environment()
    eng2 = WormholeEngine(env2, RingNetwork(), rng=RandomStream(0))
    eng2.offer(0, 1, 50)
    eng2.offer(1, 0, 50)
    eng2.start()
    env2.run(until=500)  # no exception; packets simply never progress
    assert eng2.in_flight == 2
