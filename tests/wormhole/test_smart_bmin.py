"""The 'properly chosen forward channel' experiment (Section 5.3.3).

The paper claims that in the BMIN "theoretically, all source and
destination pairs can be transmitted simultaneously without contention
if the forward channel is properly chosen".  The
:class:`SmartBidirectionalNetwork` implements a one-step lookahead
(prefer forward channels whose implied next backward channel is free);
these tests verify it is (a) still correct, (b) identical to random
when there is nothing to dodge, and (c) strong enough to push shuffle
throughput past the DMIN's 50% static cap -- the paper's theoretical
point, made measurable.
"""

from dataclasses import replace

from repro.experiments.config import SMOKE
from repro.experiments.figures import shuffle_workload
from repro.experiments.runner import _run_until_delivered
from repro.metrics.collector import MeasurementWindow
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.topology.bmin import BidirectionalMIN
from repro.wormhole.engine import WormholeEngine
from repro.wormhole.network import (
    BidirectionalNetwork,
    SmartBidirectionalNetwork,
)
from repro.wormhole.packet import PacketState


def _engine(cls, k=2, n=3, seed=0):
    env = Environment()
    return env, WormholeEngine(
        env, cls(BidirectionalMIN(k, n)), rng=RandomStream(seed)
    )


def test_smart_bmin_delivers_all_pairs():
    env, eng = _engine(SmartBidirectionalNetwork)
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            p = eng.offer(s, d, 6)
            eng.drain()
            assert p.state is PacketState.DELIVERED, (s, d)


def test_smart_bmin_uncontended_latency_unchanged():
    env, eng = _engine(SmartBidirectionalNetwork)
    p = eng.offer(0b001, 0b101, 16)
    eng.drain()
    assert p.network_latency == 2 * 3 + 16 - 2


def test_default_networks_unaffected_by_hook():
    """The hook returns None on standard networks: bit-identical runs."""

    def run(cls):
        env, eng = _engine(cls, seed=5)
        rs = RandomStream(6)
        pkts = []
        for _ in range(40):
            s = rs.uniform_int(0, 7)
            d = rs.uniform_int(0, 6)
            if d >= s:
                d += 1
            pkts.append(eng.offer(s, d, rs.uniform_int(4, 24)))
        eng.drain()
        return [p.delivered_at for p in pkts]

    # Random-policy BMIN before and after the hook existed must agree;
    # we can only check self-consistency here, plus that smart differs.
    assert run(BidirectionalNetwork) == run(BidirectionalNetwork)


def test_smart_beats_random_under_shuffle():
    """The headline: one-step lookahead pushes the 64-node BMIN past
    the DMIN's 50% static shuffle cap, as the paper theorized."""
    cfg = replace(SMOKE, measure_packets=900, sizes=replace(SMOKE.sizes, low=8, high=64))
    results = {}
    for name, cls in (
        ("random", BidirectionalNetwork),
        ("smart", SmartBidirectionalNetwork),
    ):
        env = Environment()
        eng = WormholeEngine(
            env,
            cls(BidirectionalMIN(4, 3)),
            rng=RandomStream(cfg.seed),
        )
        wl = shuffle_workload(cfg)(0.7)
        wl.install(env, eng, RandomStream(cfg.seed + 1))
        eng.start()
        _run_until_delivered(eng, 200, 30_000)
        window = MeasurementWindow(eng)
        window.begin()
        _run_until_delivered(eng, 200 + cfg.measure_packets, env.now + 60_000)
        results[name] = window.finish().throughput_percent
    assert results["smart"] > results["random"] + 5.0, results
    assert results["smart"] > 50.0, results  # past the DMIN's cap


def test_smart_policy_respects_faults():
    env, eng = _engine(SmartBidirectionalNetwork)
    eng.network.fwd[(1, 0b001)].fail()
    p = eng.offer(0b001, 0b101, 12)
    eng.drain()
    assert p.state is PacketState.DELIVERED
