"""Stress and property tests: deadlock freedom, conservation, bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.packet import PacketState

ALL_KINDS = ["tmin", "dmin", "vmin", "bmin"]


def _burst_run(kind, k, n, seed, packets=60, max_len=40):
    """Offer a random burst, then drain; return (engine, packet list)."""
    env = Environment()
    net = build_network(kind, k=k, n=n)
    eng = WormholeEngine(env, net, rng=RandomStream(seed))
    rs = RandomStream(seed + 1)
    offered = []
    for _ in range(packets):
        s = rs.uniform_int(0, net.N - 1)
        d = rs.uniform_int(0, net.N - 2)
        if d >= s:
            d += 1
        offered.append(eng.offer(s, d, rs.uniform_int(1, max_len)))
    eng.drain(max_cycles=200_000)
    return eng, offered


@pytest.mark.parametrize("kind", ALL_KINDS)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_burst_traffic_always_drains(kind, seed):
    """No deadlock: every burst empties the network completely."""
    eng, offered = _burst_run(kind, 2, 3, seed)
    assert all(p.state is PacketState.DELIVERED for p in offered)
    assert eng.idle


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_flit_conservation(kind):
    """Delivered flits == offered flits, per packet and in total."""
    eng, offered = _burst_run(kind, 2, 3, seed=11)
    assert eng.stats.delivered_flits == sum(p.length for p in offered)
    for p in offered:
        assert p.delivered_flits == p.length


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_all_channels_released_after_drain(kind):
    eng, _ = _burst_run(kind, 2, 3, seed=7)
    for ch in eng.network.topo_channels:
        for lane in ch.lanes:
            assert lane.owner is None


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_latency_lower_bound(kind):
    """No packet beats the physics: latency >= hops + L - 2."""
    eng, offered = _burst_run(kind, 2, 3, seed=23)
    net = eng.network
    for p in offered:
        if kind == "bmin":
            hops = 2 * (net.bmin.turn_stage(p.src, p.dst) + 1)
        else:
            hops = net.spec.n + 1
        assert p.network_latency >= hops + p.length - 2


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_4ary_networks_drain(kind):
    """The paper's 64-node geometry also survives a heavy burst."""
    eng, offered = _burst_run(kind, 4, 3, seed=31, packets=200, max_len=30)
    assert all(p.state is PacketState.DELIVERED for p in offered)


@given(
    kind=st.sampled_from(ALL_KINDS),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_random_bursts_drain_property(kind, seed):
    eng, offered = _burst_run(kind, 2, 2, seed, packets=25, max_len=16)
    assert all(p.state is PacketState.DELIVERED for p in offered)
    assert eng.stats.delivered_flits == sum(p.length for p in offered)


def test_adversarial_single_destination_hotspot():
    """Everyone floods node 0: brutal output contention, still drains,
    and total time is bounded below by the serialized delivery time."""
    env = Environment()
    net = build_network("tmin", 2, 3)
    eng = WormholeEngine(env, net, rng=RandomStream(0))
    total = 0
    for s in range(1, 8):
        for _ in range(3):
            eng.offer(s, 0, 20)
            total += 20
    eng.drain(max_cycles=100_000)
    assert eng.stats.delivered_flits == total
    assert env.now >= total  # one delivery channel, one flit per cycle


def test_permutation_burst_on_all_kinds():
    """The shuffle permutation (Fig. 20a's pattern) delivered as a burst."""
    from repro.topology.permutations import PerfectShuffle

    for kind in ALL_KINDS:
        env = Environment()
        net = build_network(kind, 2, 3)
        eng = WormholeEngine(env, net, rng=RandomStream(5))
        shuffle = PerfectShuffle(2, 3)
        offered = [
            eng.offer(s, shuffle(s), 12) for s in range(8) if s != shuffle(s)
        ]
        eng.drain(max_cycles=100_000)
        assert all(p.state is PacketState.DELIVERED for p in offered)


def test_seed_reproducibility():
    """Identical seeds give identical simulations, different seeds differ."""

    def fingerprint(seed):
        eng, offered = _burst_run("dmin", 2, 3, seed, packets=40)
        return tuple(p.delivered_at for p in offered)

    assert fingerprint(99) == fingerprint(99)
    assert fingerprint(99) != fingerprint(100)
