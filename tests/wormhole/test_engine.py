"""Behavioural tests of the wormhole cycle engine."""

import pytest

from repro.wormhole.packet import PacketState

ALL_KINDS = ["tmin", "dmin", "vmin", "bmin"]


# -------------------------------------------------------- basic delivery


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_single_packet_delivered(make_engine, kind):
    env, eng = make_engine(kind)
    p = eng.offer(1, 5, 16)
    eng.drain()
    assert p.state is PacketState.DELIVERED
    assert eng.stats.delivered_packets == 1
    assert eng.stats.delivered_flits == 16


@pytest.mark.parametrize("kind", ["tmin", "dmin", "vmin"])
def test_uncontended_latency_formula_unidirectional(make_engine, kind):
    """No contention: network latency = (n+1 hops) + L - 2 cycles."""
    env, eng = make_engine(kind, k=2, n=3)
    for length in (1, 8, 100):
        p = eng.offer(2, 7, length)
        eng.drain()
        assert p.network_latency == (3 + 1) + length - 2


def test_uncontended_latency_formula_bmin(make_engine):
    """BMIN path length is 2(t+1) channels (Section 3.2.3)."""
    env, eng = make_engine("bmin", k=2, n=3)
    cases = [(0b001, 0b101, 2), (0b000, 0b010, 1), (0b000, 0b001, 0)]
    for s, d, t in cases:
        p = eng.offer(s, d, 16)
        eng.drain()
        assert p.network_latency == 2 * (t + 1) + 16 - 2


def test_distance_insensitivity(make_engine):
    """Wormhole hallmark: latency barely depends on distance when idle.

    For L=100 flits in a 64-node BMIN, the nearest (t=0) and farthest
    (t=2) destinations differ by only 4 cycles out of ~100."""
    env, eng = make_engine("bmin", k=4, n=3)
    near = eng.offer(0, 1, 100)   # same switch
    eng.drain()
    far = eng.offer(0, 63, 100)   # turns at the top
    eng.drain()
    assert far.network_latency - near.network_latency == 4
    assert far.network_latency < 1.1 * near.network_latency


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_all_pairs_delivered(make_engine, kind):
    """Every (s, d) pair routes correctly through the simulator."""
    env, eng = make_engine(kind, k=2, n=3)
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            p = eng.offer(s, d, 4)
            eng.drain()
            assert p.state is PacketState.DELIVERED, f"{kind}: {s}->{d}"


def test_latency_includes_source_queueing(make_engine):
    env, eng = make_engine("tmin", k=2, n=3)
    first = eng.offer(0, 5, 50)
    second = eng.offer(0, 6, 50)  # must wait for the first to inject
    eng.drain()
    assert second.latency > first.latency
    # The second's injection began only after the first's tail left.
    assert second.inject_start >= first.inject_start + 50


def test_fcfs_injection_order(make_engine):
    env, eng = make_engine("tmin", k=2, n=3)
    packets = [eng.offer(3, (3 + i) % 8 or 7, 10) for i in range(1, 5)]
    eng.drain()
    starts = [p.inject_start for p in packets]
    assert starts == sorted(starts)


# ----------------------------------------------------- contention behaviour


def test_output_contention_serializes_tmin(make_engine):
    """Two sources to one destination share the delivery channel."""
    env, eng = make_engine("tmin", k=2, n=3)
    a = eng.offer(0, 7, 40)
    b = eng.offer(1, 7, 40)
    eng.drain()
    done = sorted([a.delivered_at, b.delivered_at])
    # The loser's tail arrives roughly one message time later.
    assert done[1] - done[0] >= 40


def test_wormhole_blocking_holds_channels(make_engine):
    """A worm blocked at its head keeps all spanned channels busy.

    In a TMIN, a long message 0->7 occupies the delivery channel; a
    message 1->7 blocks; a third message 1->6 then queues behind it at
    the source (one-port) even though its own path would be free."""
    env, eng = make_engine("tmin", k=2, n=3, seed=1)
    blocker = eng.offer(0, 7, 200)
    eng.run_cycles(10)
    victim = eng.offer(1, 7, 10)
    bystander = eng.offer(1, 6, 10)
    eng.run_cycles(60)
    assert blocker.state is PacketState.ACTIVE
    assert victim.state is PacketState.ACTIVE  # injected, head blocked
    assert victim.delivered_flits == 0
    assert bystander.state is PacketState.QUEUED  # stuck behind victim
    eng.drain()
    assert all(
        p.state is PacketState.DELIVERED for p in (blocker, victim, bystander)
    )


def test_vmin_interleaves_blocked_and_passing_traffic(make_engine):
    """Virtual channels let a second worm pass a blocked one on the same
    wire -- the motivation for VMINs (Section 2.2)."""
    env, eng = make_engine("vmin", k=2, n=3, seed=3)
    a = eng.offer(0, 7, 60)
    b = eng.offer(0 ^ 1, 7, 60)  # same delivery channel: second VC
    eng.run_cycles(80)
    # Both make progress concurrently (flit-level multiplexing) ...
    assert a.delivered_flits > 0 and b.delivered_flits > 0
    eng.drain()
    # ... and each effectively saw half the delivery bandwidth.
    slowest = max(a.delivered_at, b.delivered_at)
    assert slowest - min(a.inject_start, b.inject_start) >= 2 * 60 - 2


def test_dmin_carries_two_worms_per_port(make_engine):
    """Dilated channels transmit two packets over one port concurrently
    at full bandwidth each."""
    env, eng = make_engine("dmin", k=2, n=3, seed=5)
    # Sources 0 and 1 share every inter-stage port toward destination 7
    # and 6 respectively only at stage boundaries; pick a pair whose
    # paths share an inner slot but not the delivery channel.
    a = eng.offer(0, 6, 60)
    b = eng.offer(1, 7, 60)
    eng.drain()
    # Neither was serialized: both finish in about one message time.
    assert a.network_latency <= 60 + 10
    assert b.network_latency <= 60 + 10


def test_tmin_same_inner_slot_serializes(make_engine):
    """The same pair on a TMIN shares the single inner channel when the
    paths overlap, so one of them waits."""
    env, eng = make_engine("tmin", k=2, n=3, seed=5)
    overlaps = None
    # Find two sources whose cube-MIN paths to distinct destinations
    # share an inner channel (guaranteed to exist in a blocking network).
    net = eng.network
    for s2 in range(1, 8):
        ch1 = set(net.spec.channels_of_path(0, 6)[1:-1])
        ch2 = set(net.spec.channels_of_path(s2, 7)[1:-1])
        if ch1 & ch2:
            overlaps = s2
            break
    assert overlaps is not None
    a = eng.offer(0, 6, 60)
    b = eng.offer(overlaps, 7, 60)
    eng.drain()
    slow = max(a.network_latency, b.network_latency)
    assert slow >= 2 * 60 - 10  # serialized over the shared channel


def test_bmin_adaptive_forward_avoids_busy_channel(make_engine):
    """With one forward channel held by a long worm, a BMIN message
    for a different destination picks another free forward channel and
    is not delayed by a full message time."""
    env, eng = make_engine("bmin", k=2, n=3, seed=9)
    blocker = eng.offer(0b000, 0b100, 400)  # long, turns at top
    eng.run_cycles(8)
    nimble = eng.offer(0b001, 0b110, 10)    # also ascends from switch 0
    eng.drain()
    assert nimble.delivered_at < blocker.delivered_at
    assert nimble.network_latency <= 10 + 2 * 3 + 20  # no full-message stall


# ------------------------------------------------------------ bookkeeping


def test_stats_window_reset(make_engine):
    env, eng = make_engine("tmin", k=2, n=3)
    eng.offer(0, 5, 10)
    eng.drain()
    assert eng.stats.delivered_packets == 1
    eng.stats.reset_window(env.now)
    assert eng.stats.delivered_packets == 0
    assert eng.stats.records == []
    assert eng.stats.window_start == env.now


def test_max_queue_len_tracking(make_engine):
    env, eng = make_engine("tmin", k=2, n=3)
    for _ in range(5):
        eng.offer(0, 5, 10)
    assert eng.stats.max_queue_len == 5
    eng.drain()


def test_throughput_fraction(make_engine):
    env, eng = make_engine("tmin", k=2, n=3)
    assert eng.throughput_fraction() == 0.0
    eng.offer(0, 5, 80)
    eng.drain()
    frac = eng.throughput_fraction()
    assert 0 < frac <= 1.0
    assert frac == eng.stats.delivered_flits / (8 * env.now)


def test_idle_fast_forward(make_engine):
    """With no traffic the clock must not burn cycles."""
    env, eng = make_engine("tmin", k=2, n=3)
    eng.start()
    env.run(until=10_000)
    assert eng.cycles_run == 0

    def late_arrival():
        yield env.timeout(5_000)
        eng.offer(0, 1, 4)

    env.process(late_arrival())
    env.run(until=20_000)
    # Only the handful of cycles needed to deliver one 4-flit packet.
    assert 0 < eng.cycles_run < 50
    assert eng.stats.delivered_packets == 1


def test_offer_wakes_sleeping_clock(make_engine):
    """The engine resumes after going fully idle with nothing scheduled."""
    env, eng = make_engine("tmin", k=2, n=3)
    eng.offer(0, 1, 4)
    eng.drain()
    first_done = eng.stats.delivered_packets
    # The clock now sleeps on its wakeup event; a fresh offer revives it.
    eng.offer(2, 3, 4)
    eng.drain()
    assert eng.stats.delivered_packets == first_done + 1


def test_record_deliveries_toggle(make_engine):
    env, eng = make_engine("tmin", k=2, n=3)
    eng.record_deliveries = False
    eng.offer(0, 5, 10)
    eng.drain()
    assert eng.stats.delivered_packets == 1
    assert eng.stats.records == []


def test_in_flight_and_queue_length(make_engine):
    env, eng = make_engine("tmin", k=2, n=3)
    eng.offer(0, 5, 100)
    eng.offer(0, 6, 100)
    eng.run_cycles(5)
    assert eng.in_flight == 1
    assert eng.queue_length(0) == 1
    eng.drain()
    assert eng.in_flight == 0 and eng.idle


def test_drain_raises_on_budget_exhaustion(make_engine):
    env, eng = make_engine("tmin", k=2, n=3)
    eng.offer(0, 5, 10_000)
    with pytest.raises(RuntimeError):
        eng.drain(max_cycles=50)


def test_repr_smoke(make_engine):
    env, eng = make_engine("dmin")
    assert "dmin" in repr(eng)
