"""Physics property tests: bandwidth sharing and routing consistency."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.turnaround import Move, TurnaroundRouter
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.topology.bmin import BidirectionalMIN
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.network import BidirectionalNetwork


@given(
    length=st.integers(min_value=8, max_value=120),
    vcs=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_vc_sharing_halves_effective_bandwidth_property(length, vcs):
    """Two worms interleaving on one delivery wire each see ~W/2: the
    pair finishes in >= 2L - 1 cycles of delivery time (one wire, 2L
    flits), regardless of how many VCs the wire has."""
    env = Environment()
    eng = WormholeEngine(
        env,
        build_network("vmin", 2, 3, virtual_channels=vcs),
        rng=RandomStream(length),
    )
    a = eng.offer(0, 7, length)
    b = eng.offer(1, 7, length)
    eng.drain(max_cycles=200_000)
    start = min(a.inject_start, b.inject_start)
    finish = max(a.delivered_at, b.delivered_at)
    assert finish - start >= 2 * length - 1


@given(length=st.integers(min_value=4, max_value=100))
@settings(max_examples=20, deadline=None)
def test_wire_never_exceeds_unit_bandwidth_property(length):
    """Total flits delivered per cycle per node never exceed 1."""
    env = Environment()
    eng = WormholeEngine(env, build_network("vmin", 2, 2), rng=RandomStream(1))
    for s in (0, 1, 2):
        eng.offer(s, 3, length)
    eng.drain(max_cycles=200_000)
    total = 3 * length
    # Node 3's delivery wire carries everything: elapsed >= total flits.
    first_start = min(r.inject_start for r in eng.stats.records)
    last_end = max(r.delivered_at for r in eng.stats.records)
    assert last_end - first_start >= total - 1


@given(
    st.sampled_from([(2, 3), (4, 2), (4, 3)]),
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_network_candidates_match_router_decisions_property(kn, data):
    """Cross-module invariant: the simulated BMIN's candidate channels
    at every step equal the Fig. 7 router's decision, mapped to lines."""
    k, n = kn
    bmin = BidirectionalMIN(k, n)
    net = BidirectionalNetwork(bmin)
    router = TurnaroundRouter(bmin)
    s = data.draw(st.integers(min_value=0, max_value=bmin.N - 1))
    d = data.draw(st.integers(min_value=0, max_value=bmin.N - 1))
    if s == d:
        return
    from repro.wormhole.packet import Packet

    p = Packet(0, s, d, 8, 0.0)
    net.prepare(p)
    # Walk the route, comparing candidate sets at every hop.
    stage = 0
    going_up = True
    while True:
        cands = net.candidates(p)
        decision = router.decide(stage, going_up, s, d)
        assert len(cands) == len(decision.ports)
        if decision.move is Move.FORWARD:
            assert all(ch.meta[0] == "fwd" for ch in cands)
        else:
            assert all(ch.meta[0] == "bwd" for ch in cands)
        # Take the first candidate and advance both state machines.
        choice = data.draw(
            st.integers(min_value=0, max_value=len(cands) - 1)
        )
        ch = cands[choice]
        net.advance(p, ch)
        if decision.move is Move.FORWARD:
            stage += 1
        else:
            going_up = False
            if ch.is_delivery:
                assert ch.sink == d
                break
            stage -= 1


@given(
    st.sampled_from(["cube", "butterfly", "omega", "baseline", "flip"]),
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_unidirectional_slots_match_tag_router_property(topology, data):
    """The simulated network's slot path equals destination-tag routing:
    every inner slot position carries the tag digit in its low digit."""
    from repro.routing.tags import TagRouter
    from repro.topology.mins import build_min

    spec = build_min(topology, 2, 3)
    router = TagRouter(spec)
    s = data.draw(st.integers(min_value=0, max_value=7))
    d = data.draw(st.integers(min_value=0, max_value=7))
    slots = spec.channels_of_path(s, d)
    assert slots[0] == (0, s)
    for stage in range(spec.n):
        boundary, pos = slots[stage + 1]
        assert boundary == stage + 1
        assert pos % spec.k == router.output_port(stage, d)
