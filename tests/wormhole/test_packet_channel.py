"""Unit tests for packets, lanes and physical channels."""

import pytest

from repro.wormhole.channel import PhysChannel
from repro.wormhole.packet import Packet, PacketState


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(0, 1, 1, 8, 0.0)  # self traffic
    with pytest.raises(ValueError):
        Packet(0, 1, 2, 0, 0.0)  # empty message


def test_packet_initial_state():
    p = Packet(7, 1, 2, 8, created=3.5)
    assert p.state is PacketState.QUEUED
    assert p.lanes == [] and p.delivered_flits == 0
    with pytest.raises(AttributeError):
        _ = p.latency
    with pytest.raises(AttributeError):
        _ = p.network_latency


def test_packet_latency_accounting():
    p = Packet(0, 0, 1, 8, created=10.0)
    p.inject_start = 12.0
    p.delivered_at = 30.0
    assert p.latency == 20.0
    assert p.network_latency == 18.0


def test_channel_validation():
    with pytest.raises(ValueError):
        PhysChannel("x", num_lanes=0)
    with pytest.raises(ValueError):
        PhysChannel("x", is_delivery=True)  # delivery needs a sink
    with pytest.raises(ValueError):
        PhysChannel("x", sink=3)  # sink implies delivery


def test_lane_acquire_release():
    ch = PhysChannel("w")
    lane = ch.lanes[0]
    p = Packet(0, 0, 1, 4, 0.0)
    assert lane.free
    lane.acquire(p)
    assert lane.owner is p and lane.route_idx == 0
    assert p.lanes == [lane]
    with pytest.raises(RuntimeError):
        lane.acquire(Packet(1, 0, 1, 4, 0.0))
    lane.release()
    assert lane.free


def test_release_preserves_buffer_occupancy():
    """The tail flit may still sit in the downstream buffer after release."""
    ch = PhysChannel("w")
    lane = ch.lanes[0]
    p = Packet(0, 0, 1, 1, 0.0)
    lane.acquire(p)
    assert ch.transmit() is lane
    assert lane.buf == 1
    lane.release()
    assert lane.buf == 1  # drains only when the flit crosses onward


def test_transmit_respects_single_flit_buffer():
    ch = PhysChannel("w")
    lane = ch.lanes[0]
    p = Packet(0, 0, 1, 4, 0.0)
    lane.acquire(p)
    assert ch.transmit() is lane  # header into the buffer
    assert lane.sent == 1 and lane.buf == 1
    assert ch.transmit() is None  # buffer full: body must wait
    lane.buf = 0  # downstream consumed the flit
    assert ch.transmit() is lane
    assert lane.sent == 2


def test_transmit_requires_upstream_flit():
    up = PhysChannel("up")
    down = PhysChannel("down")
    p = Packet(0, 0, 1, 4, 0.0)
    up.lanes[0].acquire(p)
    down.lanes[0].acquire(p)
    # No flit has crossed `up` yet: `down` has nothing to send.
    assert down.transmit() is None
    assert up.transmit() is up.lanes[0]
    assert down.transmit() is down.lanes[0]
    assert up.lanes[0].buf == 0  # the flit moved on


def test_transmit_stops_at_length():
    ch = PhysChannel("dlv", is_delivery=True, sink=0)
    lane = ch.lanes[0]
    p = Packet(0, 0, 1, 2, 0.0)
    lane.acquire(p)
    assert ch.transmit() is lane
    assert ch.transmit() is lane
    assert p.delivered_flits == 2
    assert ch.transmit() is None  # tail already crossed


def test_delivery_channel_never_blocks_on_buffer():
    ch = PhysChannel("dlv", is_delivery=True, sink=5)
    p = Packet(0, 0, 5, 3, 0.0)
    ch.lanes[0].acquire(p)
    for expected in (1, 2, 3):
        assert ch.transmit() is not None
        assert p.delivered_flits == expected


def test_round_robin_shares_wire_equally():
    """Two active lanes on one wire alternate flits (W/2 each)."""
    ch = PhysChannel("shared", num_lanes=2)
    a = Packet(0, 0, 1, 10, 0.0)
    b = Packet(1, 2, 3, 10, 0.0)
    ch.lanes[0].acquire(a)
    ch.lanes[1].acquire(b)
    served = []
    for _ in range(6):
        lane = ch.transmit()
        assert lane is not None
        served.append(lane.index)
        lane.buf = 0  # downstream consumes so both stay ready
    assert served == [0, 1, 0, 1, 0, 1]


def test_round_robin_skips_unready_lane():
    """An idle VC does not waste wire bandwidth (Section 2.2)."""
    ch = PhysChannel("shared", num_lanes=2)
    a = Packet(0, 0, 1, 10, 0.0)
    ch.lanes[0].acquire(a)
    served = []
    for _ in range(3):
        lane = ch.transmit()
        served.append(lane.index)
        lane.buf = 0
    assert served == [0, 0, 0]


def test_free_lanes_listing():
    ch = PhysChannel("w", num_lanes=3)
    assert len(ch.free_lanes()) == 3
    ch.lanes[1].acquire(Packet(0, 0, 1, 4, 0.0))
    assert [lane.index for lane in ch.free_lanes()] == [0, 2]
    assert ch.busy


def test_reprs():
    ch = PhysChannel("w", num_lanes=2)
    assert "w" in repr(ch)
    assert "free" in repr(ch.lanes[0])
    p = Packet(3, 0, 1, 4, 0.0)
    ch.lanes[0].acquire(p)
    assert "pkt#3" in repr(ch.lanes[0])
    assert "#3" in repr(p)
