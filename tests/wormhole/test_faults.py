"""Fault-injection tests: the paper's fault-tolerance motivation.

Section 2.1: "if a link becomes congested or fails, the unique path
property can easily disrupt the communication between some input and
output pairs" -- the motivation for multi-path designs.  These tests
verify that the TMIN loses connectivity on a single inter-stage fault
while the DMIN survives any single lane fault and the BMIN survives
forward-channel faults (but not backward ones: the down path is unique).
"""

import pytest

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.packet import PacketState


def _engine(kind, seed=0, **kwargs):
    env = Environment()
    net = build_network(kind, k=2, n=3, **kwargs)
    return env, WormholeEngine(env, net, rng=RandomStream(seed))


def test_find_channel_and_faulty_listing():
    env, eng = _engine("tmin")
    ch = eng.network.find_channel("b1[3].0")
    assert not ch.faulty
    ch.fail()
    assert eng.network.faulty_channels() == [ch]
    ch.repair()
    assert eng.network.faulty_channels() == []
    with pytest.raises(KeyError):
        eng.network.find_channel("nope")


def test_tmin_single_fault_kills_affected_route():
    """Break one channel on the unique 1->6 path: the packet dies."""
    env, eng = _engine("tmin")
    net = eng.network
    boundary, pos = net.spec.channels_of_path(1, 6)[2]  # an inner hop
    net.slots[(boundary, pos)][0].fail()
    victim = eng.offer(1, 6, 8)
    eng.drain()
    assert victim.state is PacketState.FAILED
    assert eng.stats.failed_packets == 1
    assert eng.stats.delivered_packets == 0


def test_tmin_fault_spares_other_routes():
    env, eng = _engine("tmin")
    net = eng.network
    boundary, pos = net.spec.channels_of_path(1, 6)[2]
    net.slots[(boundary, pos)][0].fail()
    # A pair whose path avoids the broken channel still works.
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            if (boundary, pos) in net.spec.channels_of_path(s, d):
                continue
            ok = eng.offer(s, d, 8)
            eng.drain()
            assert ok.state is PacketState.DELIVERED
            return
    pytest.fail("expected some unaffected route")


def test_abort_releases_channels_for_other_traffic():
    """A killed worm must leave no stuck flits or owned lanes behind."""
    env, eng = _engine("tmin")
    net = eng.network
    path = net.spec.channels_of_path(1, 6)
    net.slots[path[3]][0].fail()  # fault late: the worm is mid-network
    victim = eng.offer(1, 6, 200)
    eng.drain()
    assert victim.state is PacketState.FAILED
    for ch in net.topo_channels:
        for lane in ch.lanes:
            assert lane.owner is None
            assert lane.buf == 0
    # The network still carries fresh traffic over the victim's channels.
    survivor = eng.offer(1, 2, 8)
    eng.drain()
    assert survivor.state is PacketState.DELIVERED


def test_dmin_survives_single_lane_fault():
    """Dilation two: break one of the two lanes on every slot of a
    path; the other lane carries the traffic."""
    env, eng = _engine("dmin")
    net = eng.network
    for boundary, pos in net.spec.channels_of_path(1, 6):
        chans = net.slots[(boundary, pos)]
        if len(chans) > 1:
            chans[0].fail()
    p = eng.offer(1, 6, 16)
    eng.drain()
    assert p.state is PacketState.DELIVERED


def test_dmin_dies_when_both_lanes_fail():
    env, eng = _engine("dmin")
    net = eng.network
    boundary, pos = net.spec.channels_of_path(1, 6)[1]
    for ch in net.slots[(boundary, pos)]:
        ch.fail()
    p = eng.offer(1, 6, 16)
    eng.drain()
    assert p.state is PacketState.FAILED


def test_bmin_routes_around_forward_fault():
    """k^t up-paths: any single forward channel can die (t >= 1)."""
    env, eng = _engine("bmin")
    net = eng.network
    # 001 -> 101 turns at stage 2; kill one boundary-1 forward channel
    # on its default route.
    net.fwd[(1, 0b001)].fail()
    p = eng.offer(0b001, 0b101, 16)
    eng.drain()
    assert p.state is PacketState.DELIVERED


def test_bmin_down_path_has_no_redundancy():
    """The backward path is unique: a backward fault kills the route."""
    env, eng = _engine("bmin")
    net = eng.network
    # Down path to 101 crosses bwd boundary-0 line 101 (the delivery).
    net.bwd[(0, 0b101)].fail()
    p = eng.offer(0b001, 0b101, 16)
    eng.drain()
    assert p.state is PacketState.FAILED


def test_bmin_tolerates_any_single_forward_fault_for_high_turns():
    """Exhaustive: for a t=2 pair, every single forward-channel fault
    leaves at least one of the four shortest paths intact."""
    s, d = 0b001, 0b101
    bmin_paths = build_network("bmin", 2, 3).bmin.enumerate_shortest_paths(s, d)
    for boundary in (0, 1, 2):
        for line in range(8):
            env, eng = _engine("bmin", seed=line)
            net = eng.network
            ch = net.fwd[(boundary, line)]
            # Skip the mandatory first hop: the injection channel is the
            # node's only port (one-port architecture).
            if boundary == 0 and line == s:
                continue
            ch.fail()
            p = eng.offer(s, d, 8)
            eng.drain()
            assert p.state is PacketState.DELIVERED, (boundary, line)
    assert len(bmin_paths) == 4


def test_faulty_injection_channel_fails_queued_packets():
    env, eng = _engine("tmin")
    eng.network.injection_channel(3).fail()
    a = eng.offer(3, 5, 8)
    b = eng.offer(3, 6, 8)
    ok = eng.offer(2, 6, 8)
    eng.drain()
    assert a.state is PacketState.FAILED
    assert b.state is PacketState.FAILED
    assert ok.state is PacketState.DELIVERED
    assert eng.stats.failed_packets == 2


def test_failed_packets_counter_resets_with_window():
    env, eng = _engine("tmin")
    eng.network.injection_channel(0).fail()
    eng.offer(0, 1, 8)
    eng.drain()
    assert eng.stats.failed_packets == 1
    eng.stats.reset_window(env.now)
    assert eng.stats.failed_packets == 0


def test_fault_under_load_does_not_deadlock():
    """Random traffic plus a mid-run fault: everything either delivers
    or fails cleanly, and the network drains."""
    env, eng = _engine("dmin", seed=9)
    rs = RandomStream(10)
    packets = []
    for _ in range(40):
        s = rs.uniform_int(0, 7)
        d = rs.uniform_int(0, 6)
        if d >= s:
            d += 1
        packets.append(eng.offer(s, d, rs.uniform_int(4, 30)))
    eng.run_cycles(20)
    eng.network.find_channel("b1[3].0").fail()
    eng.network.find_channel("b2[5].1").fail()
    eng.drain(max_cycles=100_000)
    assert eng.idle
    for p in packets:
        assert p.state in (PacketState.DELIVERED, PacketState.FAILED)
    assert (
        eng.stats.delivered_packets + eng.stats.failed_packets == len(packets)
    )


# ---------------------------------------------------- dynamic faults (churn)


def test_mtbf_churn_failures_and_repairs():
    """A churned channel alternates up/down; its measured downtime
    fraction tracks mttr / (mtbf + mttr)."""
    from repro.faults import MTBFChurn

    env, eng = _engine("tmin")
    ch = eng.network.find_channel("b1[3].0")
    churn = MTBFChurn(
        env,
        eng.network,
        RandomStream(5),
        mtbf=300.0,
        mttr=200.0,
        channels=[ch],
    )
    assert churn.unavailability == pytest.approx(0.4)
    eng.start()
    down = 0.0
    step = 10.0
    while env.now < 20_000:
        env.run(until=env.now + step)
        if ch.faulty:
            down += step
    assert churn.failures >= 5
    assert churn.repairs >= 5
    assert 0.2 < down / 20_000 < 0.6  # near the analytic 0.4


def test_mtbf_permanent_when_mttr_is_none():
    from repro.faults import MTBFChurn

    env, eng = _engine("tmin")
    ch = eng.network.find_channel("b1[3].0")
    churn = MTBFChurn(
        env, eng.network, RandomStream(5), mtbf=100.0, channels=[ch]
    )
    eng.start()
    env.run(until=5_000)
    assert ch.faulty
    assert churn.failures == 1 and churn.repairs == 0


def test_repair_restores_throughput():
    """During a hard transient fault a TMIN loses the affected routes;
    after the repair the same traffic delivers in full."""
    from repro.faults import FaultPlan
    from repro.metrics.collector import MeasurementWindow

    env, eng = _engine("tmin")
    net = eng.network
    boundary, pos = net.spec.channels_of_path(1, 6)[2]
    label = net.slots[(boundary, pos)][0].label
    FaultPlan.single(at=0, channel=label, duration=2_000, severity="hard").install(
        env, net, eng
    )
    env.run(until=1)

    pairs = [(1, 6), (0, 3), (1, 6), (2, 5), (1, 6)]
    window = MeasurementWindow(eng)
    window.begin()
    for s, d in pairs:
        eng.offer(s, d, 8)
    eng.drain()
    faulted = window.finish()
    assert faulted.failed_packets == 3      # every 1->6 died
    assert faulted.delivered_packets == 2

    env.run(until=2_100)                     # past the repair
    window.begin()
    for s, d in pairs:
        eng.offer(s, d, 8)
    eng.drain()
    repaired = window.finish()
    assert repaired.failed_packets == 0      # throughput restored
    assert repaired.delivered_packets == len(pairs)
    assert not repaired.degraded


def test_fabric_channels_exclude_node_interfaces():
    from repro.faults import fabric_channels

    for kind in ("tmin", "dmin", "vmin", "bmin"):
        env, eng = _engine(kind)
        fabric = fabric_channels(eng.network)
        assert fabric
        for ch in fabric:
            assert not ch.is_delivery
            assert not ch.label.startswith("inj[")


# ----------------------------------------------- retry under stochastic churn


@pytest.mark.parametrize("kind", ["dmin", "bmin"])
def test_retry_delivers_everything_under_low_churn(kind):
    """Low transient fault rates on a multi-path fabric: source retry
    with backoff eventually lands every message (delivery ratio 1)."""
    from repro.faults import MTBFChurn, RetryPolicy, SourceRetry

    env, eng = _engine(kind, seed=3)
    churn = MTBFChurn(
        env,
        eng.network,
        RandomStream(11),
        mtbf=20_000.0,   # u = mttr/(mtbf+mttr) ~ 1.5%
        mttr=300.0,
        engine=eng,
        severity="hard",
    )
    policy = RetryPolicy(max_attempts=8, base_delay=64, jitter=0.25)
    retry = SourceRetry(eng, policy, RandomStream(13))
    rs = RandomStream(17)
    packets = []
    for _ in range(80):
        s = rs.uniform_int(0, 7)
        d = rs.uniform_int(0, 6)
        if d >= s:
            d += 1
        packets.append(eng.offer(s, d, rs.uniform_int(4, 24)))
    retry.quiesce(max_cycles=500_000)
    assert retry.dropped == 0
    assert retry.delivered_ratio() == 1.0
    assert len(retry.outcomes) == len(packets)
    # The churn actually did something in at least some runs of the
    # parametrization; assert the counters stay consistent regardless.
    assert churn.failures >= churn.repairs
    assert eng.stats.retried_packets == retry.retried


# --------------------------------------------------- abort invariants (property)


def test_abort_flush_keeps_lane_buffers_consistent_property():
    """Random hard fault times against random traffic: after the dust
    settles, no lane has negative or stuck buffered flits and no lane
    has a dangling owner.  (Property-style sweep over seeds.)"""
    from repro.faults import FaultEvent, FaultPlan

    for seed in range(12):
        rs = RandomStream(100 + seed)
        kind = rs.choice(("tmin", "dmin", "vmin", "bmin"))
        env, eng = _engine(kind, seed=seed)
        fabric = [
            ch
            for ch in eng.network.topo_channels
            if not ch.is_delivery and not ch.label.startswith("inj[")
        ]
        events = tuple(
            FaultEvent(
                at=float(rs.uniform_int(1, 120)),
                channels=(rs.choice(fabric).label,),
                duration=float(rs.uniform_int(50, 400)),
                severity="hard",
            )
            for _ in range(4)
        )
        FaultPlan(events).install(env, eng.network, eng)
        packets = []
        for _ in range(30):
            s = rs.uniform_int(0, 7)
            d = rs.uniform_int(0, 6)
            if d >= s:
                d += 1
            packets.append(eng.offer(s, d, rs.uniform_int(2, 60)))
        eng.drain(max_cycles=200_000)
        for ch in eng.network.topo_channels:
            for lane in ch.lanes:
                assert lane.buf >= 0, (seed, ch.label)
                assert lane.buf == 0, (seed, ch.label)
                assert lane.owner is None, (seed, ch.label)
        for p in packets:
            assert p.state in (PacketState.DELIVERED, PacketState.FAILED)


# ------------------------------------------------- DMIN vs TMIN (integration)


def _degradation_run(kind, *, seed=21):
    """200 random messages, a mid-run hard fault storm outlasting the
    whole retry budget, full accounting via Measurement."""
    from repro.faults import FaultEvent, FaultPlan, RetryPolicy, SourceRetry
    from repro.metrics.collector import MeasurementWindow

    env, eng = _engine(kind, seed=seed)
    policy = RetryPolicy(
        max_attempts=4, base_delay=32, factor=2.0, max_delay=256, jitter=0.0
    )
    retry = SourceRetry(eng, policy, RandomStream(seed + 1))
    # Total backoff budget ~32+64+128 = 224 cycles << 30_000 fault span:
    # a unique-path network cannot out-wait the fault.
    events = tuple(
        FaultEvent(
            at=at, channels=(label,), duration=30_000.0, severity="hard"
        )
        for at, label in ((150.0, "b1[3].0"), (250.0, "b2[5].0"))
    )
    FaultPlan(events).install(env, eng.network, eng)
    window = MeasurementWindow(eng)
    window.begin()
    rs = RandomStream(seed + 2)
    for _ in range(200):
        s = rs.uniform_int(0, 7)
        d = rs.uniform_int(0, 6)
        if d >= s:
            d += 1
        eng.offer(s, d, rs.uniform_int(8, 24))
    retry.quiesce(max_cycles=500_000)
    return window.finish(), retry


def test_dmin_recovers_while_tmin_degrades_permanently():
    """The acceptance scenario: the same mid-simulation hard fault on a
    DMIN is absorbed (worms aborted, retried with backoff, >= 99%
    eventually delivered) while a TMIN degrades permanently."""
    dmin_m, dmin_retry = _degradation_run("dmin")
    tmin_m, tmin_retry = _degradation_run("tmin")

    # DMIN: the wire cut killed worms mid-flight, the source retried
    # them over the sibling lane, and (nearly) everything landed.
    assert dmin_m.failed_packets > 0
    assert dmin_m.retried_packets > 0
    assert dmin_retry.delivered_ratio() >= 0.99
    assert dmin_m.degraded  # the accounting is visible in Measurement

    # TMIN: the unique path cannot route around the cut; retries re-roll
    # the same dice until the budget runs out -> permanent degradation.
    assert tmin_m.failed_packets > dmin_m.failed_packets
    assert tmin_m.dropped_packets > 0
    assert tmin_retry.delivered_ratio() < 0.99
    assert tmin_retry.delivered_ratio() < dmin_retry.delivered_ratio()


def test_find_channel_near_miss_suggestions():
    """Unknown labels name their closest real labels (typo guard)."""
    env, eng = _engine("tmin")
    with pytest.raises(KeyError) as exc:
        eng.network.find_channel("b1[3].9")
    msg = exc.value.args[0]
    assert "no channel labelled 'b1[3].9'" in msg
    assert "did you mean" in msg
    assert "b1[3].0" in msg


def test_find_channel_no_suggestion_for_garbage():
    env, eng = _engine("tmin")
    with pytest.raises(KeyError) as exc:
        eng.network.find_channel("zzzzzzzzzz")
    assert "did you mean" not in exc.value.args[0]


def test_abort_flushes_reacquired_lane_correctly():
    """Aborting a worm whose released lane was re-acquired stays exact.

    Regression: ``_abort`` used to flush each lane's buffer from its raw
    ``sent`` counter -- but a lane the worm already released may have
    been re-acquired by a *new* owner (which resets ``sent``), so the
    flush went negative and conjured phantom flits into the 1-flit
    buffer.  Found by the differential suite's sanitized fault cases.
    """
    from repro.wormhole import channel as channel_mod

    env = Environment()
    net = build_network("tmin", k=2, n=3)
    eng = WormholeEngine(env, net, rng=RandomStream(7), sanitize=True)
    saved = channel_mod.release_observer
    try:
        victim = eng.offer(0, 6, 3)   # injects first (FCFS)
        follower = eng.offer(0, 5, 3)  # reuses the injection lane
        eng.start()
        for _ in range(64):
            eng.run_cycles(1)
            if (
                victim.state is PacketState.ACTIVE
                and victim.lanes
                and victim.lanes[0].owner is follower
            ):
                break
        else:
            pytest.fail("follower never re-acquired the injection lane")
        inj_lane = victim.lanes[0]
        eng.abort_packet(victim)
        assert victim.state is PacketState.FAILED
        # The 1-flit buffer bound must survive the flush (the sanitizer
        # would also catch a violation on the next cycle).
        assert 0 <= inj_lane.buf <= 1
        eng.drain()
        assert follower.state is PacketState.DELIVERED
    finally:
        channel_mod.release_observer = saved
