"""Fault-injection tests: the paper's fault-tolerance motivation.

Section 2.1: "if a link becomes congested or fails, the unique path
property can easily disrupt the communication between some input and
output pairs" -- the motivation for multi-path designs.  These tests
verify that the TMIN loses connectivity on a single inter-stage fault
while the DMIN survives any single lane fault and the BMIN survives
forward-channel faults (but not backward ones: the down path is unique).
"""

import pytest

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.packet import PacketState


def _engine(kind, seed=0, **kwargs):
    env = Environment()
    net = build_network(kind, k=2, n=3, **kwargs)
    return env, WormholeEngine(env, net, rng=RandomStream(seed))


def test_find_channel_and_faulty_listing():
    env, eng = _engine("tmin")
    ch = eng.network.find_channel("b1[3].0")
    assert not ch.faulty
    ch.fail()
    assert eng.network.faulty_channels() == [ch]
    ch.repair()
    assert eng.network.faulty_channels() == []
    with pytest.raises(KeyError):
        eng.network.find_channel("nope")


def test_tmin_single_fault_kills_affected_route():
    """Break one channel on the unique 1->6 path: the packet dies."""
    env, eng = _engine("tmin")
    net = eng.network
    boundary, pos = net.spec.channels_of_path(1, 6)[2]  # an inner hop
    net.slots[(boundary, pos)][0].fail()
    victim = eng.offer(1, 6, 8)
    eng.drain()
    assert victim.state is PacketState.FAILED
    assert eng.stats.failed_packets == 1
    assert eng.stats.delivered_packets == 0


def test_tmin_fault_spares_other_routes():
    env, eng = _engine("tmin")
    net = eng.network
    boundary, pos = net.spec.channels_of_path(1, 6)[2]
    net.slots[(boundary, pos)][0].fail()
    # A pair whose path avoids the broken channel still works.
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            if (boundary, pos) in net.spec.channels_of_path(s, d):
                continue
            ok = eng.offer(s, d, 8)
            eng.drain()
            assert ok.state is PacketState.DELIVERED
            return
    pytest.fail("expected some unaffected route")


def test_abort_releases_channels_for_other_traffic():
    """A killed worm must leave no stuck flits or owned lanes behind."""
    env, eng = _engine("tmin")
    net = eng.network
    path = net.spec.channels_of_path(1, 6)
    net.slots[path[3]][0].fail()  # fault late: the worm is mid-network
    victim = eng.offer(1, 6, 200)
    eng.drain()
    assert victim.state is PacketState.FAILED
    for ch in net.topo_channels:
        for lane in ch.lanes:
            assert lane.owner is None
            assert lane.buf == 0
    # The network still carries fresh traffic over the victim's channels.
    survivor = eng.offer(1, 2, 8)
    eng.drain()
    assert survivor.state is PacketState.DELIVERED


def test_dmin_survives_single_lane_fault():
    """Dilation two: break one of the two lanes on every slot of a
    path; the other lane carries the traffic."""
    env, eng = _engine("dmin")
    net = eng.network
    for boundary, pos in net.spec.channels_of_path(1, 6):
        chans = net.slots[(boundary, pos)]
        if len(chans) > 1:
            chans[0].fail()
    p = eng.offer(1, 6, 16)
    eng.drain()
    assert p.state is PacketState.DELIVERED


def test_dmin_dies_when_both_lanes_fail():
    env, eng = _engine("dmin")
    net = eng.network
    boundary, pos = net.spec.channels_of_path(1, 6)[1]
    for ch in net.slots[(boundary, pos)]:
        ch.fail()
    p = eng.offer(1, 6, 16)
    eng.drain()
    assert p.state is PacketState.FAILED


def test_bmin_routes_around_forward_fault():
    """k^t up-paths: any single forward channel can die (t >= 1)."""
    env, eng = _engine("bmin")
    net = eng.network
    # 001 -> 101 turns at stage 2; kill one boundary-1 forward channel
    # on its default route.
    net.fwd[(1, 0b001)].fail()
    p = eng.offer(0b001, 0b101, 16)
    eng.drain()
    assert p.state is PacketState.DELIVERED


def test_bmin_down_path_has_no_redundancy():
    """The backward path is unique: a backward fault kills the route."""
    env, eng = _engine("bmin")
    net = eng.network
    # Down path to 101 crosses bwd boundary-0 line 101 (the delivery).
    net.bwd[(0, 0b101)].fail()
    p = eng.offer(0b001, 0b101, 16)
    eng.drain()
    assert p.state is PacketState.FAILED


def test_bmin_tolerates_any_single_forward_fault_for_high_turns():
    """Exhaustive: for a t=2 pair, every single forward-channel fault
    leaves at least one of the four shortest paths intact."""
    s, d = 0b001, 0b101
    bmin_paths = build_network("bmin", 2, 3).bmin.enumerate_shortest_paths(s, d)
    for boundary in (0, 1, 2):
        for line in range(8):
            env, eng = _engine("bmin", seed=line)
            net = eng.network
            ch = net.fwd[(boundary, line)]
            # Skip the mandatory first hop: the injection channel is the
            # node's only port (one-port architecture).
            if boundary == 0 and line == s:
                continue
            ch.fail()
            p = eng.offer(s, d, 8)
            eng.drain()
            assert p.state is PacketState.DELIVERED, (boundary, line)
    assert len(bmin_paths) == 4


def test_faulty_injection_channel_fails_queued_packets():
    env, eng = _engine("tmin")
    eng.network.injection_channel(3).fail()
    a = eng.offer(3, 5, 8)
    b = eng.offer(3, 6, 8)
    ok = eng.offer(2, 6, 8)
    eng.drain()
    assert a.state is PacketState.FAILED
    assert b.state is PacketState.FAILED
    assert ok.state is PacketState.DELIVERED
    assert eng.stats.failed_packets == 2


def test_failed_packets_counter_resets_with_window():
    env, eng = _engine("tmin")
    eng.network.injection_channel(0).fail()
    eng.offer(0, 1, 8)
    eng.drain()
    assert eng.stats.failed_packets == 1
    eng.stats.reset_window(env.now)
    assert eng.stats.failed_packets == 0


def test_fault_under_load_does_not_deadlock():
    """Random traffic plus a mid-run fault: everything either delivers
    or fails cleanly, and the network drains."""
    env, eng = _engine("dmin", seed=9)
    rs = RandomStream(10)
    packets = []
    for _ in range(40):
        s = rs.uniform_int(0, 7)
        d = rs.uniform_int(0, 6)
        if d >= s:
            d += 1
        packets.append(eng.offer(s, d, rs.uniform_int(4, 30)))
    eng.run_cycles(20)
    eng.network.find_channel("b1[3].0").fail()
    eng.network.find_channel("b2[5].1").fail()
    eng.drain(max_cycles=100_000)
    assert eng.idle
    for p in packets:
        assert p.state in (PacketState.DELIVERED, PacketState.FAILED)
    assert (
        eng.stats.delivered_packets + eng.stats.failed_packets == len(packets)
    )
