"""The wormhole engine over the other Delta topologies.

The paper evaluates cube and butterfly MINs, but its Section 6 notes
the Omega network shares the cube's partitionability and the baseline
the butterfly's.  The simulator accepts any Delta topology; these tests
pin that the whole pipeline works over all five.
"""

import pytest

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.topology.mins import TOPOLOGY_BUILDERS
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.packet import PacketState

TOPOLOGIES = sorted(TOPOLOGY_BUILDERS)


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("kind", ["tmin", "dmin", "vmin"])
def test_all_pairs_deliver_on_every_topology(topology, kind):
    env = Environment()
    eng = WormholeEngine(
        env,
        build_network(kind, 2, 3, topology=topology),
        rng=RandomStream(1),
    )
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            p = eng.offer(s, d, 4)
            eng.drain()
            assert p.state is PacketState.DELIVERED, (topology, kind, s, d)


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_burst_drains_on_every_topology(topology):
    env = Environment()
    eng = WormholeEngine(
        env, build_network("tmin", 2, 3, topology=topology), rng=RandomStream(2)
    )
    rs = RandomStream(3)
    pkts = []
    for _ in range(30):
        s = rs.uniform_int(0, 7)
        d = rs.uniform_int(0, 6)
        if d >= s:
            d += 1
        pkts.append(eng.offer(s, d, rs.uniform_int(4, 24)))
    eng.drain(max_cycles=100_000)
    assert all(p.state is PacketState.DELIVERED for p in pkts)


def test_omega_and_cube_equal_under_global_uniform():
    """Functionally equivalent topologies measure alike under uniform
    traffic (same load, same seed discipline)."""
    from dataclasses import replace

    from repro.experiments.config import SMOKE, NetworkConfig
    from repro.experiments.figures import uniform_workload
    from repro.experiments.runner import run_point
    from repro.traffic.clusters import global_cluster

    cfg = replace(SMOKE, measure_packets=300)
    wb = uniform_workload(global_cluster(), cfg)
    cube = run_point(NetworkConfig("tmin", topology="cube"), wb, 0.4, cfg)
    omega = run_point(NetworkConfig("tmin", topology="omega"), wb, 0.4, cfg)
    assert omega.throughput == pytest.approx(cube.throughput, rel=0.1)
    assert omega.avg_latency == pytest.approx(cube.avg_latency, rel=0.35)
