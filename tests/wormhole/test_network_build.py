"""Tests for simulated-network construction and candidate queries."""

import pytest

from repro.topology.bmin import BidirectionalMIN
from repro.topology.mins import cube_min
from repro.wormhole.network import (
    BidirectionalNetwork,
    NetworkKind,
    UnidirectionalNetwork,
    build_network,
)
from repro.wormhole.packet import Packet


def test_build_network_kinds():
    assert build_network("tmin", 2, 3).kind is NetworkKind.TMIN
    assert build_network("dmin", 2, 3).kind is NetworkKind.DMIN
    assert build_network("vmin", 2, 3).kind is NetworkKind.VMIN
    assert build_network("bmin", 2, 3).kind is NetworkKind.BMIN
    assert build_network(NetworkKind.TMIN, 2, 3).kind is NetworkKind.TMIN
    with pytest.raises(ValueError):
        build_network("qmin", 2, 3)


def test_channel_counts_64_nodes():
    """The paper's 64-node geometry: 3 stages of 16 4x4 switches."""
    tmin = build_network("tmin", 4, 3)
    # boundaries 0..3, 64 positions each, one channel per position
    assert tmin.channel_count == 4 * 64
    dmin = build_network("dmin", 4, 3)
    # inner boundaries doubled; injection/delivery stay single
    assert dmin.channel_count == 64 + 2 * 64 + 2 * 64 + 64
    vmin = build_network("vmin", 4, 3)
    assert vmin.channel_count == 4 * 64  # same wires, two lanes on inner ones
    bmin = build_network("bmin", 4, 3)
    # per boundary 0..2: 64 forward + 64 backward wires
    assert bmin.channel_count == 3 * 64 * 2


def test_vmin_lane_multiplicity():
    vmin = build_network("vmin", 2, 3, virtual_channels=3)
    inj = vmin.injection_channel(0)
    assert inj.num_lanes == 1  # serial one-port source
    inner = vmin.slots[(1, 0)][0]
    assert inner.num_lanes == 3
    dlv = vmin.slots[(3, 0)][0]
    assert dlv.num_lanes == 3 and dlv.is_delivery


def test_dmin_dilated_slots():
    dmin = build_network("dmin", 2, 3, dilation=2)
    assert len(dmin.slots[(1, 5)]) == 2
    assert len(dmin.slots[(0, 5)]) == 1
    assert len(dmin.slots[(3, 5)]) == 1


def test_dilation_and_vcs_are_exclusive():
    with pytest.raises(ValueError):
        UnidirectionalNetwork(cube_min(2, 3), dilation=2, virtual_channels=2)
    with pytest.raises(ValueError):
        UnidirectionalNetwork(cube_min(2, 3), dilation=0)
    with pytest.raises(ValueError):
        BidirectionalNetwork(BidirectionalMIN(2, 3), virtual_channels=0)


def test_topo_order_is_downstream_first_unidirectional():
    net = build_network("tmin", 2, 3)
    # Delivery channels must come before inner boundaries, injection last.
    orders = {
        label: ch.topo_order
        for label, ch in ((c.label, c) for c in net.topo_channels)
    }
    assert orders["dlv[0]"] < orders["b2[0].0"] < orders["b1[0].0"] < orders["inj[0]"]


def test_topo_order_is_downstream_first_bmin():
    net = build_network("bmin", 2, 3)
    orders = {c.label: c.topo_order for c in net.topo_channels}
    # Backward: delivery (bwd0) before higher backward boundaries.
    assert orders["bwd0[0]"] < orders["bwd1[0]"] < orders["bwd2[0]"]
    # All backward before all forward; forward descending.
    assert orders["bwd2[0]"] < orders["fwd2[0]"] < orders["fwd1[0]"] < orders["fwd0[0]"]


def test_delivery_sinks_unidirectional():
    net = build_network("tmin", 2, 3, topology="cube")
    sinks = sorted(ch.sink for ch in net.topo_channels if ch.is_delivery)
    assert sinks == list(range(8))


def test_delivery_sinks_bmin():
    net = build_network("bmin", 2, 3)
    sinks = sorted(ch.sink for ch in net.topo_channels if ch.is_delivery)
    assert sinks == list(range(8))


def test_unidirectional_candidates_follow_slots():
    net = build_network("tmin", 2, 3, topology="cube")
    p = Packet(0, 1, 6, 8, 0.0)
    net.prepare(p)
    assert p.slots == net.spec.channels_of_path(1, 6)
    # hop 0 = injection; candidates are for hop 1
    cands = net.candidates(p)
    assert cands == net.slots[p.slots[1]]
    net.advance(p, cands[0])
    assert p.hop == 1


def test_bmin_candidates_forward_then_turn():
    net = build_network("bmin", 2, 3)
    p = Packet(0, 0b001, 0b101, 8, 0.0)  # Fig. 8: turns at stage 2
    net.prepare(p)
    assert p.bmin_turn == 2
    # At stage 0 going up: both forward channels at boundary 1.
    cands = net.candidates(p)
    assert len(cands) == 2
    assert all(ch.meta[0] == "fwd" and ch.meta[1] == 1 for ch in cands)
    net.advance(p, cands[1])
    assert p.bmin_boundary == 1 and p.bmin_going_up
    # Stage 1: forward again, to boundary 2.
    cands = net.candidates(p)
    assert all(ch.meta[1] == 2 for ch in cands)
    net.advance(p, cands[0])
    # Stage 2 == turn stage: single backward candidate with digit2 = d2.
    cands = net.candidates(p)
    assert len(cands) == 1
    direction, boundary, line = cands[0].meta
    assert direction == "bwd" and boundary == 2
    assert (line >> 2) & 1 == 1  # digit 2 pinned to destination's
    net.advance(p, cands[0])
    assert not p.bmin_going_up
    # Descend: deterministic backward hops to the destination line.
    cands = net.candidates(p)
    direction, boundary, line = cands[0].meta
    assert direction == "bwd" and boundary == 1
    assert (line >> 1) & 1 == 0  # digit 1 pinned to destination's
    net.advance(p, cands[0])
    cands = net.candidates(p)
    direction, boundary, line = cands[0].meta
    assert direction == "bwd" and boundary == 0 and line == 0b101
    assert cands[0].is_delivery and cands[0].sink == 0b101


def test_bmin_turn_at_stage_zero_goes_straight_to_delivery():
    net = build_network("bmin", 2, 3)
    p = Packet(0, 0b000, 0b001, 8, 0.0)
    net.prepare(p)
    assert p.bmin_turn == 0
    cands = net.candidates(p)
    assert len(cands) == 1 and cands[0].is_delivery and cands[0].sink == 1


def test_bmin_future_work_virtual_channels():
    net = build_network("bmin", 2, 3, bmin_virtual_channels=2)
    inner_fwd = net.fwd[(1, 0)]
    assert inner_fwd.num_lanes == 2
    assert net.injection_channel(0).num_lanes == 1
    assert net.bwd[(0, 0)].num_lanes == 2


def test_injection_channels_are_distinct():
    net = build_network("dmin", 4, 3)
    chans = {id(net.injection_channel(i)) for i in range(net.N)}
    assert len(chans) == net.N
