"""Shared fixtures for the wormhole simulator tests."""

import pytest

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network


@pytest.fixture
def make_engine():
    """Factory: build (env, engine) for a network kind and geometry."""

    def _make(kind, k=2, n=3, seed=42, **kwargs):
        env = Environment()
        net = build_network(kind, k=k, n=n, **kwargs)
        engine = WormholeEngine(env, net, rng=RandomStream(seed))
        return env, engine

    return _make
