"""Mid-flight model invariants of the wormhole engine.

The single load-bearing invariant of the flit accounting: for any
packet's consecutive lanes i, i+1,

    sent(i) - sent(i+1) == buf(i)  and  buf(i) in {0, 1}

(each switch input buffer holds at most one flit, and every flit that
crossed lane i either moved on across lane i+1 or sits in lane i's
buffer).  We freeze the simulation every few cycles under heavy random
traffic and check it for every worm in flight, on every network kind.
"""

import pytest

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.packet import PacketState

KINDS = ["tmin", "dmin", "vmin", "bmin"]


def _assert_invariants(engine):
    seen_lanes = set()
    for ch in engine.network.topo_channels:
        for lane in ch.lanes:
            p = lane.owner
            if p is None:
                continue
            assert 0 <= lane.buf <= 1, lane
            assert lane.sent <= p.length
            seen_lanes.add(id(lane))
    # Per-packet pipeline consistency over its acquired chain.
    packets = {
        lane.owner.pid: lane.owner
        for ch in engine.network.topo_channels
        for lane in ch.lanes
        if lane.owner is not None
    }
    for p in packets.values():
        assert p.state is PacketState.ACTIVE
        # Releases run source-side first (the tail passes lanes in
        # order), so the lanes p still owns form a suffix of its chain;
        # earlier lanes may already serve new owners.
        owned = [lane for lane in p.lanes if lane.owner is p]
        assert owned, p
        start = p.lanes.index(owned[0])
        assert p.lanes[start:] == owned, "owned lanes must be a suffix"
        for offset, lane in enumerate(owned):
            i = start + offset
            if lane.channel.is_delivery:
                assert lane.sent == p.delivered_flits
                continue
            nxt_sent = p.lanes[i + 1].sent if i + 1 < len(p.lanes) else 0
            own_in_buffer = lane.sent - nxt_sent
            assert own_in_buffer in (0, 1), (p, i, lane)
            # The buffer may additionally hold the *previous* owner's
            # stale tail flit (which then blocks this packet's flits:
            # own_in_buffer must be 0 in that case) -- but never more
            # than one flit total, and never fewer than our own.
            assert lane.buf >= own_in_buffer, (p, i, lane)
            assert lane.buf <= 1, (p, i, lane)
        # Monotone flit counts along the owned chain (pipeline order).
        counts = [lane.sent for lane in owned]
        assert all(a >= b for a, b in zip(counts, counts[1:])), counts


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("seed", [1, 7])
def test_pipeline_invariants_under_heavy_traffic(kind, seed):
    env = Environment()
    eng = WormholeEngine(env, build_network(kind, 4, 3), rng=RandomStream(seed))
    rs = RandomStream(seed + 100)
    for _ in range(150):
        s = rs.uniform_int(0, 63)
        d = rs.uniform_int(0, 62)
        if d >= s:
            d += 1
        eng.offer(s, d, rs.uniform_int(4, 60))
    eng.start()
    for _ in range(40):
        env.run(until=env.now + 25)
        _assert_invariants(eng)
    eng.drain(max_cycles=200_000)
    _assert_invariants(eng)  # empty network: vacuously consistent
    assert eng.idle


@pytest.mark.parametrize("kind", KINDS)
def test_invariants_hold_with_faults_mid_run(kind):
    """Worm aborts (fault reclamation) must not corrupt the accounting
    of surviving worms."""
    env = Environment()
    eng = WormholeEngine(env, build_network(kind, 2, 3), rng=RandomStream(3))
    rs = RandomStream(4)
    for _ in range(40):
        s = rs.uniform_int(0, 7)
        d = rs.uniform_int(0, 6)
        if d >= s:
            d += 1
        eng.offer(s, d, rs.uniform_int(8, 40))
    eng.run_cycles(15)
    # Break a couple of inner channels while worms are in flight.
    broken = 0
    for ch in eng.network.topo_channels:
        if not ch.is_delivery and ch.owned_count == 0 and broken < 2:
            if ch.label.startswith(("b1", "b2", "fwd1", "bwd1")):
                ch.fail()
                broken += 1
    for _ in range(20):
        env.run(until=env.now + 20)
        _assert_invariants(eng)
    eng.drain(max_cycles=200_000)
    assert eng.idle
