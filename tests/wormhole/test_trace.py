"""Tests for the per-packet event tracer."""

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.trace import TraceEvent, Tracer


def _traced_engine(kind="tmin", seed=0):
    env = Environment()
    eng = WormholeEngine(env, build_network(kind, 2, 3), rng=RandomStream(seed))
    eng.tracer = Tracer()
    return env, eng


def test_single_packet_event_sequence():
    env, eng = _traced_engine()
    p = eng.offer(1, 6, 8)
    eng.drain()
    kinds = [e.kind for e in eng.tracer.packet_timeline(p.pid)]
    assert kinds[0] == "offered"
    assert kinds[1] == "injected"
    assert kinds[-1] == "delivered"
    # one acquisition per channel of the n+1 = 4 hop path
    assert kinds.count("acquired") == 4
    assert "blocked" not in kinds  # empty network: never blocked


def test_acquired_events_name_the_channels():
    env, eng = _traced_engine()
    p = eng.offer(1, 6, 8)
    eng.drain()
    acquired = [
        e.detail for e in eng.tracer.packet_timeline(p.pid) if e.kind == "acquired"
    ]
    assert acquired[0].startswith("inj[")
    assert acquired[-1].startswith("dlv[")


def test_blocked_event_on_contention_with_dedup():
    env, eng = _traced_engine()
    a = eng.offer(0, 7, 60)
    b = eng.offer(1, 7, 60)  # same destination: one of them must stall
    eng.drain()
    blocked = [e for e in eng.tracer.events if e.kind == "blocked"]
    assert blocked, "two worms to one node must produce a blocking spell"
    # The loser waited for tens of cycles, yet each spell is one event.
    loser_events = [e for e in blocked if e.pid in (a.pid, b.pid)]
    assert 1 <= len(loser_events) <= 4
    details = [e.detail for e in loser_events]
    assert all(x != y for x, y in zip(details, details[1:]))


def test_vc_lane_named_in_acquisition():
    env, eng = _traced_engine("vmin")
    eng.offer(0, 7, 30)
    p = eng.offer(1, 7, 30)  # second VC of the shared delivery wire
    eng.drain()
    acquired = [
        e.detail for e in eng.tracer.packet_timeline(p.pid) if e.kind == "acquired"
    ]
    assert any(".vc" in d for d in acquired)


def test_abort_event_recorded():
    env, eng = _traced_engine()
    boundary, pos = eng.network.spec.channels_of_path(1, 6)[2]
    eng.network.slots[(boundary, pos)][0].fail()
    p = eng.offer(1, 6, 8)
    eng.drain()
    kinds = [e.kind for e in eng.tracer.packet_timeline(p.pid)]
    assert kinds[-1] == "failed"


def test_format_timeline():
    env, eng = _traced_engine()
    p = eng.offer(1, 6, 8)
    eng.drain()
    text = eng.tracer.format_timeline(p.pid)
    assert text.startswith(f"packet #{p.pid}:")
    assert "delivered" in text
    assert eng.tracer.format_timeline(999).endswith("no events recorded")


def test_blocking_hotspots():
    env, eng = _traced_engine()
    eng.offer(0, 7, 80)
    for s in (1, 2, 3):
        eng.offer(s, 7, 10)
    eng.drain()
    hotspots = eng.tracer.blocking_hotspots()
    assert hotspots
    label, count = hotspots[0]
    assert count >= 1
    # The congestion concentrates on node 7's path: every hotspot is a
    # channel, named by its label.
    assert any(tag in label for tag in ("dlv[", "b1[", "b2["))


def test_max_events_cap_evicts_whole_old_packets():
    tracer = Tracer(max_events=8)
    env, eng = _traced_engine()
    eng.tracer = tracer
    first = eng.offer(1, 6, 8)
    eng.drain()
    second = eng.offer(2, 5, 8)
    eng.drain()
    # The newest packet keeps a complete timeline (ending included)...
    kinds = [e.kind for e in tracer.packet_timeline(second.pid)]
    assert kinds[0] == "offered" and kinds[-1] == "delivered"
    # ...while the oldest was evicted wholesale, and the drop is
    # surfaced, not silent.
    assert tracer.packet_timeline(first.pid) == []
    assert tracer.truncated
    assert tracer.evicted_packets == 1
    assert tracer.evicted_events >= 6


def test_per_packet_ring_keeps_newest_events():
    tracer = Tracer(per_packet=3)
    env, eng = _traced_engine()
    eng.tracer = tracer
    p = eng.offer(1, 6, 8)
    eng.drain()
    timeline = tracer.packet_timeline(p.pid)
    assert len(timeline) == 3
    # A ring keeps the END of the story: delivery is never lost.
    assert timeline[-1].kind == "delivered"
    assert tracer.dropped_events > 0 and tracer.truncated


def test_newest_packet_never_evicted():
    # Cap smaller than one timeline: the sole live packet survives.
    tracer = Tracer(max_events=2, per_packet=256)
    env, eng = _traced_engine()
    eng.tracer = tracer
    p = eng.offer(1, 6, 8)
    eng.drain()
    kinds = [e.kind for e in tracer.packet_timeline(p.pid)]
    assert kinds[0] == "offered" and kinds[-1] == "delivered"
    assert tracer.evicted_packets == 0


def test_untruncated_tracer_reports_clean():
    env, eng = _traced_engine()
    eng.offer(1, 6, 8)
    eng.drain()
    t = eng.tracer
    assert not t.truncated
    assert t.dropped_events == 0 and t.evicted_packets == 0
    # events is a flat, record-ordered view across packets
    seqs = [e.seq for e in t.events]
    assert seqs == sorted(seqs)


def test_tracer_off_by_default_costs_nothing():
    env = Environment()
    eng = WormholeEngine(env, build_network("tmin", 2, 3), rng=RandomStream(0))
    assert eng.tracer is None
    eng.offer(1, 6, 8)
    eng.drain()
    assert eng.stats.delivered_packets == 1


def test_trace_event_str():
    e = TraceEvent(12.0, "acquired", 3, "b1[0].0")
    assert "t=12" in str(e) and "acquired" in str(e)


def test_traced_run_matches_untraced():
    """Tracing is observation only: results are bit-identical."""

    def run(traced):
        env = Environment()
        eng = WormholeEngine(
            env, build_network("dmin", 2, 3), rng=RandomStream(5)
        )
        if traced:
            eng.tracer = Tracer()
        rs = RandomStream(6)
        pkts = []
        for _ in range(30):
            s = rs.uniform_int(0, 7)
            d = rs.uniform_int(0, 6)
            if d >= s:
                d += 1
            pkts.append(eng.offer(s, d, rs.uniform_int(4, 20)))
        eng.drain()
        return [p.delivered_at for p in pkts]

    assert run(True) == run(False)
