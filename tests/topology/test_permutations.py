"""Tests for k-ary digit permutations (Definitions 1 and 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.permutations import (
    BlockInverseShuffle,
    ButterflyPermutation,
    Identity,
    InverseShuffle,
    PerfectShuffle,
    Permutation,
    from_digits,
    to_digits,
)

small_kn = st.tuples(st.sampled_from([2, 3, 4]), st.integers(min_value=1, max_value=4))


def test_to_digits_lsb_first():
    assert to_digits(6, 2, 3) == (0, 1, 1)
    assert to_digits(0b101, 2, 3) == (1, 0, 1)
    assert to_digits(0, 4, 3) == (0, 0, 0)
    assert to_digits(1 * 16 + 2 * 4 + 3, 4, 3) == (3, 2, 1)


def test_to_digits_examples():
    # 2103 base 4 = 2*64 + 1*16 + 0*4 + 3
    assert to_digits(2 * 64 + 1 * 16 + 0 * 4 + 3, 4, 4) == (3, 0, 1, 2)


def test_from_digits_roundtrip_examples():
    assert from_digits((3, 0, 1, 2), 4) == 2 * 64 + 1 * 16 + 0 * 4 + 3


def test_to_digits_range_check():
    with pytest.raises(ValueError):
        to_digits(8, 2, 3)
    with pytest.raises(ValueError):
        to_digits(-1, 2, 3)


def test_from_digits_digit_check():
    with pytest.raises(ValueError):
        from_digits((2,), 2)


@given(small_kn, st.data())
@settings(max_examples=100, deadline=None)
def test_digits_roundtrip_property(kn, data):
    k, n = kn
    x = data.draw(st.integers(min_value=0, max_value=k**n - 1))
    assert from_digits(to_digits(x, k, n), k) == x


def test_butterfly_swaps_digit_0_and_i():
    # Definition 1 with k=2, n=3, i=2: beta_2(x2 x1 x0) = x0 x1 x2
    b = ButterflyPermutation(2, 3, 2)
    assert b(0b100) == 0b001
    assert b(0b001) == 0b100
    assert b(0b010) == 0b010
    assert b(0b101) == 0b101


def test_butterfly_kary():
    # k=4, n=2, i=1: swap the two digits
    b = ButterflyPermutation(4, 2, 1)
    assert b(from_digits((3, 1), 4)) == from_digits((1, 3), 4)


def test_butterfly_0_is_identity():
    assert ButterflyPermutation(2, 3, 0).is_identity()
    assert ButterflyPermutation(4, 3, 0).is_identity()


def test_butterfly_is_involution():
    for k, n, i in [(2, 3, 1), (2, 3, 2), (4, 3, 2), (3, 2, 1)]:
        b = ButterflyPermutation(k, n, i)
        assert (b @ b).is_identity()


def test_butterfly_index_validation():
    with pytest.raises(ValueError):
        ButterflyPermutation(2, 3, 3)
    with pytest.raises(ValueError):
        ButterflyPermutation(2, 3, -1)


def test_perfect_shuffle_definition():
    # Definition 2: sigma(x_{n-1} ... x_0) = x_{n-2} ... x_0 x_{n-1}
    s = PerfectShuffle(2, 3)
    # 110 -> 101
    assert s(0b110) == 0b101
    # 100 -> 001
    assert s(0b100) == 0b001
    # shuffle of 0 and max are fixed
    assert s(0) == 0
    assert s(7) == 7


def test_perfect_shuffle_kary():
    s = PerfectShuffle(4, 3)
    assert s(from_digits((1, 2, 3), 4)) == from_digits((3, 1, 2), 4)


def test_shuffle_order_is_n():
    # n left-rotations return to identity
    for k, n in [(2, 3), (2, 4), (4, 2), (4, 3)]:
        assert PerfectShuffle(k, n).order() == n


def test_inverse_shuffle_is_inverse():
    for k, n in [(2, 3), (4, 2), (3, 3)]:
        s, si = PerfectShuffle(k, n), InverseShuffle(k, n)
        assert (s @ si).is_identity()
        assert (si @ s).is_identity()
        assert s.inverse() == si


def test_block_inverse_shuffle_full_width_matches():
    assert BlockInverseShuffle(2, 3, 3) == InverseShuffle(2, 3)


def test_block_inverse_shuffle_partial():
    # m=2 over n=3: rotate low two digits, keep digit 2
    p = BlockInverseShuffle(2, 3, 2)
    assert p(0b101) == 0b110  # digits (1,0,1) -> low (1,0) rotated to (0,1)
    assert p(0b100) == 0b100


def test_block_inverse_shuffle_width_1_is_identity():
    assert BlockInverseShuffle(2, 3, 1).is_identity()


def test_block_inverse_shuffle_validation():
    with pytest.raises(ValueError):
        BlockInverseShuffle(2, 3, 0)
    with pytest.raises(ValueError):
        BlockInverseShuffle(2, 3, 4)


def test_permutation_rejects_non_bijection():
    with pytest.raises(ValueError):
        Permutation([0, 0, 1])


def test_composition_semantics():
    p = Permutation([1, 2, 0])
    q = Permutation([2, 0, 1])
    # (p @ q)(x) = p(q(x))
    assert [(p @ q)(x) for x in range(3)] == [p(q(x)) for x in range(3)]


def test_inverse_roundtrip():
    p = Permutation([2, 0, 3, 1])
    assert (p @ p.inverse()).is_identity()
    assert (p.inverse() @ p).is_identity()


def test_identity_properties():
    i = Identity(8)
    assert i.is_identity()
    assert i.order() == 1
    assert i.fixed_points() == list(range(8))


def test_compose_size_mismatch_rejected():
    with pytest.raises(ValueError):
        Identity(4) @ Identity(8)


def test_permutation_hash_eq():
    assert PerfectShuffle(2, 3) == PerfectShuffle(2, 3)
    assert hash(PerfectShuffle(2, 3)) == hash(PerfectShuffle(2, 3))
    assert PerfectShuffle(2, 3) != InverseShuffle(2, 3)


@given(small_kn)
@settings(max_examples=30, deadline=None)
def test_shuffle_rotation_property(kn):
    """sigma moves digit j to digit j+1 (mod n) -- left rotation."""
    k, n = kn
    s = PerfectShuffle(k, n)
    for x in range(min(k**n, 64)):
        digits = to_digits(x, k, n)
        shuffled = to_digits(s(x), k, n)
        assert shuffled == (digits[n - 1],) + digits[: n - 1]


@given(small_kn, st.data())
@settings(max_examples=50, deadline=None)
def test_butterfly_only_touches_digits_0_and_i(kn, data):
    k, n = kn
    i = data.draw(st.integers(min_value=0, max_value=n - 1))
    x = data.draw(st.integers(min_value=0, max_value=k**n - 1))
    b = ButterflyPermutation(k, n, i)
    before = to_digits(x, k, n)
    after = to_digits(b(x), k, n)
    for j in range(n):
        if j in (0, i):
            continue
        assert after[j] == before[j]
    assert after[0] == before[i] and after[i] == before[0]
