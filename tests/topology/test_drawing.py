"""Tests for the text renderings of network structures."""

from repro.topology.bmin import BidirectionalMIN
from repro.topology.drawing import (
    connection_table,
    render_bmin,
    render_fat_tree,
    render_min,
)
from repro.topology.fattree import FatTree
from repro.topology.mins import butterfly_min, cube_min
from repro.topology.permutations import PerfectShuffle


def test_connection_table_shuffle():
    text = connection_table(PerfectShuffle(2, 3), 2, 3)
    assert text.startswith("sigma:")
    # sigma(110) = 101 (left rotation)
    assert "110 -> 101" in text
    assert "000 -> 000" in text
    assert len(text.splitlines()) == 9  # header + 8 rows


def test_render_min_structure():
    text = render_min(cube_min(2, 3))
    assert "cube MIN: N=8 nodes, 3 stages of 4 2x2 switches" in text
    assert "C0=sigma" in text
    assert text.count("stage G") == 3
    assert text.count("  switch") == 12  # 3 stages x 4 switches


def test_render_min_input_positions_respect_connection():
    """Stage 0 of a cube MIN receives the *shuffled* node order."""
    text = render_min(cube_min(2, 3))
    g0 = text.split("stage G0:")[1].split("stage G1:")[0]
    # Switch 0 ports 0,1 receive positions sigma^{-1}(0)=000 and
    # sigma^{-1}(1)=100 (the shuffle pairs node 0 with node 4).
    assert "switch  0: in<-000,100" in g0


def test_render_min_butterfly_straight_input():
    text = render_min(butterfly_min(2, 3))
    g0 = text.split("stage G0:")[1].split("stage G1:")[0]
    assert "switch  0: in<-000,001" in g0


def test_render_bmin_structure():
    text = render_bmin(BidirectionalMIN(2, 3))
    assert "N=8 nodes" in text
    assert text.count("  switch") == 12
    # The top stage's right side leaves the network.
    top = text.split("stage G2:")[1]
    assert top.count("(network edge)") == 4


def test_render_bmin_stage0_groups_nodes():
    text = render_bmin(BidirectionalMIN(2, 3))
    g0 = text.split("stage G0:")[1].split("stage G1:")[0]
    assert "left<->000,001" in g0


def test_render_fat_tree():
    ft = FatTree(BidirectionalMIN(2, 3))
    text = render_fat_tree(ft)
    assert "(root)" in text
    assert "nodes 0..7" in text
    # 1 root + 2 level-2 + 4 level-1 vertices
    assert text.count("vertex[") == 7
    assert "2 parent links" in text


def test_renderings_are_deterministic():
    a = render_min(cube_min(4, 2))
    b = render_min(cube_min(4, 2))
    assert a == b


def test_kary_addresses_rendered_in_radix_k():
    text = render_min(cube_min(4, 2))
    g0 = text.split("stage G0:")[1].split("stage G1:")[0]
    # 16 nodes in radix 4: two-digit labels like 00, 13, 32...
    assert "in<-00,10,20,30" in g0  # shuffle groups stride-4 nodes
