"""Tests for the bidirectional butterfly MIN and turnaround routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.bmin import (
    BidirectionalMIN,
    first_difference,
    insert_digit,
    remove_digit,
)
from repro.topology.permutations import to_digits

SIZES = [(2, 2), (2, 3), (2, 4), (4, 2), (4, 3)]


# ------------------------------------------------------------- digit helpers


def test_remove_insert_digit_examples():
    # address 0b101, remove digit 1 -> digits (1, _, 1) -> 0b11
    assert remove_digit(0b101, 1, 2, 3) == 0b11
    assert insert_digit(0b11, 1, 0, 2, 3) == 0b101
    assert insert_digit(0b11, 1, 1, 2, 3) == 0b111


@given(
    st.sampled_from(SIZES),
    st.data(),
)
@settings(max_examples=100, deadline=None)
def test_remove_insert_roundtrip(kn, data):
    k, n = kn
    a = data.draw(st.integers(min_value=0, max_value=k**n - 1))
    j = data.draw(st.integers(min_value=0, max_value=n - 1))
    digit = to_digits(a, k, n)[j]
    assert insert_digit(remove_digit(a, j, k, n), j, digit, k, n) == a


def test_insert_digit_validation():
    with pytest.raises(ValueError):
        insert_digit(0, 0, 2, 2, 3)


# ----------------------------------------------------------- FirstDifference


def test_first_difference_paper_example():
    """Fig. 8: FirstDifference(001, 101) = 2."""
    assert first_difference(0b001, 0b101, 2, 3) == 2


def test_first_difference_small_cases():
    assert first_difference(0b000, 0b001, 2, 3) == 0
    assert first_difference(0b010, 0b000, 2, 3) == 1
    assert first_difference(0b011, 0b111, 2, 3) == 2


def test_first_difference_kary():
    # base-4 digits: s = (1, 2, 3), d = (0, 2, 3): differ only in digit 0
    s = 3 * 16 + 2 * 4 + 1
    d = 3 * 16 + 2 * 4 + 0
    assert first_difference(s, d, 4, 3) == 0


def test_first_difference_equal_rejected():
    with pytest.raises(ValueError):
        first_difference(5, 5, 2, 3)


@given(st.sampled_from(SIZES), st.data())
@settings(max_examples=100, deadline=None)
def test_first_difference_is_symmetric_and_correct(kn, data):
    k, n = kn
    s = data.draw(st.integers(min_value=0, max_value=k**n - 1))
    d = data.draw(st.integers(min_value=0, max_value=k**n - 1))
    if s == d:
        return
    t = first_difference(s, d, k, n)
    assert t == first_difference(d, s, k, n)
    sd, dd = to_digits(s, k, n), to_digits(d, k, n)
    assert sd[t] != dd[t]
    assert sd[t + 1 :] == dd[t + 1 :]


# -------------------------------------------------------------- construction


def test_bmin_paper_configuration():
    bmin = BidirectionalMIN(4, 3)
    assert bmin.N == 64
    assert bmin.switches_per_stage == 16


def test_bmin_validation():
    with pytest.raises(ValueError):
        BidirectionalMIN(1, 3)
    with pytest.raises(ValueError):
        BidirectionalMIN(2, 0)


def test_left_lines_partition_boundary():
    """Each boundary's N lines split into N/k switches of k lines each."""
    bmin = BidirectionalMIN(2, 3)
    for stage in range(bmin.n):
        seen = []
        for w in range(bmin.switches_per_stage):
            lines = bmin.left_lines_of_switch(stage, w)
            assert len(lines) == bmin.k
            seen.extend(lines)
        assert sorted(seen) == list(range(bmin.N))


def test_stage0_groups_consecutive_nodes():
    """Nodes attach to stage 0 in blocks of k (one-port architecture)."""
    bmin = BidirectionalMIN(4, 3)
    assert bmin.left_lines_of_switch(0, 0) == [0, 1, 2, 3]
    assert bmin.left_lines_of_switch(0, 1) == [4, 5, 6, 7]


def test_line_attachment_consistency():
    """A boundary-b line's two endpoints agree via switch_of_line."""
    bmin = BidirectionalMIN(2, 3)
    for b in range(1, bmin.n):
        for line in range(bmin.N):
            upper = bmin.switch_of_line(b, line, "upper")
            lower = bmin.switch_of_line(b, line, "lower")
            assert line in bmin.left_lines_of_switch(b, upper)
            assert line in bmin.right_lines_of_switch(b - 1, lower)


def test_switch_of_line_validation():
    bmin = BidirectionalMIN(2, 3)
    with pytest.raises(ValueError):
        bmin.switch_of_line(0, 0, "lower")
    with pytest.raises(ValueError):
        bmin.switch_of_line(1, 0, "sideways")
    with pytest.raises(ValueError):
        bmin.switch_of_line(5, 0, "upper")


def test_top_stage_has_no_internal_right_lines():
    bmin = BidirectionalMIN(2, 3)
    assert bmin.right_lines_of_switch(bmin.n - 1, 0) == []


# --------------------------------------------------------- turnaround routing


@pytest.mark.parametrize("k,n", SIZES)
def test_theorem_1_path_count(k, n):
    """Theorem 1: exactly k**t shortest paths, t = FirstDifference(S, D)."""
    bmin = BidirectionalMIN(k, n)
    nodes = range(bmin.N)
    for s in nodes:
        for d in nodes:
            if s == d:
                continue
            t = bmin.turn_stage(s, d)
            paths = bmin.enumerate_shortest_paths(s, d)
            assert len(paths) == k**t == bmin.shortest_path_count(s, d)
            # All paths must be distinct.
            assert len({(p.up, p.down) for p in paths}) == len(paths)


@pytest.mark.parametrize("k,n", [(2, 3), (4, 2)])
def test_paths_start_and_end_correctly(k, n):
    bmin = BidirectionalMIN(k, n)
    for s in range(bmin.N):
        for d in range(bmin.N):
            if s == d:
                continue
            for p in bmin.enumerate_shortest_paths(s, d):
                assert p.up[0] == s  # injection uses the source's line
                assert p.down[0] == d  # delivery uses the destination's line


@pytest.mark.parametrize("k,n", [(2, 3), (4, 2)])
def test_paths_follow_switch_adjacency(k, n):
    """Consecutive lines of a path must meet inside a single switch."""
    bmin = BidirectionalMIN(k, n)
    for s in range(bmin.N):
        for d in range(bmin.N):
            if s == d:
                continue
            for p in bmin.enumerate_shortest_paths(s, d):
                t = p.turn_stage
                # Upward: line at boundary j and boundary j+1 share the
                # stage-j switch.
                for j in range(t):
                    w_in = bmin.switch_of_line(j, p.up[j], "upper")
                    w_out = bmin.switch_of_line(j + 1, p.up[j + 1], "lower")
                    assert w_in == w_out
                # Turn: up[t] and down[t] meet in the stage-t switch.
                assert bmin.switch_of_line(t, p.up[t], "upper") == bmin.switch_of_line(
                    t, p.down[t], "upper"
                )
                # Downward: line at boundary j+1 and boundary j share the
                # stage-j switch.
                for j in range(t):
                    w_in = bmin.switch_of_line(j + 1, p.down[j + 1], "lower")
                    w_out = bmin.switch_of_line(j, p.down[j], "upper")
                    assert w_in == w_out


def test_path_length_law():
    """Section 3.2.3: path length is 2(t+1)."""
    bmin = BidirectionalMIN(2, 3)
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            t = bmin.turn_stage(s, d)
            assert bmin.path_length(s, d) == 2 * (t + 1)
            for p in bmin.enumerate_shortest_paths(s, d):
                assert p.length == 2 * (t + 1)
                assert len(p.channels()) == p.length


def test_paths_never_reuse_a_line_both_ways():
    """Definition 4's third condition holds for all generated paths."""
    bmin = BidirectionalMIN(2, 3)
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            for p in bmin.enumerate_shortest_paths(s, d):
                assert not p.uses_paired_channels()


def test_self_route_rejected():
    with pytest.raises(ValueError):
        BidirectionalMIN(2, 3).enumerate_shortest_paths(3, 3)


def test_fig8_example_turn_stage():
    """Fig. 8: S=001, D=101 turns at stage G_2 in the 8-node BMIN."""
    bmin = BidirectionalMIN(2, 3)
    assert bmin.turn_stage(0b001, 0b101) == 2
    assert len(bmin.enumerate_shortest_paths(0b001, 0b101)) == 4


def test_fig9_path_counts():
    """Fig. 9: FirstDifference 2 -> 4 paths; FirstDifference 1 -> 2 paths."""
    bmin = BidirectionalMIN(2, 3)
    # any pair differing first at digit 1
    assert bmin.shortest_path_count(0b000, 0b010) == 2
    assert bmin.shortest_path_count(0b000, 0b100) == 4


def test_fig10_4ary_path_counts():
    """Fig. 10: a 16-node BMIN of 4x4 switches has 1 or 4 shortest paths."""
    bmin = BidirectionalMIN(4, 2)
    assert bmin.shortest_path_count(0, 1) == 1  # same switch, t=0
    assert bmin.shortest_path_count(0, 5) == 4  # t=1


def test_blocking_network_example():
    """Fig. 11: (011->111) and (001->110) can contend on a backward line.

    Both pairs turn at stage 2; their unique down paths share the
    boundary-2 backward line into the switch serving 11x when forward
    choices collide.  We verify the two destination-determined down
    ports coincide at stage 2 for some forward choice, i.e. the path
    sets intersect on a backward channel.
    """
    bmin = BidirectionalMIN(2, 3)
    paths_a = bmin.enumerate_shortest_paths(0b011, 0b111)
    paths_b = bmin.enumerate_shortest_paths(0b001, 0b110)
    down_a = {("bwd", b, line) for p in paths_a for (dir_, b, line) in p.channels() if dir_ == "bwd"}
    down_b = {("bwd", b, line) for p in paths_b for (dir_, b, line) in p.channels() if dir_ == "bwd"}
    assert down_a & down_b, "expected shared backward channels (blocking network)"


def test_deadlock_free_dependency_graph():
    """Section 3.2.1: the turnaround dependency graph is acyclic."""
    for k, n in [(2, 2), (2, 3), (4, 2)]:
        assert BidirectionalMIN(k, n).is_deadlock_free()


def test_rightmost_stage_pairs_differ_in_top_digit():
    """Fig. 12: for k=2 the top stage pairs lines differing in digit n-1."""
    bmin = BidirectionalMIN(2, 3)
    for pair in bmin.rightmost_stage_pairs():
        assert len(pair) == 2
        a, b = pair
        assert a ^ b == 1 << (bmin.n - 1)


@given(st.sampled_from(SIZES), st.data())
@settings(max_examples=60, deadline=None)
def test_down_path_is_destination_determined(kn, data):
    """All shortest paths share the same *ports* downward: the down line
    at boundary b always has digits >= b equal to the destination's."""
    k, n = kn
    bmin = BidirectionalMIN(k, n)
    s = data.draw(st.integers(min_value=0, max_value=bmin.N - 1))
    d = data.draw(st.integers(min_value=0, max_value=bmin.N - 1))
    if s == d:
        return
    d_digits = to_digits(d, k, n)
    for p in bmin.enumerate_shortest_paths(s, d):
        for b, line in enumerate(p.down):
            line_digits = to_digits(line, k, n)
            assert line_digits[b:] == d_digits[b:]
