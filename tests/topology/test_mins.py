"""Tests for the unidirectional MIN builders and MINSpec tracing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.mins import (
    TOPOLOGY_BUILDERS,
    baseline_min,
    build_min,
    butterfly_min,
    cube_min,
    flip_min,
    omega_min,
)
from repro.topology.permutations import Identity, PerfectShuffle
from repro.topology.spec import MINSpec

ALL_BUILDERS = [butterfly_min, cube_min, omega_min, flip_min, baseline_min]
SIZES = [(2, 2), (2, 3), (2, 4), (4, 2), (4, 3), (8, 2), (3, 3)]


@pytest.mark.parametrize("builder", ALL_BUILDERS)
@pytest.mark.parametrize("k,n", SIZES)
def test_self_routing_delivers_all_pairs(builder, k, n):
    """Destination-tag routing must reach every destination from every source."""
    spec = builder(k, n)
    for s in range(spec.N):
        for d in range(spec.N):
            assert spec.delivers(s, d), f"{spec.name}: {s} -> {d} misrouted"


@pytest.mark.parametrize("builder", ALL_BUILDERS)
def test_path_length_is_n_plus_1(builder):
    spec = builder(2, 3)
    for s in range(spec.N):
        for d in range(spec.N):
            assert spec.trace(s, d).length == spec.n + 1


def test_cube_min_leads_with_perfect_shuffle():
    """The shuffle before G_0 is what distinguishes the cube MIN (Fig. 4)."""
    spec = cube_min(2, 3)
    assert spec.connections[0] == PerfectShuffle(2, 3)
    assert isinstance(butterfly_min(2, 3).connections[0], Identity)


def test_cube_tag_is_msb_first():
    spec = cube_min(4, 3)
    # destination digits (d0, d1, d2) = (1, 2, 3) -> tag (d2, d1, d0)
    d = 3 * 16 + 2 * 4 + 1
    assert spec.routing_tag(d) == (3, 2, 1)


def test_butterfly_tag_rule():
    """t_i = d_{i+1} for i <= n-2, t_{n-1} = d_0 (Section 2)."""
    spec = butterfly_min(2, 3)
    d = 0b110  # digits d0=0, d1=1, d2=1
    assert spec.routing_tag(d) == (1, 1, 0)


def test_flip_tag_is_lsb_first():
    spec = flip_min(2, 3)
    d = 0b011
    assert spec.routing_tag(d) == (1, 1, 0)


def test_switch_counts():
    spec = cube_min(4, 3)
    assert spec.N == 64
    assert spec.switches_per_stage == 16
    assert len(spec.connections) == 4


def test_trace_switch_indices_in_range():
    spec = omega_min(2, 3)
    for s in range(8):
        for d in range(8):
            for w in spec.trace(s, d).switches(2):
                assert 0 <= w < spec.switches_per_stage


def test_channels_of_path_shape():
    spec = cube_min(2, 3)
    channels = spec.channels_of_path(1, 6)
    assert len(channels) == spec.n + 1
    assert channels[0] == (0, 1)  # injection channel at the source position
    boundaries = [b for b, _ in channels]
    assert boundaries == [0, 1, 2, 3]


def test_build_min_by_name():
    assert build_min("cube", 2, 3).name == "cube"
    assert set(TOPOLOGY_BUILDERS) == {"butterfly", "cube", "omega", "flip", "baseline"}
    with pytest.raises(ValueError):
        build_min("hypercube", 2, 3)


def test_spec_validation():
    with pytest.raises(ValueError):
        MINSpec(1, 3, [Identity(1)] * 4, lambda d: (0, 0, 0), "bad")
    with pytest.raises(ValueError):
        MINSpec(2, 0, [Identity(1)], lambda d: (), "bad")
    with pytest.raises(ValueError):
        # wrong number of connections
        MINSpec(2, 3, [Identity(8)] * 3, lambda d: (0, 0, 0), "bad")
    with pytest.raises(ValueError):
        # wrong connection size
        MINSpec(2, 3, [Identity(4)] * 4, lambda d: (0, 0, 0), "bad")


def test_spec_rejects_bad_tag_function():
    spec = MINSpec(
        2, 2, [Identity(4)] * 3, lambda d: (d % 2,), "short-tag"
    )
    with pytest.raises(ValueError):
        spec.routing_tag(1)


def test_trace_range_checks():
    spec = cube_min(2, 2)
    with pytest.raises(ValueError):
        spec.trace(-1, 0)
    with pytest.raises(ValueError):
        spec.trace(0, 4)
    with pytest.raises(ValueError):
        spec.stage_channel(5, 0)
    with pytest.raises(ValueError):
        spec.stage_channel(0, 99)


def test_paper_64_node_configuration():
    """The evaluation uses 64 nodes, 4x4 switches, 3 stages of 16 (Section 5)."""
    for builder in (cube_min, butterfly_min):
        spec = builder(4, 3)
        assert spec.N == 64
        assert spec.n == 3
        assert spec.switches_per_stage == 16


@given(
    st.sampled_from(ALL_BUILDERS),
    st.sampled_from([(2, 3), (4, 2), (3, 2)]),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_unique_path_property(builder, kn, data):
    """Delta networks have exactly one path: retracing is deterministic."""
    k, n = kn
    spec = builder(k, n)
    s = data.draw(st.integers(min_value=0, max_value=spec.N - 1))
    d = data.draw(st.integers(min_value=0, max_value=spec.N - 1))
    assert spec.trace(s, d) == spec.trace(s, d)
    assert spec.delivers(s, d)


@given(st.sampled_from([(2, 3), (4, 2)]), st.data())
@settings(max_examples=40, deadline=None)
def test_distinct_sources_share_no_injection_channel(kn, data):
    k, n = kn
    spec = cube_min(k, n)
    s1 = data.draw(st.integers(min_value=0, max_value=spec.N - 1))
    s2 = data.draw(st.integers(min_value=0, max_value=spec.N - 1))
    d = data.draw(st.integers(min_value=0, max_value=spec.N - 1))
    ch1 = spec.channels_of_path(s1, d)
    ch2 = spec.channels_of_path(s2, d)
    if s1 != s2:
        assert ch1[0] != ch2[0]
    # Same destination always shares the delivery channel.
    assert ch1[-1] == ch2[-1]
