"""Tests for Delta-MIN equivalence and permutation admissibility."""

import pytest

from repro.topology.equivalence import (
    admissible,
    admissible_fraction,
    channel_load,
    functionally_equivalent,
    is_banyan,
    max_channel_contention,
)
from repro.topology.mins import (
    baseline_min,
    butterfly_min,
    cube_min,
    flip_min,
    omega_min,
)
from repro.topology.permutations import ButterflyPermutation, PerfectShuffle


ALL = [butterfly_min, cube_min, omega_min, flip_min, baseline_min]


@pytest.mark.parametrize("builder", ALL)
def test_all_delta_mins_are_banyan(builder):
    assert is_banyan(builder(2, 3))
    assert is_banyan(builder(4, 2))


@pytest.mark.parametrize("builder", ALL[1:])
def test_functional_equivalence_of_delta_class(builder):
    """Wu & Feng: Delta MINs are functionally equivalent (full connectivity)."""
    assert functionally_equivalent(butterfly_min(2, 3), builder(2, 3))


def test_functional_equivalence_size_mismatch():
    assert not functionally_equivalent(cube_min(2, 2), cube_min(2, 3))


def test_channel_load_counts_paths():
    spec = cube_min(2, 2)
    load = channel_load(spec, [(0, 3), (1, 3)])
    # Both paths end on destination 3's delivery channel.
    delivery = spec.channels_of_path(0, 3)[-1]
    assert load[delivery] == 2
    # Each source's injection channel is used once.
    assert load[(0, 0)] == 1
    assert load[(0, 1)] == 1


def test_max_contention_empty_traffic():
    assert max_channel_contention(cube_min(2, 2), []) == 0


def test_identity_permutation_admissible():
    spec = cube_min(4, 3)
    assert admissible(spec, list(range(spec.N)))


def test_admissible_rejects_non_permutation():
    with pytest.raises(ValueError):
        admissible(cube_min(2, 2), [0, 0, 1, 2])


def test_shuffle_contention_on_cube_tmin_is_four():
    """Section 5.3.3: under the shuffle permutation 'some channels have
    to be shared by four source and destination pairs' in the 64-node
    cube TMIN of 4x4 switches."""
    spec = cube_min(4, 3)
    shuffle = PerfectShuffle(4, 3)
    pairs = [(s, shuffle(s)) for s in range(spec.N) if s != shuffle(s)]
    assert max_channel_contention(spec, pairs) == 4
    assert not admissible(spec, [shuffle(s) for s in range(spec.N)])


def test_butterfly2_permutation_contends_on_cube_tmin():
    """Fig. 20b's 2nd-butterfly pattern is also inadmissible on the cube
    TMIN (3-way channel sharing at 64 nodes)."""
    spec = cube_min(4, 3)
    beta2 = ButterflyPermutation(4, 3, 2)
    pairs = [(s, beta2(s)) for s in range(spec.N) if s != beta2(s)]
    assert max_channel_contention(spec, pairs) >= 3
    assert not admissible(spec, [beta2(s) for s in range(spec.N)])


def test_omega_admits_all_circular_shifts():
    """Classical result: every circular shift x -> x + c (mod N) is
    Omega-admissible; positive anchor for the admissibility checker."""
    spec = omega_min(2, 3)
    for c in range(1, spec.N):
        assert admissible(spec, [(s + c) % spec.N for s in range(spec.N)])


def test_admissible_fraction():
    spec = cube_min(2, 2)
    ident = list(range(4))
    swap = [1, 0, 3, 2]
    frac = admissible_fraction(spec, [ident, swap])
    assert 0.0 <= frac <= 1.0
    with pytest.raises(ValueError):
        admissible_fraction(spec, [])


def test_partitionability_differs_despite_equivalence():
    """The paper's point: functionally equivalent != equally partitionable.

    Checked properly in tests/partition; here we just pin the static
    signature that cube and butterfly route the same pairs through
    different channel sets."""
    cube, butt = cube_min(2, 3), butterfly_min(2, 3)
    assert functionally_equivalent(cube, butt)
    pairs = [(0, 1), (1, 0)]
    assert channel_load(cube, pairs) != channel_load(butt, pairs)
