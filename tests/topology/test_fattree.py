"""Tests for the fat-tree view of a BMIN (Section 3.3)."""

import pytest

from repro.topology.bmin import BidirectionalMIN
from repro.topology.fattree import FatTree, FatTreeVertex


@pytest.fixture
def ft8():
    return FatTree(BidirectionalMIN(2, 3))


@pytest.fixture
def ft16():
    """The 16-node fat tree of Fig. 13."""
    return FatTree(BidirectionalMIN(2, 4))


def test_vertex_counts_per_level(ft8):
    assert len(ft8.vertices_at_level(1)) == 4
    assert len(ft8.vertices_at_level(2)) == 2
    assert len(ft8.vertices_at_level(3)) == 1
    with pytest.raises(ValueError):
        ft8.vertices_at_level(0)
    with pytest.raises(ValueError):
        ft8.vertices_at_level(4)


def test_root_and_parent_chain(ft8):
    root = ft8.root()
    assert root.level == 3 and root.prefix == 0
    v = FatTreeVertex(1, 3)
    assert ft8.parent(v) == FatTreeVertex(2, 1)
    assert ft8.parent(ft8.parent(v)) == root
    with pytest.raises(ValueError):
        ft8.parent(root)


def test_children_partition_subtree(ft8):
    v = FatTreeVertex(2, 1)
    kids = ft8.children(v)
    assert kids == [FatTreeVertex(1, 2), FatTreeVertex(1, 3)]
    leaves = sorted(leaf for kid in kids for leaf in ft8.leaves(kid))
    assert leaves == ft8.leaves(v)
    assert ft8.children(FatTreeVertex(1, 0)) == []


def test_leaves_are_prefix_blocks(ft8):
    assert ft8.leaves(FatTreeVertex(1, 2)) == [4, 5]
    assert ft8.leaves(FatTreeVertex(2, 1)) == [4, 5, 6, 7]
    assert ft8.leaves(ft8.root()) == list(range(8))


def test_fat_tree_property_links_equal_leaves(ft16):
    """Fig. 13: outgoing parent connections == leaves in the subtree."""
    for level in range(1, ft16.n):  # root's right lines leave the network
        for v in ft16.vertices_at_level(level):
            assert ft16.parent_link_count(v) == ft16.leaf_count(v)
    assert ft16.parent_link_count(ft16.root()) == 0


def test_switch_group_sizes(ft16):
    """A level-l vertex aggregates k**(l-1) switches of stage l-1."""
    for level in range(1, ft16.n + 1):
        for v in ft16.vertices_at_level(level):
            group = ft16.switch_group(v)
            assert len(group) == ft16.k ** (level - 1)
            assert all(stage == level - 1 for stage, _ in group)


def test_switch_groups_partition_each_stage(ft16):
    for level in range(1, ft16.n + 1):
        stage_switches = []
        for v in ft16.vertices_at_level(level):
            stage_switches.extend(w for _, w in ft16.switch_group(v))
        assert sorted(stage_switches) == list(range(ft16.bmin.switches_per_stage))


def test_switch_group_serves_exactly_subtree_lines(ft16):
    """The left lines of a vertex's switches are its subtree's boundary lines."""
    bmin = ft16.bmin
    for v in ft16.vertices_at_level(2):
        lines = sorted(
            line
            for stage, w in ft16.switch_group(v)
            for line in bmin.left_lines_of_switch(stage, w)
        )
        # Boundary-(level-1) lines with the vertex prefix in the high digits:
        # these are exactly the addresses of the subtree's leaves.
        assert lines == ft16.leaves(v)


def test_lca_matches_first_difference(ft8):
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            lca = ft8.lca(s, d)
            assert lca.level == ft8.bmin.turn_stage(s, d) + 1
            assert s in ft8.leaves(lca) and d in ft8.leaves(lca)


def test_lca_is_least(ft8):
    """No child of the LCA contains both endpoints."""
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            lca = ft8.lca(s, d)
            for kid in ft8.children(lca):
                leaves = ft8.leaves(kid)
                assert not (s in leaves and d in leaves)


def test_route_length_matches_bmin(ft8):
    for s in range(8):
        for d in range(8):
            if s == d:
                continue
            assert ft8.route_length(s, d) == ft8.bmin.path_length(s, d)


def test_vertex_of_leaf_validation(ft8):
    with pytest.raises(ValueError):
        ft8.vertex_of_leaf(99, 1)
    with pytest.raises(ValueError):
        ft8.vertex_of_leaf(0, 0)


def test_vertex_validation(ft8):
    with pytest.raises(ValueError):
        ft8.leaves(FatTreeVertex(1, 99))
