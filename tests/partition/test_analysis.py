"""Tests for Lemma 1 and Theorems 2-4 via channel-usage analysis."""

import pytest

from repro.partition.analysis import (
    bmin_cluster_line_usage,
    bmin_clusters_are_contention_free,
    bmin_is_channel_balanced,
    check_partition,
    cluster_channel_usage,
    clusters_are_contention_free,
    is_channel_balanced,
)
from repro.partition.cubes import Cube
from repro.topology.bmin import BidirectionalMIN
from repro.topology.mins import butterfly_min, cube_min, omega_min, baseline_min


def kary(pattern: str, k: int = 2) -> Cube:
    return Cube.from_kary(pattern, k)


# ------------------------------------------------- Lemma 1 / Theorem 2 (cube)


def test_fig14_partition_is_contention_free_and_balanced():
    """Fig. 14: the 8-node cube MIN splits into 0XX, 1X0, 1X1 cleanly."""
    spec = cube_min(2, 3)
    clusters = [kary("0XX"), kary("1X0"), kary("1X1")]
    assert Cube.partitions(clusters)
    assert clusters_are_contention_free(spec, clusters)
    for c in clusters:
        assert is_channel_balanced(spec, c)


def test_lemma1_kary_cubes_on_cube_min():
    """Lemma 1 at k=4: every k-ary cube cluster is balanced, and the
    4 x 16-node clustering of Section 5 is contention-free."""
    spec = cube_min(4, 3)
    clusters = [kary(f"{i}XX", 4) for i in range(4)]
    assert clusters_are_contention_free(spec, clusters)
    for c in clusters:
        assert is_channel_balanced(spec, c)
    # A non-base k-ary cube is balanced too (Lemma 1 needs no base-ness).
    assert is_channel_balanced(spec, kary("X2X", 4))


def test_theorem2_binary_cubes_on_cube_min():
    """Theorem 2: with k = 2^j the cube MIN partitions into *binary* cubes.

    The cluster-32 partitioning of Section 5 (two 32-node halves by top
    bit) is contention-free and channel-balanced even though the halves
    are not 4-ary cubes."""
    spec = cube_min(4, 3)
    halves = [Cube.from_bits("0XXXXX"), Cube.from_bits("1XXXXX")]
    assert not halves[0].is_kary(4)
    assert clusters_are_contention_free(spec, halves)
    for c in halves:
        assert is_channel_balanced(spec, c)


def test_theorem2_mixed_size_binary_partition():
    spec = cube_min(4, 3)
    clusters = [
        Cube.from_bits("0XXXXX"),   # 32 nodes
        Cube.from_bits("10XXXX"),   # 16 nodes
        Cube.from_bits("11XXXX"),   # 16 nodes
    ]
    assert Cube.partitions(clusters)
    assert clusters_are_contention_free(spec, clusters)
    assert all(is_channel_balanced(spec, c) for c in clusters)


def test_omega_shares_cube_partitionability():
    """Paper Section 6: Omega and cube have the same partitionability."""
    spec = omega_min(2, 3)
    clusters = [kary("0XX"), kary("1X0"), kary("1X1")]
    assert clusters_are_contention_free(spec, clusters)
    assert all(is_channel_balanced(spec, c) for c in clusters)


# ------------------------------------------------------ Theorem 3 (butterfly)


def test_fig15a_channel_reduced_clustering():
    """Fig. 15a: 0XX, 10X, 11X on the butterfly MIN are contention-free
    but channel counts halve at some stage (not balanced)."""
    spec = butterfly_min(2, 3)
    clusters = [kary("0XX"), kary("10X"), kary("11X")]
    report = check_partition(spec, clusters)
    assert report.contention_free
    assert not any(report.channel_balanced)
    # 0XX uses only 2 channels at boundary 2 instead of 4.
    assert report.channels_per_boundary[0] == (4, 4, 2, 4)
    # The two 2-node clusters squeeze to a single channel mid-network.
    assert report.channels_per_boundary[1] == (2, 1, 1, 2)
    assert report.channels_per_boundary[2] == (2, 1, 1, 2)


def test_fig15b_channel_shared_clustering():
    """Fig. 15b: XX0 and XX1 on the butterfly MIN share eight channels."""
    spec = butterfly_min(2, 3)
    clusters = [kary("XX0"), kary("XX1")]
    report = check_partition(spec, clusters)
    assert not report.contention_free
    # Each 4-node cluster spreads over all 8 channels at inner boundaries.
    assert report.channels_per_boundary[0] == (4, 8, 8, 4)
    usage0 = cluster_channel_usage(spec, clusters[0])
    usage1 = cluster_channel_usage(spec, clusters[1])
    shared = usage0[1] & usage1[1]
    assert len(shared) == 8


def test_same_clusters_fine_on_cube_min():
    """The XX0/XX1 split that breaks the butterfly is clean on the cube."""
    spec = cube_min(2, 3)
    clusters = [kary("XX0"), kary("XX1")]
    report = check_partition(spec, clusters)
    assert report.contention_free
    assert all(report.channel_balanced)


def test_section5_64node_butterfly_clusterings():
    """Section 5.1: channel-reduced clustering drops 16 channels to 4;
    channel-shared clustering spreads each cluster over all 64."""
    spec = butterfly_min(4, 3)
    reduced = [kary(f"{i}XX", 4) for i in range(4)]
    rep = check_partition(spec, reduced)
    assert rep.contention_free
    assert all(counts[2] == 4 for counts in rep.channels_per_boundary)

    shared = [kary(f"XX{i}", 4) for i in range(4)]
    rep = check_partition(spec, shared)
    assert not rep.contention_free
    assert all(
        counts[1] == 64 and counts[2] == 64 for counts in rep.channels_per_boundary
    )


def test_baseline_shares_butterfly_partitionability():
    """Paper Section 6: baseline behaves like the butterfly -- the same
    low-digit clustering is not contention-free."""
    spec = baseline_min(2, 3)
    clusters = [kary("XX0"), kary("XX1")]
    assert not clusters_are_contention_free(spec, clusters)


# -------------------------------------------------------- Theorem 4 (BMIN)


def test_theorem4_base_cubes_on_bmin():
    bmin = BidirectionalMIN(2, 3)
    clusters = [kary("0XX"), kary("10X"), kary("11X")]
    assert bmin_clusters_are_contention_free(bmin, clusters)
    for c in clusters:
        assert bmin_is_channel_balanced(bmin, c)


def test_theorem4_64node_bmin():
    bmin = BidirectionalMIN(4, 3)
    clusters = [kary(f"{i}XX", 4) for i in range(4)]
    assert bmin_clusters_are_contention_free(bmin, clusters)
    assert all(bmin_is_channel_balanced(bmin, c) for c in clusters)


def test_non_base_cubes_share_bmin_channels():
    """Non-base cubes must climb past their prefix and share lines."""
    bmin = BidirectionalMIN(2, 3)
    clusters = [kary("XX0"), kary("XX1")]
    assert not bmin_clusters_are_contention_free(bmin, clusters)
    assert not bmin_is_channel_balanced(bmin, clusters[0])


def test_bmin_traffic_stays_inside_subtree():
    """Base-cube traffic never touches boundaries above its subtree --
    the traffic-localization property of the fat tree (Section 4)."""
    bmin = BidirectionalMIN(2, 3)
    usage = bmin_cluster_line_usage(bmin, kary("10X"))
    assert len(usage[0]) == 2
    assert len(usage[1]) == 0 and len(usage[2]) == 0


# ------------------------------------------------------------- housekeeping


def test_cluster_must_fit_network():
    with pytest.raises(ValueError):
        cluster_channel_usage(cube_min(2, 2), kary("0XX"))
    with pytest.raises(ValueError):
        bmin_cluster_line_usage(BidirectionalMIN(2, 2), kary("0XX"))


def test_singleton_cluster_rejected():
    with pytest.raises(ValueError):
        is_channel_balanced(cube_min(2, 3), kary("010"))
    with pytest.raises(ValueError):
        bmin_is_channel_balanced(BidirectionalMIN(2, 3), kary("010"))


def test_report_rendering():
    spec = cube_min(2, 3)
    report = check_partition(spec, [kary("0XX"), kary("1XX")])
    text = str(report)
    assert "contention-free" in text
    assert "0XX" in text and "balanced" in text


def test_report_renders_binary_fallback_patterns():
    spec = cube_min(4, 3)
    report = check_partition(spec, [Cube.from_bits("0XXXXX"), Cube.from_bits("1XXXXX")])
    assert "0XXXXX" in str(report)
