"""Tests for k-ary / binary cube clusters (Definitions 5 and 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.cubes import Cube


def test_paper_example_base_cube():
    """Section 4: cluster (21**) in an N=4^4 system is a base 4-ary 2-cube
    with 16 nodes from (2100) to (2133)."""
    cube = Cube.from_kary("21**", k=4)
    members = cube.member_list()
    assert len(members) == cube.size == 16
    assert members[0] == int("2100", 4)
    assert members[-1] == int("2133", 4)
    assert cube.is_base()
    assert cube.is_kary(4)


def test_paper_example_non_base_cube():
    """Cluster (3*1*) is a 4-ary 2-cube from (3010) to (3313), not base."""
    cube = Cube.from_kary("3*1*", k=4)
    members = cube.member_list()
    assert len(members) == 16
    assert members[0] == int("3010", 4)
    assert members[-1] == int("3313", 4)
    assert not cube.is_base()
    assert cube.is_kary(4)


def test_from_bits():
    cube = Cube.from_bits("1X0")
    assert cube.member_list() == [0b100, 0b110]
    assert 0b100 in cube and 0b101 not in cube
    assert not cube.is_base()


def test_from_bits_accepts_star_and_lowercase():
    assert Cube.from_bits("1*0") == Cube.from_bits("1x0")


def test_from_bits_rejects_garbage():
    with pytest.raises(ValueError):
        Cube.from_bits("102")


def test_from_kary_rejects_out_of_range_digit():
    with pytest.raises(ValueError):
        Cube.from_kary("4XX", k=4)


def test_from_kary_requires_power_of_two_radix():
    with pytest.raises(ValueError):
        Cube.from_kary("0XX", k=3)


def test_whole_system():
    cube = Cube.whole_system(6)
    assert cube.size == 64
    assert cube.is_base()
    assert all(a in cube for a in range(64))


def test_constructor_validation():
    with pytest.raises(ValueError):
        Cube(0, 0, 0)
    with pytest.raises(ValueError):
        Cube(3, 0b001, 0b010)  # bit set outside mask
    with pytest.raises(ValueError):
        Cube(3, 0b1111, 0)  # mask exceeds width


def test_membership_range():
    cube = Cube.from_bits("XXX")
    assert 7 in cube and 8 not in cube and -1 not in cube


def test_disjointness():
    a = Cube.from_kary("0XX", k=2)
    b = Cube.from_kary("1X0", k=2)
    c = Cube.from_kary("1X1", k=2)
    assert a.is_disjoint_from(b)
    assert b.is_disjoint_from(c)
    assert not a.is_disjoint_from(a)
    overlapping = Cube.from_kary("XX0", k=2)
    assert not a.is_disjoint_from(overlapping)


def test_disjointness_width_mismatch():
    with pytest.raises(ValueError):
        Cube.from_bits("0X").is_disjoint_from(Cube.from_bits("0XX"))


def test_subcube():
    big = Cube.from_kary("1XX", k=2)
    small = Cube.from_kary("1X0", k=2)
    assert small.is_subcube_of(big)
    assert not big.is_subcube_of(small)
    assert big.is_subcube_of(big)


def test_partitions_predicate():
    parts = [Cube.from_kary(p, 2) for p in ("0XX", "1X0", "1X1")]
    assert Cube.partitions(parts)
    assert not Cube.partitions(parts[:2])  # doesn't cover
    overlap = [Cube.from_kary(p, 2) for p in ("0XX", "XX0", "1X1")]
    assert not Cube.partitions(overlap)
    assert not Cube.partitions([])


def test_is_kary_detects_misalignment():
    # k=4: fixing a single bit is binary but not 4-ary
    half = Cube.from_bits("0XXXXX")
    assert not half.is_kary(4)
    assert half.is_kary(2)
    aligned = Cube.from_kary("1XX", 4)
    assert aligned.is_kary(4)


def test_pattern_rendering_roundtrip():
    cube = Cube.from_kary("2X1", k=4)
    assert cube.pattern(4) == "2X1"
    assert Cube.from_kary(cube.pattern(4), 4) == cube
    with pytest.raises(ValueError):
        Cube.from_bits("0XXXXX").pattern(4)


def test_repr_and_hash():
    a = Cube.from_bits("1X0")
    assert "1X0" in repr(a)
    assert hash(a) == hash(Cube.from_bits("1X0"))
    assert a != "1X0"


@given(st.integers(min_value=2, max_value=8), st.data())
@settings(max_examples=60, deadline=None)
def test_members_match_definition_property(nbits, data):
    """Every generated member agrees with __contains__, count == size."""
    pattern = "".join(
        data.draw(st.sampled_from("01X")) for _ in range(nbits)
    )
    cube = Cube.from_bits(pattern)
    members = cube.member_list()
    assert len(members) == cube.size
    assert all(m in cube for m in members)
    outside = set(range(1 << nbits)) - set(members)
    assert all(o not in cube for o in outside)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_disjoint_iff_no_common_member_property(data):
    nbits = 5
    p1 = "".join(data.draw(st.sampled_from("01X")) for _ in range(nbits))
    p2 = "".join(data.draw(st.sampled_from("01X")) for _ in range(nbits))
    a, b = Cube.from_bits(p1), Cube.from_bits(p2)
    brute = not (set(a.members()) & set(b.members()))
    assert a.is_disjoint_from(b) == brute
