"""Tests for the partition-check CLI."""

import pytest

from repro.partition.__main__ import main


def test_cli_fig14_passes(capsys):
    rc = main(["--topology", "cube", "-k", "2", "-n", "3", "0XX", "1X0", "1X1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "contention-free" in out


def test_cli_butterfly_shared_fails(capsys):
    rc = main(["--topology", "butterfly", "-k", "2", "-n", "3", "XX0", "XX1"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "CONTENDING" in out


def test_cli_binary_patterns(capsys):
    rc = main(["-k", "4", "-n", "3", "0XXXXX", "1XXXXX"])
    assert rc == 0
    assert "balanced" in capsys.readouterr().out


def test_cli_bmin_base_cubes(capsys):
    rc = main(["--bmin", "-k", "2", "-n", "3", "0XX", "10X", "11X"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "butterfly BMIN" in out and "balanced" in out


def test_cli_bmin_non_base_fails(capsys):
    rc = main(["--bmin", "-k", "2", "-n", "3", "XX0", "XX1"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "CONTENDING" in out


def test_cli_bad_pattern_length():
    with pytest.raises(SystemExit):
        main(["-k", "4", "-n", "3", "0XXX"])
