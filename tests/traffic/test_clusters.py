"""Tests for clusterings and traffic ratios."""

import pytest

from repro.partition.cubes import Cube
from repro.traffic.clusters import ClusterSpec, cluster_16, cluster_32, global_cluster


def test_global_cluster():
    spec = global_cluster()
    assert spec.N == 64
    assert len(spec.cubes) == 1
    assert spec.member_lists() == [list(range(64))]
    assert spec.node_rate_factors() == {n: 1.0 for n in range(64)}


def test_cluster_16_cube_style():
    spec = cluster_16("cube")
    lists = spec.member_lists()
    assert [len(m) for m in lists] == [16] * 4
    assert lists[0] == list(range(16))
    assert lists[3] == list(range(48, 64))
    assert spec.cluster_of(17) == 1


def test_cluster_16_shared_style():
    spec = cluster_16("shared")
    lists = spec.member_lists()
    # XX0: nodes whose low base-4 digit is 0
    assert lists[0] == [n for n in range(64) if n % 4 == 0]


def test_cluster_16_bad_style():
    with pytest.raises(ValueError):
        cluster_16("diagonal")


def test_cluster_32():
    spec = cluster_32()
    lists = spec.member_lists()
    assert lists[0] == list(range(32))
    assert lists[1] == list(range(32, 64))


def test_ratio_4111_rate_factors():
    """Fig. 17a: cluster 0 at full rate, the rest at a quarter."""
    spec = cluster_16("cube", ratios=(4, 1, 1, 1))
    factors = spec.node_rate_factors()
    assert factors[0] == 1.0
    assert factors[16] == 0.25
    assert factors[63] == 0.25


def test_ratio_1000_silences_other_clusters():
    """Fig. 17b: only one 16-node cluster generates traffic."""
    spec = cluster_16("cube", ratios=(1, 0, 0, 0))
    factors = spec.node_rate_factors()
    assert all(factors[n] == 1.0 for n in range(16))
    assert all(factors[n] == 0.0 for n in range(16, 64))


def test_with_ratios_builds_new_spec():
    spec = cluster_16("cube").with_ratios((4, 1, 1, 1))
    assert "4:1:1:1" in spec.name
    assert spec.ratios == (4, 1, 1, 1)


def test_spec_validation():
    cubes = (Cube.from_kary("0XX", 4), Cube.from_kary("1XX", 4))
    with pytest.raises(ValueError):
        ClusterSpec("bad", cubes, (1.0,))  # ratio count mismatch
    with pytest.raises(ValueError):
        ClusterSpec("bad", cubes, (1.0, 1.0))  # doesn't cover the nodes
    with pytest.raises(ValueError):
        ClusterSpec("bad", (), ())
    full = tuple(Cube.from_kary(f"{i}XX", 4) for i in range(4))
    with pytest.raises(ValueError):
        ClusterSpec("bad", full, (0, 0, 0, 0))  # nobody generates
    with pytest.raises(ValueError):
        ClusterSpec("bad", full, (1, 1, 1, -1))
    spec = ClusterSpec("ok", full, (1, 1, 1, 1))
    with pytest.raises(ValueError):
        spec.cluster_of(64)


def test_str_smoke():
    assert "cluster-16" in str(cluster_16())
