"""Bursty arrival processes: calibration, draw discipline, validation.

The two contracts the rest of the system leans on:

* **mean calibration** -- ``E[next_iat(m, rng)] == m`` for every kind,
  so a load sweep means the same offered load under any arrival model;
* **single-draw discipline** -- every ``next_iat`` consumes exactly
  one uniform from the stream, the same count as the legacy
  exponential source, so swapping arrival kinds can never desynchronize
  the destination/size draws that share the source's stream.
"""

import math

import pytest

from repro.sim.rng import RandomStream
from repro.traffic.bursty import (
    ArrivalSpec,
    MMPPArrivals,
    ParetoOnOffArrivals,
)

N = 200_000
MEAN = 10.0


def _empirical_mean(proc, seed=123, n=N, mean=MEAN):
    rng = RandomStream(seed, name="bursty-test")
    return sum(proc.next_iat(mean, rng) for _ in range(n)) / n


# ----------------------------------------------------------- calibration


def test_pareto_mean_calibrated():
    proc = ParetoOnOffArrivals(alpha=2.5, on_gap=0.25, p=0.2)
    assert _empirical_mean(proc) == pytest.approx(MEAN, rel=0.05)


def test_pareto_mean_calibrated_heavy_tail():
    """alpha < 2: infinite variance, the self-similar regime -- the
    mean still calibrates (slow convergence, loose tolerance)."""
    proc = ParetoOnOffArrivals(alpha=1.9, on_gap=0.25, p=0.2)
    assert _empirical_mean(proc) == pytest.approx(MEAN, rel=0.15)


def test_mmpp_mean_calibrated():
    proc = MMPPArrivals(on_gap=0.25, p=0.2)
    assert _empirical_mean(proc) == pytest.approx(MEAN, rel=0.05)


def test_mmpp_mean_scales_with_target():
    proc = MMPPArrivals(on_gap=0.5, p=0.1)
    assert _empirical_mean(proc, mean=64.0) == pytest.approx(64.0, rel=0.05)


def test_pareto_is_burstier_than_its_mean():
    """On-off means clumping: the on-phase gap is far below the mean
    and the off-gaps are far above -- both phases must actually occur."""
    proc = ParetoOnOffArrivals(alpha=2.5, on_gap=0.25, p=0.2)
    rng = RandomStream(7, name="bursty-test")
    gaps = [proc.next_iat(MEAN, rng) for _ in range(10_000)]
    assert min(gaps) < 0.25 * MEAN
    assert max(gaps) > 3.0 * MEAN


# ------------------------------------------------------ draw discipline


@pytest.mark.parametrize(
    "proc",
    [
        ParetoOnOffArrivals(alpha=2.5, on_gap=0.25, p=0.2),
        MMPPArrivals(on_gap=0.25, p=0.2),
    ],
    ids=["pareto", "mmpp"],
)
def test_single_draw_per_decision(proc):
    """1000 arrivals consume exactly 1000 uniforms: a shadow stream
    advanced by plain random() calls stays in lockstep."""
    a = RandomStream(99, name="lockstep")
    b = RandomStream(99, name="lockstep")
    for _ in range(1000):
        proc.next_iat(MEAN, a)
        b.random()
    assert a.random() == b.random()


def test_gaps_always_positive_and_finite():
    """The _V_MAX clamp: no branch-boundary draw may round into an
    infinite or zero gap."""
    for proc in (
        ParetoOnOffArrivals(alpha=2.5, on_gap=0.25, p=0.2),
        MMPPArrivals(on_gap=0.25, p=0.2),
    ):
        rng = RandomStream(3, name="bursty-test")
        for _ in range(50_000):
            iat = proc.next_iat(MEAN, rng)
            assert math.isfinite(iat)
            assert iat >= 0.0


# ------------------------------------------------------------ the spec


def test_spec_instantiate():
    assert ArrivalSpec().instantiate() is None
    assert isinstance(
        ArrivalSpec(kind="pareto").instantiate(), ParetoOnOffArrivals
    )
    assert isinstance(ArrivalSpec(kind="mmpp").instantiate(), MMPPArrivals)


def test_spec_labels():
    assert ArrivalSpec().label == "poisson"
    assert "pareto" in ArrivalSpec(kind="pareto").label
    assert "mmpp" in ArrivalSpec(kind="mmpp").label


@pytest.mark.parametrize(
    "kwargs",
    [
        {"kind": "weird"},
        {"p": 0.0},
        {"p": 1.0},
        {"on_gap": 0.0},
        {"kind": "pareto", "alpha": 1.0},
        {"kind": "pareto", "p": 0.1, "on_gap": 1.2},
        {"kind": "mmpp", "on_gap": 1.0},
    ],
)
def test_spec_validation(kwargs):
    with pytest.raises(ValueError):
        ArrivalSpec(**kwargs)


def test_mmpp_state_is_per_source():
    """instantiate() returns fresh state: two sources' chains must not
    share the modulation state."""
    spec = ArrivalSpec(kind="mmpp")
    a, b = spec.instantiate(), spec.instantiate()
    assert a is not b
    rng = RandomStream(1, name="bursty-test")
    for _ in range(50):
        a.next_iat(MEAN, rng)
    assert b.state == 0
