"""Recorded-trace format and replay: round trips, rejection, determinism."""

import struct

import pytest

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.traffic.trace import (
    Trace,
    TraceFormatError,
    TraceRecord,
    TraceWorkload,
    read_trace,
    synthesize_trace,
    write_trace,
)
from repro.wormhole import WormholeEngine, build_network

RECORDS = (
    TraceRecord(0.0, 0, 1, 8),
    TraceRecord(3.5, 1, 2, 16),
    TraceRecord(3.5, 0, 2, 4),
    TraceRecord(12.25, 3, 0, 1024),
)
TRACE = Trace(4, RECORDS)


# ----------------------------------------------------------- round trip


def test_round_trip_identity(tmp_path):
    path = tmp_path / "t.bin"
    write_trace(path, TRACE)
    assert read_trace(path) == TRACE


def test_empty_trace_round_trips(tmp_path):
    path = tmp_path / "t.bin"
    write_trace(path, Trace(2, ()))
    assert read_trace(path) == Trace(2, ())


def test_write_is_deterministic(tmp_path):
    a, b = tmp_path / "a.bin", tmp_path / "b.bin"
    write_trace(a, TRACE)
    write_trace(b, TRACE)
    assert a.read_bytes() == b.read_bytes()


def test_synthesize_is_seeded(tmp_path):
    t1 = synthesize_trace(8, 50, RandomStream(5, name="g"))
    t2 = synthesize_trace(8, 50, RandomStream(5, name="g"))
    assert t1 == t2
    t3 = synthesize_trace(8, 50, RandomStream(6, name="g"))
    assert t1 != t3


# ------------------------------------------------------------ rejection


def _bytes(trace=TRACE) -> bytes:
    import hashlib

    from repro.traffic.trace import _HEADER, _RECORD, TRACE_MAGIC

    header = _HEADER.pack(TRACE_MAGIC, 1, 0, trace.n_nodes, len(trace.records))
    payload = b"".join(
        _RECORD.pack(r.t, r.src, r.dst, r.size) for r in trace.records
    )
    return header + payload + hashlib.sha256(header + payload).digest()


def _expect(tmp_path, blob: bytes, match: str):
    path = tmp_path / "bad.bin"
    path.write_bytes(blob)
    with pytest.raises(TraceFormatError, match=match):
        read_trace(path)


def test_truncated_header_rejected(tmp_path):
    _expect(tmp_path, _bytes()[:10], "truncated header")


def test_bad_magic_rejected(tmp_path):
    blob = _bytes()
    _expect(tmp_path, b"NOTATRAC" + blob[8:], "bad magic")


def test_unknown_version_rejected(tmp_path):
    blob = bytearray(_bytes())
    blob[8:10] = struct.pack("<H", 99)
    _expect(tmp_path, bytes(blob), "unsupported trace version")


def test_flag_bits_rejected(tmp_path):
    blob = bytearray(_bytes())
    blob[10:12] = struct.pack("<H", 1)
    _expect(tmp_path, bytes(blob), "unknown flag bits")


def test_truncated_payload_rejected(tmp_path):
    _expect(tmp_path, _bytes()[:40], "truncated payload")


def test_missing_checksum_rejected(tmp_path):
    _expect(tmp_path, _bytes()[:-20], "missing checksum")


def test_trailing_bytes_rejected(tmp_path):
    _expect(tmp_path, _bytes() + b"x", "trailing bytes")


def test_bit_flip_rejected(tmp_path):
    blob = bytearray(_bytes())
    blob[30] ^= 0x40
    _expect(tmp_path, bytes(blob), "checksum mismatch")


def test_invalid_record_rejected(tmp_path):
    """A well-checksummed trace whose record is semantically invalid
    (src == dst) still fails -- with the record error, not a crash."""
    bad = Trace.__new__(Trace)
    object.__setattr__(bad, "n_nodes", 4)
    rec = TraceRecord.__new__(TraceRecord)
    object.__setattr__(rec, "t", 1.0)
    object.__setattr__(rec, "src", 2)
    object.__setattr__(rec, "dst", 2)
    object.__setattr__(rec, "size", 8)
    object.__setattr__(bad, "records", (rec,))
    _expect(tmp_path, _bytes(bad), "invalid record")


# ----------------------------------------------------------- validation


def test_record_validation():
    with pytest.raises(ValueError, match="finite"):
        TraceRecord(float("nan"), 0, 1, 8)
    with pytest.raises(ValueError, match="finite"):
        TraceRecord(-1.0, 0, 1, 8)
    with pytest.raises(ValueError, match="src == dst"):
        TraceRecord(0.0, 1, 1, 8)
    with pytest.raises(ValueError, match="size"):
        TraceRecord(0.0, 0, 1, 0)


def test_trace_validation():
    with pytest.raises(ValueError, match="at least 2 nodes"):
        Trace(1, ())
    with pytest.raises(ValueError, match="outside"):
        Trace(2, (TraceRecord(0.0, 0, 5, 8),))


def test_synthesize_validation():
    with pytest.raises(ValueError, match="at least 2"):
        synthesize_trace(1, 10, RandomStream(0))
    with pytest.raises(ValueError, match="count"):
        synthesize_trace(4, -1, RandomStream(0))


# --------------------------------------------------------------- replay


def _replay(trace, seed=0):
    env = Environment()
    net = build_network("tmin", k=2, n=2)
    eng = WormholeEngine(env, net, rng=RandomStream(seed, name="engine"))
    wl = TraceWorkload(trace)
    wl.install(env, eng, RandomStream(seed + 1, name="workload"))
    eng.start()
    horizon = (trace.records[-1].t if trace.records else 0.0) + 100_000
    while wl.replayed < len(trace.records) and env.now < horizon:
        env.run(until=min(env.now + 128, horizon))
    while not eng.idle and env.now < horizon:
        env.run(until=min(env.now + 128, horizon))
    return eng, wl


def test_replay_injects_every_record():
    trace = synthesize_trace(4, 40, RandomStream(9, name="g"), mean_iat=8.0)
    eng, wl = _replay(trace)
    assert wl.replayed == 40
    assert eng.stats.delivered_packets == 40


def test_permutation_replays_identically():
    """Any record permutation replays bit-identically: the canonical
    sort makes record order in the file irrelevant."""
    trace = synthesize_trace(4, 30, RandomStream(11, name="g"), mean_iat=8.0)
    shuffled = Trace(
        trace.n_nodes, tuple(reversed(trace.records))
    )
    a, _ = _replay(trace)
    b, _ = _replay(shuffled)
    assert tuple(a.stats.records) == tuple(b.stats.records)
    assert a.env.now == b.env.now


def test_replay_rejects_small_network():
    env = Environment()
    net = build_network("tmin", k=2, n=2)  # 4 nodes
    eng = WormholeEngine(env, net, rng=RandomStream(0))
    wl = TraceWorkload(Trace(16, (TraceRecord(0.0, 0, 15, 8),)))
    with pytest.raises(ValueError, match="16 nodes"):
        wl.install(env, eng, RandomStream(1))


def test_workload_validation():
    with pytest.raises(ValueError, match="block_retry"):
        TraceWorkload(TRACE, block_retry=0.0)
