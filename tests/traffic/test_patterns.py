"""Tests for the four destination patterns of Section 5.1."""

import math
from collections import Counter

import pytest

from repro.sim.rng import RandomStream
from repro.topology.permutations import PerfectShuffle
from repro.traffic.patterns import (
    ButterflyPermutationPattern,
    HotSpotPattern,
    PermutationPattern,
    ShufflePattern,
    UniformPattern,
)


def test_uniform_excludes_self_and_covers_cluster():
    members = [4, 5, 6, 7]
    pat = UniformPattern(members)
    rng = RandomStream(0)
    picks = Counter(pat.pick(5, rng) for _ in range(3000))
    assert 5 not in picks
    assert set(picks) == {4, 6, 7}
    for count in picks.values():
        assert abs(count / 3000 - 1 / 3) < 0.05


def test_uniform_rejects_outsiders_and_tiny_clusters():
    with pytest.raises(ValueError):
        UniformPattern([3])
    pat = UniformPattern([0, 1])
    with pytest.raises(ValueError):
        pat.pick(9, RandomStream(0))


def test_uniform_two_members_deterministic():
    pat = UniformPattern([2, 9])
    rng = RandomStream(1)
    assert all(pat.pick(2, rng) == 9 for _ in range(10))
    assert all(pat.pick(9, rng) == 2 for _ in range(10))


def test_hotspot_probabilities_match_pfister_norton():
    """P(hot) = (1+y)/(N+y), others 1/(N+y), y = N*x (Section 5.1)."""
    members = list(range(16))
    x = 0.10
    pat = HotSpotPattern(members, hot_fraction=x)
    assert pat.hot_node == 0
    n = len(members)
    y = n * x
    assert math.isclose(pat.p_hot, (1 + y) / (n + y))

    rng = RandomStream(7)
    draws = 40_000
    picks = Counter(pat.pick(8, rng) for _ in range(draws))
    assert 8 not in picks
    # Node 8 redistributes its mass; the hot node's *relative* excess
    # over a typical cold node must match (1+y):1.
    cold = [picks[m] for m in members if m not in (0, 8)]
    ratio = picks[0] / (sum(cold) / len(cold))
    assert abs(ratio - (1 + y)) < 0.35


def test_hotspot_with_zero_fraction_is_uniformish():
    pat = HotSpotPattern(list(range(8)), hot_fraction=0.0)
    rng = RandomStream(3)
    picks = Counter(pat.pick(3, rng) for _ in range(8000))
    counts = [picks[m] for m in range(8) if m != 3]
    assert max(counts) / min(counts) < 1.25


def test_hotspot_custom_hot_node_and_validation():
    pat = HotSpotPattern([0, 1, 2, 3], 0.05, hot_node=2)
    assert pat.hot_node == 2
    with pytest.raises(ValueError):
        HotSpotPattern([0, 1], 0.05, hot_node=9)
    with pytest.raises(ValueError):
        HotSpotPattern([0], 0.05)
    with pytest.raises(ValueError):
        HotSpotPattern([0, 1], -0.1)
    with pytest.raises(ValueError):
        pat.pick(9, RandomStream(0))


def test_hotspot_source_is_hot_node():
    """The hot node itself still sends somewhere else."""
    pat = HotSpotPattern(list(range(4)), 0.5)
    rng = RandomStream(5)
    for _ in range(200):
        assert pat.pick(0, rng) != 0


def test_shuffle_pattern_matches_permutation():
    pat = ShufflePattern(2, 3)
    shuffle = PerfectShuffle(2, 3)
    rng = RandomStream(0)
    for s in range(8):
        expected = shuffle(s)
        if expected == s:
            assert pat.pick(s, rng) is None
            assert not pat.generates_traffic(s)
        else:
            assert pat.pick(s, rng) == expected
            assert pat.generates_traffic(s)


def test_shuffle_fixed_points():
    """0 and N-1 are shuffle fixed points: they stay silent."""
    pat = ShufflePattern(4, 3)
    assert not pat.generates_traffic(0)
    assert not pat.generates_traffic(63)
    assert sum(pat.generates_traffic(s) for s in range(64)) == 60


def test_butterfly_pattern():
    pat = ButterflyPermutationPattern(2, 3, 2)
    rng = RandomStream(0)
    assert pat.pick(0b100, rng) == 0b001
    assert pat.pick(0b010, rng) is None  # fixed point of beta_2


def test_permutation_pattern_generic():
    from repro.topology.permutations import Permutation

    pat = PermutationPattern(Permutation([1, 0, 2]))
    rng = RandomStream(0)
    assert pat.pick(0, rng) == 1
    assert pat.pick(2, rng) is None
