"""Tests for message-size models and workload installation."""

import pytest

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.traffic.clusters import cluster_16, global_cluster
from repro.traffic.patterns import ShufflePattern, UniformPattern
from repro.traffic.workload import MessageSizeModel, Workload
from repro.wormhole import WormholeEngine, build_network


def test_size_model_means():
    assert MessageSizeModel.paper().mean == (8 + 1024) / 2
    assert MessageSizeModel("fixed", low=32).mean == 32.0
    bim = MessageSizeModel("bimodal", 8, 1024, short_fraction=1.0, split=32)
    assert bim.mean == (8 + 32) / 2


def test_size_model_draw_bounds():
    rng = RandomStream(0)
    model = MessageSizeModel.paper()
    for _ in range(200):
        assert 8 <= model.draw(rng) <= 1024
    fixed = MessageSizeModel("fixed", low=100)
    assert fixed.draw(rng) == 100


def test_size_model_validation():
    with pytest.raises(ValueError):
        MessageSizeModel("weird")
    with pytest.raises(ValueError):
        MessageSizeModel("uniform", low=0)
    with pytest.raises(ValueError):
        MessageSizeModel("uniform", low=10, high=5)


def _setup(kind="tmin", k=4, n=3, seed=0):
    env = Environment()
    net = build_network(kind, k=k, n=n)
    return env, WormholeEngine(env, net, rng=RandomStream(seed))


def test_workload_installs_sources_per_cluster():
    env, eng = _setup()
    wl = Workload(
        global_cluster(),
        UniformPattern,
        offered_load=0.2,
        sizes=MessageSizeModel.scaled(),
    )
    assert wl.install(env, eng, RandomStream(1)) == 64


def test_workload_permutation_skips_fixed_points():
    env, eng = _setup()
    wl = Workload(
        global_cluster(),
        lambda members: ShufflePattern(4, 3),
        offered_load=0.2,
        sizes=MessageSizeModel.scaled(),
    )
    assert wl.install(env, eng, RandomStream(1)) == 60  # 4 fixed points


def test_workload_ratio_zero_installs_nothing_for_cluster():
    env, eng = _setup()
    wl = Workload(
        cluster_16("cube", ratios=(1, 0, 0, 0)),
        UniformPattern,
        offered_load=0.2,
        sizes=MessageSizeModel.scaled(),
    )
    assert wl.install(env, eng, RandomStream(1)) == 16


def test_workload_size_mismatch_rejected():
    env, eng = _setup(k=2, n=3)  # 8-node network
    wl = Workload(global_cluster(), UniformPattern, 0.2)
    with pytest.raises(ValueError):
        wl.install(env, eng, RandomStream(1))


def test_workload_load_validation():
    with pytest.raises(ValueError):
        Workload(global_cluster(), UniformPattern, 0.0)


def test_offered_rate_approximately_matches_load():
    """Measured offered flits per node-cycle tracks the requested load."""
    env, eng = _setup(seed=3)
    load = 0.3
    wl = Workload(
        global_cluster(),
        UniformPattern,
        offered_load=load,
        sizes=MessageSizeModel("fixed", low=16),
    )
    wl.install(env, eng, RandomStream(5))
    eng.start()
    env.run(until=4000)
    measured = eng.stats.offered_flits / (64 * 4000)
    assert abs(measured - load) / load < 0.10


def test_cluster_traffic_stays_inside_clusters():
    env, eng = _setup(seed=4)
    wl = Workload(
        cluster_16("cube"),
        UniformPattern,
        offered_load=0.2,
        sizes=MessageSizeModel.scaled(),
    )
    wl.install(env, eng, RandomStream(6))
    eng.start()
    env.run(until=2000)
    assert eng.stats.delivered_packets > 50
    for rec in eng.stats.records:
        assert rec.src // 16 == rec.dst // 16


def test_ratio_traffic_volumes_follow_ratios():
    """With 4:1:1:1 the busy cluster offers about 4x the others."""
    env, eng = _setup(seed=8)
    wl = Workload(
        cluster_16("cube", ratios=(4, 1, 1, 1)),
        UniformPattern,
        offered_load=0.25,
        sizes=MessageSizeModel("fixed", low=16),
    )
    wl.install(env, eng, RandomStream(9))
    eng.start()
    env.run(until=6000)
    by_cluster = [0, 0, 0, 0]
    for rec in eng.stats.records:
        by_cluster[rec.src // 16] += rec.length
    assert by_cluster[0] > 2.5 * by_cluster[1]
    assert by_cluster[0] < 6.0 * by_cluster[1]
