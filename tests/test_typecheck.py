"""mypy-strict perimeter (CI's ``typecheck`` job, local when available).

mypy is a CI-only dependency, so the actual run is skipped on images
without it; the configuration itself is pinned unconditionally so the
strict perimeter cannot silently shrink.
"""

import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
STRICT_PACKAGES = {"repro.serve", "repro.verify", "repro.sim", "repro.metrics"}


def mypy_config() -> dict:
    with open(REPO / "pyproject.toml", "rb") as fh:
        return tomllib.load(fh)["tool"]["mypy"]


def test_strict_perimeter_is_declared():
    cfg = mypy_config()
    assert cfg["strict"] is True
    assert set(cfg["packages"]) == STRICT_PACKAGES
    assert cfg["mypy_path"] == "src"


def test_mypy_strict_passes():
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
