"""Tests for the figure builders, report rendering and shape checks.

Full-figure regeneration is exercised at SMOKE fidelity or below; the
statistically meaningful runs live in benchmarks/ (SCALED preset).  Here
we verify structure, determinism hooks and the *robust* physical
signatures (e.g. the exact 25% permutation cap) that hold even in tiny
runs.
"""

from dataclasses import replace

import pytest

from repro.experiments.config import SMOKE
from repro.experiments.figures import (
    FIGURE_BUILDERS,
    FigureResult,
    fig16,
    fig18,
    fig20,
)
from repro.experiments.report import render_figure, render_sweep, shape_checks
from repro.experiments.runner import sweep
from repro.experiments.figures import (
    BMIN,
    CUBE_DMIN,
    CUBE_TMIN,
    CUBE_VMIN,
    shuffle_workload,
    uniform_workload,
)
from repro.traffic.clusters import global_cluster

TINY = replace(
    SMOKE, warmup_packets=20, measure_packets=150, loads=(0.25, 0.6)
)


def test_figure_builders_registry():
    assert sorted(FIGURE_BUILDERS) == ["fig16", "fig17", "fig18", "fig19", "fig20"]


def test_fig16_structure_and_rendering():
    fig = fig16(TINY)
    assert isinstance(fig, FigureResult)
    assert len(fig.series) == 5
    assert "cube TMIN / global" in fig.labels
    text = render_figure(fig)
    assert "fig16" in text and "thr %" in text
    assert fig.by_label("cube TMIN / global").points
    with pytest.raises(KeyError):
        fig.by_label("nope")


def test_fig16_global_equivalence_holds_even_tiny():
    """Cube and butterfly TMIN coincide under global uniform traffic."""
    fig = fig16(TINY)
    cube = fig.by_label("cube TMIN / global").max_sustained_throughput()
    butt = fig.by_label("butterfly TMIN / global").max_sustained_throughput()
    assert abs(cube - butt) < max(4.0, 0.15 * cube)


def test_fig18_ordering_dmin_over_tmin():
    """The headline: DMIN beats TMIN, robust even in tiny runs."""
    fig = fig18(TINY)
    dmin = fig.by_label("DMIN / global").max_sustained_throughput()
    tmin = fig.by_label("TMIN / global").max_sustained_throughput()
    assert dmin > tmin
    checks = shape_checks(fig)
    by_claim = {c.claim: c for c in checks}
    assert by_claim["global: DMIN best"].passed
    assert by_claim["global: TMIN worst"].passed


def test_fig20_static_quarter_cap():
    """Under shuffle traffic TMIN and VMIN cap at exactly 25%: four
    source/destination pairs share one channel (Section 5.3.3)."""
    wb = shuffle_workload(TINY)
    for net in (CUBE_TMIN, CUBE_VMIN):
        s = sweep(net, wb, TINY, loads=(0.6,), label=net.label)
        thr = s.points[0].measurement.throughput_percent
        assert thr <= 25.5
        assert thr >= 20.0  # and the cap is actually approached


def test_fig20_dmin_and_bmin_clear_the_cap():
    wb = shuffle_workload(TINY)
    for net in (CUBE_DMIN, BMIN):
        s = sweep(net, wb, TINY, loads=(0.6,), label=net.label)
        assert s.points[0].measurement.throughput_percent > 30.0


def test_shape_checks_cover_every_figure():
    fig = fig16(TINY)
    assert shape_checks(fig)
    bogus = FigureResult("fig99", "t", "e", fig.series)
    with pytest.raises(ValueError):
        shape_checks(bogus)


def test_shape_check_str():
    fig = fig16(TINY)
    for chk in shape_checks(fig):
        text = str(chk)
        assert text.startswith(("[PASS]", "[FAIL]"))


def test_render_sweep_marks_unsaturated_points():
    wb = uniform_workload(global_cluster(), TINY)
    s = sweep(CUBE_TMIN, wb, TINY, loads=(0.25,))
    text = render_sweep(s)
    assert "0.25" in text and ("yes" in text or "NO" in text)


def test_cli_smoke(capsys):
    from repro.experiments.__main__ import main

    rc = main(["--figure", "fig16", "--mode", "smoke"])
    out = capsys.readouterr().out
    assert "fig16" in out and "shape checks" in out
    assert rc in (0, 1)


def test_cli_requires_target(capsys):
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main([])
