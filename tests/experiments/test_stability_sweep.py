"""End-to-end tests for the post-saturation stability sweep, plus the
export round-trip of the new overload counters."""

import math
from dataclasses import replace

import pytest

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.export import (
    CSV_FIELDS,
    read_figure_csv,
    write_figure_csv,
)
from repro.experiments.stability import (
    LOAD_FACTORS,
    render_stability,
    stability_checks,
    stability_point,
    stability_sweep,
)
from repro.stability import BoundedQueue

QUICK = replace(
    SMOKE, warmup_packets=30, measure_packets=150, max_cycles=8_000
)
NET = NetworkConfig("dmin", k=2, n=3)


@pytest.fixture(scope="module")
def sweep_result():
    return stability_sweep(NET, QUICK, load_factors=(0.8, 1.3), batches=16)


# ------------------------------------------------------------------- sweep


def test_sweep_structure(sweep_result):
    r = sweep_result
    assert r.label.startswith("DMIN")
    assert [p.load_factor for p in r.points] == [0.8, 1.3]
    for p in r.points:
        assert p.offered_load == pytest.approx(p.load_factor * r.knee.load)
        assert p.stability in ("stable", "metastable", "collapsed")
        assert 0.0 < p.mean_rate <= 1.0
        assert p.steady.samples == 16
        assert p.steady.retained == 16 - p.steady.truncation


def test_sweep_stays_bounded_past_the_knee(sweep_result):
    """The whole point of the toolkit: overload never means unbounded
    queues or a dead fabric."""
    over = sweep_result.points[-1]
    assert over.measurement.max_queue_len <= 128  # BoundedQueue default
    assert over.measurement.delivered_packets > 0
    # Past the knee the loop actually engaged: admission or the
    # governor pushed back on at least one source.
    assert over.sheds + over.throttles > 0 or over.mean_rate < 1.0


def test_sweep_classifies_below_knee_as_stable(sweep_result):
    """0.8x the knee is by construction sustainable: throughput holds
    near offered, so it must not be called collapsed."""
    assert sweep_result.stability_at(0.8) != "collapsed"
    with pytest.raises(KeyError):
        sweep_result.stability_at(9.9)


def test_point_validation():
    with pytest.raises(ValueError):
        stability_point(NET, QUICK, offered_load=0.0, knee_throughput=None)
    with pytest.raises(ValueError):
        stability_point(
            NET, QUICK, offered_load=0.5, knee_throughput=None, batches=4
        )


def test_point_without_governor_or_watchdog():
    p = stability_point(
        NET,
        QUICK,
        offered_load=0.4,
        knee_throughput=None,
        governed=False,
        watchdog=False,
        batches=8,
        admission=BoundedQueue(capacity=32),
    )
    assert p.mean_rate == 1.0
    assert p.measurement.max_queue_len <= 32
    assert math.isnan(p.load_factor)


# ------------------------------------------------------------------ render


def test_render_and_checks(sweep_result):
    text = render_stability([sweep_result])
    assert "stability" in text
    assert sweep_result.label in text
    assert "xknee" in text and "maxq" in text
    checks = stability_checks([sweep_result])
    assert len(checks) == 3
    assert all(c.passed for c in checks), [
        (c.claim, c.detail) for c in checks if not c.passed
    ]


def test_load_factor_ladder_is_sane():
    assert LOAD_FACTORS[0] < 1.0 < LOAD_FACTORS[-1]
    assert list(LOAD_FACTORS) == sorted(LOAD_FACTORS)


# ----------------------------------------------- export of the new counters


def test_new_counters_in_csv_fields():
    for name in ("shed_packets", "throttled_packets",
                 "stall_aborted_packets", "max_queue_len"):
        assert name in CSV_FIELDS


def test_overload_counters_roundtrip_through_csv(tmp_path):
    """A point run under shedding admission exports its counters
    through the registry and reads them back typed."""
    from repro.experiments.figures import FigureResult
    from repro.experiments.runner import LoadPoint, SweepResult, build_point
    from repro.experiments.workload_spec import WorkloadSpec
    from repro.metrics.collector import MeasurementWindow
    from repro.stability import SHED_NEWEST

    cfg = replace(SMOKE, warmup_packets=20, measure_packets=100,
                  loads=(0.9,))
    spec = WorkloadSpec(k=2, n=3)

    # One point run manually with a tiny admission bound installed so
    # the overload counters are genuinely non-zero.
    env, eng, root = build_point(NET, 0.9, cfg)
    BoundedQueue(capacity=4, mode=SHED_NEWEST).install(eng)
    workload = spec.builder(cfg)(0.9)
    workload.install(env, eng, root.fork("workload/x/0.9"))
    eng.start()
    env.run(until=2_000)
    window = MeasurementWindow(eng)
    window.begin()
    env.run(until=env.now + 4_000)
    m = window.finish()
    assert m.shed_packets > 0  # the tiny bound genuinely shed

    sr = SweepResult("OVR", (LoadPoint(0.9, m),))
    fig = FigureResult("figS", "overload export", "counters", (sr,))
    path = write_figure_csv(fig, tmp_path / "fig.csv")
    back = read_figure_csv(path)[0]
    assert back["shed_packets"] == m.shed_packets
    assert back["throttled_packets"] == m.throttled_packets
    assert back["stall_aborted_packets"] == m.stall_aborted_packets
    assert back["max_queue_len"] == m.max_queue_len
    assert isinstance(back["shed_packets"], int)
