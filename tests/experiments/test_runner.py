"""Tests for the experiment runner and sweep mechanics."""

from dataclasses import replace

import pytest

from repro.experiments.config import PRESETS, SMOKE, NetworkConfig
from repro.experiments.figures import uniform_workload
from repro.experiments.runner import LoadPoint, SweepResult, run_point, sweep
from repro.traffic.clusters import global_cluster

QUICK = replace(SMOKE, warmup_packets=20, measure_packets=80, loads=(0.2, 0.5))


def test_network_config_labels():
    assert NetworkConfig("tmin").label == "TMIN(cube)"
    assert NetworkConfig("dmin").label == "DMIN(d=2, cube)"
    assert NetworkConfig("vmin").label == "VMIN(v=2, cube)"
    assert NetworkConfig("bmin").label == "BMIN"
    assert NetworkConfig("tmin").N == 64


def test_network_config_build_kinds():
    from repro.wormhole.network import NetworkKind

    assert NetworkConfig("bmin").build().kind is NetworkKind.BMIN
    assert NetworkConfig("dmin", topology="butterfly").build().spec.name == "butterfly"


def test_run_config_presets():
    assert set(PRESETS) == {"smoke", "scaled", "full"}
    assert PRESETS["full"].sizes.high == 1024
    assert PRESETS["scaled"].sizes.high == 64


def test_run_config_with_loads_and_seed():
    cfg = SMOKE.with_loads((0.3,)).with_seed(7)
    assert cfg.loads == (0.3,) and cfg.seed == 7
    assert SMOKE.loads != (0.3,)  # original untouched


def test_run_point_produces_measurement():
    net = NetworkConfig("tmin", k=2, n=3)
    wb = uniform_workload(global_cluster(nbits=3), QUICK)
    m = run_point(net, wb, 0.3, QUICK)
    assert m.delivered_packets >= QUICK.measure_packets
    assert m.throughput > 0
    assert m.avg_latency > 0


def test_run_point_is_deterministic():
    net = NetworkConfig("dmin", k=2, n=3)
    wb = uniform_workload(global_cluster(nbits=3), QUICK)
    m1 = run_point(net, wb, 0.3, QUICK)
    m2 = run_point(net, wb, 0.3, QUICK)
    assert m1 == m2


def test_run_point_seed_changes_outcome():
    net = NetworkConfig("dmin", k=2, n=3)
    wb = uniform_workload(global_cluster(nbits=3), QUICK)
    m1 = run_point(net, wb, 0.3, QUICK)
    m2 = run_point(net, wb, 0.3, QUICK.with_seed(1))
    assert m1.avg_latency != m2.avg_latency


def test_sweep_structure():
    net = NetworkConfig("tmin", k=2, n=3)
    wb = uniform_workload(global_cluster(nbits=3), QUICK)
    result = sweep(net, wb, QUICK, label="series-x")
    assert isinstance(result, SweepResult)
    assert result.label == "series-x"
    assert [p.offered_load for p in result.points] == list(QUICK.loads)
    assert all(isinstance(p, LoadPoint) for p in result.points)


def test_sweep_latency_at():
    net = NetworkConfig("tmin", k=2, n=3)
    wb = uniform_workload(global_cluster(nbits=3), QUICK)
    result = sweep(net, wb, QUICK)
    assert result.latency_at(0.2) == result.points[0].measurement.avg_latency
    with pytest.raises(KeyError):
        result.latency_at(0.99)


def test_sweep_max_sustained_throughput_monotone_loads():
    """Throughput at the higher sustainable load dominates."""
    net = NetworkConfig("dmin", k=2, n=3)
    wb = uniform_workload(global_cluster(nbits=3), QUICK)
    result = sweep(net, wb, QUICK)
    sustained = [
        p.measurement.throughput_percent
        for p in result.points
        if p.measurement.sustainable
    ]
    assert result.max_sustained_throughput() == max(sustained)


def test_empty_workload_rejected():
    from repro.traffic.patterns import PermutationPattern
    from repro.topology.permutations import Identity
    from repro.traffic.workload import Workload

    net = NetworkConfig("tmin", k=2, n=3)

    def wb(load):
        return Workload(
            global_cluster(nbits=3),
            lambda members: PermutationPattern(Identity(8)),
            load,
            QUICK.sizes,
        )

    with pytest.raises(RuntimeError):
        run_point(net, wb, 0.3, QUICK)
