"""Tests for ASCII plotting, CSV/JSON export and saturation search."""

import json
import math
from dataclasses import replace

import pytest

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.export import (
    CSV_FIELDS,
    read_figure_csv,
    sweep_rows,
    write_figure_csv,
    write_figure_json,
)
from repro.experiments.figures import FigureResult, uniform_workload
from repro.experiments.plotting import ascii_curve_plot, plot_figure
from repro.experiments.runner import sweep
from repro.experiments.saturation import find_saturation
from repro.traffic.clusters import global_cluster

QUICK = replace(SMOKE, warmup_packets=20, measure_packets=100, loads=(0.2, 0.5))


@pytest.fixture(scope="module")
def small_fig():
    nets = [NetworkConfig("tmin", k=2, n=3), NetworkConfig("dmin", k=2, n=3)]
    wb = uniform_workload(global_cluster(nbits=3), QUICK)
    series = tuple(sweep(n, wb, QUICK, label=n.kind.upper()) for n in nets)
    return FigureResult("figX", "test figure", "dmin wins", series)


# ------------------------------------------------------------------ plotting


def test_ascii_plot_structure(small_fig):
    text = ascii_curve_plot(small_fig.series)
    lines = text.splitlines()
    assert len(lines) == 20 + 3  # grid + axis + x labels + legend
    assert "legend: o=TMIN  x=DMIN" in text
    # Every point lands somewhere: both glyphs appear.
    assert "o" in text and "x" in text


def test_ascii_plot_max_latency_clip(small_fig):
    clipped = ascii_curve_plot(small_fig.series, max_latency=10.0)
    # y axis labels respect the cap.
    assert clipped.splitlines()[0].strip().startswith("10")


def test_ascii_plot_validation(small_fig):
    with pytest.raises(ValueError):
        ascii_curve_plot([])
    with pytest.raises(ValueError):
        ascii_curve_plot(list(small_fig.series) * 5)  # > 8 series


def test_plot_figure_panels(small_fig):
    text = plot_figure(small_fig, per_plot=1)
    assert text.count("legend:") == 2
    assert text.startswith("figX:")


# -------------------------------------------------------------------- export


def test_sweep_rows_fields(small_fig):
    rows = sweep_rows(small_fig.series[0])
    assert len(rows) == 2
    assert set(rows[0]) == set(CSV_FIELDS)
    assert rows[0]["series"] == "TMIN"
    assert rows[0]["offered_load"] == 0.2


def test_csv_roundtrip(small_fig, tmp_path):
    path = write_figure_csv(small_fig, tmp_path / "fig.csv")
    rows = read_figure_csv(path)
    assert len(rows) == 4  # 2 series x 2 loads
    original = sweep_rows(small_fig.series[0])[0]
    back = rows[0]
    for key in ("throughput_percent", "avg_latency", "offered_load"):
        if math.isnan(original[key]):
            continue
        assert back[key] == pytest.approx(original[key])
    assert isinstance(back["sustainable"], bool)
    assert isinstance(back["delivered_packets"], int)


def test_json_export(small_fig, tmp_path):
    path = write_figure_json(small_fig, tmp_path / "fig.json")
    payload = json.loads(path.read_text())
    assert payload["figure_id"] == "figX"
    assert [s["label"] for s in payload["series"]] == ["TMIN", "DMIN"]
    assert len(payload["series"][0]["points"]) == 2
    # NaN CIs become null (strict JSON).
    for point in payload["series"][0]["points"]:
        assert point["latency_ci_half"] is None or isinstance(
            point["latency_ci_half"], float
        )


# ---------------------------------------------------------------- saturation


def test_find_saturation_tmin():
    cfg = replace(SMOKE, warmup_packets=30, measure_packets=200)
    net = NetworkConfig("tmin", k=2, n=3)
    wb = uniform_workload(global_cluster(nbits=3), cfg)
    sat = find_saturation(net, wb, cfg, tolerance=0.1)
    # An 8-node TMIN sustains a substantial uniform load.
    assert 0.2 <= sat.load <= 1.0
    assert sat.throughput_percent > 10
    assert sat.iterations >= 2
    assert "saturates" in str(sat)


def test_find_saturation_full_sustainable_short_circuit():
    """A workload the network fully sustains returns load = hi."""
    cfg = replace(SMOKE, warmup_packets=20, measure_packets=120)
    net = NetworkConfig("dmin", k=2, n=3)
    wb = uniform_workload(global_cluster(nbits=3), cfg)
    sat = find_saturation(net, wb, cfg, lo=0.05, hi=0.15, tolerance=0.05)
    assert sat.load == 0.15
    assert sat.iterations == 2


def test_find_saturation_validation():
    cfg = QUICK
    net = NetworkConfig("tmin", k=2, n=3)
    wb = uniform_workload(global_cluster(nbits=3), cfg)
    with pytest.raises(ValueError):
        find_saturation(net, wb, cfg, lo=0.5, hi=0.4)
