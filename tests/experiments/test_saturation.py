"""Bisection unit tests for find_saturation with a stubbed probe --
no simulation runs, so the search logic (bracketing, edge statuses,
tolerance, iteration cap) is tested exactly."""

from dataclasses import dataclass

import pytest

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.saturation import (
    CONVERGED,
    HI_SUSTAINABLE,
    LO_SATURATED,
    SaturationPoint,
    find_saturation,
)
from repro.metrics.collector import SUSTAINABILITY_QUEUE_LIMIT


@dataclass(frozen=True)
class FakeMeasurement:
    sustainable: bool
    throughput_percent: float = 50.0
    avg_latency: float = 200.0


class KneeProbe:
    """Sustainable strictly below ``knee``; records every probed load."""

    def __init__(self, knee: float) -> None:
        self.knee = knee
        self.probed: list[float] = []

    def __call__(self, load: float) -> FakeMeasurement:
        self.probed.append(load)
        return FakeMeasurement(
            sustainable=load <= self.knee,
            throughput_percent=100.0 * min(load, self.knee),
        )


NET = NetworkConfig("tmin")


def wb(load):  # never called: the stub probe short-circuits run_point
    raise AssertionError("stubbed probe must bypass the workload builder")


def test_bisection_converges_to_the_knee():
    probe = KneeProbe(knee=0.42)
    sat = find_saturation(
        NET, wb, SMOKE, lo=0.05, hi=1.0, tolerance=0.01, probe=probe
    )
    assert sat.status == CONVERGED
    assert sat.bracketed
    # The returned load is sustainable and within tolerance of the knee.
    assert sat.load <= 0.42
    assert 0.42 - sat.load <= 0.01
    assert sat.iterations == len(probe.probed)


def test_bisection_only_probes_inside_the_bracket():
    probe = KneeProbe(knee=0.3)
    find_saturation(NET, wb, SMOKE, lo=0.1, hi=0.9, probe=probe)
    assert all(0.1 <= load <= 0.9 for load in probe.probed)


def test_lo_saturated_returns_explicit_status():
    probe = KneeProbe(knee=0.01)  # even lo=0.05 is past the knee
    sat = find_saturation(NET, wb, SMOKE, lo=0.05, hi=1.0, probe=probe)
    assert sat.status == LO_SATURATED
    assert not sat.bracketed
    assert sat.load == 0.05
    assert sat.iterations == 1  # the search stops immediately
    assert "below" in str(sat)


def test_hi_sustainable_short_circuits():
    probe = KneeProbe(knee=2.0)  # everything sustains
    sat = find_saturation(NET, wb, SMOKE, lo=0.05, hi=1.0, probe=probe)
    assert sat.status == HI_SUSTAINABLE
    assert sat.load == 1.0
    assert sat.iterations == 2  # lo probe + hi probe, nothing else
    assert "sustains up to" in str(sat)


def test_iteration_cap_bounds_the_search():
    probe = KneeProbe(knee=0.3333333)
    sat = find_saturation(
        NET, wb, SMOKE, tolerance=1e-9, max_iterations=6, probe=probe
    )
    assert sat.iterations == 6
    assert len(probe.probed) == 6
    assert sat.status == CONVERGED


def test_queue_limit_recorded_on_the_point():
    probe = KneeProbe(knee=0.4)
    sat = find_saturation(NET, wb, SMOKE, probe=probe, queue_limit=64)
    assert sat.queue_limit == 64
    default = find_saturation(NET, wb, SMOKE, probe=KneeProbe(0.4))
    assert default.queue_limit == SUSTAINABILITY_QUEUE_LIMIT


def test_validation():
    with pytest.raises(ValueError):
        find_saturation(NET, wb, SMOKE, lo=0.5, hi=0.4)
    with pytest.raises(ValueError):
        find_saturation(NET, wb, SMOKE, tolerance=0.0)
    with pytest.raises(ValueError):
        find_saturation(NET, wb, SMOKE, max_iterations=1)
    with pytest.raises(ValueError):
        SaturationPoint(0.5, 50.0, 100.0, 3, status="divergent")


def test_monotone_probe_sequence_is_a_true_bisection():
    """Each unsustainable probe halves the bracket from above, each
    sustainable one from below: loads alternate inside a shrinking
    interval."""
    probe = KneeProbe(knee=0.55)
    sat = find_saturation(
        NET, wb, SMOKE, lo=0.1, hi=1.0, tolerance=0.02, probe=probe
    )
    assert sat.status == CONVERGED
    lo_bound, hi_bound = 0.1, 1.0
    for load in probe.probed[2:]:  # after the two bracket probes
        assert lo_bound < load < hi_bound
        if load <= 0.55:
            lo_bound = load
        else:
            hi_bound = load
    assert hi_bound - lo_bound <= 0.02 or sat.iterations >= 12
