"""Tests for the declarative workload specs and the parallel runner."""

import os
import time
from dataclasses import replace

import pytest

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.parallel import (
    SweepCheckpoint,
    _point_task,
    parallel_matrix,
    parallel_sweep,
)
from repro.experiments.runner import sweep
from repro.experiments.workload_spec import WorkloadSpec

QUICK = replace(SMOKE, warmup_packets=20, measure_packets=100, loads=(0.2, 0.5))


# Module-level so they pickle into worker processes.


def crashing_runner(task):
    """Dies on the 0.5 point, measures the rest."""
    _network, _spec, load, _cfg = task
    if load == 0.5:
        raise RuntimeError("simulated worker crash")
    return _point_task(task)


def always_crashing_runner(task):
    raise RuntimeError("this runner must never be invoked")


def flaky_runner(task):
    """Crashes until the sentinel file exists (created on first call):
    the pool attempt dies, the parent's sequential retry succeeds."""
    sentinel = os.environ["REPRO_FLAKY_SENTINEL"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("crashed once")
        raise OSError("transient failure")
    return _point_task(task)


def sleeping_runner(task):
    time.sleep(30.0)
    return _point_task(task)  # pragma: no cover - killed by timeout


def counting_runner(task):
    """Tallies one line per invocation under REPRO_COUNT_DIR, per key."""
    from pathlib import Path

    from repro.experiments.parallel import _task_key

    outdir = Path(os.environ["REPRO_COUNT_DIR"])
    name = _task_key(task).replace("/", "_").replace(" ", "")
    with open(outdir / name, "a") as fh:
        fh.write("ran\n")
    return _point_task(task)


# ------------------------------------------------------------- WorkloadSpec


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(pattern="tsunami")
    with pytest.raises(ValueError):
        WorkloadSpec(clustering="ring")
    with pytest.raises(ValueError):
        WorkloadSpec(pattern="shuffle", clustering="cluster16")


def test_spec_labels():
    assert WorkloadSpec().label == "uniform"
    assert WorkloadSpec(pattern="hotspot", hot_fraction=0.1).label == "hotspot 10%"
    assert "cluster16" in WorkloadSpec(clustering="cluster16").label
    assert "4:1:1:1" in WorkloadSpec(
        clustering="cluster16", ratios=(4, 1, 1, 1)
    ).label
    assert "i=2" in WorkloadSpec(pattern="butterfly").label


def test_spec_clusters():
    assert WorkloadSpec().clusters().N == 64
    assert WorkloadSpec(clustering="cluster32").clusters().name == "cluster-32"
    shared = WorkloadSpec(clustering="cluster16-shared").clusters()
    assert "XX0" in shared.name


def test_spec_builder_matches_figure_builder():
    """The spec rebuilds the exact closure the figure builders use:
    identical measurements."""
    from repro.experiments.figures import uniform_workload
    from repro.experiments.runner import run_point
    from repro.traffic.clusters import global_cluster

    net = NetworkConfig("tmin")
    a = run_point(net, uniform_workload(global_cluster(), QUICK), 0.3, QUICK)
    b = run_point(net, WorkloadSpec().builder(QUICK), 0.3, QUICK)
    assert a == b


def test_spec_is_picklable():
    import pickle

    spec = WorkloadSpec(pattern="hotspot", hot_fraction=0.1)
    assert pickle.loads(pickle.dumps(spec)) == spec


# ----------------------------------------------------------- parallel runner


def test_parallel_sweep_matches_sequential():
    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    seq = sweep(net, spec.builder(QUICK), QUICK, label="x")
    par = parallel_sweep(net, spec, QUICK, label="x", max_workers=2)
    assert par == seq


def test_parallel_matrix_structure():
    nets = [NetworkConfig("tmin", k=2, n=3), NetworkConfig("bmin", k=2, n=3)]
    spec = WorkloadSpec(k=2, n=3)
    results = parallel_matrix(nets, spec, QUICK, max_workers=2)
    assert len(results) == 2
    assert [len(r.points) for r in results] == [2, 2]
    assert results[0].label.startswith("TMIN")
    assert results[1].label.startswith("BMIN")
    # Matrix points equal per-network parallel sweeps.
    solo = parallel_sweep(nets[1], spec, QUICK, max_workers=2)
    assert results[1].points == solo.points


# --------------------------------------------------------- crash tolerance


def test_worker_crash_keeps_other_points():
    """A crashed worker loses its point, never the others: the result
    is partial, with the error string attached to the casualty."""
    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    result = parallel_sweep(
        net, spec, QUICK, max_workers=2, retries=0,
        point_runner=crashing_runner,
    )
    assert not result.complete
    assert result.errors() == [(0.5, "RuntimeError: simulated worker crash")]
    by_load = {p.offered_load: p for p in result.points}
    assert by_load[0.2].ok                      # the good point survived
    assert by_load[0.5].measurement is None
    # The partial sweep still answers what it can.
    assert result.max_sustained_throughput() > 0
    with pytest.raises(ValueError):
        result.latency_at(0.5)


def test_sequential_retry_recovers_transient_crash(tmp_path, monkeypatch):
    """A point that crashes once in the pool succeeds when the parent
    re-runs it sequentially."""
    sentinel = tmp_path / "flaky.flag"
    monkeypatch.setenv("REPRO_FLAKY_SENTINEL", str(sentinel))
    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    result = parallel_sweep(
        net, spec, QUICK, loads=(0.2,), max_workers=1,
        retries=2, backoff=0.0, point_runner=flaky_runner,
    )
    assert result.complete
    assert sentinel.exists()  # proof the first attempt crashed
    # Bit-identical to the sequential runner despite the detour.
    seq = sweep(net, spec.builder(QUICK), QUICK, loads=(0.2,))
    assert result.points == seq.points


def test_cooperative_deadline_fires_inside_the_simulation_loop():
    """set_point_deadline + a practically endless point: the simulation
    loop's cooperative check converts the overrun into PointTimeout."""
    from repro.experiments.runner import (
        PointTimeout,
        run_point,
        set_point_deadline,
    )

    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    endless = replace(
        QUICK, warmup_packets=10**9, measure_packets=10**9,
        max_cycles=10**9,
    )
    set_point_deadline(0.3)
    try:
        with pytest.raises(PointTimeout):
            run_point(net, spec.builder(endless), 0.5, endless)
    finally:
        set_point_deadline(None)
    # One timeout per arming: a fresh (undeadlined) point runs fine.
    assert run_point(net, spec.builder(QUICK), 0.2, QUICK).cycles > 0


def test_deadline_validation_and_disarm():
    from repro.experiments.runner import set_point_deadline

    with pytest.raises(ValueError):
        set_point_deadline(0.0)
    set_point_deadline(None)  # disarm is always legal


def test_cutoff_works_in_a_worker_thread():
    """SIGALRM cannot be armed outside the main thread; the cooperative
    deadline can.  _alarmed_runner in a thread pool must still cut the
    point off (and must not die on signal.signal)."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.experiments.parallel import _alarmed_runner

    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    endless = replace(
        QUICK, warmup_packets=10**9, measure_packets=10**9,
        max_cycles=10**9,
    )
    task = (net, spec, 0.5, endless)
    with ThreadPoolExecutor(max_workers=1) as pool:
        fut = pool.submit(_alarmed_runner, (_point_task, 0.3, task))
        with pytest.raises(TimeoutError):
            fut.result(timeout=60)


def test_per_point_timeout_converts_hang_to_error():
    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    result = parallel_sweep(
        net, spec, QUICK, loads=(0.2,), max_workers=1,
        timeout=0.5, retries=0, point_runner=sleeping_runner,
    )
    assert not result.complete
    (load, error) = result.errors()[0]
    assert load == 0.2
    assert "TimeoutError" in error


# ------------------------------------------------------- checkpoint / resume


def test_checkpoint_resume_skips_finished_points(tmp_path):
    """Second run with the same checkpoint recomputes nothing: a runner
    that would crash on any invocation returns the first run's points."""
    path = tmp_path / "sweep.json"
    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    first = parallel_sweep(net, spec, QUICK, max_workers=2, checkpoint=path)
    assert first.complete and path.exists()

    resumed = parallel_sweep(
        net, spec, QUICK, max_workers=2, checkpoint=path,
        point_runner=always_crashing_runner,
    )
    assert resumed == first


def test_checkpoint_completes_partial_run(tmp_path):
    """A run that crashed on one point leaves the finished points in
    the checkpoint; the resume computes only the missing one."""
    path = tmp_path / "sweep.json"
    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    partial = parallel_sweep(
        net, spec, QUICK, max_workers=2, retries=0,
        checkpoint=path, point_runner=crashing_runner,
    )
    assert not partial.complete
    assert len(SweepCheckpoint(path)) == 1      # only the ok point persisted

    resumed = parallel_sweep(net, spec, QUICK, max_workers=2, checkpoint=path)
    assert resumed.complete
    assert len(SweepCheckpoint(path)) == 2
    # And it matches a from-scratch sequential sweep.
    seq = sweep(net, spec.builder(QUICK), QUICK)
    assert resumed.points == seq.points


def test_duplicate_points_simulate_once(tmp_path, monkeypatch):
    """Identical (network, spec, load) entries fold onto one dispatch;
    the duplicates share the representative's result."""
    monkeypatch.setenv("REPRO_COUNT_DIR", str(tmp_path))
    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    result = parallel_sweep(
        net, spec, QUICK, loads=(0.2, 0.5, 0.5, 0.2), max_workers=2,
        point_runner=counting_runner,
    )
    assert result.complete and len(result.points) == 4
    assert result.points[1] == result.points[2]
    assert result.points[0] == result.points[3]
    assert result.dispatch.requested == 4
    assert result.dispatch.unique == 2
    assert result.dispatch.deduplicated == 2
    # proof of a single simulation per unique point
    tallies = {p.name: len(p.read_text().splitlines())
               for p in tmp_path.iterdir()}
    assert len(tallies) == 2 and set(tallies.values()) == {1}
    # dedupe never changes the answers
    seq = sweep(net, spec.builder(QUICK), QUICK, loads=(0.2, 0.5, 0.5, 0.2))
    assert result.points == seq.points


def test_dispatch_stats_report_checkpoint_hits(tmp_path):
    path = tmp_path / "sweep.json"
    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    first = parallel_sweep(net, spec, QUICK, max_workers=2, checkpoint=path)
    assert first.dispatch.checkpointed == 0

    resumed = parallel_sweep(
        net, spec, QUICK, max_workers=2, checkpoint=path,
        point_runner=always_crashing_runner,
    )
    assert resumed.dispatch.checkpointed == 2
    assert resumed.dispatch.unique == 2       # distinct keys, all from disk
    assert resumed.dispatch.deduplicated == 0


@pytest.mark.parametrize(
    "content",
    [
        '{"version": 1, "points": {"k"',            # truncated mid-write
        "not json at all",
        '{"version": 1, "points": {"k": {"nope": true}}}',  # alien schema
        '["a", "list"]',
    ],
    ids=["truncated", "garbage", "bad_schema", "not_object"],
)
def test_corrupt_checkpoint_quarantined_and_restarted(tmp_path, content, caplog):
    """A corrupt checkpoint never raises: it is renamed to *.corrupt,
    logged, and the sweep restarts (and re-persists) cleanly."""
    import logging

    path = tmp_path / "sweep.json"
    path.write_text(content)
    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    with caplog.at_level(logging.WARNING, logger="repro.experiments.parallel"):
        result = parallel_sweep(net, spec, QUICK, max_workers=2, checkpoint=path)
    assert result.complete
    assert (tmp_path / "sweep.json.corrupt").read_text() == content
    assert any("corrupt" in r.message for r in caplog.records)
    # the fresh checkpoint is healthy and resumable
    assert len(SweepCheckpoint(path)) == 2


def test_repeated_corruption_keeps_all_evidence(tmp_path):
    path = tmp_path / "sweep.json"
    for round_no in range(2):
        path.write_text(f"garbage round {round_no}")
        assert len(SweepCheckpoint(path)) == 0
    assert (tmp_path / "sweep.json.corrupt").exists()
    assert (tmp_path / "sweep.json.corrupt.1").exists()


def test_checkpoint_file_is_valid_json_and_atomic(tmp_path):
    import json

    path = tmp_path / "sweep.json"
    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    parallel_sweep(net, spec, QUICK, max_workers=2, checkpoint=path)
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert len(payload["points"]) == 2
    assert not list(tmp_path.glob("*.tmp"))     # no torn temp files left
