"""Tests for the declarative workload specs and the parallel runner."""

from dataclasses import replace

import pytest

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.parallel import parallel_matrix, parallel_sweep
from repro.experiments.runner import sweep
from repro.experiments.workload_spec import WorkloadSpec

QUICK = replace(SMOKE, warmup_packets=20, measure_packets=100, loads=(0.2, 0.5))


# ------------------------------------------------------------- WorkloadSpec


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(pattern="tsunami")
    with pytest.raises(ValueError):
        WorkloadSpec(clustering="ring")
    with pytest.raises(ValueError):
        WorkloadSpec(pattern="shuffle", clustering="cluster16")


def test_spec_labels():
    assert WorkloadSpec().label == "uniform"
    assert WorkloadSpec(pattern="hotspot", hot_fraction=0.1).label == "hotspot 10%"
    assert "cluster16" in WorkloadSpec(clustering="cluster16").label
    assert "4:1:1:1" in WorkloadSpec(
        clustering="cluster16", ratios=(4, 1, 1, 1)
    ).label
    assert "i=2" in WorkloadSpec(pattern="butterfly").label


def test_spec_clusters():
    assert WorkloadSpec().clusters().N == 64
    assert WorkloadSpec(clustering="cluster32").clusters().name == "cluster-32"
    shared = WorkloadSpec(clustering="cluster16-shared").clusters()
    assert "XX0" in shared.name


def test_spec_builder_matches_figure_builder():
    """The spec rebuilds the exact closure the figure builders use:
    identical measurements."""
    from repro.experiments.figures import uniform_workload
    from repro.experiments.runner import run_point
    from repro.traffic.clusters import global_cluster

    net = NetworkConfig("tmin")
    a = run_point(net, uniform_workload(global_cluster(), QUICK), 0.3, QUICK)
    b = run_point(net, WorkloadSpec().builder(QUICK), 0.3, QUICK)
    assert a == b


def test_spec_is_picklable():
    import pickle

    spec = WorkloadSpec(pattern="hotspot", hot_fraction=0.1)
    assert pickle.loads(pickle.dumps(spec)) == spec


# ----------------------------------------------------------- parallel runner


def test_parallel_sweep_matches_sequential():
    net = NetworkConfig("dmin", k=2, n=3)
    spec = WorkloadSpec(k=2, n=3)
    seq = sweep(net, spec.builder(QUICK), QUICK, label="x")
    par = parallel_sweep(net, spec, QUICK, label="x", max_workers=2)
    assert par == seq


def test_parallel_matrix_structure():
    nets = [NetworkConfig("tmin", k=2, n=3), NetworkConfig("bmin", k=2, n=3)]
    spec = WorkloadSpec(k=2, n=3)
    results = parallel_matrix(nets, spec, QUICK, max_workers=2)
    assert len(results) == 2
    assert [len(r.points) for r in results] == [2, 2]
    assert results[0].label.startswith("TMIN")
    assert results[1].label.startswith("BMIN")
    # Matrix points equal per-network parallel sweeps.
    solo = parallel_sweep(nets[1], spec, QUICK, max_workers=2)
    assert results[1].points == solo.points
