"""Tests for run_traced_point: bit-identical to run_point, windows aligned."""

import math

import pytest

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.runner import run_point
from repro.experiments.traced import run_traced_point
from repro.experiments.workload_spec import WorkloadSpec

CUBE = NetworkConfig("tmin", k=2, n=3)
SPEC = WorkloadSpec(pattern="uniform", k=2, n=3)


def test_traced_point_is_bit_identical_to_run_point():
    """Observation must not perturb the simulation: same seeds, same
    RNG draws, byte-for-byte equal Measurement."""
    plain = run_point(CUBE, SPEC.builder(SMOKE), 0.4, SMOKE)
    traced, obs = run_traced_point(CUBE, SPEC, 0.4, SMOKE)
    assert traced == plain


def test_observation_window_matches_measurement_window():
    """The sinks attach at window.begin(): the contention window length
    equals the measurement's cycles, and per-channel busy intervals sum
    to flit counts exactly (the trace/utilization acceptance identity)."""
    m, obs = run_traced_point(CUBE, SPEC, 0.4, SMOKE)
    assert obs.contention.elapsed == m.cycles
    for led in obs.contention.ledgers.values():
        assert led.busy_cycles() == led.flits
    # Delivery-stage flits in the window track the measurement's flits.
    # The collector credits a packet's flits at delivery time while the
    # sink counts per-cycle transmits, so worms straddling the window
    # edges shift the count by the in-flight flits -- a boundary effect
    # bounded well inside the ISSUE's 1-2% utilization criterion.
    dlv = sum(
        led.flits for led in obs.contention.ledgers.values() if led.stage == "dlv"
    )
    assert dlv == pytest.approx(m.delivered_flits, rel=0.02)
    # ... so trace-derived utilization matches reported throughput.
    util = dlv / (CUBE.N * obs.contention.elapsed)
    assert util == pytest.approx(m.throughput, rel=0.02)


def test_traced_histogram_agrees_with_measurement_percentiles():
    m, obs = run_traced_point(CUBE, SPEC, 0.4, SMOKE)
    assert obs.latency.count == m.delivered_packets
    assert obs.latency.max_value == m.max_latency
    # Histogram percentiles track the exact ones within bucket error.
    assert obs.latency.percentile(50) == pytest.approx(
        m.p50_latency, rel=2**-5 + 0.01
    )
    assert not math.isnan(m.p99_latency)


def test_traced_point_with_trace_exports(tmp_path):
    m, obs = run_traced_point(CUBE, SPEC, 0.4, SMOKE, trace=True)
    path = tmp_path / "point.json"
    count = obs.write_trace(str(path))
    assert count > 0 and path.stat().st_size > 0


def test_traced_point_accepts_raw_builder():
    m1, _ = run_traced_point(CUBE, SPEC, 0.4, SMOKE)
    m2, _ = run_traced_point(CUBE, SPEC.builder(SMOKE), 0.4, SMOKE)
    assert m1 == m2
