"""The direct-topology comparison sweep (repro.experiments.direct)."""

import dataclasses

from repro.experiments.config import SMOKE, NetworkConfig
from repro.experiments.direct import (
    DIRECT_PANEL,
    direct_checks,
    direct_comparison,
    direct_configs,
    render_direct,
)

TINY = dataclasses.replace(
    SMOKE, warmup_packets=10, measure_packets=60, max_cycles=20_000,
    loads=(0.3,),
)

#: A 8-node panel keeps the whole module comfortably inside smoke time.
SMALL = [
    NetworkConfig(kind, k=2, n=3, router=router)
    for kind, router in DIRECT_PANEL
]


def test_default_panel_configs():
    cfgs = direct_configs()
    assert [(c.kind, c.router) for c in cfgs] == list(DIRECT_PANEL)
    assert all(c.k == 4 and c.n == 3 for c in cfgs)


def test_comparison_sweeps_and_checks_pass():
    series = direct_comparison(TINY, configs=SMALL)
    assert len(series) == len(SMALL)
    for s in series:
        assert s.result.complete, s.result.errors()
        assert len(s.result.points) == len(TINY.loads)
    checks = direct_checks(series)
    failed = [c for c in checks if not c.passed]
    assert not failed, failed
    # The cross-config torus-vs-mesh latency claims are present for
    # both routers.
    claims = [c.claim for c in checks]
    assert any("torus3d(dor)" in c for c in claims)
    assert any("torus3d(adaptive)" in c for c in claims)


def test_render_direct_one_block_per_config():
    series = direct_comparison(
        TINY, configs=[NetworkConfig("mesh3d", k=2, n=3)]
    )
    text = render_direct(series)
    assert "direct topologies" in text
    assert "MESH3D(2^3, dor)" in text
    assert f"{TINY.loads[0]:6.2f}" in text
