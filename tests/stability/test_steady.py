"""MSER truncation + stability classification unit tests (pure
functions over synthetic series, so expectations are exact)."""

import math

import pytest

from repro.stability import (
    COLLAPSED,
    METASTABLE,
    STABLE,
    analyze_series,
    classify,
    mser_truncation,
)


def test_mser_short_series_returns_zero():
    assert mser_truncation([]) == 0
    assert mser_truncation([1.0, 2.0, 3.0]) == 0


def test_mser_flat_series_keeps_everything():
    assert mser_truncation([5.0] * 40) == 0


def test_mser_removes_warmup_transient():
    # A ramp-up prefix followed by a flat steady state: the minimum
    # standard error is achieved exactly at the end of the ramp.
    series = [0.0, 1.0, 2.0, 3.0] + [10.0] * 36
    assert mser_truncation(series) == 4


def test_mser_never_discards_the_majority():
    # A series that keeps drifting: truncation is capped at n // 2.
    series = [float(i) for i in range(30)]
    assert mser_truncation(series) <= 15


def test_analyze_empty_series():
    s = analyze_series([])
    assert s.samples == 0 and math.isnan(s.mean)


def test_analyze_flat_series():
    s = analyze_series([4.0] * 20)
    assert s.truncation == 0
    assert s.retained == 20
    assert s.mean == pytest.approx(4.0)
    assert s.cv == pytest.approx(0.0)
    assert s.drift == pytest.approx(0.0)


def test_analyze_detects_drift():
    # A continuous decline survives truncation (every suffix still
    # declines), so the retained tail's late half sits clearly below
    # its early half.
    series = [10.0 - 0.2 * i for i in range(40)]
    s = analyze_series(series)
    assert s.drift < -0.2


def test_classify_stable():
    s = analyze_series([0.5 + 0.001 * (i % 2) for i in range(32)])
    assert classify(s, knee_throughput=0.5) == STABLE


def test_classify_collapsed_against_knee():
    s = analyze_series([0.2] * 32)  # well below a 0.5 knee at ratio 0.75
    assert classify(s, knee_throughput=0.5) == COLLAPSED


def test_classify_metastable_on_oscillation():
    series = [0.8 if i % 2 else 0.2 for i in range(32)]
    s = analyze_series(series)
    assert s.cv > 0.35
    assert classify(s, knee_throughput=0.5) == METASTABLE


def test_classify_metastable_on_drift():
    # A slow continuous decline: mean still near the knee (not
    # collapsed), variability low, but the retained tail drifts.
    series = [0.6 - 0.005 * i for i in range(40)]
    s = analyze_series(series)
    assert classify(s, knee_throughput=0.5, drift_limit=0.1) == METASTABLE


def test_classify_without_knee_skips_collapse_test():
    s = analyze_series([0.2] * 32)
    assert classify(s, knee_throughput=None) == STABLE


def test_classify_empty_is_metastable():
    assert classify(analyze_series([]), knee_throughput=0.5) == METASTABLE


def test_classify_thresholds_are_parameters():
    series = [0.45] * 32
    s = analyze_series(series)
    assert classify(s, 0.5, collapse_ratio=0.75) == STABLE
    assert classify(s, 0.5, collapse_ratio=0.95) == COLLAPSED
