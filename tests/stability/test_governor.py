"""AIMD governor unit tests (stubbed engine) plus one closed-loop
integration check (real engine, bounded admission, overload)."""

import pytest

from repro.obs.bus import EventBus
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.stability import AIMDConfig, AIMDGovernor, BoundedQueue
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.packet import Packet


class StubNetwork:
    N = 4


class StubEngine:
    """Just enough engine for the governor: a network size, a bus, and
    controllable queue lengths."""

    def __init__(self) -> None:
        self.network = StubNetwork()
        self.bus = EventBus()
        self.qlen = {n: 0 for n in range(4)}

    def queue_length(self, node: int) -> int:
        return self.qlen[node]


def pkt(pid, src=0, dst=1, length=8, created=0.0):
    return Packet(pid, src, dst, length, created=created)


def test_config_validation():
    with pytest.raises(ValueError):
        AIMDConfig(min_rate=0.0)
    with pytest.raises(ValueError):
        AIMDConfig(min_rate=0.9, max_rate=0.5)
    with pytest.raises(ValueError):
        AIMDConfig(ai_step=0.0)
    with pytest.raises(ValueError):
        AIMDConfig(md_factor=1.0)
    with pytest.raises(ValueError):
        AIMDConfig(backlog_threshold=0)
    with pytest.raises(ValueError):
        AIMDConfig(latency_target=-1.0)
    with pytest.raises(ValueError):
        AIMDConfig(decrease_holdoff=-1.0)


def test_starts_at_max_rate_and_attaches():
    eng = StubEngine()
    g = AIMDGovernor(eng)
    assert g.rate_of(2) == 1.0
    assert g.mean_rate() == 1.0
    assert eng.bus.enabled  # attached as a sink


def test_multiplicative_decrease_on_shed_with_holdoff():
    eng = StubEngine()
    g = AIMDGovernor(eng, AIMDConfig(md_factor=0.5, decrease_holdoff=100.0))
    g.on_shed(10.0, pkt(1, src=2))
    assert g.rate_of(2) == 0.5
    # Within the holdoff: one cut per congestion episode.
    g.on_shed(50.0, pkt(2, src=2))
    assert g.rate_of(2) == 0.5
    # Past the holdoff: the next episode cuts again.
    g.on_shed(200.0, pkt(3, src=2))
    assert g.rate_of(2) == 0.25
    assert g.decreases == 2


def test_rate_floor():
    eng = StubEngine()
    g = AIMDGovernor(
        eng, AIMDConfig(md_factor=0.1, min_rate=0.05, decrease_holdoff=0.0)
    )
    for i in range(10):
        g.on_throttle(float(i * 1000), 1)
    assert g.rate_of(1) == pytest.approx(0.05)


def test_additive_increase_on_clean_delivery_and_ceiling():
    eng = StubEngine()
    g = AIMDGovernor(eng, AIMDConfig(ai_step=0.3, decrease_holdoff=0.0))
    g.on_shed(0.0, pkt(1, src=0))  # down to 0.5
    g.on_deliver(10.0, pkt(2, src=0, created=5.0))
    assert g.rate_of(0) == pytest.approx(0.8)
    g.on_deliver(11.0, pkt(3, src=0, created=6.0))
    g.on_deliver(12.0, pkt(4, src=0, created=7.0))
    assert g.rate_of(0) == 1.0  # clamped at max_rate
    assert g.increases == 2  # the ceiling hit does not count


def test_backlog_signal_on_offer():
    eng = StubEngine()
    g = AIMDGovernor(eng, AIMDConfig(backlog_threshold=8))
    eng.qlen[3] = 8
    g.on_offer(1.0, pkt(1, src=3))
    assert g.rate_of(3) == 1.0  # at threshold: no signal
    eng.qlen[3] = 9
    g.on_offer(2.0, pkt(2, src=3))
    assert g.rate_of(3) == 0.5


def test_latency_target_drives_decrease():
    eng = StubEngine()
    g = AIMDGovernor(
        eng, AIMDConfig(latency_target=100.0, decrease_holdoff=0.0)
    )
    g.on_deliver(250.0, pkt(1, src=0, created=0.0))  # 250 cycles: too slow
    assert g.rate_of(0) == 0.5
    g.on_deliver(300.0, pkt(2, src=0, created=250.0))  # 50 cycles: clean
    assert g.rate_of(0) == pytest.approx(0.51)


def test_rate_changes_published_on_bus():
    eng = StubEngine()
    seen = []

    class Sink:
        def on_rate(self, t, node, rate):
            seen.append((t, node, rate))

    eng.bus.attach(Sink())
    g = AIMDGovernor(eng, AIMDConfig(decrease_holdoff=0.0))
    g.on_shed(5.0, pkt(1, src=2))
    g.on_deliver(9.0, pkt(2, src=2, created=1.0))
    assert seen == [(5.0, 2, 0.5), (9.0, 2, 0.51)]


def test_closed_loop_backs_off_under_overload():
    """On a real engine at overload, the loop must actually cut rates:
    the governed fleet ends well below full injection."""
    env = Environment()
    eng = WormholeEngine(
        env, build_network("tmin", 4, 3), rng=RandomStream(5)
    )
    BoundedQueue(capacity=16).install(eng)
    governor = AIMDGovernor(
        eng, AIMDConfig(backlog_threshold=8, decrease_holdoff=128.0)
    )
    from repro.experiments.config import SMOKE
    from repro.experiments.workload_spec import WorkloadSpec

    spec = WorkloadSpec()
    workload = spec.builder(SMOKE)(1.5)  # far past saturation
    workload.governor = governor
    root = RandomStream(SMOKE.seed, name="root")
    workload.install(env, eng, root.fork("workload"))
    eng.start()
    env.run(until=15_000)
    assert governor.decreases > 0
    assert governor.mean_rate() < 0.9
    assert eng.stats.max_queue_len <= 16
