"""Bounded-admission policy tests: the three overflow modes, the
counters they feed, and the invariant they exist for (queue memory
never exceeds capacity)."""

import pytest

from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.stability import (
    ADMISSION_MODES,
    BLOCK,
    SHED_NEWEST,
    SHED_OLDEST,
    BoundedQueue,
)
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.packet import PacketState


def make_engine():
    env = Environment()
    eng = WormholeEngine(env, build_network("tmin", 2, 3), rng=RandomStream(3))
    return env, eng


def test_validation():
    with pytest.raises(ValueError):
        BoundedQueue(capacity=0)
    with pytest.raises(ValueError):
        BoundedQueue(mode="evict-random")
    assert set(ADMISSION_MODES) == {BLOCK, SHED_NEWEST, SHED_OLDEST}


def test_install_chains():
    _, eng = make_engine()
    policy = BoundedQueue(capacity=4).install(eng)
    assert eng.admission is policy


def test_unbounded_by_default():
    _, eng = make_engine()
    assert eng.admission is None
    for _ in range(300):
        assert eng.offer(0, 7, 4) is not None
    assert eng.queue_length(0) >= 299  # one may have injected
    assert eng.stats.shed_packets == 0
    assert eng.stats.throttled_packets == 0


def test_block_refuses_and_counts():
    _, eng = make_engine()
    BoundedQueue(capacity=3, mode=BLOCK).install(eng)
    admitted = [eng.offer(0, 7, 4) for _ in range(10)]
    accepted = [p for p in admitted if p is not None]
    refused = [p for p in admitted if p is None]
    assert len(refused) == 10 - len(accepted)
    assert refused  # the tiny capacity definitely overflowed
    assert eng.stats.throttled_packets == len(refused)
    assert eng.stats.shed_packets == 0
    assert eng.queue_length(0) <= 3


def test_shed_newest_drops_the_newcomer():
    _, eng = make_engine()
    BoundedQueue(capacity=3, mode=SHED_NEWEST).install(eng)
    kept = [eng.offer(0, 7, 4) for _ in range(4)]
    tail = eng.offer(0, 7, 4)
    assert tail is not None and tail.state is PacketState.SHED
    assert eng.stats.shed_packets >= 1
    # The earlier messages survived (first may have gone ACTIVE).
    survivors = [p for p in kept if p.state is not PacketState.SHED]
    assert len(survivors) >= 3
    assert eng.queue_length(0) <= 3


def test_shed_oldest_drops_the_head():
    _, eng = make_engine()
    BoundedQueue(capacity=3, mode=SHED_OLDEST).install(eng)
    offered = [eng.offer(0, 7, 4) for _ in range(8)]
    assert all(p is not None for p in offered)
    # The newcomers were admitted; overflow fell on queue heads.
    assert offered[-1].state is not PacketState.SHED
    assert eng.stats.shed_packets >= 1
    assert any(p.state is PacketState.SHED for p in offered[:-1])
    assert eng.queue_length(0) <= 3


@pytest.mark.parametrize("mode", ADMISSION_MODES)
def test_capacity_respected_under_sustained_overload(mode):
    env, eng = make_engine()
    BoundedQueue(capacity=5, mode=mode).install(eng)
    rs = RandomStream(11)
    for _ in range(400):
        src = rs.uniform_int(0, 7)
        dst = rs.uniform_int(0, 7)
        if dst == src:
            dst = (dst + 1) % 8
        eng.offer(src, dst, 6)
    assert max(eng.queue_length(n) for n in range(8)) <= 5
    assert eng.stats.max_queue_len <= 5
    eng.drain(max_cycles=200_000)
    assert eng.idle


def test_shed_packets_are_not_failures():
    """Shed is a deliberate drop: no failure hooks, no abort events."""
    _, eng = make_engine()
    events = []

    class Sink:
        def on_abort(self, t, p):
            events.append(("abort", p.pid))

        def on_shed(self, t, p):
            events.append(("shed", p.pid))

    eng.bus.attach(Sink())
    BoundedQueue(capacity=2, mode=SHED_NEWEST).install(eng)
    for _ in range(6):
        eng.offer(0, 7, 4)
    kinds = {k for k, _ in events}
    assert "shed" in kinds and "abort" not in kinds
    assert eng.stats.failed_packets == 0


def test_decide_hook_is_overridable():
    """Subclasses may pick the mode per overflow from live state."""

    class AgeAware(BoundedQueue):
        def decide(self, engine, src):
            # Block even sources, shed odd ones.
            return BLOCK if src % 2 == 0 else SHED_NEWEST

    _, eng = make_engine()
    AgeAware(capacity=1).install(eng)
    for _ in range(4):
        eng.offer(2, 7, 4)
        eng.offer(3, 7, 4)
    assert eng.stats.throttled_packets >= 1
    assert eng.stats.shed_packets >= 1
