"""Progress-watchdog classification tests.

Three seeded scenarios, one per verdict:

* a **deadlock** on a deliberately unsafe ring of channel dependencies
  (no flit can ever move again) is flagged DEADLOCK -- raised with
  recovery off, broken by sacrificing the oldest worm with it on;
* a **livelock** -- a worm parked behind an adversarial 50k-flit
  stream it will never outlive, while the fabric as a whole keeps
  moving -- is flagged LIVELOCK and recovered by abort-and-reinject,
  unblocking the traffic queued behind the victim (delivery recovers
  vs. the watchdog-off baseline);
* mere **congestion** (every worm keeps advancing within
  ``stall_age``) is left completely alone.
"""

import pytest

from repro.faults.recovery import RetryPolicy, SourceRetry
from repro.sim import Environment
from repro.sim.rng import RandomStream
from repro.stability import DEADLOCK, LIVELOCK, ProgressWatchdog
from repro.wormhole import WormholeEngine, build_network
from repro.wormhole.channel import PhysChannel
from repro.wormhole.engine import DeadlockError
from repro.wormhole.network import NetworkKind, SimNetwork
from repro.wormhole.packet import Packet

from tests.wormhole.test_watchdog import RingNetwork


class StarvationNetwork(SimNetwork):
    """A 5-node network with a built-in starvation trap.

    * node 0 (the adversary) streams to node 3 over channel ``A``;
    * node 1 (the victim) routes ``B -> A -> dlv3``: once an
      adversarial worm owns ``A``, the victim's header parks on it
      while the victim holds ``B``;
    * node 2 routes ``B -> dlv4``: it only needs ``B``, but the
      stalled victim owns it -- classic head-of-line starvation.

    The fabric *moves every cycle* (the adversary streams), so the
    engine's built-in total-standstill watchdog can never fire; only a
    per-worm progress check sees the victim's plight.
    """

    def __init__(self) -> None:
        self.kind = NetworkKind.TMIN
        self.N = 5
        self.inj = [PhysChannel(f"inj{i}") for i in range(5)]
        self.a = PhysChannel("A")
        self.b = PhysChannel("B")
        self.dlv3 = PhysChannel("dlv3", is_delivery=True, sink=3)
        self.dlv4 = PhysChannel("dlv4", is_delivery=True, sink=4)
        self._finalize_topo(
            [self.dlv3, self.dlv4, self.a, self.b] + self.inj
        )
        self._routes = {
            0: [self.a, self.dlv3],
            1: [self.b, self.a, self.dlv3],
            2: [self.b, self.dlv4],
        }

    def injection_channel(self, node: int) -> PhysChannel:
        return self.inj[node]

    def prepare(self, packet: Packet) -> None:
        packet.hop = 0

    def candidates(self, packet: Packet) -> list[PhysChannel]:
        return [self._routes[packet.src][packet.hop]]

    def advance(self, packet: Packet, channel: PhysChannel) -> None:
        packet.hop += 1


def test_parameter_validation():
    env = Environment()
    eng = WormholeEngine(env, RingNetwork(), rng=RandomStream(0))
    with pytest.raises(ValueError):
        ProgressWatchdog(eng, check_every=0)
    with pytest.raises(ValueError):
        ProgressWatchdog(eng, check_every=64, stall_age=32)
    with pytest.raises(ValueError):
        ProgressWatchdog(eng, deadlock_after=0)


# ------------------------------------------------------------- deadlock


def _deadlocked_engine(recover: bool):
    env = Environment()
    eng = WormholeEngine(env, RingNetwork(), rng=RandomStream(0))
    eng.watchdog = ProgressWatchdog(
        eng, check_every=16, stall_age=4096, deadlock_after=64,
        recover=recover,
    )
    eng.offer(0, 1, 100)
    eng.offer(1, 0, 100)
    eng.start()
    return env, eng


def test_deadlock_flagged_and_raised_without_recovery():
    env, eng = _deadlocked_engine(recover=False)
    with pytest.raises(Exception) as excinfo:
        env.run(until=10_000)
    messages = str(excinfo.value) + str(
        getattr(excinfo.value, "__cause__", "")
    )
    assert "progress" in messages
    wd = eng.watchdog
    assert wd.deadlocks == 1 and wd.aborted == 0
    assert [e.verdict for e in wd.events] == [DEADLOCK]
    assert not wd.events[0].recovered


def test_deadlock_recovered_by_sacrificing_oldest_worm():
    env, eng = _deadlocked_engine(recover=True)
    env.run(until=10_000)  # no exception: the cycle was broken
    wd = eng.watchdog
    assert wd.deadlocks >= 1
    assert wd.aborted >= 1
    assert wd.events[0].verdict == DEADLOCK and wd.events[0].recovered
    # The sacrifice is deterministic: the oldest worm (pid 0).
    assert wd.events[0].pid == 0
    # The survivor finished; the fabric is clear again.
    assert eng.stats.delivered_packets == 1
    assert eng.stats.stall_aborted_packets >= 1
    assert eng.idle


def test_deadlock_error_still_raised_via_DeadlockError_type():
    env, eng = _deadlocked_engine(recover=False)
    try:
        env.run(until=10_000)
        pytest.fail("expected a deadlock")
    except Exception as exc:
        chain = [exc, getattr(exc, "__cause__", None)]
        assert any(isinstance(e, DeadlockError) for e in chain if e)


# ------------------------------------------------------------- livelock


def _starved_run(watchdog: bool, until: float = 8_000.0):
    env = Environment()
    eng = WormholeEngine(env, StarvationNetwork(), rng=RandomStream(1))
    retry = None
    if watchdog:
        retry = SourceRetry(
            eng,
            RetryPolicy(max_attempts=3, base_delay=64.0, max_delay=512.0),
            RandomStream(2, name="retry"),
        )
        eng.watchdog = ProgressWatchdog(
            eng, check_every=32, stall_age=512, deadlock_after=4096,
            recover=True,
        )
    eng.offer(0, 3, 50_000)  # the adversary: streams for the whole run
    eng.offer(1, 3, 40)      # the victim: parks on A, holds B
    eng.offer(2, 4, 40)      # the bystander: only needs B
    eng.start()
    env.run(until=until)
    return env, eng, retry


def test_livelock_flagged_and_recovered():
    env, eng, retry = _starved_run(watchdog=True)
    wd = eng.watchdog
    assert wd.livelocks >= 1
    assert wd.deadlocks == 0  # the fabric kept moving throughout
    assert any(
        e.verdict == LIVELOCK and e.recovered for e in wd.events
    )
    # The first victim is the starved worm behind the adversary.
    first = wd.events[0]
    assert first.verdict == LIVELOCK and first.pid == 1
    assert eng.stats.stall_aborted_packets >= 1
    # Aborting the victim freed channel B: the bystander delivered.
    assert eng.stats.delivered_packets >= 1
    # The retry layer re-injected the victim (delayed, not lost --
    # though here its path stays blocked, so attempts may exhaust).
    assert retry.retried >= 1


def test_livelock_baseline_without_watchdog_stays_starved():
    """The same run without the watchdog: nobody behind the adversary
    ever delivers -- the watchdog's recovery is what buys progress."""
    _, eng_off, _ = _starved_run(watchdog=False)
    _, eng_on, _ = _starved_run(watchdog=True)
    assert eng_off.stats.delivered_packets == 0
    assert eng_on.stats.delivered_packets > eng_off.stats.delivered_packets
    # Baseline run is wedged but *moving* -- indistinguishable from a
    # slow run without per-worm progress tracking.
    assert eng_off.in_flight == 3


# ----------------------------------------------------------- congestion


def test_congestion_is_left_alone():
    """Heavy-but-progressing traffic on a real network: the watchdog
    records nothing and aborts nothing."""
    env = Environment()
    eng = WormholeEngine(
        env, build_network("tmin", 2, 3), rng=RandomStream(3)
    )
    eng.watchdog = ProgressWatchdog(
        eng, check_every=32, stall_age=4096, deadlock_after=4096,
        recover=True,
    )
    rs = RandomStream(4)
    for _ in range(80):
        s = rs.uniform_int(0, 7)
        d = rs.uniform_int(0, 6)
        if d >= s:
            d += 1
        eng.offer(s, d, rs.uniform_int(8, 48))
    eng.drain(max_cycles=100_000)
    wd = eng.watchdog
    assert eng.idle
    assert wd.events == []
    assert wd.aborted == 0 and wd.livelocks == 0 and wd.deadlocks == 0
    assert eng.stats.delivered_packets == 80
    assert eng.stats.stall_aborted_packets == 0


def test_watchdog_tracking_state_clears_when_fabric_drains():
    env = Environment()
    eng = WormholeEngine(
        env, build_network("dmin", 2, 3), rng=RandomStream(5)
    )
    eng.watchdog = ProgressWatchdog(eng, check_every=16)
    eng.offer(0, 7, 24)
    eng.drain(max_cycles=50_000)
    assert eng.idle
    # Pruning happens at the next sampled check (drain stops the clock
    # the moment the fabric empties, so force one more check).
    eng.watchdog._check(eng, eng.cycles_run)
    assert eng.watchdog._sig == {}
