"""Tests for the distributed turnaround routing algorithm (Fig. 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.turnaround import Move, RouteDecision, TurnaroundRouter
from repro.topology.bmin import BidirectionalMIN
from repro.topology.permutations import from_digits, to_digits


@pytest.fixture
def router8():
    return TurnaroundRouter(BidirectionalMIN(2, 3))


@pytest.fixture
def router64():
    return TurnaroundRouter(BidirectionalMIN(4, 3))


def test_turn_stage_matches_first_difference(router8):
    assert router8.turn_stage(0b001, 0b101) == 2  # Fig. 8


def test_turnaround_decision_at_turn_stage(router8):
    d = 0b101
    decision = router8.decide(2, True, 0b001, d)
    assert decision.move is Move.TURNAROUND
    assert decision.ports == (to_digits(d, 2, 3)[2],)
    assert not decision.is_adaptive


def test_forward_decision_is_adaptive(router64):
    decision = router64.decide(0, True, 0, 63)
    assert decision.move is Move.FORWARD
    assert decision.ports == (0, 1, 2, 3)
    assert decision.is_adaptive


def test_backward_decision_is_deterministic(router8):
    d = 0b110
    decision = router8.decide(1, False, 0b000, d)
    assert decision.move is Move.BACKWARD
    assert decision.ports == (1,)  # l_{d_1}, d_1 = 1


def test_overshoot_rejected(router8):
    # FirstDifference(000, 001) = 0; stage 1 is unreachable.
    with pytest.raises(ValueError):
        router8.decide(1, True, 0b000, 0b001)


def test_right_arrival_at_turn_stage_rejected(router8):
    """The forbidden r->r connection (Section 1) can never be needed."""
    with pytest.raises(ValueError):
        router8.decide(2, False, 0b001, 0b101)


def test_stage_range_check(router8):
    with pytest.raises(ValueError):
        router8.decide(3, True, 0, 1)


def test_hops_count(router8):
    assert router8.hops(0b001, 0b101) == 5  # t=2: 3 up (incl. turn) + 2 down
    assert router8.hops(0b000, 0b001) == 1  # same switch


def test_walk_structure(router8):
    steps = router8.walk(0b001, 0b101, forward_choices=[1, 0])
    moves = [m for _, m, _ in steps]
    assert moves == [
        Move.FORWARD,
        Move.FORWARD,
        Move.TURNAROUND,
        Move.BACKWARD,
        Move.BACKWARD,
    ]
    stages = [s for s, _, _ in steps]
    assert stages == [0, 1, 2, 1, 0]


def test_walk_choice_validation(router8):
    with pytest.raises(ValueError):
        router8.walk(0b001, 0b101, forward_choices=[0])  # wrong length
    with pytest.raises(ValueError):
        router8.walk(0b001, 0b101, forward_choices=[0, 5])  # bad port


def test_walk_default_choices(router8):
    steps = router8.walk(0b001, 0b101)
    assert all(port == 0 for _, m, port in steps if m is Move.FORWARD)


@given(
    st.sampled_from([(2, 3), (4, 2), (4, 3)]),
    st.data(),
)
@settings(max_examples=80, deadline=None)
def test_walk_reaches_destination_property(kn, data):
    """Replaying walk() against the BMIN wiring lands on the destination."""
    k, n = kn
    bmin = BidirectionalMIN(k, n)
    router = TurnaroundRouter(bmin)
    s = data.draw(st.integers(min_value=0, max_value=bmin.N - 1))
    d = data.draw(st.integers(min_value=0, max_value=bmin.N - 1))
    if s == d:
        return
    t = router.turn_stage(s, d)
    choices = [
        data.draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(t)
    ]
    digits = list(to_digits(s, k, n))
    for stage, move, port in router.walk(s, d, forward_choices=choices):
        # Exiting stage `stage` on a given port sets digit `stage` of the
        # current line address (both forward and backward/turnaround).
        digits[stage] = port
    assert from_digits(digits, k) == d


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_decisions_consistent_with_enumerated_paths(data):
    """walk() must generate exactly the paths Theorem 1 enumerates."""
    bmin = BidirectionalMIN(2, 3)
    router = TurnaroundRouter(bmin)
    s = data.draw(st.integers(min_value=0, max_value=7))
    d = data.draw(st.integers(min_value=0, max_value=7))
    if s == d:
        return
    t = router.turn_stage(s, d)
    paths = bmin.enumerate_shortest_paths(s, d)
    assert len(paths) == 2**t
    for p in paths:
        assert p.turn_stage == t


def test_route_decision_dataclass():
    d = RouteDecision(Move.FORWARD, (0, 1))
    assert d.is_adaptive
    assert RouteDecision(Move.BACKWARD, (1,)).is_adaptive is False
