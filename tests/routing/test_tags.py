"""Tests for destination-tag routing."""

import pytest

from repro.routing.tags import TagRouter
from repro.topology.mins import butterfly_min, cube_min, omega_min


def test_tag_matches_spec():
    spec = cube_min(4, 3)
    router = TagRouter(spec)
    for d in range(spec.N):
        assert router.tag(d) == spec.routing_tag(d)


def test_output_port_per_stage():
    spec = cube_min(2, 3)
    router = TagRouter(spec)
    d = 0b110  # tag (d2, d1, d0) = (1, 1, 0)
    assert [router.output_port(i, d) for i in range(3)] == [1, 1, 0]


def test_butterfly_ports():
    spec = butterfly_min(2, 3)
    router = TagRouter(spec)
    d = 0b110  # tag (d1, d2, d0) = (1, 1, 0)
    assert [router.output_port(i, d) for i in range(3)] == [1, 1, 0]
    d = 0b011  # digits d0=1, d1=1, d2=0 -> tag (1, 0, 1)
    assert [router.output_port(i, d) for i in range(3)] == [1, 0, 1]


def test_range_validation():
    router = TagRouter(omega_min(2, 3))
    with pytest.raises(ValueError):
        router.output_port(3, 0)
    with pytest.raises(ValueError):
        router.output_port(0, 8)
    with pytest.raises(ValueError):
        router.tag(-1)


def test_hops_is_stage_count():
    assert TagRouter(cube_min(4, 3)).hops() == 3


@pytest.mark.parametrize("builder", [cube_min, butterfly_min, omega_min])
def test_following_ports_reaches_destination(builder):
    """Walking the tag ports through the spec's connections delivers."""
    spec = builder(2, 3)
    router = TagRouter(spec)
    for s in range(spec.N):
        for d in range(spec.N):
            pos = s
            for i in range(spec.n):
                pos = spec.connections[i](pos)
                pos = (pos // spec.k) * spec.k + router.output_port(i, d)
            assert spec.connections[spec.n](pos) == d
