"""repro -- switch-based wormhole network simulation and analysis.

A from-scratch reproduction of Ni, Gui & Moore, *Performance Evaluation
of Switch-Based Wormhole Networks* (ICPP'95; TPDS 8(5), 1997): the four
multistage interconnection networks the paper compares (TMIN, DMIN,
VMIN, BMIN), a flit-level wormhole-switching simulator, the turnaround
routing theory, the network-partitionability theory, and the full
evaluation harness that regenerates Figures 16-20.

Typical entry points::

    from repro import build_network, WormholeEngine, Environment
    from repro.experiments import fig18, SCALED, render_figure

    env = Environment()
    engine = WormholeEngine(env, build_network("dmin", k=4, n=3))
    engine.offer(src=0, dst=63, length=128)
    engine.drain()

Package map (see DESIGN.md for the full inventory):

==================   ====================================================
``repro.sim``        discrete-event kernel (SimPy-style, self-contained)
``repro.topology``   permutations, Delta MINs, the bidirectional MIN,
                     fat-tree view, equivalence/admissibility checks
``repro.routing``    destination-tag and turnaround routing decisions
``repro.partition``  cube clusters; Lemma 1 / Theorems 2-4 checkers
``repro.wormhole``   the flit-level network simulator (channels, VCs,
                     switches, two-phase cycle engine)
``repro.traffic``    uniform / hot-spot / permutation workloads,
                     clusterings, Poisson arrival processes
``repro.metrics``    latency & throughput measurement windows
``repro.analysis``   analytic models and structural throughput bounds
``repro.experiments`` the figure-by-figure evaluation harness
==================   ====================================================
"""

from repro.sim import Environment, RandomStream
from repro.wormhole import (
    Packet,
    PacketState,
    WormholeEngine,
    build_network,
)

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "Packet",
    "PacketState",
    "RandomStream",
    "WormholeEngine",
    "__version__",
    "build_network",
]
