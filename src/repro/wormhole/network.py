"""Builds the four simulated networks and answers routing queries.

A :class:`SimNetwork` owns every :class:`PhysChannel` of one network
instance, ordered reverse-topologically (downstream first) for the
engine's flit-advance phase, and translates a packet's routing state
into the candidate channels its header may acquire next.

* :class:`UnidirectionalNetwork` covers TMIN, DMIN and VMIN over any
  Delta topology (:class:`~repro.topology.spec.MINSpec`).  The path's
  (boundary, position) slots are unique per (source, destination); only
  the channel/lane *within* a slot varies (dilated lanes, virtual
  channels).
* :class:`BidirectionalNetwork` covers the BMIN: adaptive forward hops,
  one turnaround, deterministic backward hops (Fig. 7), per the wiring
  of :class:`~repro.topology.bmin.BidirectionalMIN`.
"""

from __future__ import annotations

from enum import Enum
from repro.routing.memo import BminTables, PathTable
from repro.routing.tags import TagRouter
from repro.topology.bmin import BidirectionalMIN
from repro.topology.permutations import from_digits, to_digits
from repro.topology.mins import build_min
from repro.topology.spec import MINSpec
from repro.wormhole.channel import PhysChannel
from repro.wormhole.packet import Packet


class NetworkKind(Enum):
    """The four switch designs of Fig. 1, plus the direct topologies."""

    TMIN = "tmin"
    DMIN = "dmin"
    VMIN = "vmin"
    BMIN = "bmin"
    MESH3D = "mesh3d"
    TORUS3D = "torus3d"


class SimNetwork:
    """Common interface of the simulated networks."""

    kind: NetworkKind
    N: int
    topo_channels: list[PhysChannel]

    #: True when routes acquire channels in ascending topological
    #: order, the precondition of the engine's per-worm Phase B.  The
    #: MINs satisfy it by construction; the direct topologies
    #: (adaptive routing, cyclic full CDG) opt out and keep the
    #: bit-identical channel sweep.
    worm_phase_ok = True

    def injection_channel(self, node: int) -> PhysChannel:
        """The node's single channel into the network (one-port)."""
        raise NotImplementedError

    def prepare(self, packet: Packet) -> None:
        """Initialize per-packet routing state at injection time."""
        raise NotImplementedError

    def candidates(self, packet: Packet) -> list[PhysChannel]:
        """Channels the header may take for its next hop."""
        raise NotImplementedError

    def advance(self, packet: Packet, channel: PhysChannel) -> None:
        """Update routing state after the header acquired ``channel``."""
        raise NotImplementedError

    def preferred_lane(self, packet: Packet, free: list, rng):
        """Bias the engine's choice among free candidate lanes.

        Return one of ``free`` to override, or None for the default
        uniform-random pick (the paper's policy).  Subclasses implement
        smarter adaptive policies (see
        :class:`SmartBidirectionalNetwork`).
        """
        return None

    def _finalize_topo(self, channels: list[PhysChannel]) -> None:
        for order, ch in enumerate(channels):
            ch.topo_order = order
        self.topo_channels = channels

    @property
    def channel_count(self) -> int:
        """Total unidirectional wires in the network."""
        return len(self.topo_channels)

    def find_channel(self, label: str) -> PhysChannel:
        """Look a channel up by its label (e.g. ``"b1[5].0"``).

        Raises :class:`KeyError` with near-miss suggestions, so a typo
        in a fault plan or script fails loudly instead of silently
        naming nothing (see :meth:`repro.faults.plan.FaultPlan`'s
        install-time validation).
        """
        for ch in self.topo_channels:
            if ch.label == label:
                return ch
        raise KeyError(self.unknown_label_message(label))

    def unknown_label_message(self, label: str) -> str:
        """Diagnostic for a label that names no channel (with near-misses)."""
        import difflib

        labels = [ch.label for ch in self.topo_channels]
        close = difflib.get_close_matches(label, labels, n=3, cutoff=0.5)
        msg = (
            f"no channel labelled {label!r} in this "
            f"{self.kind.value} network ({len(labels)} channels)"
        )
        if close:
            msg += "; did you mean " + " / ".join(repr(c) for c in close) + "?"
        return msg

    def faulty_channels(self) -> list[PhysChannel]:
        """All channels currently marked faulty."""
        return [ch for ch in self.topo_channels if ch.faulty]


class UnidirectionalNetwork(SimNetwork):
    """TMIN / DMIN / VMIN over a Delta MIN.

    Parameters
    ----------
    spec:
        The topology (cube or butterfly for the paper's experiments).
    dilation:
        Channels per inter-stage port (1 = TMIN/VMIN, 2 = the paper's
        DMIN).  Injection and delivery stay single (one-port nodes; the
        paper leaves the extra network-edge channels unused).
    virtual_channels:
        Lanes per inter-stage and delivery wire (1 = TMIN/DMIN, 2 = the
        paper's VMIN).  Injection stays single-lane: the one-port source
        transmits messages serially anyway.
    """

    def __init__(
        self,
        spec: MINSpec,
        dilation: int = 1,
        virtual_channels: int = 1,
    ) -> None:
        if dilation < 1 or virtual_channels < 1:
            raise ValueError("dilation and virtual_channels must be >= 1")
        if dilation > 1 and virtual_channels > 1:
            raise ValueError(
                "the paper's networks are dilated OR virtual-channelled, not both"
            )
        self.spec = spec
        self.N = spec.N
        self.dilation = dilation
        self.virtual_channels = virtual_channels
        if dilation > 1:
            self.kind = NetworkKind.DMIN
        elif virtual_channels > 1:
            self.kind = NetworkKind.VMIN
        else:
            self.kind = NetworkKind.TMIN
        self.router = TagRouter(spec)
        #: Memoized (src, dst) -> slot-path table (see routing.memo).
        self.paths = PathTable(spec)

        n, N = spec.n, spec.N
        #: slot (boundary, producer position) -> channels serving it
        self.slots: dict[tuple[int, int], list[PhysChannel]] = {}
        ordered: list[PhysChannel] = []
        # Downstream first: delivery boundary n, then n-1 ... then injection.
        for boundary in range(n, -1, -1):
            for pos in range(N):
                if boundary == n:
                    chans = [
                        PhysChannel(
                            f"dlv[{pos}]",
                            num_lanes=virtual_channels,
                            is_delivery=True,
                            sink=spec.connections[n](pos),
                        )
                    ]
                elif boundary == 0:
                    chans = [PhysChannel(f"inj[{pos}]", num_lanes=1)]
                else:
                    chans = [
                        PhysChannel(
                            f"b{boundary}[{pos}].{lane}",
                            num_lanes=virtual_channels,
                        )
                        for lane in range(dilation)
                    ]
                self.slots[(boundary, pos)] = chans
                ordered.extend(chans)
        self._finalize_topo(ordered)

    def injection_channel(self, node: int) -> PhysChannel:
        """Boundary-0 channel at the node's own position."""
        return self.slots[(0, node)][0]

    def prepare(self, packet: Packet) -> None:
        """Precompute the unique path's (boundary, position) slots.

        The path list comes from the memoized :class:`PathTable` and is
        shared between packets of the same (src, dst) pair; nothing
        mutates ``packet.slots`` after this point.
        """
        packet.slots = self.paths.path(packet.src, packet.dst)
        packet.hop = 0

    def candidates(self, packet: Packet) -> list[PhysChannel]:
        """Channels of the next slot (d of them when dilated)."""
        assert packet.slots is not None, "prepare() not called"
        return self.slots[packet.slots[packet.hop + 1]]

    def advance(self, packet: Packet, channel: PhysChannel) -> None:
        """Move the routing cursor one slot forward."""
        packet.hop += 1


class BidirectionalNetwork(SimNetwork):
    """The BMIN with turnaround routing.

    ``virtual_channels`` adds lanes to every network wire (a future-work
    variant the paper suggests); the paper's BMIN uses 1.
    """

    def __init__(self, bmin: BidirectionalMIN, virtual_channels: int = 1) -> None:
        if virtual_channels < 1:
            raise ValueError("virtual_channels must be >= 1")
        self.bmin = bmin
        self.N = bmin.N
        self.kind = NetworkKind.BMIN
        self.virtual_channels = virtual_channels
        k, n, N = bmin.k, bmin.n, bmin.N
        self.tables: BminTables  # set after the channel dicts below

        self.fwd: dict[tuple[int, int], PhysChannel] = {}
        self.bwd: dict[tuple[int, int], PhysChannel] = {}
        ordered: list[PhysChannel] = []
        # Downstream first: backward channels ascending boundary (the
        # delivery boundary 0 first), then forward channels descending.
        for boundary in range(n):
            for line in range(N):
                if boundary == 0:
                    ch = PhysChannel(
                        f"bwd0[{line}]",
                        num_lanes=virtual_channels,
                        is_delivery=True,
                        sink=line,
                    )
                else:
                    ch = PhysChannel(
                        f"bwd{boundary}[{line}]", num_lanes=virtual_channels
                    )
                ch.meta = ("bwd", boundary, line)
                self.bwd[(boundary, line)] = ch
                ordered.append(ch)
        for boundary in range(n - 1, -1, -1):
            for line in range(N):
                lanes = 1 if boundary == 0 else virtual_channels
                ch = PhysChannel(f"fwd{boundary}[{line}]", num_lanes=lanes)
                ch.meta = ("fwd", boundary, line)
                self.fwd[(boundary, line)] = ch
                ordered.append(ch)
        self._finalize_topo(ordered)
        #: Memoized per-(switch, destination-digit) candidate tables.
        self.tables = BminTables(k, n, self.fwd, self.bwd)

    def injection_channel(self, node: int) -> PhysChannel:
        """The node's forward boundary-0 channel."""
        return self.fwd[(0, node)]

    def prepare(self, packet: Packet) -> None:
        """Compute the turn stage and reset the up-phase cursor."""
        packet.bmin_turn = self.tables.turn(packet.src, packet.dst)
        packet.bmin_going_up = True
        packet.bmin_boundary = 0
        packet.bmin_line = packet.src

    def candidates(self, packet: Packet) -> list[PhysChannel]:
        """Fig. 7's decision, as concrete channels (see module docs).

        All three branches answer from the memoized
        :class:`~repro.routing.memo.BminTables` (callers never mutate
        the returned lists):

        * turnaround (up, b == turn): left output port l_{d_b}
          (Fig. 7, step 2);
        * forward (up): any right port (Fig. 7, step 3);
        * down, at the stage-(b-1) switch: left port l_{d_{b-1}}
          (Fig. 7, step 4; b == 0 never asks -- that hop was delivery).
        """
        b = packet.bmin_boundary
        line = packet.bmin_line
        if packet.bmin_going_up:
            if b == packet.bmin_turn:
                return self.tables.turn_candidates(b, line, packet.dst)
            return self.tables.up_candidates(b, line)
        return self.tables.down_candidates(b, line, packet.dst)

    def advance(self, packet: Packet, channel: PhysChannel) -> None:
        """Update phase/boundary/line from the acquired channel."""
        direction, boundary, line = channel.meta
        packet.bmin_boundary = boundary
        packet.bmin_line = line
        if direction == "bwd":
            packet.bmin_going_up = False


class SmartBidirectionalNetwork(BidirectionalNetwork):
    """BMIN with one-step-lookahead forward selection.

    The paper (Section 5.3.3) notes that under permutation traffic the
    BMIN could route contention-free "if the forward channel is
    properly chosen".  This variant implements a cheap version of
    "properly": among the free forward candidates at stage b, prefer
    those whose *implied backward channel at boundary b+1* -- fully
    determined once digit b is chosen, since the down line at boundary
    j carries the forward scramble below j and the destination digits
    above -- is currently free.  (It peeks at remote channel state, so
    it is an upper-bound experiment, not a realizable distributed
    policy; see ``tests/wormhole/test_smart_bmin.py``.)
    """

    def preferred_lane(self, packet: Packet, free: list, rng):
        """Prefer forward lanes whose implied next down channel is free."""
        if not packet.bmin_going_up:
            return None
        k, n = self.bmin.k, self.bmin.n
        b = packet.bmin_boundary  # header at stage b; candidates at b+1
        d_digits = to_digits(packet.dst, k, n)
        good = []
        for lane in free:
            meta = lane.channel.meta
            if meta is None or meta[0] != "fwd":
                return None  # deterministic hop: nothing to bias
            line = meta[2]
            digits = list(to_digits(line, k, n))
            down_digits = digits[: b + 1] + list(d_digits[b + 1 :])
            down = self.bwd[(b + 1, from_digits(down_digits, k))]
            if not down.busy and not down.faulty:
                good.append(lane)
        if good:
            return good[0] if len(good) == 1 else rng.choice(good)
        return None


def build_network(
    kind: str | NetworkKind,
    k: int = 4,
    n: int = 3,
    topology: str = "cube",
    dilation: int = 2,
    virtual_channels: int = 2,
    bmin_virtual_channels: int = 1,
    router: str = "dor",
    vlink_slowdown: int = 1,
    adaptive_lanes: int = 1,
) -> SimNetwork:
    """Construct one of the paper's four networks or a direct fabric.

    ``kind`` is "tmin", "dmin", "vmin", "bmin", "mesh3d" or "torus3d".
    ``topology`` selects the Delta MIN for the unidirectional kinds
    (the paper settles on "cube"; "butterfly" reproduces Figs. 16-17).
    ``dilation`` applies to DMIN, ``virtual_channels`` to VMIN,
    ``bmin_virtual_channels`` to the BMIN future-work variant.  The
    direct kinds read ``k``/``n`` as the k-ary n-dimensional geometry
    plus ``router`` ("dor" | "adaptive"), ``vlink_slowdown`` and
    ``adaptive_lanes`` (see :mod:`repro.direct.network`).
    """
    kind = NetworkKind(kind) if not isinstance(kind, NetworkKind) else kind
    if kind in (NetworkKind.MESH3D, NetworkKind.TORUS3D):
        # Local import: repro.direct imports this module at load time.
        from repro.direct.network import DirectNetwork
        from repro.direct.topo import DirectTopology

        return DirectNetwork(
            DirectTopology(k=k, n=n, wrap=kind is NetworkKind.TORUS3D),
            router=router,
            adaptive_lanes=adaptive_lanes,
            vlink_slowdown=vlink_slowdown,
        )
    if kind is NetworkKind.BMIN:
        return BidirectionalNetwork(
            BidirectionalMIN(k, n), virtual_channels=bmin_virtual_channels
        )
    spec = build_min(topology, k, n)
    if kind is NetworkKind.TMIN:
        return UnidirectionalNetwork(spec)
    if kind is NetworkKind.DMIN:
        return UnidirectionalNetwork(spec, dilation=dilation)
    return UnidirectionalNetwork(spec, virtual_channels=virtual_channels)
