"""The two-phase cycle engine driving a simulated wormhole network.

Each simulation cycle (= the time to move one flit across one channel;
0.05 us at the paper's 20 flits/us):

* **Phase A (allocation)** -- in random order (the paper's asynchronous
  switches), every header waiting at a switch input tries to acquire a
  lane for its next hop: the tag-determined channel (TMIN), a random
  free lane of the tag-determined port (DMIN dilated lanes / VMIN
  virtual channels), or a random free forward channel / the
  deterministic turnaround & backward channel (BMIN).  Nodes whose FCFS
  queue is non-empty start injecting when their injection channel
  frees.
* **Phase B (advance)** -- every busy physical channel, processed
  downstream-first, transmits at most one flit (round-robin over its
  ready lanes, so active virtual channels share the wire's bandwidth
  equally).  A full pipeline thus moves every flit of a worm one hop
  per cycle -- the paper's synchronized worm transmission.

The engine runs inside a :class:`repro.sim.Environment`: a clock process
steps cycles, fast-forwarding across idle gaps, while workload processes
call :meth:`WormholeEngine.offer` to submit messages.
"""

from __future__ import annotations

import math
import os
from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from operator import attrgetter, itemgetter
from typing import Callable, Optional

from repro.obs.bus import EventBus
from repro.sim.core import Environment
from repro.sim.rng import RandomStream
from repro.wormhole import channel as channel_mod
from repro.wormhole.channel import Lane, PhysChannel
from repro.wormhole.network import SimNetwork
from repro.wormhole.packet import Packet, PacketState

#: Channel bandwidth in the paper's units; one cycle is 1/20 us.
FLITS_PER_MICROSECOND = 20.0

#: Recognised engine paths: the optimized default, the simple reference
#: implementation the differential suite certifies it against, and the
#: numpy-backed batch tier (the fast path plus the SoA kernel of
#: :mod:`repro.wormhole.batch`: span-skipping clock, SoA free-run
#: ledger, vectorized multi-worm advance, mirrored RNG).  All three are
#: bit-identical in every observable; batch requires the optional numpy
#: dependency (``pip install repro[fast]``) and refuses cleanly without.
ENGINE_KINDS = ("fast", "reference", "batch")

#: Sort key for the fast path's active channel list.
_TOPO_ORDER = attrgetter("topo_order")


#: Sort key of the per-worm advance: ``topo_order`` of the worm's newest
#: lane, mirrored into ``Packet._order`` at the two acquire sites.
#: Every within-cycle event Phase B emits for a worm -- the header
#: arriving at the next switch, the tail reaching the destination --
#: happens on the worm's most recently acquired lane, so processing
#: worms in this order reproduces the reference sweep's interleaving of
#: ``pending.append`` and ``_finalize`` exactly.
_WORM_ORDER = attrgetter("_order")

#: Sort key of a free-run action bucket: (channel topo key, action
#: kind).  Kind breaks the tie when one channel's move both drains the
#: upstream buffer (0) and crosses a tail (1) or delivers (2) -- the
#: reference sweep performs them in exactly that order within the move.
_ACT_KEY = itemgetter(0, 1)


def _batch_vector_min() -> int:
    """Vectorization threshold of the batch tier.

    ``REPRO_BATCH_VECTOR_MIN`` pins how many eligible moving worms it
    takes before Phase B switches from the scalar walk to the
    vectorized ``plan_moves`` (the property suite sets it to 1 to
    force the vector path).  The threshold only selects *which
    implementation executes the same one-cycle plan* -- the two are
    certified equal by ``tests/properties/test_batch_soa.py`` and the
    adversarial differential cases -- so the environment read is
    result-neutral (see the purity allowlist).
    """
    return int(os.environ.get("REPRO_BATCH_VECTOR_MIN", "24"))


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve the engine-path choice against the ``REPRO_ENGINE`` env var.

    Explicit arguments win; otherwise ``REPRO_ENGINE=reference`` (set
    e.g. by ``python -m repro.experiments --engine=reference``) opts out
    of the fast path, and the default is ``"fast"``.  The environment
    variable -- not a thread-local or global -- is the carrier so the
    choice survives into :mod:`repro.experiments.parallel` worker
    processes unchanged.
    """
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE", "") or "fast"
    if engine not in ENGINE_KINDS:
        raise ValueError(f"engine must be one of {ENGINE_KINDS}, got {engine!r}")
    return engine


class DeadlockError(RuntimeError):
    """Raised by the watchdog: packets in flight but zero progress.

    The paper's four networks cannot reach this state (feed-forward /
    acyclic turnaround dependencies); the watchdog protects users who
    wire custom topologies through :class:`repro.wormhole.network.SimNetwork`.
    """


@dataclass
class DeliveryRecord:
    """Immutable facts about one delivered packet."""

    pid: int
    src: int
    dst: int
    length: int
    created: float
    inject_start: float
    delivered_at: float

    @property
    def latency(self) -> float:
        """Creation to tail delivery, in cycles (queueing included)."""
        return self.delivered_at - self.created

    @property
    def network_latency(self) -> float:
        """Injection start to tail delivery, in cycles."""
        return self.delivered_at - self.inject_start


@dataclass
class EngineStats:
    """Counters the engine maintains; resettable at warmup boundaries."""

    offered_packets: int = 0
    offered_flits: int = 0
    delivered_packets: int = 0
    delivered_flits: int = 0
    failed_packets: int = 0
    #: Failed packets re-injected by a recovery layer (see
    #: :mod:`repro.faults.recovery`; the engine only hosts the counter).
    retried_packets: int = 0
    #: Failed packets a recovery layer gave up on (attempts exhausted).
    dropped_packets: int = 0
    #: Messages dropped by a bounded-admission policy (shed-newest /
    #: shed-oldest; see :mod:`repro.stability.admission`).
    shed_packets: int = 0
    #: Offers refused outright by the *block* admission policy (the
    #: source holds the message and retries -- backpressure).
    throttled_packets: int = 0
    #: Worms aborted by the progress watchdog (livelock / deadlock
    #: recovery; see :mod:`repro.stability.watchdog`).  These also
    #: count in ``failed_packets`` (the abort path is shared).
    stall_aborted_packets: int = 0
    #: Data segments re-offered by the end-to-end transport layer
    #: (see :mod:`repro.transport`; the engine only hosts the counter).
    retransmitted_packets: int = 0
    #: Transport retransmission timers that fired before an ack.
    rto_fires: int = 0
    #: Duplicate data arrivals suppressed by the transport receiver.
    dup_acks: int = 0
    #: Transport flows that exhausted max_attempts and were aborted.
    flows_aborted: int = 0
    #: Acknowledgement packets offered by the transport layer (these
    #: also count in ``offered_packets``/``delivered_packets``).
    ack_packets: int = 0
    #: Flits of *first-time* end-to-end deliveries (excludes duplicate
    #: data and ack traffic) -- goodput, vs. raw ``delivered_flits``.
    goodput_flits: int = 0
    max_queue_len: int = 0
    records: list[DeliveryRecord] = field(default_factory=list)
    window_start: float = 0.0

    def reset_window(self, now: float) -> None:
        """Start a fresh measurement window (keeps nothing)."""
        self.offered_packets = 0
        self.offered_flits = 0
        self.delivered_packets = 0
        self.delivered_flits = 0
        self.failed_packets = 0
        self.retried_packets = 0
        self.dropped_packets = 0
        self.shed_packets = 0
        self.throttled_packets = 0
        self.stall_aborted_packets = 0
        self.retransmitted_packets = 0
        self.rto_fires = 0
        self.dup_acks = 0
        self.flows_aborted = 0
        self.ack_packets = 0
        self.goodput_flits = 0
        self.max_queue_len = 0
        self.records = []
        self.window_start = now


class WormholeEngine:
    """Simulates one network instance under an externally offered load."""

    def __init__(
        self,
        env: Environment,
        network: SimNetwork,
        rng: Optional[RandomStream] = None,
        record_deliveries: bool = True,
        sanitize: Optional[bool] = None,
        fast: Optional[bool] = None,
        batch: Optional[bool] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.rng = rng if rng is not None else RandomStream(0, name="engine")
        self.record_deliveries = record_deliveries
        self.stats = EngineStats()
        #: ``fast`` True runs the optimized per-cycle phases (active
        #: channel list, cached blocked headers); False the
        #: straightforward reference phases.  ``batch`` layers the SoA
        #: kernel of :mod:`repro.wormhole.batch` on the fast path (and
        #: implies it).  All paths make bit-identical decisions -- see
        #: ``tests/differential``.  None defers to ``REPRO_ENGINE``;
        #: note an *explicit* ``fast`` pins the tier (the env var must
        #: not silently upgrade a caller who asked for plain fast).
        kind_env = resolve_engine() if (fast is None or batch is None) else None
        if batch is None:
            batch = (kind_env == "batch") if fast is None else False
        if fast is None:
            fast = kind_env != "reference"
        if batch and not fast:
            raise ValueError("batch implies the fast path (fast=False given)")
        self.fast = fast
        self.batch = batch
        #: Free-run ledger of the batch tier (replaces the ``_lazy``
        #: dict buckets) plus its vectorized-advance threshold.
        self._ledger = None
        if batch:
            from repro.wormhole import batch as batch_mod

            batch_mod.require_numpy()
            self._batch_mod = batch_mod
            # Serve the engine's allocation stream from the mirrored
            # MT19937 (bit-identical draws, bulk-prefetched words).
            self.rng = batch_mod.BatchStream.adopt(self.rng)
            self._ledger = batch_mod.SoALedger()
            self._vec_min = _batch_vector_min()
        #: Count of pending headers whose blocked-decision cache is
        #: valid at the current fault epoch.  When it covers the whole
        #: routing queue, Phase A's scan is provably a no-op beyond the
        #: service-order shuffle (batch tier's all-blocked exit).
        self._blk_valid = 0
        #: Deferred service-order shuffles (batch tier).  An all-blocked
        #: cycle's shuffle permutes ``_pending_route`` but nothing reads
        #: the order until the next full allocation scan -- and while
        #: every header is blocked and nothing is moving, the queue's
        #: membership cannot change either.  So quiet cycles bump this
        #: counter instead of drawing, and :meth:`_flush_shuffles`
        #: replays the exact draws (``BatchStream.shuffle_k``) right
        #: before the next order-observing shuffle or scan.
        self._shuffle_debt = 0
        #: Channels with at least one owned lane, in reverse-topological
        #: order (fast path's working set for Phase B).
        self._active: list[PhysChannel] = []
        #: channel -> [(wake token, packet)] registrations of blocked
        #: headers waiting for one of its lanes to free (fast path).
        self._waiters: dict[PhysChannel, list[tuple[int, Packet]]] = {}
        #: Worms that may move a flit this cycle (fast path, per-worm
        #: Phase B): a worm that moved nothing is dropped -- with
        #: worm-private 1-flit buffers it provably stays stalled until
        #: Phase A grants its header a new lane, which re-adds it.
        self._moving: list[Packet] = []
        #: Free-run fast-forward ledger (per-worm Phase B): cycle ->
        #: [(channel topo key, kind, packet, token, lane)] actions the
        #: action merge replays at that cycle, sorted by ``_ACT_KEY`` so
        #: each lands at the reference sweep's within-cycle position.
        #: Kinds: 0 = final buffer drain, 1 = tail release, 2 = deliver.
        self._lazy: dict[int, list] = {}
        #: Worms currently (or recently) free-running, for bulk
        #: materialization when the channel sweep takes over.
        self._lazy_pkts: list[Packet] = []
        #: Live free-running worms (progress/watchdog accounting).
        self._lazy_live = 0
        #: Per-worm Phase B is valid only when every channel has a
        #: single lane (TMIN/DMIN/BMIN): multi-lane wires (the VMIN's
        #: virtual channels) couple worms through the round-robin
        #: arbiter, so those networks keep the channel sweep.  Networks
        #: whose routes may defy the topological channel order (the
        #: direct topologies' adaptive routing; ``worm_phase_ok``) and
        #: slowed wires (per-channel cooldown is channel-sweep
        #: bookkeeping) keep it too.
        self._worm_mode = network.worm_phase_ok and all(
            len(ch.lanes) == 1 and ch.slowdown == 1
            for ch in network.topo_channels
        )
        #: node -> injection channel, resolved once (fast path).
        self._inj = [
            network.injection_channel(i) for i in range(network.N)
        ]
        #: injection channel -> its node (release-site reverse lookup).
        self._node_of_inj: dict[PhysChannel, int] = {
            ch: node for node, ch in enumerate(self._inj)
        }
        #: Backlogged nodes whose injection channel can act this cycle:
        #: lane free (inject) or channel faulty (drain the queue).
        #: Maintained by :meth:`offer`, the fast path's release sites,
        #: and a fault-epoch guard; the fast Phase A visits only these
        #: instead of scanning every backlogged node.
        self._inj_ready: set[int] = set()
        self._inj_epoch = channel_mod.fault_epoch
        #: Opt-in runtime invariant checker (REPRO_SANITIZE=1, or the
        #: explicit ``sanitize=True``); None costs nothing per cycle.
        self.sanitizer = None
        if sanitize is None:
            from repro.verify.sanitizer import sanitize_enabled

            sanitize = sanitize_enabled()
        if sanitize:
            from repro.verify.sanitizer import Sanitizer
            from repro.wormhole import channel as _channel_mod

            self.sanitizer = Sanitizer(network)
            # Pairing checks hook the channel layer globally; the rule
            # is lane-local, so one observer serves any number of
            # engines.
            _channel_mod.release_observer = self.sanitizer.on_release
        #: The structured telemetry bus every state change publishes
        #: into (see :mod:`repro.obs.bus`).  With no sinks attached the
        #: hot path pays one hoisted flag read per cycle, nothing more.
        self.bus = EventBus()
        #: Backing store of the :attr:`tracer` property.
        self._tracer = None
        #: Cycles of zero progress (no flit moved, no lane granted,
        #: packets in flight) before :class:`DeadlockError` is raised.
        #: 0 disables the watchdog (the default: the paper's networks
        #: are deadlock-free by construction).
        self.deadlock_watchdog = 0
        self._stalled_cycles = 0
        self._progressed = False
        #: Optional bounded-admission policy consulted by :meth:`offer`
        #: (any object with ``capacity`` and ``decide(engine, src)``;
        #: see :mod:`repro.stability.admission`).  None -- the default,
        #: and the paper's model -- grows source queues without bound.
        self.admission = None
        #: Optional runtime progress monitor called once per cycle
        #: (see :class:`repro.stability.watchdog.ProgressWatchdog`).
        #: None costs one ``is`` test per cycle.
        self.watchdog = None

        #: Observer hooks (e.g. :class:`repro.faults.recovery.SourceRetry`).
        #: Each is a list of callables invoked with the packet; exceptions
        #: propagate (observers must not fail).
        self.on_packet_offered: list[Callable[[Packet], None]] = []
        self.on_packet_delivered: list[Callable[[Packet], None]] = []
        self.on_packet_failed: list[Callable[[Packet], None]] = []

        self.queues: list[deque[Packet]] = [deque() for _ in range(network.N)]
        #: Nodes with a non-empty queue (avoids scanning all N each cycle).
        self._backlogged: set[int] = set()
        self._pending_route: list[Packet] = []
        self._active_packets = 0
        self._next_pid = 0
        self.cycles_run = 0
        self._clock_started = False
        self._wakeup = None  # event the idle clock sleeps on, if any

    # -- telemetry ------------------------------------------------------------

    @property
    def tracer(self):
        """Optional :class:`repro.wormhole.trace.Tracer`, bus-backed.

        Assigning a tracer attaches it to :attr:`bus` (and detaches any
        previous one); assigning None detaches.  Kept as a property for
        source compatibility with pre-bus code that wrote
        ``engine.tracer = Tracer()``.
        """
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        if tracer is self._tracer:
            return
        if self._tracer is not None:
            self.bus.detach(self._tracer)
        self._tracer = tracer
        if tracer is not None:
            self.bus.attach(tracer)

    # -- workload interface ---------------------------------------------------

    def offer(self, src: int, dst: int, length: int) -> Optional[Packet]:
        """Submit a message at the current simulation time (FCFS queue).

        With :attr:`admission` unset (the default) the message is
        always queued and the engine behaves exactly as the paper
        models it.  With a bounded-admission policy installed and the
        source queue at capacity, the policy decides:

        * ``"block"`` -- the offer is refused; returns None and counts
          in ``stats.throttled_packets`` (the caller should hold the
          message and retry: backpressure);
        * ``"shed-newest"`` -- the new message is dropped; returns the
          packet in :attr:`~repro.wormhole.packet.PacketState.SHED`
          state and counts in ``stats.shed_packets``;
        * ``"shed-oldest"`` -- the head of the source queue is shed to
          make room and the new message is admitted normally.

        Shed packets are *not* failures: they never fire the failure
        hooks or ``abort`` events (a recovery layer must not retry a
        deliberate load-shedding drop); they publish the cold ``shed``
        bus kind instead.
        """
        adm = self.admission
        if adm is not None and len(self.queues[src]) >= adm.capacity:
            decision = adm.decide(self, src)
            if decision == "block":
                self.stats.throttled_packets += 1
                if self.bus.enabled:
                    self.bus.publish_throttle(self.env.now, src)
                return None
            if decision == "shed-newest":
                p = Packet(
                    self._next_pid, src, dst, length, created=self.env.now
                )
                self._next_pid += 1
                p.state = PacketState.SHED
                self.stats.shed_packets += 1
                if self.bus.enabled:
                    self.bus.publish_shed(self.env.now, p)
                return p
            if decision != "shed-oldest":
                raise ValueError(
                    f"unknown admission decision {decision!r} "
                    "(expected 'block', 'shed-newest' or 'shed-oldest')"
                )
            victim = self.queues[src].popleft()
            victim.state = PacketState.SHED
            self.stats.shed_packets += 1
            if self.bus.enabled:
                self.bus.publish_shed(self.env.now, victim)
        p = Packet(self._next_pid, src, dst, length, created=self.env.now)
        self._next_pid += 1
        self.queues[src].append(p)
        self._backlogged.add(src)
        inj = self._inj[src]
        if inj.lanes[0].owner is None or inj.faulty:
            self._inj_ready.add(src)
        if self._wakeup is not None:
            self._wakeup.succeed()
            self._wakeup = None
        self.stats.offered_packets += 1
        self.stats.offered_flits += length
        qlen = len(self.queues[src])
        if qlen > self.stats.max_queue_len:
            self.stats.max_queue_len = qlen
        if self.bus.enabled:
            self.bus.publish_offer(self.env.now, p)
        for hook in self.on_packet_offered:
            hook(p)
        return p

    @property
    def idle(self) -> bool:
        """No packet in the network and no packet queued."""
        return self._active_packets == 0 and not self._backlogged

    @property
    def in_flight(self) -> int:
        """Packets currently inside the network (not queued, not done)."""
        return self._active_packets

    def queue_length(self, node: int) -> int:
        """Messages waiting in one node's FCFS source queue."""
        return len(self.queues[node])

    def in_flight_packets(self) -> list[Packet]:
        """Distinct packets currently inside the network (diagnostics).

        Collected from lane ownership plus the header-routing queue; a
        packet whose every acquired lane has already been released (a
        short worm blocked at its last switch) appears only in the
        latter.
        """
        seen: dict[int, Packet] = {}
        for ch in self.network.topo_channels:
            if ch.owned_count == 0:
                continue
            for lane in ch.lanes:
                if lane.owner is not None:
                    seen.setdefault(lane.owner.pid, lane.owner)
        for p in self._pending_route:
            if p.state is PacketState.ACTIVE:
                seen.setdefault(p.pid, p)
        return list(seen.values())

    # -- the cycle -------------------------------------------------------------

    def step_cycle(self) -> None:
        """Run one cycle: allocation, then flit advance."""
        self._progressed = False
        if self.fast:
            self._phase_allocate_fast()
            self._phase_advance_fast()
        else:
            self._phase_allocate()
            self._phase_advance()
        self.cycles_run += 1
        if self.sanitizer is not None:
            self.sanitizer.check_cycle(self)
        if self.watchdog is not None:
            self.watchdog.on_cycle(self)
        if self.deadlock_watchdog:
            if self._progressed or self._active_packets == 0:
                self._stalled_cycles = 0
            else:
                self._stalled_cycles += 1
                if self._stalled_cycles >= self.deadlock_watchdog:
                    raise DeadlockError(self._deadlock_report())

    def _deadlock_report(self) -> str:
        """Diagnostic message for the watchdog (custom-topology debugging)."""
        stalled = self.in_flight_packets()
        header = (
            f"{self._active_packets} packets in flight made no progress "
            f"for {self._stalled_cycles} cycles at t={self.env.now} "
            f"({len(stalled)} stalled worms)"
        )
        if stalled:
            oldest = min(stalled, key=lambda p: p.created)
            if oldest.lanes:
                last = oldest.lanes[-1]
                where = (
                    f"holding {len(oldest.lanes)} lanes, head at "
                    f"{last.channel.label}.{last.index} "
                    f"(hop {last.route_idx}, sent {last.sent}/{oldest.length})"
                )
            else:
                where = "holding no lanes (header awaiting first allocation)"
            header += (
                f"; oldest: pkt#{oldest.pid} {oldest.src}->{oldest.dst} "
                f"len={oldest.length} created t={oldest.created} {where}"
            )
        held = ", ".join(
            f"{ch.label}(pkt#{lane.owner.pid})"
            for ch in self.network.topo_channels
            for lane in ch.lanes
            if lane.owner is not None
        )
        return f"{header}; held channels: {held}"

    def _phase_allocate(self) -> None:
        # Hoist the bus's hot flag once per cycle: with no hot sink
        # attached, every per-packet publish site below reduces to one
        # local ``is not None`` check.
        bus = self.bus
        obs = bus if bus.hot else None
        # Start injections: one-port nodes begin transmitting the next
        # queued message once their single injection lane frees.
        # Sorted order (not raw set order) keeps the cycle reproducible
        # independent of set-internal layout -- and identical between
        # the fast and reference paths.
        if self._backlogged:
            drained = []
            for node in sorted(self._backlogged):
                inj = self.network.injection_channel(node)
                if inj.faulty:
                    # The node is cut off: every queued message dies.
                    while self.queues[node]:
                        p = self.queues[node].popleft()
                        p.state = PacketState.FAILED
                        self.stats.failed_packets += 1
                        if bus.enabled:
                            bus.publish_abort(self.env.now, p)
                        for hook in self.on_packet_failed:
                            hook(p)
                    drained.append(node)
                    continue
                lane = inj.lanes[0]
                if lane.owner is not None:
                    continue
                p = self.queues[node].popleft()
                p.state = PacketState.ACTIVE
                p.inject_start = self.env.now
                self.network.prepare(p)
                lane.acquire(p)
                self._active_packets += 1
                self._progressed = True
                if obs is not None:
                    obs.publish_inject(self.env.now, p)
                    obs.publish_acquire(self.env.now, p, inj, lane.index)
                if not self.queues[node]:
                    drained.append(node)
            for node in drained:
                self._backlogged.discard(node)

        if not self._pending_route:
            return
        # Random service order models switches acting asynchronously.
        self.rng.shuffle(self._pending_route)
        still_pending = []
        for p in self._pending_route:
            if p.state is not PacketState.ACTIVE or not p.needs_route:
                # Aborted externally (abort_packet / a hard fault) while
                # its header sat in the routing queue: drop the entry.
                continue
            candidates = self.network.candidates(p)
            usable = [ch for ch in candidates if not ch.faulty]
            if not usable:
                # Every possible next hop is faulty: the route is dead.
                # Kill the worm and reclaim its channels and buffers
                # (the paper's fault-tolerance motivation: a unique-path
                # network cannot survive this; DMIN/BMIN rarely get here).
                self._abort(p)
                continue
            free = [lane for ch in usable for lane in ch.lanes if lane.owner is None]
            if not free:
                if obs is not None:
                    obs.publish_block(self.env.now, p, usable)
                still_pending.append(p)
                continue
            if len(free) == 1:
                lane = free[0]
            else:
                # Networks may bias adaptive choices (e.g. the BMIN
                # "properly chosen forward channel" experiment); the
                # default returns None -> uniform random, the paper's
                # policy.
                lane = self.network.preferred_lane(p, free, self.rng)
                if lane is None:
                    lane = self.rng.choice(free)
            lane.acquire(p)
            self.network.advance(p, lane.channel)
            p.needs_route = False
            self._progressed = True
            if obs is not None:
                obs.publish_acquire(self.env.now, p, lane.channel, lane.index)
        self._pending_route = still_pending

    def _phase_advance(self) -> None:
        pending = self._pending_route
        bus = self.bus
        obs = bus if bus.hot else None
        now = self.env.now
        for ch in self.network.topo_channels:
            if ch.owned_count == 0:
                continue
            lane = ch.transmit()
            if lane is None:
                continue
            self._progressed = True
            p = lane.owner
            assert p is not None
            if obs is not None:
                obs.publish_transmit(now, ch, lane)
            if ch.is_delivery:
                if lane.sent == p.length:
                    lane.release()
                    if obs is not None:
                        obs.publish_release(now, p, ch, lane.index)
                    self._finalize(p)
            else:
                if lane.sent == 1 and lane.route_idx == len(p.lanes) - 1:
                    # Header just reached the next switch input buffer.
                    p.needs_route = True
                    pending.append(p)
                if lane.sent == p.length:
                    lane.release()
                    if obs is not None:
                        obs.publish_release(now, p, ch, lane.index)

    # -- the fast path ---------------------------------------------------------
    #
    # The two methods below make *exactly* the decisions of the
    # reference phases above -- same RNG draws in the same order, same
    # bus events, same stats -- but avoid the two scans that dominate
    # the reference cost: recomputing routing candidates for headers
    # that are provably still blocked (Phase A), and visiting every
    # channel of the network when only a few are busy (Phase B).
    # ``tests/differential`` certifies the equivalence end to end.

    def _flush_shuffles(self) -> None:
        """Replay deferred all-blocked service-order shuffles (batch).

        Debt only accrues while the routing queue's membership is
        provably frozen (every header blocked with a valid cache,
        nothing moving, nothing injecting), so replaying the postponed
        Fisher-Yates passes now -- fused via
        :meth:`~repro.wormhole.batch.BatchStream.shuffle_k` -- consumes
        exactly the words the per-cycle shuffles would have, in order.
        """
        debt = self._shuffle_debt
        if debt:
            self._shuffle_debt = 0
            pending = self._pending_route
            if len(pending) > 1:
                self.rng.shuffle_k(pending, debt)

    def _phase_allocate_fast(self) -> None:
        """Phase A with cached blocked headers and active-list upkeep.

        Invariants relied on:

        * A header that found no free lane stays blocked until a lane
          of one of its usable candidate channels is *released* (lanes
          only free via ``Lane.release``) or the fault state changes
          (which can alter the usable set itself).  Releases wake the
          registered waiters via :meth:`_wake_waiters`; fault flips
          bump the channel layer's global ``fault_epoch``.
        * The header's candidate set is a pure function of its routing
          state, which does not change while it is blocked -- so the
          cached ``usable`` list republished to the bus is identical
          to what the reference path would recompute.
        * Blocked headers stay in ``_pending_route`` (the cycle's
          shuffle must see the same list in both paths) and consume no
          randomness either way.
        """
        bus = self.bus
        obs = bus if bus.hot else None
        active = self._active
        moving = self._moving
        now = self.env.now
        epoch = channel_mod.fault_epoch
        if self._inj_epoch != epoch:
            # A fault flipped somewhere since the last cycle: it may
            # have cut off (or reconnected) any node, so conservatively
            # re-arm every backlogged node for one full scan.  Every
            # blocked-header cache is stale at the new epoch too, so
            # the valid-cache census restarts from zero.
            self._inj_epoch = epoch
            self._inj_ready |= self._backlogged
            self._blk_valid = 0
        if self._inj_ready:
            # Exactly the backlogged nodes the reference scan would act
            # on: a node with an owned, healthy injection lane does
            # nothing there, and stays off this set until the release
            # site (or a new offer, or a fault flip) re-arms it.  Every
            # visited node leaves the set: it injects (lane now owned),
            # drains (queue now empty), or was stale.
            ready = sorted(self._inj_ready)
            self._inj_ready.clear()
            backlogged = self._backlogged
            queues = self.queues
            inj_of = self._inj
            for node in ready:
                if node not in backlogged:
                    continue  # stale: queue emptied externally
                inj = inj_of[node]
                if inj.faulty:
                    # The node is cut off: every queued message dies.
                    while queues[node]:
                        p = queues[node].popleft()
                        p.state = PacketState.FAILED
                        self.stats.failed_packets += 1
                        if bus.enabled:
                            bus.publish_abort(now, p)
                        for hook in self.on_packet_failed:
                            hook(p)
                    backlogged.discard(node)
                    continue
                lane = inj.lanes[0]
                if lane.owner is not None:
                    continue
                p = queues[node].popleft()
                p.state = PacketState.ACTIVE
                p.inject_start = now
                self.network.prepare(p)
                lane.acquire(p)
                if not inj.in_active:
                    inj.in_active = True
                    insort(active, inj, key=_TOPO_ORDER)
                p._moving = True
                p._order = inj.topo_order
                moving.append(p)
                self._active_packets += 1
                self._progressed = True
                if obs is not None:
                    obs.publish_inject(now, p)
                    obs.publish_acquire(now, p, inj, lane.index)
                if not queues[node]:
                    backlogged.discard(node)

        if not self._pending_route:
            return
        if (
            self._blk_valid == len(self._pending_route)
            and self.batch
            and obs is None
        ):
            # Every pending header holds a current-epoch blocked cache:
            # the scan below would take the cache-hit exit for each one
            # and rebuild the same list.  The service-order shuffle is
            # the scan's only remaining observable (RNG draws), and
            # with nothing moving the queue's membership is frozen too
            # -- so the draw itself is deferred (shuffle debt) and
            # replayed verbatim before the next order-observing scan.
            # (With a hot bus sink the per-header block events must
            # still be published, so the full scan runs.)
            if moving:
                # Phase B may append a new header this cycle: settle
                # the debt and draw this cycle's shuffle for real.
                if self._shuffle_debt:
                    self._flush_shuffles()
                if len(self._pending_route) > 1:
                    self.rng.shuffle(self._pending_route)
            elif len(self._pending_route) > 1:
                self._shuffle_debt += 1
            return
        # Random service order models switches acting asynchronously.
        # (A one-element Fisher-Yates draws nothing, so skipping the
        # call outright consumes the identical RNG stream.)
        if self._shuffle_debt:
            self._flush_shuffles()
        if len(self._pending_route) > 1:
            self.rng.shuffle(self._pending_route)
        still_pending = []
        sp_append = still_pending.append
        ACTIVE_ = PacketState.ACTIVE
        for p in self._pending_route:
            # Cache-hit fast exit first: a non-None ``_blk_usable`` at
            # the current fault epoch *implies* an ACTIVE header still
            # waiting to route (grants, wakes, and aborts all clear the
            # cache), and no lane of any usable candidate was released
            # since the cached decision -- the free set is provably
            # still empty.
            usable = p._blk_usable
            if usable is not None and p._blk_epoch == epoch:
                if obs is not None:
                    obs.publish_block(now, p, usable)
                sp_append(p)
                continue
            if p.state is not ACTIVE_ or not p.needs_route:
                # Aborted externally while its header sat in the
                # routing queue: drop the entry.
                continue
            candidates = self.network.candidates(p)
            usable = [ch for ch in candidates if not ch.faulty]
            if not usable:
                # Every possible next hop is faulty: the route is dead.
                self._abort(p)
                continue
            free = [
                lane for ch in usable for lane in ch.lanes if lane.owner is None
            ]
            if not free:
                # Cache the decision and register for wake-on-release.
                p._blk_usable = usable
                p._blk_epoch = epoch
                self._blk_valid += 1
                token = p._blk_token
                waiters = self._waiters
                for ch in usable:
                    lst = waiters.get(ch)
                    if lst is None:
                        waiters[ch] = [(token, p)]
                    else:
                        lst.append((token, p))
                if obs is not None:
                    obs.publish_block(now, p, usable)
                sp_append(p)
                continue
            if len(free) == 1:
                lane = free[0]
            else:
                lane = self.network.preferred_lane(p, free, self.rng)
                if lane is None:
                    lane = self.rng.choice(free)
            if p._blk_usable is not None:
                # Previously blocked, now granted: invalidate the stale
                # waiter registrations (lazily, via the token).
                p._blk_usable = None
                p._blk_token += 1
            lane.acquire(p)
            ch = lane.channel
            if not ch.in_active:
                ch.in_active = True
                insort(active, ch, key=_TOPO_ORDER)
            p._order = ch.topo_order
            if not p._moving:
                # A granted header can move again (and, once stalled,
                # only a grant can unstick it): back on the worm list.
                p._moving = True
                moving.append(p)
            self.network.advance(p, ch)
            p.needs_route = False
            self._progressed = True
            if obs is not None:
                obs.publish_acquire(now, p, ch, lane.index)
        self._pending_route = still_pending

    def _phase_advance_fast(self) -> None:
        """Phase B, fast path: per-worm sweep or active-channel sweep.

        On all-single-lane networks with no hot bus sink the per-worm
        sweep (:meth:`_phase_advance_worms`) visits only worms that
        can still move; otherwise (VMIN's shared wires, or a tracer
        demanding the exact per-channel event order) the channel sweep
        runs.  Both orderings move the same flits and emit the same
        observable state, so flipping between them mid-run -- a tracer
        attaching, say -- is safe.
        """
        if self._worm_mode and not self.bus.hot:
            self._phase_advance_worms()
        else:
            if self._lazy_live:
                self._materialize_lazy()
            self._phase_advance_channels()

    def _phase_advance_channels(self) -> None:
        """Phase B over the active channel list only.

        ``_active`` holds every channel with an owned lane, in
        reverse-topological order (Phase A inserts on acquire; this
        sweep compacts out channels whose last lane released).  During
        the sweep only the *current* channel can change ownership (a
        tail release), so membership of later entries is stable and the
        visit order matches the reference's full ``topo_channels`` scan
        restricted to busy channels -- the same flits move.

        Single-lane channels (every channel except the VMIN's
        virtual-channel wires) take an inlined copy of
        ``PhysChannel._lane_ready`` + ``_move``; multi-lane channels
        keep the round-robin ``transmit()``.
        """
        pending = self._pending_route
        bus = self.bus
        obs = bus if bus.hot else None
        now = self.env.now
        active = self._active
        write = 0
        for ch in active:
            if ch.owned_count == 0:
                ch.in_active = False
                continue
            active[write] = ch
            write += 1
            lanes = ch.lanes
            dlv = ch.is_delivery
            if len(lanes) == 1:
                if ch.cooldown:  # slowed wire resting (matches transmit())
                    ch.cooldown -= 1
                    continue
                lane = lanes[0]
                p = lane.owner
                ridx = lane.route_idx
                if (
                    lane.sent >= p.length
                    or (ridx > 0 and p.lanes[ridx - 1].buf == 0)
                    or (lane.buf != 0 and not dlv)
                ):
                    continue  # not ready this cycle
                if ridx > 0:
                    p.lanes[ridx - 1].buf -= 1
                lane.sent += 1
                if dlv:
                    p.delivered_flits += 1
                else:
                    lane.buf += 1
                if ch.slowdown > 1:
                    ch.cooldown = ch.slowdown - 1
            else:
                lane = ch.transmit()
                if lane is None:
                    continue
                p = lane.owner
                assert p is not None
            self._progressed = True
            if obs is not None:
                obs.publish_transmit(now, ch, lane)
            if dlv:
                if lane.sent == p.length:
                    lane.release()
                    self._lane_freed(ch)
                    if obs is not None:
                        obs.publish_release(now, p, ch, lane.index)
                    self._finalize(p)
            else:
                if lane.sent == 1 and lane.route_idx == len(p.lanes) - 1:
                    # Header just reached the next switch input buffer.
                    p.needs_route = True
                    pending.append(p)
                if lane.sent == p.length:
                    lane.release()
                    self._lane_freed(ch)
                    if obs is not None:
                        obs.publish_release(now, p, ch, lane.index)
        del active[write:]
        # The worm list is not consumed on this branch (the channel
        # sweep ignores it) but must stay consistent for a later switch
        # to the per-worm sweep: compact out finished packets when the
        # dead weight dominates, keep everything still flagged.
        moving = self._moving
        if len(moving) > 64 and len(moving) > (self._active_packets << 1):
            self._moving = [p for p in moving if p._moving]

    def _phase_advance_worms(self) -> None:
        """Phase B per worm: visit only worms that can still move.

        Valid when every channel has one lane and no hot bus sink is
        attached (the dispatcher guarantees both).  Then a worm's flit
        movement depends only on its own lanes' state, so Phase B
        decomposes per worm: a worm that moves zero flits has reached a
        fixed point of its own state and stays stalled until Phase A
        grants its header a new lane -- drop it from the list; the
        grant re-adds it.

        One exception to that stall theorem: a tail release leaves the
        released worm's last flit in the lane's 1-flit buffer, and a
        header granted the lane in that window stalls on ``buf != 0``
        until the *previous* owner's downstream move drains it -- an
        unstall with no grant.  Such a worm (head lane with ``sent ==
        0`` and a non-empty buffer, necessarily a foreign flit) stays
        on the list and keeps polling; the drain resolves within a few
        cycles.  It is also processed *after* the draining worm (whose
        newest lane is strictly downstream), so the header crosses in
        the drain's own cycle, exactly as the reference sweep has it.

        Worms are processed by the topological order of their newest
        lane, which reproduces the reference sweep's within-cycle
        interleaving of header arrivals (``pending.append``) and
        deliveries (``_finalize``): both events happen *on* that
        lane's channel.  The runtime sanitizer cross-checks the stall
        reasoning every cycle (``REPRO_SANITIZE=1``).
        """
        moving = self._moving
        if self._ledger is not None:
            acts = (
                self._ledger.pop_due(self.cycles_run)
                if self._lazy_live
                else None
            )
        else:
            acts = self._lazy.pop(self.cycles_run, None) if self._lazy else None
        if not moving and acts is None:
            if self._lazy_live:
                self._progressed = True  # free-running worms stream
            return
        if len(moving) > 1:
            moving.sort(key=_WORM_ORDER)
        if acts is not None:
            if len(acts) > 1:
                acts.sort(key=_ACT_KEY)
            na = len(acts)
        else:
            na = 0
        ai = 0
        exec_lazy = self._exec_lazy
        pending = self._pending_route
        ACTIVE = PacketState.ACTIVE
        lazy_ok = self.sanitizer is None
        progressed = False
        # Batch tier, dense moving set: advance all independent worms
        # in one vectorized plan (start-of-cycle state; see
        # batch.plan_moves for the independence argument).  Each plan
        # is applied at its worm's exact sweep position below, so the
        # within-cycle event interleaving is untouched.
        plans = None
        if self._ledger is not None and len(moving) >= self._vec_min:
            plans = self._plan_vector(moving)
        write = 0
        for p in moving:
            # Replay the scheduled free-run actions that the reference
            # sweep would perform before this worm's newest channel.
            while ai < na and acts[ai][0] <= p._order:
                if exec_lazy(acts[ai]):
                    progressed = True
                ai += 1
            if p.state is not ACTIVE:
                # Aborted (or externally killed) since its last move.
                p._moving = False
                continue
            # Move every ready flit of this worm, downstream lane
            # first.  Its owned lanes form a suffix of ``p.lanes`` (the
            # tail releases upstream lanes oldest-first), so the walk
            # starts at the newest lane and stops at the first one it
            # no longer owns; per-lane ready/move logic is the inlined
            # single-lane body of ``PhysChannel._lane_ready`` +
            # ``_move``, identical to the channel sweep's.  Only the
            # newest lane can be a delivery lane, see a header arrival,
            # or hold a foreign flit -- the body loop below skips those
            # checks.
            lanes = p.lanes
            length = p.length
            moved = False
            n1 = len(lanes) - 1
            head = lanes[n1]
            if plans is not None and p.pid in plans:
                result = self._apply_plan(p, plans[p.pid])
                if result is None:
                    progressed = True
                    continue  # delivered and finalized
                moved = result
            elif head.owner is p:
                up = lanes[n1 - 1] if n1 else None
                sent = head.sent
                if sent < length and (up is None or up.buf):
                    ch = head.channel
                    if ch.is_delivery:
                        if up is not None:
                            up.buf -= 1
                        sent += 1
                        head.sent = sent
                        p.delivered_flits += 1
                        moved = True
                        if sent == length:
                            head.release()
                            self._lane_freed(ch)
                            self._finalize(p)
                            progressed = True
                            continue  # worm finished; drop it
                    elif head.buf == 0:
                        if up is not None:
                            up.buf -= 1
                        sent += 1
                        head.sent = sent
                        head.buf = 1
                        moved = True
                        if sent == 1:
                            # Header just reached the next switch input.
                            p.needs_route = True
                            pending.append(p)
                        if sent == length:
                            head.release()
                            self._lane_freed(ch)
                i = n1 - 1
                lane = up
                while i >= 0 and lane.owner is p:
                    up = lanes[i - 1] if i else None
                    sent = lane.sent
                    if (
                        sent < length
                        and lane.buf == 0
                        and (up is None or up.buf)
                    ):
                        if up is not None:
                            up.buf -= 1
                        sent += 1
                        lane.sent = sent
                        lane.buf = 1
                        moved = True
                        if sent == length:
                            lane.release()
                            self._lane_freed(lane.channel)
                    i -= 1
                    lane = up
            if moved:
                progressed = True
                if (
                    lazy_ok
                    and head.channel.is_delivery
                    and head.owner is p
                    and self._enter_lazy(p)
                ):
                    continue  # free-running: scheduled actions take over
                moving[write] = p
                write += 1
            elif head.owner is p and head.sent == 0 and head.buf != 0:
                # The previous owner's tail flit still sits in the head
                # lane's buffer; its drain (that worm moving, not a
                # grant) unstalls this one -- keep polling.
                moving[write] = p
                write += 1
            else:
                p._moving = False  # stalled until the next grant
        while ai < na:  # actions past the last moving worm's channel
            if exec_lazy(acts[ai]):
                progressed = True
            ai += 1
        del moving[write:]
        if self._lazy_live:
            progressed = True  # free-running worms stream every cycle
        if progressed:
            self._progressed = True

    def _plan_vector(self, moving: list) -> Optional[dict]:
        """Plan the cycle's moves for every vector-eligible worm.

        Eligible: ACTIVE, still owning its head lane, and *not* in the
        foreign-flit window (head ``sent == 0`` with a non-empty
        buffer), whose unstall couples it to another worm's move this
        cycle -- those take the scalar walk at their sweep position.
        Returns pid -> plan, or None when too few worms qualify to be
        worth the array setup (the scalar walk handles any subset).
        """
        eligible = []
        ACTIVE = PacketState.ACTIVE
        for p in moving:
            if p.state is not ACTIVE:
                continue
            lanes = p.lanes
            n1 = len(lanes) - 1
            head = lanes[n1]
            if head.owner is not p or (head.sent == 0 and head.buf != 0):
                continue
            i = n1 - 1
            while i >= 0 and lanes[i].owner is p:
                i -= 1
            eligible.append((p, i + 1, n1))
        if len(eligible) < self._vec_min:
            return None
        plans = self._batch_mod.plan_moves(eligible)
        return {t[0].pid: (t[1], t[2], plan) for t, plan in zip(eligible, plans)}

    def _apply_plan(self, p: Packet, entry) -> Optional[bool]:
        """Apply one worm's vectorized plan at its sweep position.

        Replays exactly the side effects the scalar walk would emit, in
        its order: the head first (arrival enqueue / delivery), then
        body lanes downstream-first.  Returns whether the worm moved,
        or None when it was delivered and finalized (drop it).
        """
        s, n1, (moved, mv, new_sent, new_buf, feed_take) = entry
        lanes = p.lanes
        length = p.length
        if feed_take:
            lanes[s - 1].buf -= 1
        head = lanes[n1]
        if mv[0]:
            hs = new_sent[0]
            head.sent = hs
            if head.channel.is_delivery:
                p.delivered_flits += 1
                if hs == length:
                    head.release()
                    self._lane_freed(head.channel)
                    self._finalize(p)
                    return None
            else:
                head.buf = new_buf[0]
                if hs == 1:
                    # Header just reached the next switch input.
                    p.needs_route = True
                    self._pending_route.append(p)
                if hs == length:
                    head.release()
                    self._lane_freed(head.channel)
        m = n1 - s + 1
        for j in range(1, m):
            if not mv[j]:
                lanes[n1 - j].buf = new_buf[j]
                continue
            lane = lanes[n1 - j]
            sent = new_sent[j]
            lane.sent = sent
            lane.buf = new_buf[j]
            if sent == length:
                lane.release()
                self._lane_freed(lane.channel)
        return moved

    def _enter_lazy(self, p: Packet) -> bool:
        """Try to switch a delivery-phase worm to free-run fast-forward.

        Once the header streams into the destination and every owned
        upstream lane's 1-flit buffer is full (a perfectly compressed
        pipeline), the worm's remaining life is deterministic: every
        owned lane moves one flit per cycle until its tail crosses, and
        the header never routes again.  Instead of revisiting the worm
        each cycle, schedule its future *observable* effects -- each
        lane's tail release, each released buffer's final drain, the
        delivery -- as topo-keyed actions in :attr:`_lazy` and drop it
        from the moving list.  The action merge in
        :meth:`_phase_advance_worms` replays them at exactly the
        reference sweep's cycle and within-cycle position, so the
        schedule stays bit-identical.  Buffers need no bookkeeping in
        between: a compressed pipeline drains and refills each buffer
        within every cycle, so the frozen value (1) *is* the reference
        end-of-cycle state.

        Disabled under the runtime sanitizer, whose per-cycle sweeps
        read the per-lane counters this mode leaves stale; an abort or
        a switch to the channel sweep restores real state first via
        :meth:`_materialize_worm`.
        """
        lanes = p.lanes
        n1 = len(lanes) - 1
        i = n1 - 1
        while i >= 0 and lanes[i].owner is p:
            if lanes[i].buf != 1:
                return False  # a gap in the pipeline: still compressing
            i -= 1
        s = i + 1  # first owned lane index (owned lanes are a suffix)
        if s and lanes[s - 1].buf == 0:
            return False  # upstream starvation (defensive; see below)
        head = lanes[n1]
        c = self.cycles_run
        remaining = p.length - head.sent  # head finishes at c+remaining
        if self._ledger is not None:
            # Batch tier: the SoA ledger regenerates the actions below
            # on demand from five scalars per worm -- no bucket churn.
            p._lz_slot = self._ledger.add(p, s, n1, c, c + remaining)
            p._lz_base = c
            p._lz_sent0 = head.sent
            p._moving = False
            self._lazy_live += 1
            return True
        tok = p._lz_token
        lazy = self._lazy
        for i in range(s, n1):
            lane = lanes[i]
            # Tail crosses lane i once the head is (n1 - i) deliveries
            # from done; the buffered tail flit drains one cycle later
            # via the downstream channel's move.
            t = c + remaining - (n1 - i)
            bucket = lazy.get(t)
            if bucket is None:
                bucket = lazy[t] = []
            bucket.append((lane.channel.topo_order, 1, p, tok, lane))
            down = lanes[i + 1].channel.topo_order
            bucket = lazy.get(t + 1)
            if bucket is None:
                bucket = lazy[t + 1] = []
            bucket.append((down, 0, p, tok, lane))
        if s:
            # The already-released lane just upstream still buffers one
            # flit (it must: its tail crossed, lane ``s`` has not, and
            # the buffer holds one flit); lane ``s`` consumes it on its
            # next -- provably last -- move, one cycle from now.
            bucket = lazy.get(c + 1)
            if bucket is None:
                bucket = lazy[c + 1] = []
            bucket.append(
                (lanes[s].channel.topo_order, 0, p, tok, lanes[s - 1])
            )
        t = c + remaining
        bucket = lazy.get(t)
        if bucket is None:
            bucket = lazy[t] = []
        bucket.append((head.channel.topo_order, 2, p, tok, head))
        p._lz_base = c
        p._lz_sent0 = head.sent
        p._moving = False
        self._lazy_live += 1
        pkts = self._lazy_pkts
        pkts.append(p)
        if len(pkts) > 64 and len(pkts) > (self._lazy_live << 1):
            self._lazy_pkts = [q for q in pkts if q._lz_base >= 0]
        return True

    def _exec_lazy(self, act) -> bool:
        """Replay one scheduled free-run action (see :meth:`_enter_lazy`).

        Returns False for a cancelled action (the owner's token moved
        on: the worm was aborted or materialized since scheduling).
        """
        kind = act[1]
        p = act[2]
        if p._lz_token != act[3]:
            return False
        lane = act[4]
        if kind == 0:  # final buffer drain (the downstream lane's move)
            lane.buf -= 1
        elif kind == 1:  # tail crossed the wire: release the lane
            lane.sent = p.length
            lane.release()
            self._lane_freed(lane.channel)
        else:  # kind == 2: tail consumed at the destination
            lane.sent = p.length
            p.delivered_flits = p.length
            lane.release()
            self._lane_freed(lane.channel)
            p._lz_token = act[3] + 1  # no actions outlive the delivery
            p._lz_base = -1
            self._lazy_live -= 1
            if p._lz_slot >= 0:
                self._ledger.remove(p._lz_slot)
                p._lz_slot = -1
            self._finalize(p)
        return True

    def _materialize_worm(self, p: Packet) -> None:
        """Restore a free-running worm's real per-lane progress.

        During free-run only the scheduled actions touch the worm, so
        its ``sent`` counters and ``delivered_flits`` sit stale at
        their entry snapshot.  Reconstruct: the head moved once per
        completed cycle since entry, and a perfectly compressed
        pipeline keeps every owned lane exactly one flit ahead of its
        downstream neighbour.  Buffers need no repair (they hold 1
        throughout streaming, and executed drains already ran at their
        reference cycle).  Pending actions die via the token bump;
        cancelled drains are subsumed by the restored lanes' own
        subsequent moves.
        """
        moves = self.cycles_run - p._lz_base - 1
        if moves < 0:
            moves = 0  # materialized within the entry cycle itself
        head_sent = p._lz_sent0 + moves
        lanes = p.lanes
        n1 = len(lanes) - 1
        for i in range(n1, -1, -1):
            lane = lanes[i]
            if lane.owner is not p:
                break
            lane.sent = head_sent + (n1 - i)
        p.delivered_flits = head_sent
        p._lz_token += 1
        p._lz_base = -1
        self._lazy_live -= 1
        if p._lz_slot >= 0:
            self._ledger.remove(p._lz_slot)
            p._lz_slot = -1

    def _materialize_lazy(self) -> None:
        """Unwind every free-run shortcut (the channel sweep takes over).

        The channel sweep -- and any bus sink it feeds -- reads real
        lane state, so all fast-forwarded worms must be materialized
        first.  They rejoin the moving list so a later switch back to
        the per-worm sweep picks them up.
        """
        moving = self._moving
        if self._ledger is not None:
            for p in self._ledger.live_packets():
                self._materialize_worm(p)  # frees the slot too
                p._moving = True
                moving.append(p)
            self._ledger.clear()
            self._lazy_live = 0
            return
        for p in self._lazy_pkts:
            if p._lz_base >= 0:
                self._materialize_worm(p)
                p._moving = True
                moving.append(p)
        self._lazy_pkts.clear()
        self._lazy.clear()
        self._lazy_live = 0

    def _lane_freed(self, ch: PhysChannel) -> None:
        """Fast-path bookkeeping after any ``Lane.release``.

        Wakes the blocked headers registered on the channel and, for an
        injection channel, re-arms its (still backlogged) node for the
        next injection scan.
        """
        if self._waiters:
            self._wake_waiters(ch)
        node = self._node_of_inj.get(ch)
        if node is not None and node in self._backlogged:
            self._inj_ready.add(node)

    def _wake_waiters(self, ch: PhysChannel) -> None:
        """A lane of ``ch`` released: invalidate blocked-header caches.

        Registrations are dropped lazily: an entry whose token no
        longer matches the packet's current wake token belongs to an
        older blocking episode (the packet moved on, died, or was woken
        through another channel) and is skipped.
        """
        lst = self._waiters.pop(ch, None)
        if lst is None:
            return
        for token, p in lst:
            if p._blk_token == token:
                p._blk_token = token + 1
                p._blk_usable = None
                if p._blk_epoch == channel_mod.fault_epoch:
                    self._blk_valid -= 1

    def transmit(self, ch: PhysChannel) -> Optional[Lane]:
        """Move one flit across ``ch`` if possible (split out for tests)."""
        if not ch.busy:
            return None
        return ch.transmit()

    def abort_packet(self, p: Packet) -> None:
        """Externally kill a packet (hard faults, recovery timeouts).

        A QUEUED packet is removed from its source queue; an ACTIVE worm
        is aborted exactly like one whose every next hop went faulty
        (flits flushed, lanes released).  Either way the packet ends
        FAILED, counts in ``stats.failed_packets``, and the failure
        hooks fire.  Delivered/failed packets raise ``ValueError``.
        """
        if p.state is PacketState.QUEUED:
            try:
                self.queues[p.src].remove(p)
            except ValueError:
                raise ValueError(f"{p!r} is queued but not in its source queue")
            if not self.queues[p.src]:
                self._backlogged.discard(p.src)
                self._inj_ready.discard(p.src)
            p.state = PacketState.FAILED
            self.stats.failed_packets += 1
            if self.bus.enabled:
                self.bus.publish_abort(self.env.now, p)
            for hook in self.on_packet_failed:
                hook(p)
            return
        if p.state is not PacketState.ACTIVE:
            raise ValueError(f"cannot abort {p!r} in state {p.state.value}")
        # Flits the destination already consumed stay consumed; the
        # abort only flushes what is still inside the network.
        self._abort(p)

    def _abort(self, p: Packet) -> None:
        """Kill an in-flight worm whose every next hop is faulty.

        Its flits are flushed from the buffers along its chain (each
        lane's buffer holds ``sent(lane) - sent(next lane)`` of this
        packet's flits) and its still-owned lanes are released, so other
        traffic is unaffected.
        """
        bus = self.bus
        obs = bus if bus.hot else None
        now = self.env.now
        if p._lz_base >= 0:
            # A free-running worm's lane counters are stale; restore
            # real state first so the flush arithmetic below is exact.
            self._materialize_worm(p)
        p._sanitize_aborting = True  # exempt early releases (sanitizer)
        try:
            lanes = p.lanes
            n = len(lanes)
            for i, lane in enumerate(lanes):
                if not lane.channel.is_delivery:
                    # A delivery lane has no downstream buffer (the node
                    # consumed those flits); only switch-input buffers
                    # flush.  Count flits from *this* packet's
                    # perspective: a lane it already released carried
                    # all ``length`` flits -- its ``sent`` counter may
                    # since belong to a new owner (re-acquisition resets
                    # it), so reading it raw would mis-flush.
                    mine = lane.sent if lane.owner is p else p.length
                    if i + 1 < n:
                        nxt = lanes[i + 1]
                        next_mine = nxt.sent if nxt.owner is p else p.length
                    else:
                        next_mine = 0
                    lane.buf -= mine - next_mine
                    assert lane.buf >= 0, "abort flushed a flit it did not own"
                if lane.owner is p:
                    lane.release()
                    self._lane_freed(lane.channel)
                    if obs is not None:
                        obs.publish_release(now, p, lane.channel, lane.index)
        finally:
            p._sanitize_aborting = False
        p.state = PacketState.FAILED
        p.needs_route = False
        # Invalidate any blocked-header cache state (fast path): stale
        # waiter registrations die via the token bump.  The worm-list
        # flag drops too; the entry itself is compacted out lazily.
        if p._blk_usable is not None:
            if p._blk_epoch == channel_mod.fault_epoch:
                self._blk_valid -= 1
            p._blk_usable = None
        p._blk_token += 1
        p._moving = False
        self._active_packets -= 1
        self.stats.failed_packets += 1
        if bus.enabled:
            bus.publish_abort(now, p)
        for hook in self.on_packet_failed:
            hook(p)

    def _finalize(self, p: Packet) -> None:
        p.state = PacketState.DELIVERED
        p.delivered_at = self.env.now
        p._moving = False  # worm-list entry compacts out lazily
        self._active_packets -= 1
        self.stats.delivered_packets += 1
        self.stats.delivered_flits += p.length
        if self.bus.enabled:
            self.bus.publish_deliver(self.env.now, p)
        for hook in self.on_packet_delivered:
            hook(p)
        if self.record_deliveries:
            assert p.inject_start is not None
            self.stats.records.append(
                DeliveryRecord(
                    p.pid,
                    p.src,
                    p.dst,
                    p.length,
                    p.created,
                    p.inject_start,
                    p.delivered_at,
                )
            )

    # -- clock process -----------------------------------------------------------

    def start(self) -> None:
        """Install the clock process in the environment (idempotent)."""
        if self._clock_started:
            return
        self._clock_started = True
        self.env.process(self._clock(), name="wormhole-clock")

    def _clock(self):
        env = self.env
        batch = self.batch
        while True:
            if self.idle:
                # Fast-forward to the next external event (an arrival);
                # with nothing scheduled, sleep until someone offers.
                nxt = env.peek()
                if nxt == float("inf"):
                    self._wakeup = env.event()
                    yield self._wakeup
                else:
                    yield env.timeout(max(1.0, math.ceil(nxt - env.now)))
                self.step_cycle()
                continue
            if batch:
                # Batched wake: _span_cycles proves the next k-1 cycles
                # are no-ops beyond their (deferred) shuffle draws, so
                # credit them and land straight on tick k of the exact
                # chained grid.  run()'s stop events are in the queue
                # and bound the span, so no caller observes mid-span
                # state; events landing exactly on the wake tick fire
                # before it, just as they would before a real tick.
                k = self._span_cycles()
                now = env.now
                if now.is_integer():
                    target = now + k
                else:
                    # Fractional clock (a mid-cycle idle wakeup
                    # happened): chain unit steps so the wake lands
                    # exactly on the tick grid.
                    target = now
                    for _ in range(k):
                        target += 1.0
                if k > 1:
                    self.cycles_run += k - 1
                    # The skipped cycles' service-order shuffles are
                    # owed (membership cannot change mid-span); the
                    # next order-observing scan replays them.  A queue
                    # of <= 1 headers draws nothing per cycle, so only
                    # real draws become debt -- the queue length is
                    # frozen while debt is outstanding, which keeps the
                    # replay word-exact.
                    if len(self._pending_route) > 1:
                        self._shuffle_debt += k - 1
                if env.peek() > target:
                    # Nothing is scheduled at or before the wake tick:
                    # skip the kernel round trip (wake event, heap pop,
                    # generator resume) and advance the clock directly.
                    # Anything the tick schedules fires afterwards,
                    # exactly as it would after a kernel-driven tick.
                    env.advance_to(target)
                    self.step_cycle()
                else:
                    yield env.timeout_at(target)
                    self.step_cycle()
                continue
            yield env.timeout(1.0)
            self.step_cycle()

    def _span_cycles(self) -> int:
        """Cycles the batch clock may sleep through in one wake (>= 1).

        A cycle is a provable no-op -- no RNG draw, no state change, no
        bus event -- exactly when nothing can inject (``_inj_ready``
        empty), nothing is moving scalar (``_moving`` empty), every
        pending header is provably still blocked (cache-hit exits; a
        lone header consumes no shuffle draw, larger queues do, so
        spans require <= 1 pending), no free-run action is due (the
        ledger's next-due horizon), and no per-cycle observer runs
        (sanitizer / watchdogs / hot bus).  The span is additionally
        clamped to the next scheduled environment event: arrivals,
        fault flips, and run() stop events all bound it, so nothing can
        observe or perturb the engine mid-span.
        """
        if (
            self._moving
            or self._inj_ready
            or self.bus.hot
            or not self._worm_mode
            or self.sanitizer is not None
            or self.watchdog is not None
            or self.deadlock_watchdog
        ):
            return 1
        pending = self._pending_route
        if pending and self._blk_valid != len(pending):
            # Some pending header is not provably blocked at the
            # current epoch: the full allocation scan must run.
            return 1
        # All-blocked cycles do consume randomness (the service-order
        # shuffle), but nothing *observes* the queue permutation until
        # the next executed tick -- so the clock defers the draws and
        # replays the skipped shuffles at wake (``shuffle_k``), in
        # stream order, before stepping.  Bit-identical: the engine
        # stream's only consumers are the shuffle and the grant path,
        # and no grant can occur while every header is blocked.
        if self._lazy_live:
            # The next executed tick pops bucket ``cycles_run``; a span
            # of k lands it on bucket ``cycles_run + k - 1``, so the
            # ledger's next-due bucket bounds k at ``due-cycles_run+1``.
            due = self._ledger.next_due()
            lim = due - self.cycles_run + 1
            if lim <= 1:
                return 1
        else:
            lim = 4096
        env = self.env
        nxt = env.peek()
        if nxt == float("inf"):
            k = lim
        else:
            now = env.now
            if now.is_integer():
                gap = int(nxt - now) if nxt - now < 4096.0 else 4096
            else:
                # Fractional clock (a mid-cycle idle wakeup happened):
                # count chained-grid points up to the next event.
                gap = 0
                t = now
                while gap < 4096:
                    t += 1.0
                    if t > nxt:
                        break
                    gap += 1
            k = lim if lim < gap else gap
        if k > 4096:
            k = 4096
        return k if k > 1 else 1

    # -- convenience for tests and examples -----------------------------------------

    def run_cycles(self, cycles: int) -> None:
        """Start the clock (if needed) and advance ``cycles`` cycles."""
        self.start()
        self.env.run(until=self.env.now + cycles)

    def drain(self, max_cycles: int = 1_000_000) -> None:
        """Run until the network is empty (or the cycle budget runs out)."""
        self.start()
        deadline = self.env.now + max_cycles
        while not self.idle and self.env.now < deadline:
            self.env.run(until=min(self.env.now + 256, deadline))
        if not self.idle:
            raise RuntimeError(
                f"network failed to drain within {max_cycles} cycles "
                f"({self._active_packets} packets in flight) -- "
                "this would indicate deadlock or livelock"
            )

    # -- throughput helpers ------------------------------------------------------------

    def throughput_fraction(self) -> float:
        """Delivered flits per node-cycle over the current window.

        1.0 would mean every delivery channel streamed a flit every
        cycle -- the paper's '% of maximum theoretical throughput'.
        """
        elapsed = self.env.now - self.stats.window_start
        if elapsed <= 0:
            return 0.0
        return self.stats.delivered_flits / (self.network.N * elapsed)

    def __repr__(self) -> str:
        return (
            f"<WormholeEngine {self.network.kind.value} N={self.network.N} "
            f"t={self.env.now} active={self._active_packets}>"
        )
