"""The two-phase cycle engine driving a simulated wormhole network.

Each simulation cycle (= the time to move one flit across one channel;
0.05 us at the paper's 20 flits/us):

* **Phase A (allocation)** -- in random order (the paper's asynchronous
  switches), every header waiting at a switch input tries to acquire a
  lane for its next hop: the tag-determined channel (TMIN), a random
  free lane of the tag-determined port (DMIN dilated lanes / VMIN
  virtual channels), or a random free forward channel / the
  deterministic turnaround & backward channel (BMIN).  Nodes whose FCFS
  queue is non-empty start injecting when their injection channel
  frees.
* **Phase B (advance)** -- every busy physical channel, processed
  downstream-first, transmits at most one flit (round-robin over its
  ready lanes, so active virtual channels share the wire's bandwidth
  equally).  A full pipeline thus moves every flit of a worm one hop
  per cycle -- the paper's synchronized worm transmission.

The engine runs inside a :class:`repro.sim.Environment`: a clock process
steps cycles, fast-forwarding across idle gaps, while workload processes
call :meth:`WormholeEngine.offer` to submit messages.
"""

from __future__ import annotations

import math
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.bus import EventBus
from repro.sim.core import Environment
from repro.sim.rng import RandomStream
from repro.wormhole.channel import Lane, PhysChannel
from repro.wormhole.network import SimNetwork
from repro.wormhole.packet import Packet, PacketState

#: Channel bandwidth in the paper's units; one cycle is 1/20 us.
FLITS_PER_MICROSECOND = 20.0


class DeadlockError(RuntimeError):
    """Raised by the watchdog: packets in flight but zero progress.

    The paper's four networks cannot reach this state (feed-forward /
    acyclic turnaround dependencies); the watchdog protects users who
    wire custom topologies through :class:`repro.wormhole.network.SimNetwork`.
    """


@dataclass
class DeliveryRecord:
    """Immutable facts about one delivered packet."""

    pid: int
    src: int
    dst: int
    length: int
    created: float
    inject_start: float
    delivered_at: float

    @property
    def latency(self) -> float:
        """Creation to tail delivery, in cycles (queueing included)."""
        return self.delivered_at - self.created

    @property
    def network_latency(self) -> float:
        """Injection start to tail delivery, in cycles."""
        return self.delivered_at - self.inject_start


@dataclass
class EngineStats:
    """Counters the engine maintains; resettable at warmup boundaries."""

    offered_packets: int = 0
    offered_flits: int = 0
    delivered_packets: int = 0
    delivered_flits: int = 0
    failed_packets: int = 0
    #: Failed packets re-injected by a recovery layer (see
    #: :mod:`repro.faults.recovery`; the engine only hosts the counter).
    retried_packets: int = 0
    #: Failed packets a recovery layer gave up on (attempts exhausted).
    dropped_packets: int = 0
    max_queue_len: int = 0
    records: list[DeliveryRecord] = field(default_factory=list)
    window_start: float = 0.0

    def reset_window(self, now: float) -> None:
        """Start a fresh measurement window (keeps nothing)."""
        self.offered_packets = 0
        self.offered_flits = 0
        self.delivered_packets = 0
        self.delivered_flits = 0
        self.failed_packets = 0
        self.retried_packets = 0
        self.dropped_packets = 0
        self.max_queue_len = 0
        self.records = []
        self.window_start = now


class WormholeEngine:
    """Simulates one network instance under an externally offered load."""

    def __init__(
        self,
        env: Environment,
        network: SimNetwork,
        rng: Optional[RandomStream] = None,
        record_deliveries: bool = True,
        sanitize: Optional[bool] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.rng = rng if rng is not None else RandomStream(0, name="engine")
        self.record_deliveries = record_deliveries
        self.stats = EngineStats()
        #: Opt-in runtime invariant checker (REPRO_SANITIZE=1, or the
        #: explicit ``sanitize=True``); None costs nothing per cycle.
        self.sanitizer = None
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        if sanitize:
            from repro.verify.sanitizer import Sanitizer
            from repro.wormhole import channel as _channel_mod

            self.sanitizer = Sanitizer(network)
            # Pairing checks hook the channel layer globally; the rule
            # is lane-local, so one observer serves any number of
            # engines.
            _channel_mod.release_observer = self.sanitizer.on_release
        #: The structured telemetry bus every state change publishes
        #: into (see :mod:`repro.obs.bus`).  With no sinks attached the
        #: hot path pays one hoisted flag read per cycle, nothing more.
        self.bus = EventBus()
        #: Backing store of the :attr:`tracer` property.
        self._tracer = None
        #: Cycles of zero progress (no flit moved, no lane granted,
        #: packets in flight) before :class:`DeadlockError` is raised.
        #: 0 disables the watchdog (the default: the paper's networks
        #: are deadlock-free by construction).
        self.deadlock_watchdog = 0
        self._stalled_cycles = 0
        self._progressed = False

        #: Observer hooks (e.g. :class:`repro.faults.recovery.SourceRetry`).
        #: Each is a list of callables invoked with the packet; exceptions
        #: propagate (observers must not fail).
        self.on_packet_offered: list[Callable[[Packet], None]] = []
        self.on_packet_delivered: list[Callable[[Packet], None]] = []
        self.on_packet_failed: list[Callable[[Packet], None]] = []

        self.queues: list[deque[Packet]] = [deque() for _ in range(network.N)]
        #: Nodes with a non-empty queue (avoids scanning all N each cycle).
        self._backlogged: set[int] = set()
        self._pending_route: list[Packet] = []
        self._active_packets = 0
        self._next_pid = 0
        self.cycles_run = 0
        self._clock_started = False
        self._wakeup = None  # event the idle clock sleeps on, if any

    # -- telemetry ------------------------------------------------------------

    @property
    def tracer(self):
        """Optional :class:`repro.wormhole.trace.Tracer`, bus-backed.

        Assigning a tracer attaches it to :attr:`bus` (and detaches any
        previous one); assigning None detaches.  Kept as a property for
        source compatibility with pre-bus code that wrote
        ``engine.tracer = Tracer()``.
        """
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        if tracer is self._tracer:
            return
        if self._tracer is not None:
            self.bus.detach(self._tracer)
        self._tracer = tracer
        if tracer is not None:
            self.bus.attach(tracer)

    # -- workload interface ---------------------------------------------------

    def offer(self, src: int, dst: int, length: int) -> Packet:
        """Submit a message at the current simulation time (FCFS queue)."""
        p = Packet(self._next_pid, src, dst, length, created=self.env.now)
        self._next_pid += 1
        self.queues[src].append(p)
        self._backlogged.add(src)
        if self._wakeup is not None:
            self._wakeup.succeed()
            self._wakeup = None
        self.stats.offered_packets += 1
        self.stats.offered_flits += length
        qlen = len(self.queues[src])
        if qlen > self.stats.max_queue_len:
            self.stats.max_queue_len = qlen
        if self.bus.enabled:
            self.bus.publish_offer(self.env.now, p)
        for hook in self.on_packet_offered:
            hook(p)
        return p

    @property
    def idle(self) -> bool:
        """No packet in the network and no packet queued."""
        return self._active_packets == 0 and not self._backlogged

    @property
    def in_flight(self) -> int:
        """Packets currently inside the network (not queued, not done)."""
        return self._active_packets

    def queue_length(self, node: int) -> int:
        """Messages waiting in one node's FCFS source queue."""
        return len(self.queues[node])

    def in_flight_packets(self) -> list[Packet]:
        """Distinct packets currently inside the network (diagnostics).

        Collected from lane ownership plus the header-routing queue; a
        packet whose every acquired lane has already been released (a
        short worm blocked at its last switch) appears only in the
        latter.
        """
        seen: dict[int, Packet] = {}
        for ch in self.network.topo_channels:
            if ch.owned_count == 0:
                continue
            for lane in ch.lanes:
                if lane.owner is not None:
                    seen.setdefault(lane.owner.pid, lane.owner)
        for p in self._pending_route:
            if p.state is PacketState.ACTIVE:
                seen.setdefault(p.pid, p)
        return list(seen.values())

    # -- the cycle -------------------------------------------------------------

    def step_cycle(self) -> None:
        """Run one cycle: allocation, then flit advance."""
        self._progressed = False
        self._phase_allocate()
        self._phase_advance()
        self.cycles_run += 1
        if self.sanitizer is not None:
            self.sanitizer.check_cycle(self)
        if self.deadlock_watchdog:
            if self._progressed or self._active_packets == 0:
                self._stalled_cycles = 0
            else:
                self._stalled_cycles += 1
                if self._stalled_cycles >= self.deadlock_watchdog:
                    raise DeadlockError(self._deadlock_report())

    def _deadlock_report(self) -> str:
        """Diagnostic message for the watchdog (custom-topology debugging)."""
        stalled = self.in_flight_packets()
        header = (
            f"{self._active_packets} packets in flight made no progress "
            f"for {self._stalled_cycles} cycles at t={self.env.now} "
            f"({len(stalled)} stalled worms)"
        )
        if stalled:
            oldest = min(stalled, key=lambda p: p.created)
            if oldest.lanes:
                last = oldest.lanes[-1]
                where = (
                    f"holding {len(oldest.lanes)} lanes, head at "
                    f"{last.channel.label}.{last.index} "
                    f"(hop {last.route_idx}, sent {last.sent}/{oldest.length})"
                )
            else:
                where = "holding no lanes (header awaiting first allocation)"
            header += (
                f"; oldest: pkt#{oldest.pid} {oldest.src}->{oldest.dst} "
                f"len={oldest.length} created t={oldest.created} {where}"
            )
        held = ", ".join(
            f"{ch.label}(pkt#{lane.owner.pid})"
            for ch in self.network.topo_channels
            for lane in ch.lanes
            if lane.owner is not None
        )
        return f"{header}; held channels: {held}"

    def _phase_allocate(self) -> None:
        # Hoist the bus's hot flag once per cycle: with no hot sink
        # attached, every per-packet publish site below reduces to one
        # local ``is not None`` check.
        bus = self.bus
        obs = bus if bus.hot else None
        # Start injections: one-port nodes begin transmitting the next
        # queued message once their single injection lane frees.
        if self._backlogged:
            drained = []
            for node in self._backlogged:
                inj = self.network.injection_channel(node)
                if inj.faulty:
                    # The node is cut off: every queued message dies.
                    while self.queues[node]:
                        p = self.queues[node].popleft()
                        p.state = PacketState.FAILED
                        self.stats.failed_packets += 1
                        if bus.enabled:
                            bus.publish_abort(self.env.now, p)
                        for hook in self.on_packet_failed:
                            hook(p)
                    drained.append(node)
                    continue
                lane = inj.lanes[0]
                if lane.owner is not None:
                    continue
                p = self.queues[node].popleft()
                p.state = PacketState.ACTIVE
                p.inject_start = self.env.now
                self.network.prepare(p)
                lane.acquire(p)
                self._active_packets += 1
                self._progressed = True
                if obs is not None:
                    obs.publish_inject(self.env.now, p)
                    obs.publish_acquire(self.env.now, p, inj, lane.index)
                if not self.queues[node]:
                    drained.append(node)
            for node in drained:
                self._backlogged.discard(node)

        if not self._pending_route:
            return
        # Random service order models switches acting asynchronously.
        self.rng.shuffle(self._pending_route)
        still_pending = []
        for p in self._pending_route:
            if p.state is not PacketState.ACTIVE or not p.needs_route:
                # Aborted externally (abort_packet / a hard fault) while
                # its header sat in the routing queue: drop the entry.
                continue
            candidates = self.network.candidates(p)
            usable = [ch for ch in candidates if not ch.faulty]
            if not usable:
                # Every possible next hop is faulty: the route is dead.
                # Kill the worm and reclaim its channels and buffers
                # (the paper's fault-tolerance motivation: a unique-path
                # network cannot survive this; DMIN/BMIN rarely get here).
                self._abort(p)
                continue
            free = [lane for ch in usable for lane in ch.lanes if lane.owner is None]
            if not free:
                if obs is not None:
                    obs.publish_block(self.env.now, p, usable)
                still_pending.append(p)
                continue
            if len(free) == 1:
                lane = free[0]
            else:
                # Networks may bias adaptive choices (e.g. the BMIN
                # "properly chosen forward channel" experiment); the
                # default returns None -> uniform random, the paper's
                # policy.
                lane = self.network.preferred_lane(p, free, self.rng)
                if lane is None:
                    lane = self.rng.choice(free)
            lane.acquire(p)
            self.network.advance(p, lane.channel)
            p.needs_route = False
            self._progressed = True
            if obs is not None:
                obs.publish_acquire(self.env.now, p, lane.channel, lane.index)
        self._pending_route = still_pending

    def _phase_advance(self) -> None:
        pending = self._pending_route
        bus = self.bus
        obs = bus if bus.hot else None
        now = self.env.now
        for ch in self.network.topo_channels:
            if ch.owned_count == 0:
                continue
            lane = ch.transmit()
            if lane is None:
                continue
            self._progressed = True
            p = lane.owner
            assert p is not None
            if obs is not None:
                obs.publish_transmit(now, ch, lane)
            if ch.is_delivery:
                if lane.sent == p.length:
                    lane.release()
                    if obs is not None:
                        obs.publish_release(now, p, ch, lane.index)
                    self._finalize(p)
            else:
                if lane.sent == 1 and lane.route_idx == len(p.lanes) - 1:
                    # Header just reached the next switch input buffer.
                    p.needs_route = True
                    pending.append(p)
                if lane.sent == p.length:
                    lane.release()
                    if obs is not None:
                        obs.publish_release(now, p, ch, lane.index)

    def transmit(self, ch: PhysChannel) -> Optional[Lane]:
        """Move one flit across ``ch`` if possible (split out for tests)."""
        if not ch.busy:
            return None
        return ch.transmit()

    def abort_packet(self, p: Packet) -> None:
        """Externally kill a packet (hard faults, recovery timeouts).

        A QUEUED packet is removed from its source queue; an ACTIVE worm
        is aborted exactly like one whose every next hop went faulty
        (flits flushed, lanes released).  Either way the packet ends
        FAILED, counts in ``stats.failed_packets``, and the failure
        hooks fire.  Delivered/failed packets raise ``ValueError``.
        """
        if p.state is PacketState.QUEUED:
            try:
                self.queues[p.src].remove(p)
            except ValueError:
                raise ValueError(f"{p!r} is queued but not in its source queue")
            if not self.queues[p.src]:
                self._backlogged.discard(p.src)
            p.state = PacketState.FAILED
            self.stats.failed_packets += 1
            if self.bus.enabled:
                self.bus.publish_abort(self.env.now, p)
            for hook in self.on_packet_failed:
                hook(p)
            return
        if p.state is not PacketState.ACTIVE:
            raise ValueError(f"cannot abort {p!r} in state {p.state.value}")
        # Flits the destination already consumed stay consumed; the
        # abort only flushes what is still inside the network.
        self._abort(p)

    def _abort(self, p: Packet) -> None:
        """Kill an in-flight worm whose every next hop is faulty.

        Its flits are flushed from the buffers along its chain (each
        lane's buffer holds ``sent(lane) - sent(next lane)`` of this
        packet's flits) and its still-owned lanes are released, so other
        traffic is unaffected.
        """
        bus = self.bus
        obs = bus if bus.hot else None
        now = self.env.now
        p._sanitize_aborting = True  # exempt early releases (sanitizer)
        try:
            for i, lane in enumerate(p.lanes):
                if not lane.channel.is_delivery:
                    # A delivery lane has no downstream buffer (the node
                    # consumed those flits); only switch-input buffers flush.
                    next_sent = p.lanes[i + 1].sent if i + 1 < len(p.lanes) else 0
                    lane.buf -= lane.sent - next_sent
                    assert lane.buf >= 0, "abort flushed a flit it did not own"
                if lane.owner is p:
                    lane.release()
                    if obs is not None:
                        obs.publish_release(now, p, lane.channel, lane.index)
        finally:
            p._sanitize_aborting = False
        p.state = PacketState.FAILED
        p.needs_route = False
        self._active_packets -= 1
        self.stats.failed_packets += 1
        if bus.enabled:
            bus.publish_abort(now, p)
        for hook in self.on_packet_failed:
            hook(p)

    def _finalize(self, p: Packet) -> None:
        p.state = PacketState.DELIVERED
        p.delivered_at = self.env.now
        self._active_packets -= 1
        self.stats.delivered_packets += 1
        self.stats.delivered_flits += p.length
        if self.bus.enabled:
            self.bus.publish_deliver(self.env.now, p)
        for hook in self.on_packet_delivered:
            hook(p)
        if self.record_deliveries:
            assert p.inject_start is not None
            self.stats.records.append(
                DeliveryRecord(
                    p.pid,
                    p.src,
                    p.dst,
                    p.length,
                    p.created,
                    p.inject_start,
                    p.delivered_at,
                )
            )

    # -- clock process -----------------------------------------------------------

    def start(self) -> None:
        """Install the clock process in the environment (idempotent)."""
        if self._clock_started:
            return
        self._clock_started = True
        self.env.process(self._clock(), name="wormhole-clock")

    def _clock(self):
        env = self.env
        while True:
            if self.idle:
                # Fast-forward to the next external event (an arrival);
                # with nothing scheduled, sleep until someone offers.
                nxt = env.peek()
                if nxt == float("inf"):
                    self._wakeup = env.event()
                    yield self._wakeup
                else:
                    yield env.timeout(max(1.0, math.ceil(nxt - env.now)))
            else:
                yield env.timeout(1.0)
            self.step_cycle()

    # -- convenience for tests and examples -----------------------------------------

    def run_cycles(self, cycles: int) -> None:
        """Start the clock (if needed) and advance ``cycles`` cycles."""
        self.start()
        self.env.run(until=self.env.now + cycles)

    def drain(self, max_cycles: int = 1_000_000) -> None:
        """Run until the network is empty (or the cycle budget runs out)."""
        self.start()
        deadline = self.env.now + max_cycles
        while not self.idle and self.env.now < deadline:
            self.env.run(until=min(self.env.now + 256, deadline))
        if not self.idle:
            raise RuntimeError(
                f"network failed to drain within {max_cycles} cycles "
                f"({self._active_packets} packets in flight) -- "
                "this would indicate deadlock or livelock"
            )

    # -- throughput helpers ------------------------------------------------------------

    def throughput_fraction(self) -> float:
        """Delivered flits per node-cycle over the current window.

        1.0 would mean every delivery channel streamed a flit every
        cycle -- the paper's '% of maximum theoretical throughput'.
        """
        elapsed = self.env.now - self.stats.window_start
        if elapsed <= 0:
            return 0.0
        return self.stats.delivered_flits / (self.network.N * elapsed)

    def __repr__(self) -> str:
        return (
            f"<WormholeEngine {self.network.kind.value} N={self.network.N} "
            f"t={self.env.now} active={self._active_packets}>"
        )
