"""Messages (packets) and their lifecycle in the wormhole simulator.

The paper does not packetize: a message is one packet, serialized into
``length`` flits.  The header flit carries source/destination addresses
and governs the route; body flits follow in a pipeline.  A packet's
latency runs from the instant the source makes the message available
(``created``) until the tail flit is consumed at the destination
(Section 1's definition, which therefore includes source queueing).
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.wormhole.channel import Lane


class PacketState(Enum):
    """Lifecycle of a message."""

    QUEUED = "queued"        # waiting in the source's FCFS queue
    ACTIVE = "active"        # header routing / flits moving
    DELIVERED = "delivered"  # tail consumed at the destination
    FAILED = "failed"        # killed: every next-hop channel is faulty
    SHED = "shed"            # dropped by a bounded-admission policy


class Packet:
    """One message in flight.

    Only the engine mutates packets; everything else treats them as
    read-only records.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "length",
        "created",
        "inject_start",
        "delivered_at",
        "state",
        "lanes",
        "delivered_flits",
        "needs_route",
        "hop",
        "cur",
        "bmin_going_up",
        "bmin_boundary",
        "bmin_line",
        "bmin_turn",
        "slots",
        "_sanitize_aborting",
        "_blk_usable",
        "_blk_epoch",
        "_blk_token",
        "_moving",
        "_order",
        "_lz_base",
        "_lz_sent0",
        "_lz_token",
        "_lz_slot",
    )

    def __init__(
        self, pid: int, src: int, dst: int, length: int, created: float
    ) -> None:
        if length < 1:
            raise ValueError("a packet needs at least one flit")
        if src == dst:
            raise ValueError("the paper's traffic never sends to self")
        self.pid = pid
        self.src = src
        self.dst = dst
        self.length = length
        self.created = created
        self.inject_start: Optional[float] = None
        self.delivered_at: Optional[float] = None
        self.state = PacketState.QUEUED

        #: Channels lanes acquired so far, source side first.
        self.lanes: list["Lane"] = []
        self.delivered_flits = 0
        #: True while the header waits at a switch input for allocation.
        self.needs_route = False
        #: Next hop index (unidirectional: index into ``slots``).
        self.hop = 0
        #: Current node (direct topologies; see repro.direct.network).
        self.cur = src

        # BMIN routing state (unused for unidirectional networks).
        self.bmin_going_up = True
        self.bmin_boundary = 0
        self.bmin_line = src
        self.bmin_turn = -1

        #: Unidirectional networks: precomputed (boundary, position)
        #: slots of the unique path (set by the network at injection).
        self.slots: Optional[list[tuple[int, int]]] = None

        #: True while the engine flushes this worm in an abort; lets the
        #: runtime sanitizer (REPRO_SANITIZE=1) exempt the abort's
        #: early lane releases from the tail-crossed pairing check.
        self._sanitize_aborting = False

        # Fast-engine blocked-header cache (see
        # :meth:`WormholeEngine._phase_allocate_fast`): the usable
        # candidate list computed when this header last blocked, the
        # channel-layer fault epoch it was computed under, and a wake
        # token that invalidates stale release-waiter registrations.
        self._blk_usable: Optional[list] = None
        self._blk_epoch = -1
        self._blk_token = 0
        #: True while the worm sits on the fast engine's per-worm
        #: advance list (see ``WormholeEngine._phase_advance_worms``);
        #: cleared when it stalls, delivers, or aborts.
        self._moving = False
        #: ``topo_order`` of the newest acquired lane's channel -- the
        #: fast engine's worm-list sort key, maintained at its two
        #: acquire sites (injection and route grant) so sorting uses a
        #: C-level attrgetter instead of chasing ``lanes[-1].channel``.
        self._order = 0

        # Free-run fast-forward state (see
        # ``WormholeEngine._enter_lazy``): the engine cycle at which the
        # worm entered lazy streaming, the head lane's ``sent`` at that
        # instant (together they reconstruct per-lane progress for
        # abort/mode-switch materialization), and a token that
        # invalidates the worm's scheduled lazy actions when bumped.
        self._lz_base = -1
        self._lz_sent0 = 0
        self._lz_token = 0
        #: Slot index in the batch tier's SoA free-run ledger (see
        #: :class:`repro.wormhole.batch.SoALedger`); -1 when not held.
        self._lz_slot = -1

    @property
    def latency(self) -> float:
        """Total latency (queueing + network) in cycles; None until done."""
        if self.delivered_at is None:
            raise AttributeError("packet not yet delivered")
        return self.delivered_at - self.created

    @property
    def network_latency(self) -> float:
        """Latency excluding source queueing (inject start to tail out)."""
        if self.delivered_at is None or self.inject_start is None:
            raise AttributeError("packet not yet delivered")
        return self.delivered_at - self.inject_start

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.pid} {self.src}->{self.dst} len={self.length} "
            f"{self.state.value}>"
        )
