"""Messages (packets) and their lifecycle in the wormhole simulator.

The paper does not packetize: a message is one packet, serialized into
``length`` flits.  The header flit carries source/destination addresses
and governs the route; body flits follow in a pipeline.  A packet's
latency runs from the instant the source makes the message available
(``created``) until the tail flit is consumed at the destination
(Section 1's definition, which therefore includes source queueing).
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.wormhole.channel import Lane


class PacketState(Enum):
    """Lifecycle of a message."""

    QUEUED = "queued"        # waiting in the source's FCFS queue
    ACTIVE = "active"        # header routing / flits moving
    DELIVERED = "delivered"  # tail consumed at the destination
    FAILED = "failed"        # killed: every next-hop channel is faulty


class Packet:
    """One message in flight.

    Only the engine mutates packets; everything else treats them as
    read-only records.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "length",
        "created",
        "inject_start",
        "delivered_at",
        "state",
        "lanes",
        "delivered_flits",
        "needs_route",
        "hop",
        "bmin_going_up",
        "bmin_boundary",
        "bmin_line",
        "bmin_turn",
        "slots",
        "_sanitize_aborting",
    )

    def __init__(
        self, pid: int, src: int, dst: int, length: int, created: float
    ) -> None:
        if length < 1:
            raise ValueError("a packet needs at least one flit")
        if src == dst:
            raise ValueError("the paper's traffic never sends to self")
        self.pid = pid
        self.src = src
        self.dst = dst
        self.length = length
        self.created = created
        self.inject_start: Optional[float] = None
        self.delivered_at: Optional[float] = None
        self.state = PacketState.QUEUED

        #: Channels lanes acquired so far, source side first.
        self.lanes: list["Lane"] = []
        self.delivered_flits = 0
        #: True while the header waits at a switch input for allocation.
        self.needs_route = False
        #: Next hop index (unidirectional: index into ``slots``).
        self.hop = 0

        # BMIN routing state (unused for unidirectional networks).
        self.bmin_going_up = True
        self.bmin_boundary = 0
        self.bmin_line = src
        self.bmin_turn = -1

        #: Unidirectional networks: precomputed (boundary, position)
        #: slots of the unique path (set by the network at injection).
        self.slots: Optional[list[tuple[int, int]]] = None

        #: True while the engine flushes this worm in an abort; lets the
        #: runtime sanitizer (REPRO_SANITIZE=1) exempt the abort's
        #: early lane releases from the tail-crossed pairing check.
        self._sanitize_aborting = False

    @property
    def latency(self) -> float:
        """Total latency (queueing + network) in cycles; None until done."""
        if self.delivered_at is None:
            raise AttributeError("packet not yet delivered")
        return self.delivered_at - self.created

    @property
    def network_latency(self) -> float:
        """Latency excluding source queueing (inject start to tail out)."""
        if self.delivered_at is None or self.inject_start is None:
            raise AttributeError("packet not yet delivered")
        return self.delivered_at - self.inject_start

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.pid} {self.src}->{self.dst} len={self.length} "
            f"{self.state.value}>"
        )
