"""Struct-of-arrays kernel of the ``batch`` engine tier.

The batch engine (``REPRO_ENGINE=batch`` / ``--engine=batch``) is the
fast engine plus three numpy-backed accelerations, each proven
bit-identical by ``tests/differential`` and ``tests/properties``:

* :class:`SoALedger` -- the free-run fast-forward schedule kept as
  struct-of-arrays numpy state instead of per-cycle dict buckets: one
  slot per free-running worm holding its entry cycle, head/tail lane
  indices, entry ``sent`` counter, delivery cycle (= remaining-flit
  count relative to the current cycle) and next-event cycle, plus a
  live bitmask.  A due-cycle index over the slots makes a quiet cycle
  one dict miss; the global next-due cycle (a lazily-cleaned key heap)
  is what lets the engine clock sleep across provably event-free cycle
  spans ("batched wake scheduling" -- ``WormholeEngine._span_cycles``).

* :func:`plan_moves` -- Phase B advance of all unblocked moving worms
  in one shot: per-worm lane state is packed into ``(worms, lanes)``
  int arrays (``sent``/``buf`` counters, ownership bitmask, upstream
  feed) and the reference sweep's sequential within-worm walk is
  replayed as a short vectorized recurrence across the lane axis.
  Worms coupled to other worms within the cycle (a foreign flit still
  sitting in the head lane's buffer) are excluded and take the scalar
  walk at their exact sweep position, so the interleaving of header
  arrivals, releases and deliveries is unchanged.

* :class:`BatchStream` -- the engine's :class:`RandomStream` served
  from a numpy ``MT19937`` mirror of the CPython generator state.
  ``random_raw`` yields exactly the tempered 32-bit words CPython's
  ``genrand_uint32`` would produce, so every variate (Fisher-Yates
  shuffle draws, lane choices, floats) is reconstructed bit-identically
  from bulk-prefetched words -- same stream, a fraction of the per-draw
  cost.  ``tests/properties/test_batch_soa.py`` cross-checks every
  method against the stdlib generator draw by draw.

numpy is an *optional* dependency (``pip install repro[fast]``): this
module imports with numpy absent, :func:`require_numpy` raises a clean
error from the engine constructor, and tier-1 stays numpy-free (batch
tests skip themselves).
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.sim.rng import RandomStream

try:  # pragma: no cover - exercised via the no-numpy smoke test
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Sentinel "no event scheduled" cycle (far beyond any simulation).
FAR = 1 << 62


def numpy_available() -> bool:
    """True when numpy importable (the batch tier's only extra dep)."""
    return _np is not None


def require_numpy() -> None:
    """Refuse cleanly when the batch tier is selected without numpy."""
    if _np is None:
        raise RuntimeError(
            "the batch engine requires numpy, which is not installed; "
            "install the optional extra (`pip install repro[fast]`) or "
            "select another tier (REPRO_ENGINE=fast / --engine=fast)"
        )


# --------------------------------------------------------------- RNG mirror


class BatchStream(RandomStream):
    """A :class:`RandomStream` served from mirrored MT19937 raw words.

    CPython's ``random.Random`` and numpy's ``MT19937`` bit generator
    share the exact Mersenne-Twister state layout and tempering, so a
    generator state copied via ``getstate()`` makes ``random_raw(n)``
    produce precisely the words ``genrand_uint32`` would.  Every public
    variate below reimplements the CPython derivation (``_randbelow``
    rejection sampling, the 53-bit float construction) over a
    bulk-prefetched word buffer: the stream is bit-identical, but a
    32-entry shuffle costs one list walk instead of 31 method calls
    into the stdlib.

    Only the engine's allocation stream is adopted (workload streams
    keep the stdlib path), and the wrapped ``random.Random`` is never
    drawn from again after adoption -- the mirror owns the state.
    """

    _PREFETCH = 4096
    #: ``32 - (i + 1).bit_length()`` for the Fisher-Yates index draws.
    _SHIFTS = [32 - (i + 1).bit_length() for i in range(4096)]

    def __init__(self, seed: Optional[int] = None, name: str = "root") -> None:
        super().__init__(seed, name=name)
        self._mirror(self._rng.getstate())

    @classmethod
    def adopt(cls, stream: RandomStream) -> "BatchStream":
        """Wrap an existing stream, continuing its stream verbatim."""
        obj = cls.__new__(cls)
        obj.seed = stream.seed
        obj.name = stream.name
        obj._rng = stream._rng
        obj._mirror(stream._rng.getstate())
        return obj

    def _mirror(self, state: tuple) -> None:
        require_numpy()
        _, internal, _ = state
        mt = _np.random.MT19937()
        mt.state = {
            "bit_generator": "MT19937",
            "state": {
                "key": _np.array(internal[:624], dtype=_np.uint64),
                "pos": internal[624],
            },
        }
        self._mt = mt
        self._buf: list[int] = []
        self._ptr = 0

    def _refill(self) -> None:
        self._buf = self._mt.random_raw(self._PREFETCH).tolist()
        self._ptr = 0

    # -- CPython draw derivations, word by word ---------------------------

    def _getrandbits(self, k: int) -> int:
        """``random.Random.getrandbits(k)`` from mirrored words."""
        if k <= 32:
            if self._ptr >= len(self._buf):
                self._refill()
            w = self._buf[self._ptr] >> (32 - k)
            self._ptr += 1
            return w
        out = 0
        shift = 0
        while k > 0:
            if self._ptr >= len(self._buf):
                self._refill()
            w = self._buf[self._ptr]
            self._ptr += 1
            if k < 32:
                w >>= 32 - k
            out |= w << shift
            shift += 32
            k -= 32
        return out

    def _randbelow(self, n: int) -> int:
        """``random.Random._randbelow(n)``: rejection on ``bit_length``."""
        k = n.bit_length()
        r = self._getrandbits(k)
        while r >= n:
            r = self._getrandbits(k)
        return r

    def _random(self) -> float:
        """``random.Random.random()``: two words -> one 53-bit float."""
        if self._ptr + 2 > len(self._buf):
            self._refill()
        buf = self._buf
        a = buf[self._ptr] >> 5
        b = buf[self._ptr + 1] >> 6
        self._ptr += 2
        return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0)

    # -- RandomStream surface ---------------------------------------------

    def exponential(self, mean: float) -> float:
        if mean <= 0:
            raise ValueError("mean must be positive")
        import math

        u = self._random()
        while u <= 0.0:  # pragma: no cover - probability ~0
            u = self._random()
        return -mean * math.log(u)

    def uniform_int(self, low: int, high: int) -> int:
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        return low + self._randbelow(high - low + 1)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return low + (high - low) * self._random()

    def random(self) -> float:
        return self._random()

    def choice(self, seq):
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self._randbelow(len(seq))]

    def shuffle(self, seq: list) -> None:
        n = len(seq)
        if n < 2:
            return  # a 0/1-element Fisher-Yates draws nothing
        buf = self._buf
        nb = len(buf)
        ptr = self._ptr
        shifts = self._SHIFTS
        for i in range(n - 1, 0, -1):
            sh = shifts[i] if i < 4096 else 32 - (i + 1).bit_length()
            while True:
                if ptr >= nb:
                    self._refill()
                    buf = self._buf
                    nb = len(buf)
                    ptr = 0
                j = buf[ptr] >> sh
                ptr += 1
                if j <= i:
                    break
            seq[i], seq[j] = seq[j], seq[i]
        self._ptr = ptr

    def shuffle_k(self, seq: list, k: int) -> None:
        """``k`` successive Fisher-Yates passes over ``seq``, fused.

        Replays the service-order shuffles of ``k`` skipped all-blocked
        cycles (see ``WormholeEngine._span_cycles``): the swap indices
        are a pure function of the word stream, so running the passes
        back to back consumes exactly the words -- and produces exactly
        the permutation -- that per-cycle execution would have.
        """
        n = len(seq)
        if n < 2 or k <= 0:
            return
        buf = self._buf
        nb = len(buf)
        ptr = self._ptr
        shifts = self._SHIFTS
        rng = range(n - 1, 0, -1)
        for _ in range(k):
            for i in rng:
                sh = shifts[i] if i < 4096 else 32 - (i + 1).bit_length()
                while True:
                    if ptr >= nb:
                        self._refill()
                        buf = self._buf
                        nb = len(buf)
                        ptr = 0
                    j = buf[ptr] >> sh
                    ptr += 1
                    if j <= i:
                        break
                seq[i], seq[j] = seq[j], seq[i]
        self._ptr = ptr

    def bimodal_int(
        self, low: int, high: int, short_fraction: float, split: int
    ) -> int:
        if not (low <= split < high):
            raise ValueError("need low <= split < high")
        if not 0.0 <= short_fraction <= 1.0:
            raise ValueError("short_fraction must be in [0, 1]")
        if self._random() < short_fraction:
            return low + self._randbelow(split - low + 1)
        return split + 1 + self._randbelow(high - split)

    def weighted_index(self, weights) -> int:
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must have a positive sum")
        x = self._random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            if w < 0:
                raise ValueError("weights must be non-negative")
            acc += w
            if x < acc:
                return i
        return len(weights) - 1  # pragma: no cover - float edge

    def __repr__(self) -> str:
        return f"<BatchStream {self.name!r} seed={self.seed}>"


# ----------------------------------------------------------- free-run SoA


class SoALedger:
    """SoA schedule of free-running (delivery-phase) worms.

    One slot per worm that entered free-run streaming (see
    ``WormholeEngine._enter_lazy``): numpy int64 columns hold the entry
    cycle (``base``), the entry head ``sent`` snapshot (``sent0``), the
    first-owned/tail and head lane indices (``s``/``n1``) and the
    delivery cycle (``deliver`` -- the worm's remaining-flit count is
    simply ``deliver - cycle``); ``live`` is the slot bitmask.  The
    columns are what the bulk materializer and the property suite's
    round-trip oracle read, and they fully determine the worm's future.

    The worm's observable events -- an optional upstream-buffer drain
    at ``base + 1`` (when ``s > 0``), a contiguous burst of tail
    releases and buffer drains over ``[deliver - (n1 - s), deliver]``,
    and the delivery itself -- are expanded *once* at :meth:`add` into
    per-cycle due buckets, in exactly the tuple format and insertion
    order of the fast path's dict-bucket ledger (so within-cycle tie
    order under the engine's stable topo sort is identical by
    construction).  A due cycle is then one dict pop and a quiet cycle
    one integer compare; a min-heap of bucket keys backs
    :meth:`next_due`, the clock's span-sleep horizon.

    Removal (delivery, abort, mode-switch materialization) only frees
    the slot: stale scheduled actions are cancelled by the engine's
    per-worm token bump, exactly as on the fast path, and stale bucket
    keys can only make :meth:`next_due` stale *low* -- a shorter span
    or an empty visit, never skipped work.
    """

    def __init__(self, capacity: int = 64) -> None:
        require_numpy()
        self._cap = capacity
        self.base = _np.zeros(capacity, _np.int64)
        self.sent0 = _np.zeros(capacity, _np.int64)
        self.s = _np.zeros(capacity, _np.int64)
        self.n1 = _np.zeros(capacity, _np.int64)
        self.deliver = _np.zeros(capacity, _np.int64)
        self.live = _np.zeros(capacity, bool)
        self.pkts: list = [None] * capacity
        self._free = list(range(capacity - 1, -1, -1))
        #: High-water slot index + 1 (bounds every vectorized scan).
        self._top = 0
        self.count = 0
        #: Due buckets (cycle -> action list) and the min-heap of their
        #: keys (the span horizon; lazily purged).
        self._due: dict = {}
        self._dheap: list = []

    def _grow(self) -> None:
        old = self._cap
        new = old * 2
        for name in ("base", "sent0", "s", "n1", "deliver"):
            grown = _np.zeros(new, _np.int64)
            grown[:old] = getattr(self, name)
            setattr(self, name, grown)
        grown = _np.zeros(new, bool)
        grown[:old] = self.live
        self.live = grown
        self.pkts.extend([None] * old)
        self._free.extend(range(new - 1, old - 1, -1))
        self._cap = new

    def add(self, p, s: int, n1: int, cycle: int, deliver: int) -> int:
        """Register a worm entering free-run; returns its slot.

        Expands the worm's whole action schedule into the due buckets
        -- tuples, keys and insertion order identical to the fast
        path's ``_enter_lazy`` -- and snapshots the SoA columns.
        """
        if not self._free:
            self._grow()
        slot = self._free.pop()
        lanes = p.lanes
        self.base[slot] = cycle
        self.sent0[slot] = lanes[n1].sent
        self.s[slot] = s
        self.n1[slot] = n1
        self.deliver[slot] = deliver
        self.live[slot] = True
        self.pkts[slot] = p
        if slot >= self._top:
            self._top = slot + 1
        self.count += 1
        tok = p._lz_token
        due = self._due
        dheap = self._dheap
        for i in range(s, n1):
            lane = lanes[i]
            # Tail crosses lane i once the head is (n1 - i) deliveries
            # from done; the buffered tail flit drains one cycle later
            # via the downstream channel's move.
            t = deliver - (n1 - i)
            bucket = due.get(t)
            if bucket is None:
                due[t] = bucket = []
                heapq.heappush(dheap, t)
            bucket.append((lane.channel.topo_order, 1, p, tok, lane))
            down = lanes[i + 1].channel.topo_order
            bucket = due.get(t + 1)
            if bucket is None:
                due[t + 1] = bucket = []
                heapq.heappush(dheap, t + 1)
            bucket.append((down, 0, p, tok, lane))
        if s:
            # The already-released lane just upstream still buffers one
            # flit; lane ``s`` consumes it on its next -- provably last
            # -- move, one cycle from now.
            bucket = due.get(cycle + 1)
            if bucket is None:
                due[cycle + 1] = bucket = []
                heapq.heappush(dheap, cycle + 1)
            bucket.append(
                (lanes[s].channel.topo_order, 0, p, tok, lanes[s - 1])
            )
        bucket = due.get(deliver)
        if bucket is None:
            due[deliver] = bucket = []
            heapq.heappush(dheap, deliver)
        bucket.append((lanes[n1].channel.topo_order, 2, p, tok, lanes[n1]))
        return slot

    def remove(self, slot: int) -> None:
        """Free a slot (abort / materialization / delivery).

        Scheduled actions stay in their buckets; the owner's token bump
        cancels them at execution time (fast-path semantics).
        """
        self.live[slot] = False
        self.pkts[slot] = None
        self._free.append(slot)
        self.count -= 1

    def next_due(self) -> int:
        """Earliest cycle with a scheduled action (FAR if none).

        Never later than the true next due cycle (cancelled actions can
        only leave it stale *low*), so span skipping can trust it as a
        horizon.
        """
        h = self._dheap
        return h[0] if h else FAR

    def pop_due(self, cycle: int) -> Optional[list]:
        """Due actions of ``cycle``, as ``(topo, kind, pkt, token, lane)``.

        Returns None when nothing is due.  Cancelled actions (worm
        aborted or materialized since scheduling) may be present; the
        engine's executor drops them by token, exactly as on the fast
        path.  The delivery frees the worm's slot via the engine (the
        packet records it).
        """
        h = self._dheap
        # Purge keys the clock has passed without visiting (possible
        # only while no free-run worm was live, i.e. stale buckets).
        while h and h[0] < cycle:
            self._due.pop(heapq.heappop(h), None)
        if not h or h[0] > cycle:
            return None
        heapq.heappop(h)
        return self._due.pop(cycle)

    def live_packets(self) -> list:
        """The packets of every live slot (bulk materialization)."""
        top = self._top
        idx = _np.nonzero(self.live[:top])[0]
        return [self.pkts[w] for w in idx.tolist()]

    def clear(self) -> None:
        """Drop every slot (after the engine materialized the worms)."""
        self.live[: self._top] = False
        for w in range(self._top):
            self.pkts[w] = None
        self._free = list(range(self._cap - 1, -1, -1))
        self._top = 0
        self.count = 0
        self._due.clear()
        self._dheap.clear()


# --------------------------------------------------------- vectorized step

#: An "infinite" upstream feed (the source injects without bound).
_SOURCE_FEED = 1 << 30


def plan_moves(worms: list) -> list:
    """One-cycle advance plan for a batch of independent moving worms.

    ``worms`` is a list of ``(packet, s, n1)`` tuples: the owned-lane
    suffix ``packet.lanes[s .. n1]`` of each worm, every channel
    single-lane (worm mode).  The reference walk moves flits
    downstream-first within each worm; because buffers are single-flit,
    its sequential effect has the closed form

        movable[0] = sent < len  and  feed > 0  and  (delivery or buf == 0)
        movable[j] = sent < len  and  feed > 0  and  (buf == 0 or movable[j-1])

    over start-of-cycle counters, which this function evaluates for all
    worms at once: lane state is packed into ``(W, L)`` int arrays
    (lane axis downstream-first, position 0 = head) and the recurrence
    runs as one vector step per lane position.  Worms whose movement
    could depend on *other* worms' moves this cycle (a foreign flit in
    the head lane buffer -- the documented unstall exception) must not
    be planned; the engine excludes them and walks them scalar.

    Returns, per worm, ``(moved_any, mv, new_sent, new_buf, feed_take)``
    where ``mv``/``new_sent``/``new_buf`` are per-owned-lane lists in
    the same downstream-first order and ``feed_take`` is 1 when the
    worm consumed a flit from the released lane just upstream of its
    suffix (``lanes[s-1]``).  The engine applies the plan in the exact
    reference order, so every observable side effect (header arrivals,
    releases, deliveries, wakes) lands at its reference position.
    """
    require_numpy()
    W = len(worms)
    L = 0
    for _, s, n1 in worms:
        m = n1 - s + 1
        if m > L:
            L = m
    sent = _np.zeros((W, L), _np.int64)
    buf = _np.zeros((W, L), _np.int64)
    feed = _np.zeros((W, L), _np.int64)
    own = _np.zeros((W, L), bool)
    length = _np.zeros(W, _np.int64)
    isdlv = _np.zeros(W, bool)
    for w, (p, s, n1) in enumerate(worms):
        lanes = p.lanes
        length[w] = p.length
        isdlv[w] = lanes[n1].channel.is_delivery
        m = n1 - s + 1
        for j in range(m):
            lane = lanes[n1 - j]
            sent[w, j] = lane.sent
            buf[w, j] = lane.buf
            own[w, j] = True
        # Upstream feed of lane position j is the buffer of the next
        # lane up: positions 0..m-2 feed from within the suffix, the
        # tail position from lanes[s-1] (released leftovers) or the
        # source itself (s == 0: unbounded supply).
        feed[w, : m - 1] = buf[w, 1:m]
        feed[w, m - 1] = _SOURCE_FEED if s == 0 else lanes[s - 1].buf
    lenb = length[:, None]
    mv = _np.zeros((W, L), bool)
    mv[:, 0] = (
        own[:, 0]
        & (sent[:, 0] < length)
        & (feed[:, 0] > 0)
        & (isdlv | (buf[:, 0] == 0))
    )
    for j in range(1, L):
        mv[:, j] = (
            own[:, j]
            & (sent[:, j] < lenb[:, 0])
            & (feed[:, j] > 0)
            & ((buf[:, j] == 0) | mv[:, j - 1])
        )
    new_sent = sent + mv
    # A lane's buffer loses one flit to the downstream move and gains
    # one from its own (delivery lanes emit straight into the node).
    new_buf = buf.copy()
    new_buf[:, 1:] -= mv[:, :-1]
    gain = mv.copy()
    gain[:, 0] &= ~isdlv
    new_buf += gain
    plans = []
    for w, (p, s, n1) in enumerate(worms):
        m = n1 - s + 1
        row = mv[w, :m]
        moved = bool(row.any())
        feed_take = int(row[m - 1]) if s else 0
        plans.append(
            (
                moved,
                row.tolist(),
                new_sent[w, :m].tolist(),
                new_buf[w, :m].tolist(),
                feed_take,
            )
        )
    return plans
