"""Per-packet event tracing for the wormhole engine.

Attach a :class:`Tracer` to an engine to record the life of every
message -- queued, injected, each channel acquisition, blocking spells,
delivery or abort -- and render per-packet timelines.  Used by the
debugging example and handy when studying *why* a configuration
saturates (e.g. which channel a permutation's losers block on).

    engine.tracer = Tracer()
    ...
    print(engine.tracer.format_timeline(pid))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.wormhole.channel import PhysChannel
    from repro.wormhole.packet import Packet


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event of one packet."""

    time: float
    kind: str      # offered | injected | acquired | blocked | delivered | failed
    pid: int
    detail: str

    def __str__(self) -> str:
        return f"t={self.time:<8g} {self.kind:<9} {self.detail}"


class Tracer:
    """Collects :class:`TraceEvent` streams, indexed per packet.

    ``max_events`` bounds memory for long runs (oldest packets keep
    their events; new events are dropped once the cap is hit and
    :attr:`truncated` is set).
    """

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self._by_pid: dict[int, list[TraceEvent]] = {}
        #: pid -> channel label currently blocking it (dedup of repeats)
        self._blocked_on: dict[int, str] = {}
        self.truncated = False

    # -- hooks the engine calls -------------------------------------------

    def on_offer(self, time: float, packet: "Packet") -> None:
        """Message submitted to its source queue."""
        self._record(
            time,
            "offered",
            packet.pid,
            f"{packet.src}->{packet.dst} len={packet.length}",
        )

    def on_inject(self, time: float, packet: "Packet") -> None:
        """Message started transmitting (left the FCFS queue)."""
        self._record(time, "injected", packet.pid, f"from node {packet.src}")

    def on_acquire(
        self, time: float, packet: "Packet", channel: "PhysChannel", lane_index: int
    ) -> None:
        """Header acquired a (virtual) channel."""
        self._blocked_on.pop(packet.pid, None)
        lane = f".vc{lane_index}" if channel.num_lanes > 1 else ""
        self._record(time, "acquired", packet.pid, channel.label + lane)

    def on_blocked(
        self, time: float, packet: "Packet", channels: list["PhysChannel"]
    ) -> None:
        """Header found every candidate busy (deduped per spell)."""
        key = ",".join(ch.label for ch in channels)
        if self._blocked_on.get(packet.pid) == key:
            return  # still stuck on the same hop: no new event
        self._blocked_on[packet.pid] = key
        self._record(time, "blocked", packet.pid, f"waiting for {key}")

    def on_deliver(self, time: float, packet: "Packet") -> None:
        """Tail flit consumed at the destination."""
        self._blocked_on.pop(packet.pid, None)
        self._record(
            time, "delivered", packet.pid, f"latency {time - packet.created:g}"
        )

    def on_abort(self, time: float, packet: "Packet") -> None:
        """Worm killed by fault handling."""
        self._blocked_on.pop(packet.pid, None)
        self._record(time, "failed", packet.pid, "all next-hop channels faulty")

    # -- queries ---------------------------------------------------------

    def packet_timeline(self, pid: int) -> list[TraceEvent]:
        """All events of one packet, in time order."""
        return list(self._by_pid.get(pid, ()))

    def format_timeline(self, pid: int) -> str:
        """Human-readable one-line-per-event rendering."""
        events = self.packet_timeline(pid)
        if not events:
            return f"packet #{pid}: no events recorded"
        header = f"packet #{pid}:"
        return "\n".join([header] + [f"  {e}" for e in events])

    def blocking_hotspots(self, top: int = 5) -> list[tuple[str, int]]:
        """Channels most often named in blocked events (congestion map)."""
        from collections import Counter

        counts: Counter[str] = Counter()
        for e in self.events:
            if e.kind == "blocked":
                counts[e.detail.removeprefix("waiting for ")] += 1
        return counts.most_common(top)

    def _record(self, time: float, kind: str, pid: int, detail: str) -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        event = TraceEvent(time, kind, pid, detail)
        self.events.append(event)
        self._by_pid.setdefault(pid, []).append(event)
