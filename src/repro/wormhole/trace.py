"""Per-packet event tracing for the wormhole engine.

Attach a :class:`Tracer` to an engine to record the life of every
message -- queued, injected, each channel acquisition, blocking spells,
delivery or abort -- and render per-packet timelines.  Used by the
debugging example and handy when studying *why* a configuration
saturates (e.g. which channel a permutation's losers block on).

    engine.tracer = Tracer()
    ...
    print(engine.tracer.format_timeline(pid))
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.wormhole.channel import PhysChannel
    from repro.wormhole.packet import Packet


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event of one packet."""

    time: float
    kind: str      # offered | injected | acquired | blocked | delivered | failed
    pid: int
    detail: str
    #: Global record order (monotone across packets); lets the flat
    #: :attr:`Tracer.events` view interleave ring buffers correctly.
    seq: int = 0

    def __str__(self) -> str:
        return f"t={self.time:<8g} {self.kind:<9} {self.detail}"


class Tracer:
    """Collects :class:`TraceEvent` streams, indexed per packet.

    Memory is bounded two ways, and every drop is *surfaced*, never
    silent (an earlier revision hit ``max_events`` and silently dropped
    new packets' events mid-flight, producing timelines that looked
    complete while missing their endings):

    * ``per_packet`` -- each packet's timeline is a ring buffer keeping
      its **newest** events (a delivered worm always shows its
      delivery; overwrites count in :attr:`dropped_events`);
    * ``max_events`` -- once the total retained events exceed the cap,
      the **oldest whole packets** are evicted (counted in
      :attr:`evicted_packets` / :attr:`evicted_events`), so every
      timeline still present is internally complete up to its own ring.
      The newest packet is never evicted, even if its ring alone
      exceeds the cap.

    :attr:`truncated` is True iff anything was dropped or evicted.
    """

    def __init__(
        self, max_events: int = 1_000_000, per_packet: int = 256
    ) -> None:
        if max_events < 1 or per_packet < 1:
            raise ValueError("max_events and per_packet must be >= 1")
        self.max_events = max_events
        self.per_packet = per_packet
        self._by_pid: dict[int, deque[TraceEvent]] = {}
        #: pid insertion order (eviction order when over the cap).
        self._order: deque[int] = deque()
        #: pid -> channel label currently blocking it (dedup of repeats)
        self._blocked_on: dict[int, str] = {}
        self._seq = 0
        self._total = 0
        #: Events overwritten by their packet's ring buffer.
        self.dropped_events = 0
        #: Whole packets evicted by the global cap (and their events).
        self.evicted_packets = 0
        self.evicted_events = 0

    @property
    def events(self) -> list[TraceEvent]:
        """Flat view of every retained event, in record order."""
        flat = [e for ring in self._by_pid.values() for e in ring]
        flat.sort(key=lambda e: e.seq)
        return flat

    @property
    def truncated(self) -> bool:
        """True iff any event was dropped or any packet evicted."""
        return bool(self.dropped_events or self.evicted_packets)

    # -- hooks the engine calls -------------------------------------------

    def on_offer(self, time: float, packet: "Packet") -> None:
        """Message submitted to its source queue."""
        self._record(
            time,
            "offered",
            packet.pid,
            f"{packet.src}->{packet.dst} len={packet.length}",
        )

    def on_inject(self, time: float, packet: "Packet") -> None:
        """Message started transmitting (left the FCFS queue)."""
        self._record(time, "injected", packet.pid, f"from node {packet.src}")

    def on_acquire(
        self, time: float, packet: "Packet", channel: "PhysChannel", lane_index: int
    ) -> None:
        """Header acquired a (virtual) channel."""
        self._blocked_on.pop(packet.pid, None)
        lane = f".vc{lane_index}" if channel.num_lanes > 1 else ""
        self._record(time, "acquired", packet.pid, channel.label + lane)

    def on_blocked(
        self, time: float, packet: "Packet", channels: list["PhysChannel"]
    ) -> None:
        """Header found every candidate busy (deduped per spell)."""
        key = ",".join(ch.label for ch in channels)
        if self._blocked_on.get(packet.pid) == key:
            return  # still stuck on the same hop: no new event
        self._blocked_on[packet.pid] = key
        self._record(time, "blocked", packet.pid, f"waiting for {key}")

    def on_deliver(self, time: float, packet: "Packet") -> None:
        """Tail flit consumed at the destination."""
        self._blocked_on.pop(packet.pid, None)
        self._record(
            time, "delivered", packet.pid, f"latency {time - packet.created:g}"
        )

    def on_abort(self, time: float, packet: "Packet") -> None:
        """Worm killed by fault handling."""
        self._blocked_on.pop(packet.pid, None)
        self._record(time, "failed", packet.pid, "all next-hop channels faulty")

    # -- queries ---------------------------------------------------------

    def packet_timeline(self, pid: int) -> list[TraceEvent]:
        """All events of one packet, in time order."""
        return list(self._by_pid.get(pid, ()))

    def format_timeline(self, pid: int) -> str:
        """Human-readable one-line-per-event rendering."""
        events = self.packet_timeline(pid)
        if not events:
            return f"packet #{pid}: no events recorded"
        header = f"packet #{pid}:"
        return "\n".join([header] + [f"  {e}" for e in events])

    def blocking_hotspots(self, top: int = 5) -> list[tuple[str, int]]:
        """Channels most often named in blocked events (congestion map)."""
        from collections import Counter

        counts: Counter[str] = Counter()
        for e in self.events:
            if e.kind == "blocked":
                counts[e.detail.removeprefix("waiting for ")] += 1
        return counts.most_common(top)

    def _record(self, time: float, kind: str, pid: int, detail: str) -> None:
        event = TraceEvent(time, kind, pid, detail, self._seq)
        self._seq += 1
        ring = self._by_pid.get(pid)
        if ring is None:
            ring = self._by_pid[pid] = deque(maxlen=self.per_packet)
            self._order.append(pid)
        if len(ring) == self.per_packet:
            # Ring overwrite: the packet keeps its newest events.
            self.dropped_events += 1
            self._total -= 1
        ring.append(event)
        self._total += 1
        # Global cap: evict whole oldest packets (never the newest one),
        # so surviving timelines stay internally complete.
        while self._total > self.max_events and len(self._order) > 1:
            old = self._order.popleft()
            evicted = self._by_pid.pop(old, None)
            if evicted is None:  # pragma: no cover - defensive
                continue
            self._total -= len(evicted)
            self.evicted_packets += 1
            self.evicted_events += len(evicted)
            self._blocked_on.pop(old, None)
