"""Flit-level wormhole-switching network simulator (the paper's Section 5).

The simulator reproduces the paper's hardware model exactly:

* wormhole switching: the header flit acquires channels hop by hop and
  the body follows in a pipeline; a blocked header holds every channel
  the worm spans;
* one flit of buffering per (virtual) channel at each switch input;
* all channels have equal bandwidth (one flit per cycle; 20 flits/us in
  the paper's units, i.e. one cycle = 0.05 us);
* switches act asynchronously (header allocation happens in random
  order each cycle) but worms advance in lockstep (flit movement is
  processed downstream-first so a full pipeline moves one flit per
  channel per cycle);
* virtual channels multiplex a wire flit-by-flit, round-robin over the
  *active* VCs, so k active VCs each get W/k bandwidth (Section 2.2);
* one-port nodes: serial FCFS injection, immediate consumption.

Modules:

* :mod:`repro.wormhole.packet` -- message records and lifecycle;
* :mod:`repro.wormhole.channel` -- physical channels, lanes (virtual
  channels), flit accounting;
* :mod:`repro.wormhole.network` -- builds the four simulated networks
  (TMIN / DMIN / VMIN / BMIN) and answers routing-candidate queries;
* :mod:`repro.wormhole.engine` -- the two-phase cycle engine driven by
  the :mod:`repro.sim` kernel.
"""

from repro.wormhole.channel import Lane, PhysChannel
from repro.wormhole.engine import EngineStats, WormholeEngine
from repro.wormhole.network import (
    BidirectionalNetwork,
    NetworkKind,
    SimNetwork,
    SmartBidirectionalNetwork,
    UnidirectionalNetwork,
    build_network,
)
from repro.wormhole.packet import Packet, PacketState

__all__ = [
    "BidirectionalNetwork",
    "EngineStats",
    "Lane",
    "NetworkKind",
    "Packet",
    "PacketState",
    "PhysChannel",
    "SimNetwork",
    "SmartBidirectionalNetwork",
    "UnidirectionalNetwork",
    "WormholeEngine",
    "build_network",
]
