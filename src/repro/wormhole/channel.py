"""Physical channels and virtual-channel lanes with flit accounting.

A :class:`PhysChannel` is one unidirectional wire.  It carries one or
more :class:`Lane` objects (virtual channels); each lane has its own
one-flit buffer at the downstream switch input, its own owner packet,
and its own flit counter, while the wire itself transmits at most one
flit per cycle, shared round-robin among the *ready* lanes
(Section 2.2's dynamic bandwidth allocation).

Flit accounting per lane:

* ``sent`` -- flits that have crossed the wire since the current owner
  acquired the lane;
* ``buf`` -- flits currently sitting in the lane's downstream buffer
  (0 or 1; delivery lanes have no buffer, the node consumes instantly).

A lane is *released* when its owner's tail flit has crossed
(``sent == length``); the buffer may still hold that tail flit, which
correctly delays the next owner's first flit until it drains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.wormhole.packet import Packet

#: Optional observer invoked as ``release_observer(lane)`` just before a
#: lane frees.  Installed by the opt-in runtime sanitizer
#: (:mod:`repro.verify.sanitizer`, ``REPRO_SANITIZE=1``) to assert
#: acquire/release pairing; None (the default) costs one comparison.
release_observer: Optional[Callable[["Lane"], None]] = None

#: Monotonic counter bumped by every :meth:`PhysChannel.fail` /
#: :meth:`PhysChannel.repair`.  The engine's fast path stamps its
#: cached blocked-header routing decisions with this epoch, so any
#: fault-state change anywhere invalidates every cache (conservative
#: but O(1); faults are rare events).
fault_epoch: int = 0


def bump_fault_epoch() -> int:
    """Advance the global fault epoch (called by fail/repair).

    The epoch is an invalidation *token*: consumers only ever compare
    two reads for inequality, never interpret the absolute value, so
    the process-global counter cannot leak into any result payload.
    That property is what justifies this function's entry in the purity
    allowlist (:mod:`repro.verify.flow.allowlist`).
    """
    global fault_epoch
    fault_epoch += 1
    return fault_epoch


class Lane:
    """One virtual channel on a wire."""

    __slots__ = ("channel", "index", "owner", "route_idx", "sent", "buf")

    def __init__(self, channel: "PhysChannel", index: int) -> None:
        self.channel = channel
        self.index = index
        self.owner: Optional["Packet"] = None
        #: Position of this lane in the owner's route (0 = injection).
        self.route_idx = -1
        self.sent = 0
        self.buf = 0

    @property
    def free(self) -> bool:
        """True when no packet owns this lane."""
        return self.owner is None

    def acquire(self, packet: "Packet") -> None:
        """Give the lane to ``packet`` as its next route hop."""
        if self.owner is not None:
            raise RuntimeError(f"{self!r} is already owned by {self.owner!r}")
        self.owner = packet
        self.route_idx = len(packet.lanes)
        self.sent = 0
        self.channel.owned_count += 1
        packet.lanes.append(self)

    def release(self) -> None:
        """Free the lane (the owner's tail flit has crossed the wire)."""
        if release_observer is not None:
            release_observer(self)
        self.owner = None
        self.route_idx = -1
        self.channel.owned_count -= 1
        # ``buf`` intentionally survives: the tail flit may still occupy
        # the downstream buffer until it crosses the next channel.

    def __repr__(self) -> str:
        who = f"pkt#{self.owner.pid}" if self.owner else "free"
        return (
            f"<Lane {self.channel.label}.{self.index} {who} "
            f"sent={self.sent} buf={self.buf}>"
        )


class PhysChannel:
    """One unidirectional wire carrying ``num_lanes`` virtual channels."""

    __slots__ = (
        "label",
        "lanes",
        "is_delivery",
        "rr_next",
        "topo_order",
        "sink",
        "meta",
        "faulty",
        "owned_count",
        "in_active",
        "slowdown",
        "cooldown",
    )

    def __init__(
        self,
        label: str,
        num_lanes: int = 1,
        is_delivery: bool = False,
        sink: Optional[int] = None,
        slowdown: int = 1,
    ) -> None:
        if num_lanes < 1:
            raise ValueError("a channel needs at least one lane")
        if slowdown < 1:
            raise ValueError("slowdown must be >= 1")
        if is_delivery != (sink is not None):
            raise ValueError("delivery channels (and only they) name a sink node")
        self.label = label
        self.lanes = [Lane(self, i) for i in range(num_lanes)]
        self.is_delivery = is_delivery
        self.sink = sink
        #: Round-robin pointer for fair flit-level multiplexing.
        self.rr_next = 0
        #: Position in the reverse-topological processing order.
        self.topo_order = -1
        #: Optional network-specific metadata (the BMIN stores its
        #: ``(direction, boundary, line)`` triple here).
        self.meta: Optional[tuple] = None
        #: Faulty channels are never acquired by new headers (fault
        #: injection; worms already holding the wire finish normally).
        self.faulty = False
        #: Owned lanes, maintained by Lane.acquire/release -- the hot
        #: path's O(1) replacement for scanning the lanes.
        self.owned_count = 0
        #: True while this channel sits on the fast engine's active
        #: list (see :meth:`WormholeEngine._phase_advance_fast`);
        #: maintained by the engine, never by the channel itself.
        self.in_active = False
        #: Cycles per flit (1 = full speed).  A slow wire rests
        #: ``slowdown - 1`` cycles after each flit; used by the direct
        #: topologies' ``vlink_slowdown`` knob for slow vertical links.
        self.slowdown = slowdown
        #: Remaining rest cycles before the next flit may cross.  Only
        #: *visited* cycles count it down (busy channels are visited
        #: exactly once per cycle on both engine paths; an idle wire
        #: has nothing to rest from).
        self.cooldown = 0

    def fail(self) -> None:
        """Inject a fault: new headers can no longer acquire this wire.

        Worms already holding a lane keep streaming (the fault model is
        a link taken out of the routing tables, not a wire cut mid
        transfer).  For the wire-cut model -- kill the worms currently
        on the wire too -- see :class:`repro.faults.plan.FaultInjector`
        with ``severity="hard"``, which pairs :meth:`fail` with
        :meth:`repro.wormhole.engine.WormholeEngine.abort_packet` on
        :meth:`owners`.
        """
        self.faulty = True
        bump_fault_epoch()

    def repair(self) -> None:
        """Clear an injected fault."""
        self.faulty = False
        bump_fault_epoch()

    def owners(self) -> list["Packet"]:
        """Distinct packets currently holding a lane of this wire."""
        out: list["Packet"] = []
        for lane in self.lanes:
            if lane.owner is not None and lane.owner not in out:
                out.append(lane.owner)
        return out

    @property
    def num_lanes(self) -> int:
        """Virtual channels multiplexed on this wire."""
        return len(self.lanes)

    @property
    def busy(self) -> bool:
        """True if any lane is owned (the wire may carry traffic)."""
        return self.owned_count > 0

    def free_lanes(self) -> list[Lane]:
        """Lanes currently available for a new header."""
        return [lane for lane in self.lanes if lane.owner is None]

    def _lane_ready(self, lane: Lane) -> bool:
        """Can this lane move a flit across the wire this cycle?"""
        p = lane.owner
        if p is None or lane.sent >= p.length:
            return False
        # Upstream flit availability: the source feeds the injection
        # lane serially (always ready); otherwise the previous lane's
        # downstream buffer must hold a flit.
        if lane.route_idx > 0 and p.lanes[lane.route_idx - 1].buf == 0:
            return False
        # Downstream space: the destination consumes immediately; a
        # switch input buffer must be empty (its single flit slot).
        if not self.is_delivery and lane.buf != 0:
            return False
        return True

    def _move(self, lane: Lane) -> None:
        """Apply the flit movement effects for a ready lane."""
        p = lane.owner
        if lane.route_idx > 0:
            p.lanes[lane.route_idx - 1].buf -= 1
        lane.sent += 1
        if self.is_delivery:
            p.delivered_flits += 1
        else:
            lane.buf += 1
        if self.slowdown > 1:
            self.cooldown = self.slowdown - 1

    def transmit(self) -> Optional[Lane]:
        """Move one flit across the wire if any lane is ready.

        Lanes are served round-robin among the ready ones so that k
        active virtual channels each receive W/k bandwidth.  Returns the
        lane served, or None.
        """
        if self.cooldown:
            self.cooldown -= 1
            return None
        lanes = self.lanes
        n = len(lanes)
        if n == 1:
            # Hot path: the vast majority of channels carry one lane.
            lane = lanes[0]
            if self._lane_ready(lane):
                self._move(lane)
                return lane
            return None
        for off in range(n):
            lane = lanes[(self.rr_next + off) % n]
            if self._lane_ready(lane):
                self._move(lane)
                self.rr_next = (self.rr_next + off + 1) % n
                return lane
        return None

    def __repr__(self) -> str:
        return f"<PhysChannel {self.label} lanes={self.num_lanes}>"
