"""Software multicast on wormhole MINs (the paper's future-work item).

Section 6 points to the authors' own work on *optimal software multicast
in wormhole-routed multistage networks* [32]: a multicast is implemented
as phases of unicasts, where every node that already holds the message
forwards it to one new destination per phase (recursive doubling:
``ceil(log2(m+1))`` phases reach ``m`` destinations).

* :mod:`repro.multicast.schedule` -- planners: naive sequential
  (``m`` phases from the source) and binomial block splitting
  (logarithmic, and arranged so that a phase's unicasts use disjoint
  BMIN subtrees wherever possible), plus a static conflict analysis.
* :mod:`repro.multicast.runner` -- executes a schedule on the wormhole
  engine with phase barriers and reports the end-to-end multicast
  latency.
"""

from repro.multicast.runner import MulticastResult, run_multicast
from repro.multicast.schedule import (
    UnicastStep,
    binomial_schedule,
    phase_conflicts,
    sequential_schedule,
)

__all__ = [
    "MulticastResult",
    "UnicastStep",
    "binomial_schedule",
    "phase_conflicts",
    "run_multicast",
    "sequential_schedule",
]
