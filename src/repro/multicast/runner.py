"""Execute a multicast schedule on the wormhole engine.

Software multicast semantics: phases are barrier-synchronized -- a node
forwards the message only after it has fully received it, and a phase
begins once every step of the previous phase has been delivered (a
conservative model of the runtime system's behaviour; pipelining across
phases would only narrow the naive-vs-binomial gap we measure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sim.core import Environment
from repro.sim.rng import RandomStream
from repro.multicast.schedule import Schedule, validate_schedule
from repro.wormhole.engine import WormholeEngine
from repro.wormhole.network import SimNetwork
from repro.wormhole.packet import PacketState


@dataclass(frozen=True)
class MulticastResult:
    """Outcome of one simulated multicast."""

    phases: int
    unicasts: int
    total_cycles: float
    phase_cycles: tuple[float, ...]

    def __str__(self) -> str:
        return (
            f"{self.phases} phases / {self.unicasts} unicasts "
            f"in {self.total_cycles:g} cycles "
            f"(per phase: {[f'{c:g}' for c in self.phase_cycles]})"
        )


def run_multicast(
    network: SimNetwork,
    source: int,
    destinations: Sequence[int],
    schedule: Schedule,
    message_length: int = 64,
    seed: int = 0,
) -> MulticastResult:
    """Simulate ``schedule`` on a fresh engine; returns timing."""
    validate_schedule(source, list(destinations), schedule)
    env = Environment()
    engine = WormholeEngine(env, network, rng=RandomStream(seed))
    phase_cycles: list[float] = []
    start = env.now
    unicasts = 0
    engine.start()
    for phase in schedule:
        phase_start = env.now
        packets = [
            engine.offer(step.sender, step.receiver, message_length)
            for step in phase
        ]
        unicasts += len(packets)
        # Step event by event so the phase barrier lands on the exact
        # cycle the last tail flit arrives (drain()'s chunked runs
        # would overshoot the clock).
        steps_budget = 10_000_000
        while not engine.idle:
            env.step()
            steps_budget -= 1
            if steps_budget <= 0:
                raise RuntimeError("multicast phase failed to complete")
        if any(p.state is not PacketState.DELIVERED for p in packets):
            raise RuntimeError("a multicast unicast failed to deliver")
        phase_cycles.append(env.now - phase_start)
    return MulticastResult(
        phases=len(schedule),
        unicasts=unicasts,
        total_cycles=env.now - start,
        phase_cycles=tuple(phase_cycles),
    )
