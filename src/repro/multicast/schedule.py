"""Multicast schedules: phases of unicast steps.

A *schedule* is a list of phases; each phase is a list of
:class:`UnicastStep` (sender, receiver) pairs that run concurrently.
Validity: a step's sender must hold the message (be the source or a
receiver of an earlier phase), and no node receives twice.

Two planners:

* :func:`sequential_schedule` -- the source sends one unicast per phase
  (``m`` phases): the baseline a naive runtime system would use;
* :func:`binomial_schedule` -- recursive block splitting: the
  destination set (plus source) is sorted by address and repeatedly
  halved; in each phase every holder forwards to the *far half* of its
  current block.  ``ceil(log2(m+1))`` phases, and on a butterfly BMIN
  the concurrent steps of a phase stay in disjoint address blocks --
  disjoint subtrees once a block fits under one fat-tree vertex -- which
  minimizes channel conflicts (the idea behind [32]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.topology.bmin import BidirectionalMIN


@dataclass(frozen=True)
class UnicastStep:
    """One sender->receiver message within a phase."""

    sender: int
    receiver: int

    def __repr__(self) -> str:
        return f"{self.sender}->{self.receiver}"


Schedule = list[list[UnicastStep]]


def _check_request(source: int, destinations: Sequence[int]) -> list[int]:
    dests = list(dict.fromkeys(destinations))  # stable dedup
    if source in dests:
        raise ValueError("the source already holds the message")
    if not dests:
        raise ValueError("multicast needs at least one destination")
    return dests


def validate_schedule(
    source: int, destinations: Sequence[int], schedule: Schedule
) -> None:
    """Raise unless the schedule correctly implements the multicast."""
    pending = set(destinations)
    holders = {source}
    for phase_no, phase in enumerate(schedule):
        busy_senders: set[int] = set()
        for step in phase:
            if step.sender not in holders:
                raise ValueError(
                    f"phase {phase_no}: {step.sender} does not hold the message"
                )
            if step.sender in busy_senders:
                raise ValueError(
                    f"phase {phase_no}: {step.sender} sends twice (one-port!)"
                )
            if step.receiver not in pending:
                raise ValueError(
                    f"phase {phase_no}: {step.receiver} is not a pending destination"
                )
            busy_senders.add(step.sender)
            pending.discard(step.receiver)
        holders.update(step.receiver for step in phase)
    if pending:
        raise ValueError(f"destinations never reached: {sorted(pending)}")


def sequential_schedule(source: int, destinations: Sequence[int]) -> Schedule:
    """The source unicasts to each destination in turn: m phases."""
    dests = _check_request(source, destinations)
    return [[UnicastStep(source, d)] for d in dests]


def binomial_schedule(source: int, destinations: Sequence[int]) -> Schedule:
    """Recursive block splitting: ``ceil(log2(m+1))`` phases.

    The participant list (source + destinations, address-sorted) is
    split in half around the median; the holder of each block sends to
    the first node of the far half, then both halves recurse in
    parallel.  Keeping blocks contiguous in the address space keeps
    concurrent steps in disjoint BMIN subtrees as long as blocks align
    with fat-tree vertices.
    """
    dests = _check_request(source, destinations)
    participants = sorted(dests + [source])
    schedule: Schedule = []

    # blocks: (holder, members) with members address-sorted and
    # containing the holder.
    blocks = [(source, participants)]
    while any(len(members) > 1 for _, members in blocks):
        phase: list[UnicastStep] = []
        next_blocks: list[tuple[int, list[int]]] = []
        for holder, members in blocks:
            if len(members) == 1:
                next_blocks.append((holder, members))
                continue
            mid = len(members) // 2
            low, high = members[:mid], members[mid:]
            # Keep the holder's half, delegate the other.
            if holder in low:
                mine, other = low, high
            else:
                mine, other = high, low
            delegate = other[0]
            phase.append(UnicastStep(holder, delegate))
            next_blocks.append((holder, mine))
            next_blocks.append((delegate, other))
        schedule.append(phase)
        blocks = next_blocks
    return schedule


def phase_conflicts(
    bmin: BidirectionalMIN, phase: Sequence[UnicastStep]
) -> int:
    """Unavoidable down-channel conflicts within one phase.

    Greedily assigns forward-choice scrambles to each step, counting a
    conflict whenever no choice avoids sharing a backward line with an
    already-placed step.  Zero means the phase is realizable
    contention-free on the BMIN (the [32] optimality criterion); the
    greedy check is sufficient but not necessary, so this is an upper
    bound on true conflicts.
    """
    taken: set[tuple[int, int]] = set()  # (boundary, line) backward channels
    conflicts = 0
    for step in phase:
        if step.sender == step.receiver:
            continue
        options = bmin.enumerate_shortest_paths(step.sender, step.receiver)
        placed = False
        for path in options:
            lines = {(b, line) for b, line in enumerate(path.down)}
            if not (lines & taken):
                taken |= lines
                placed = True
                break
        if not placed:
            conflicts += 1
            taken |= {
                (b, line) for b, line in enumerate(options[0].down)
            }
    return conflicts
