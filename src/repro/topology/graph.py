"""Graph exports of the MIN topologies (networkx).

Builds directed channel graphs of the unidirectional MINs and the BMIN
so that graph algorithms can verify the constructive code
independently: the banyan unique-path property becomes "exactly one
simple path per (source, destination)", Theorem 1 becomes a
``k**t`` path count, and the fat-tree analogy becomes a reachability
statement -- all checked with networkx rather than our own routing.

Node naming:

* ``("node", i)`` -- processor nodes (both ends for unidirectional
  MINs: sources inject on the left, and the same label re-appears as
  ``("sink", i)`` for the output side to keep the graph acyclic);
* ``("sw", stage, w)`` -- switches.
"""

from __future__ import annotations

import networkx as nx

from repro.direct.topo import DirectTopology, dim_name
from repro.topology.bmin import BidirectionalMIN
from repro.topology.spec import MINSpec


def min_to_digraph(spec: MINSpec) -> "nx.DiGraph":
    """Directed channel graph of a unidirectional MIN.

    Edges carry ``boundary`` and ``position`` attributes matching
    :meth:`MINSpec.channels_of_path`'s channel identities.
    """
    g = nx.DiGraph(name=f"{spec.name}-min", k=spec.k, n=spec.n)
    k, n = spec.k, spec.n
    for source in range(spec.N):
        dest_pos = spec.connections[0](source)
        g.add_edge(
            ("node", source),
            ("sw", 0, dest_pos // k),
            boundary=0,
            position=source,
        )
    for boundary in range(1, n):
        for pos in range(spec.N):
            dest_pos = spec.connections[boundary](pos)
            g.add_edge(
                ("sw", boundary - 1, pos // k),
                ("sw", boundary, dest_pos // k),
                boundary=boundary,
                position=pos,
            )
    for pos in range(spec.N):
        sink = spec.connections[n](pos)
        g.add_edge(
            ("sw", n - 1, pos // k),
            ("sink", sink),
            boundary=n,
            position=pos,
        )
    return g


def bmin_to_digraph(bmin: BidirectionalMIN) -> "nx.DiGraph":
    """Directed channel graph of a BMIN under turnaround routing.

    Forward and backward channels are separate edges; switches are
    split into an "up" and a "down" face with turnaround edges between
    them, so every directed path in the graph is a legal turnaround
    route and the graph stays acyclic.
    """
    g = nx.DiGraph(name="bmin", k=bmin.k, n=bmin.n)
    for stage in range(bmin.n):
        for w in range(bmin.switches_per_stage):
            up, down = ("up", stage, w), ("down", stage, w)
            # Turnaround inside the switch.
            g.add_edge(up, down, kind="turnaround", stage=stage)
            for line in bmin.left_lines_of_switch(stage, w):
                if stage == 0:
                    g.add_edge(
                        ("node", line), up, kind="fwd", boundary=0, line=line
                    )
                    g.add_edge(
                        down, ("sink", line), kind="bwd", boundary=0, line=line
                    )
                else:
                    below = bmin.switch_of_line(stage, line, "lower")
                    g.add_edge(
                        ("up", stage - 1, below),
                        up,
                        kind="fwd",
                        boundary=stage,
                        line=line,
                    )
                    g.add_edge(
                        down,
                        ("down", stage - 1, below),
                        kind="bwd",
                        boundary=stage,
                        line=line,
                    )
    return g


def direct_to_digraph(topo: DirectTopology) -> "nx.DiGraph":
    """Directed link graph of a 3D mesh or torus.

    Nodes are plain integers (one router per processor node -- no
    stage/sink split needed, node-to-node distances are the object of
    interest).  Each directed link is one edge carrying ``dim`` and
    ``sign`` attributes matching :meth:`DirectTopology.links`, so graph
    shortest paths measure hop distance independently of the builder's
    own closed-form :meth:`~DirectTopology.distance` arithmetic.
    """
    kind = "torus" if topo.wrap else "mesh"
    g = nx.DiGraph(name=f"{kind}{topo.n}d", k=topo.k, n=topo.n)
    g.add_nodes_from(range(topo.N))
    for u, v, dim, sign in topo.links():
        g.add_edge(u, v, dim=dim_name(dim), sign=sign)
    return g


def direct_diameter_hops(g: "nx.DiGraph") -> int:
    """Longest shortest node->node path of a direct-topology graph."""
    return nx.diameter(g)


def direct_average_distance(g: "nx.DiGraph") -> float:
    """Mean shortest-path length over ordered node pairs (BFS-derived,
    the independent check of :attr:`DirectTopology.average_distance`)."""
    return nx.average_shortest_path_length(g)


def count_paths(
    g: "nx.DiGraph", source: int, dest: int, cutoff: int | None = None
) -> int:
    """Number of simple directed paths node -> sink.

    ``cutoff`` limits the path length in *edges*.  For a BMIN graph,
    counting with ``cutoff = 2t + 3`` (t = FirstDifference) yields the
    shortest turnaround paths of Theorem 1; without a cutoff the count
    also includes the longer Definition-4 routes that overshoot the
    turn stage.
    """
    return sum(
        1
        for _ in nx.all_simple_paths(
            g, ("node", source), ("sink", dest), cutoff=cutoff
        )
    )


def is_acyclic(g: "nx.DiGraph") -> bool:
    """True iff the channel graph has no directed cycles."""
    return nx.is_directed_acyclic_graph(g)


def network_diameter_hops(g: "nx.DiGraph", N: int) -> int:
    """Longest shortest node->sink path, in channel hops.

    Channel hops = graph edges minus any turnaround edges (which are
    switch-internal connections, not channels).
    """
    worst = 0
    for s in range(N):
        lengths = nx.single_source_shortest_path(g, ("node", s))
        for d in range(N):
            if s == d:
                continue
            path = lengths.get(("sink", d))
            if path is None:
                raise ValueError(f"no route {s} -> {d}")
            hops = sum(
                1
                for a, b in zip(path, path[1:])
                if g.edges[a, b].get("kind") != "turnaround"
            )
            worst = max(worst, hops)
    return worst
