"""Text renderings of MIN structures (the paper's Figs. 4-6 and 13).

Produces deterministic, diff-friendly text: connection-pattern tables,
stage-by-stage switch wiring for unidirectional MINs and BMINs, and an
indented fat-tree view.  Used by ``examples/network_atlas.py`` and by
documentation; everything is derived from the same topology objects the
simulator uses, so the pictures cannot drift from the model.
"""

from __future__ import annotations

from repro.topology.bmin import BidirectionalMIN
from repro.topology.fattree import FatTree, FatTreeVertex
from repro.topology.permutations import Permutation
from repro.topology.spec import MINSpec


def _addr(x: int, k: int, n: int) -> str:
    """Radix-k address string, most significant digit first."""
    digits = []
    for _ in range(n):
        digits.append("0123456789ABCDEF"[x % k])
        x //= k
    return "".join(reversed(digits))


def connection_table(perm: Permutation, k: int, n: int) -> str:
    """The permutation as 'position -> position' rows (radix-k labels)."""
    rows = [f"{perm.name}:"]
    rows.extend(
        f"  {_addr(i, k, n)} -> {_addr(perm(i), k, n)}"
        for i in range(perm.size)
    )
    return "\n".join(rows)


def render_min(spec: MINSpec) -> str:
    """Stage-by-stage wiring of a unidirectional MIN.

    For every stage, lists each switch with the link positions feeding
    its input ports (after the incoming connection pattern) and the
    positions its output ports drive (before the outgoing pattern).
    """
    k, n = spec.k, spec.n
    lines = [
        f"{spec.name} MIN: N={spec.N} nodes, {n} stages of "
        f"{spec.switches_per_stage} {k}x{k} switches",
        "connections: "
        + "  ".join(f"C{i}={c.name}" for i, c in enumerate(spec.connections)),
    ]
    inverse = [c.inverse() for c in spec.connections]
    for stage in range(n):
        lines.append(f"stage G{stage}:")
        for w in range(spec.switches_per_stage):
            in_positions = [
                _addr(inverse[stage](w * k + port), k, n) for port in range(k)
            ]
            out_positions = [
                _addr(spec.connections[stage + 1](w * k + port), k, n)
                for port in range(k)
            ]
            lines.append(
                f"  switch {w:>2}: in<-{','.join(in_positions)}  "
                f"out->{','.join(out_positions)}"
            )
    return "\n".join(lines)


def render_bmin(bmin: BidirectionalMIN) -> str:
    """Stage-by-stage wiring of a bidirectional butterfly MIN.

    Every listed line is a channel *pair* (forward + backward).  Left
    lines of stage 0 attach to the processor nodes.
    """
    k, n = bmin.k, bmin.n
    lines = [
        f"butterfly BMIN: N={bmin.N} nodes, {n} stages of "
        f"{bmin.switches_per_stage} bidirectional {k}x{k} switches",
    ]
    for stage in range(n):
        lines.append(f"stage G{stage}:")
        for w in range(bmin.switches_per_stage):
            left = [
                _addr(line, k, n) for line in bmin.left_lines_of_switch(stage, w)
            ]
            right = bmin.right_lines_of_switch(stage, w)
            right_s = (
                ",".join(_addr(line, k, n) for line in right)
                if right
                else "(network edge)"
            )
            lines.append(
                f"  switch {w:>2}: left<->{','.join(left)}  right<->{right_s}"
            )
    return "\n".join(lines)


def render_fat_tree(ft: FatTree) -> str:
    """Indented fat-tree of a BMIN (Fig. 13): capacities grow to the root."""
    lines = [
        f"fat tree over {ft.N}-node butterfly BMIN "
        f"(k={ft.k}): leaves at level 0",
    ]

    def visit(vertex: FatTreeVertex, depth: int) -> None:
        leaves = ft.leaves(vertex)
        span = f"nodes {leaves[0]}..{leaves[-1]}"
        links = ft.parent_link_count(vertex)
        up = f", {links} parent links" if links else " (root)"
        lines.append(
            "  " * depth
            + f"level {vertex.level} vertex[{vertex.prefix}]: {span}"
            + f", {len(ft.switch_group(vertex))} switches{up}"
        )
        for child in ft.children(vertex):
            visit(child, depth + 1)

    visit(ft.root(), 0)
    return "\n".join(lines)
