"""k-ary digit permutations used as MIN connection patterns.

Addresses are integers in ``[0, k**n)`` viewed as n-digit radix-k
numbers ``x_{n-1} ... x_1 x_0`` (digit 0 is least significant).  The
paper's two interconnection patterns are:

* the i-th k-ary **butterfly** permutation (Definition 1)::

      beta_i(x_{n-1} ... x_{i+1} x_i x_{i-1} ... x_1 x_0)
          = x_{n-1} ... x_{i+1} x_0 x_{i-1} ... x_1 x_i

  i.e. digits 0 and i are exchanged (``beta_0`` is the identity);

* the **perfect k-shuffle** (Definition 2)::

      sigma(x_{n-1} x_{n-2} ... x_1 x_0) = x_{n-2} ... x_1 x_0 x_{n-1}

  i.e. a left rotation of the digit string.

All permutation objects are callable on addresses, precompute their
mapping table, and support composition (``@``), inversion and equality.
"""

from __future__ import annotations

from typing import Callable, Sequence


def to_digits(x: int, k: int, n: int) -> tuple[int, ...]:
    """Digits of ``x`` in radix ``k``; index ``i`` is digit ``i`` (LSB first)."""
    if not 0 <= x < k**n:
        raise ValueError(f"address {x} out of range for k={k}, n={n}")
    digits = []
    for _ in range(n):
        digits.append(x % k)
        x //= k
    return tuple(digits)


def from_digits(digits: Sequence[int], k: int) -> int:
    """Inverse of :func:`to_digits` (digits given LSB first)."""
    x = 0
    for i, d in enumerate(digits):
        if not 0 <= d < k:
            raise ValueError(f"digit {d} out of range for radix {k}")
        x += d * k**i
    return x


class Permutation:
    """A permutation of ``[0, size)`` given by an explicit table."""

    def __init__(self, table: Sequence[int], name: str = "perm") -> None:
        self.table = tuple(table)
        self.size = len(self.table)
        self.name = name
        if sorted(self.table) != list(range(self.size)):
            raise ValueError(f"{name}: table is not a permutation of 0..{self.size - 1}")

    @classmethod
    def from_function(
        cls, size: int, fn: Callable[[int], int], name: str = "perm"
    ) -> "Permutation":
        """Tabulate ``fn`` over [0, size)."""
        return cls([fn(x) for x in range(size)], name=name)

    def __call__(self, x: int) -> int:
        return self.table[x]

    def inverse(self) -> "Permutation":
        """The permutation undoing this one."""
        inv = [0] * self.size
        for x, y in enumerate(self.table):
            inv[y] = x
        return Permutation(inv, name=f"{self.name}^-1")

    def __matmul__(self, other: "Permutation") -> "Permutation":
        """Composition: ``(p @ q)(x) == p(q(x))``."""
        if self.size != other.size:
            raise ValueError("cannot compose permutations of different sizes")
        return Permutation(
            [self.table[other.table[x]] for x in range(self.size)],
            name=f"{self.name}∘{other.name}",
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Permutation) and self.table == other.table

    def __hash__(self) -> int:
        return hash(self.table)

    def is_identity(self) -> bool:
        """True iff every element maps to itself."""
        return all(self.table[x] == x for x in range(self.size))

    def order(self) -> int:
        """Smallest m >= 1 with ``self**m == identity``."""
        m, current = 1, self
        ident = Identity(self.size)
        while current != ident:
            current = current @ self
            m += 1
        return m

    def fixed_points(self) -> list[int]:
        """Elements mapped to themselves."""
        return [x for x in range(self.size) if self.table[x] == x]

    def __repr__(self) -> str:
        return f"<Permutation {self.name!r} size={self.size}>"


class Identity(Permutation):
    """The identity permutation (also ``beta_0``)."""

    def __init__(self, size: int) -> None:
        super().__init__(range(size), name="I")


class ButterflyPermutation(Permutation):
    """The i-th k-ary butterfly permutation ``beta_i^k`` (Definition 1)."""

    def __init__(self, k: int, n: int, i: int) -> None:
        if not 0 <= i <= n - 1:
            raise ValueError(f"butterfly index i={i} must satisfy 0 <= i <= n-1={n - 1}")
        self.k, self.n, self.i = k, n, i

        def fn(x: int) -> int:
            digits = list(to_digits(x, k, n))
            digits[0], digits[i] = digits[i], digits[0]
            return from_digits(digits, k)

        table = [fn(x) for x in range(k**n)]
        super().__init__(table, name=f"beta_{i}")


class PerfectShuffle(Permutation):
    """The perfect k-shuffle ``sigma`` (Definition 2): left digit rotation."""

    def __init__(self, k: int, n: int) -> None:
        self.k, self.n = k, n

        def fn(x: int) -> int:
            digits = to_digits(x, k, n)
            # new digit 0 = old digit n-1; new digit j = old digit j-1
            rotated = (digits[n - 1],) + digits[: n - 1]
            return from_digits(rotated, k)

        super().__init__([fn(x) for x in range(k**n)], name="sigma")


class InverseShuffle(Permutation):
    """``sigma^{-1}``: right digit rotation (the unshuffle)."""

    def __init__(self, k: int, n: int) -> None:
        self.k, self.n = k, n

        def fn(x: int) -> int:
            digits = to_digits(x, k, n)
            # new digit n-1 = old digit 0; new digit j = old digit j+1
            rotated = digits[1:] + (digits[0],)
            return from_digits(rotated, k)

        super().__init__([fn(x) for x in range(k**n)], name="sigma^-1")


class BlockInverseShuffle(Permutation):
    """Inverse k-shuffle applied independently to the low ``m`` digits.

    Digits ``m .. n-1`` are fixed; digits ``0 .. m-1`` are right-rotated.
    This is the connection pattern of the baseline network: connection
    ``C_i`` of an n-stage baseline MIN unshuffles the low ``n - i + 1``
    digits (Wu & Feng's recursive block structure).
    """

    def __init__(self, k: int, n: int, m: int) -> None:
        if not 1 <= m <= n:
            raise ValueError(f"block width m={m} must satisfy 1 <= m <= n={n}")
        self.k, self.n, self.m = k, n, m

        def fn(x: int) -> int:
            digits = to_digits(x, k, n)
            low = digits[:m]
            rotated_low = low[1:] + (low[0],)
            return from_digits(rotated_low + digits[m:], k)

        super().__init__([fn(x) for x in range(k**n)], name=f"sigma^-1[0:{m}]")
