"""Declarative description of an n-stage unidirectional MIN.

The paper (Section 2) writes an N-node MIN built from ``k x k`` switches
as::

    C_0(N) G_0(N/k) C_1(N) ... C_{n-1}(N/k) G_{n-1}(N/k) C_n(N)

where ``G_i`` is a stage of ``N/k`` switches and ``C_i`` a connection
pattern (a permutation of the N link positions between adjacent stages).

Link-position convention
------------------------
Between any two stages there are N *link positions* numbered 0..N-1.
Connection ``C_i`` maps the position on its producer side to the
position on its consumer side.  At a stage, link position ``a`` attaches
to switch ``a // k``, port ``a % k``; a switch forwards a packet that
routes with tag digit ``t`` to output position ``(a // k) * k + t``
(i.e. it replaces the least-significant digit of the position with the
tag digit).

A :class:`MINSpec` bundles the connection patterns with the network's
destination-tag rule and offers exact path tracing, which the simulator,
the partitionability analysis and the tests all share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.topology.permutations import Permutation, to_digits


@dataclass(frozen=True)
class TracedPath:
    """The exact channels a (source, destination) pair uses.

    Attributes
    ----------
    source, destination:
        Node addresses.
    entering:
        ``entering[i]`` is the link position on which the packet enters
        stage ``G_i`` (after connection ``C_i``), for i in 0..n-1.
    exiting:
        ``exiting[i]`` is the link position on which the packet leaves
        stage ``G_i`` (before connection ``C_{i+1}``).
    """

    source: int
    destination: int
    entering: tuple[int, ...]
    exiting: tuple[int, ...]

    @property
    def length(self) -> int:
        """Number of channels traversed: always n + 1 (Section 3.2.3)."""
        return len(self.entering) + 1

    def switches(self, k: int) -> tuple[int, ...]:
        """Index of the switch visited in each stage."""
        return tuple(a // k for a in self.entering)


class MINSpec:
    """An n-stage unidirectional Delta MIN with destination-tag routing.

    Parameters
    ----------
    k, n:
        Switch radix and number of stages; the network has ``N = k**n``
        nodes.
    connections:
        The ``n + 1`` connection patterns ``C_0 .. C_n``.
    tag_fn:
        Maps a destination address to the routing tag digits
        ``(t_0, ..., t_{n-1})``, where ``t_i`` steers stage ``G_i``.
    name:
        Human-readable topology name (e.g. ``"cube"``).
    """

    def __init__(
        self,
        k: int,
        n: int,
        connections: Sequence[Permutation],
        tag_fn: Callable[[int], tuple[int, ...]],
        name: str,
    ) -> None:
        if k < 2:
            raise ValueError("switch radix k must be >= 2")
        if n < 1:
            raise ValueError("need at least one stage")
        self.k, self.n = k, n
        self.N = k**n
        if len(connections) != n + 1:
            raise ValueError(f"need n+1={n + 1} connection patterns, got {len(connections)}")
        for c in connections:
            if c.size != self.N:
                raise ValueError(f"connection {c!r} has size {c.size}, expected {self.N}")
        self.connections = tuple(connections)
        self.tag_fn = tag_fn
        self.name = name

    @property
    def switches_per_stage(self) -> int:
        """N/k switches per stage."""
        return self.N // self.k

    def routing_tag(self, destination: int) -> tuple[int, ...]:
        """The tag digits ``t_0 .. t_{n-1}`` for ``destination``."""
        if not 0 <= destination < self.N:
            raise ValueError(f"destination {destination} out of range")
        tag = self.tag_fn(destination)
        if len(tag) != self.n or any(not 0 <= t < self.k for t in tag):
            raise ValueError(f"tag function returned invalid tag {tag!r}")
        return tuple(tag)

    def trace(self, source: int, destination: int) -> TracedPath:
        """Exact link positions used by the unique (s, d) path."""
        if not 0 <= source < self.N:
            raise ValueError(f"source {source} out of range")
        tag = self.routing_tag(destination)
        entering: list[int] = []
        exiting: list[int] = []
        pos = source
        for i in range(self.n):
            pos = self.connections[i](pos)
            entering.append(pos)
            pos = (pos // self.k) * self.k + tag[i]
            exiting.append(pos)
        return TracedPath(source, destination, tuple(entering), tuple(exiting))

    def delivers(self, source: int, destination: int) -> bool:
        """True iff destination-tag routing reaches ``destination``."""
        path = self.trace(source, destination)
        return self.connections[self.n](path.exiting[-1]) == destination

    def stage_channel(self, boundary: int, position: int) -> tuple[int, int]:
        """Identify the channel at ``(boundary, position)``.

        Boundary 0 is node->G_0, boundary i (1..n-1) is G_{i-1}->G_i and
        boundary n is G_{n-1}->node.  This pair is the channel-identity
        used throughout the partitionability analysis.
        """
        if not 0 <= boundary <= self.n:
            raise ValueError(f"boundary {boundary} out of range 0..{self.n}")
        if not 0 <= position < self.N:
            raise ValueError(f"position {position} out of range")
        return (boundary, position)

    def channels_of_path(self, source: int, destination: int) -> list[tuple[int, int]]:
        """All ``(boundary, producer-side position)`` channels of a path.

        The producer-side position of boundary ``i`` is the link position
        before ``C_i`` is applied: the source address for boundary 0 and
        ``exiting[i-1]`` for boundary i >= 1.
        """
        path = self.trace(source, destination)
        channels = [(0, source)]
        channels.extend((i + 1, path.exiting[i]) for i in range(self.n))
        return channels

    def destination_digits(self, destination: int) -> tuple[int, ...]:
        """Radix-k digits of an address (LSB first); convenience."""
        return to_digits(destination, self.k, self.n)

    def __repr__(self) -> str:
        return f"<MINSpec {self.name!r} k={self.k} n={self.n} N={self.N}>"
