"""Fat-tree view of a butterfly BMIN (Section 3.3, Fig. 13).

A butterfly BMIN with turnaround routing is a fat tree: processors are
leaves, each group of switches that serves the same address prefix is an
interior vertex, and routing ascends to the least common ancestor (LCA)
of source and destination before descending.

Vertex naming
-------------
Level 0 holds the N leaves (the processor nodes).  An interior vertex at
level ``l`` (1 <= l <= n) is identified by the address *prefix* of
length ``n - l`` shared by every leaf in its subtree (digits
``l .. n-1``).  The vertex aggregates the ``k**(l-1)`` stage-``l-1``
switches whose lines carry that prefix, so its capacity grows toward the
root exactly as a fat tree's does:

* leaves in the subtree of a level-l vertex: ``k**l``;
* outgoing parent connections from that vertex: ``k**l`` (equal, as the
  paper observes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.bmin import BidirectionalMIN, first_difference
from repro.topology.permutations import from_digits, to_digits


@dataclass(frozen=True)
class FatTreeVertex:
    """An interior vertex: ``level`` in 1..n, ``prefix`` of digits l..n-1."""

    level: int
    prefix: int

    def __repr__(self) -> str:
        return f"<FatTreeVertex level={self.level} prefix={self.prefix}>"


class FatTree:
    """Fat-tree abstraction over a :class:`BidirectionalMIN`."""

    def __init__(self, bmin: BidirectionalMIN) -> None:
        self.bmin = bmin
        self.k, self.n, self.N = bmin.k, bmin.n, bmin.N

    # -- structure -----------------------------------------------------------

    def vertices_at_level(self, level: int) -> list[FatTreeVertex]:
        """All interior vertices at ``level`` (1..n)."""
        self._check_level(level)
        count = self.k ** (self.n - level)
        return [FatTreeVertex(level, p) for p in range(count)]

    def root(self) -> FatTreeVertex:
        """The single vertex at level n (empty prefix)."""
        return FatTreeVertex(self.n, 0)

    def parent(self, vertex: FatTreeVertex) -> FatTreeVertex:
        """The enclosing vertex one level up."""
        self._check_vertex(vertex)
        if vertex.level == self.n:
            raise ValueError("the root has no parent")
        return FatTreeVertex(vertex.level + 1, vertex.prefix // self.k)

    def children(self, vertex: FatTreeVertex) -> list[FatTreeVertex]:
        """The k sub-vertices one level down ([] for level 1)."""
        self._check_vertex(vertex)
        if vertex.level == 1:
            return []
        return [
            FatTreeVertex(vertex.level - 1, vertex.prefix * self.k + d)
            for d in range(self.k)
        ]

    def leaves(self, vertex: FatTreeVertex) -> list[int]:
        """Processor nodes in the subtree: prefix ++ (any low digits)."""
        self._check_vertex(vertex)
        low_width = vertex.level
        base = vertex.prefix * self.k**low_width
        return list(range(base, base + self.k**low_width))

    def leaf_count(self, vertex: FatTreeVertex) -> int:
        """Processor nodes in the vertex's subtree: k**level."""
        return self.k**vertex.level

    def parent_link_count(self, vertex: FatTreeVertex) -> int:
        """Lines from the vertex's switch group up to its parent's.

        These are the boundary-``level`` lines whose digits
        ``level..n-1`` equal the prefix: ``k**level`` of them -- equal
        to :meth:`leaf_count`, the defining fat-tree property.
        """
        self._check_vertex(vertex)
        if vertex.level == self.n:
            return 0  # the root's right-hand lines leave the network
        return self.k**vertex.level

    def switch_group(self, vertex: FatTreeVertex) -> list[tuple[int, int]]:
        """The ``(stage, index)`` switches aggregated by the vertex.

        A stage-``l-1`` switch index packs the line-address digits other
        than digit ``l-1``; the vertex's switches are those whose digits
        ``l..n-1`` equal the prefix, with digits ``0..l-2`` free.
        """
        self._check_vertex(vertex)
        stage = vertex.level - 1
        k, n = self.k, self.n
        free_width = stage  # digits 0..stage-1 of the switch index
        prefix_digits = to_digits(vertex.prefix, k, n - vertex.level)
        switches = []
        for low in range(k**free_width):
            low_digits = to_digits(low, k, free_width)
            switches.append(
                (stage, from_digits(low_digits + prefix_digits, k))
            )
        return switches

    # -- routing -----------------------------------------------------------

    def vertex_of_leaf(self, leaf: int, level: int) -> FatTreeVertex:
        """The level-``level`` ancestor vertex of a processor node."""
        self._check_level(level)
        if not 0 <= leaf < self.N:
            raise ValueError(f"leaf {leaf} out of range")
        return FatTreeVertex(level, leaf // self.k**level)

    def lca(self, source: int, destination: int) -> FatTreeVertex:
        """Least common ancestor of two distinct leaves.

        Its level is ``FirstDifference(S, D) + 1`` -- i.e. LCA routing
        through the fat tree *is* turnaround routing through the BMIN.
        """
        t = first_difference(source, destination, self.k, self.n)
        return self.vertex_of_leaf(source, t + 1)

    def route_length(self, source: int, destination: int) -> int:
        """Channels traversed via the LCA: 2 * lca-level, = BMIN's 2(t+1)."""
        return 2 * self.lca(source, destination).level

    # -- validation helpers -----------------------------------------------

    def _check_level(self, level: int) -> None:
        if not 1 <= level <= self.n:
            raise ValueError(f"level {level} out of range 1..{self.n}")

    def _check_vertex(self, vertex: FatTreeVertex) -> None:
        self._check_level(vertex.level)
        if not 0 <= vertex.prefix < self.k ** (self.n - vertex.level):
            raise ValueError(f"prefix {vertex.prefix} out of range at level {vertex.level}")

    def __repr__(self) -> str:
        return f"<FatTree over {self.bmin!r}>"
