"""Multistage interconnection network (MIN) topologies.

This package constructs the networks studied in the paper:

* :mod:`repro.topology.permutations` -- k-ary digit permutations: the
  i-th butterfly permutation ``beta_i`` (Definition 1), the perfect
  k-shuffle ``sigma`` (Definition 2), their inverses, block-restricted
  variants, and composition/inversion algebra.
* :mod:`repro.topology.spec` -- :class:`~repro.topology.spec.MINSpec`,
  the declarative description of an n-stage unidirectional MIN as
  ``C_0 G_0 C_1 ... C_{n-1} G_{n-1} C_n`` plus its destination-tag rule.
* :mod:`repro.topology.mins` -- builders for the Delta-class MINs the
  paper discusses: butterfly, cube (indirect cube / multistage cube),
  Omega, flip and baseline.
* :mod:`repro.topology.bmin` -- the bidirectional butterfly MIN (BMIN)
  of Section 3, with left/right switch ports and the wiring that makes
  turnaround routing work.
* :mod:`repro.topology.fattree` -- the fat-tree view of a BMIN
  (Section 3.3, Fig. 13) and least-common-ancestor routing.
* :mod:`repro.topology.equivalence` -- executable topological /
  functional equivalence checks for Delta networks, and permutation
  admissibility analysis.
"""

from repro.topology.bmin import BidirectionalMIN
from repro.topology.fattree import FatTree
from repro.topology.mins import (
    baseline_min,
    butterfly_min,
    cube_min,
    flip_min,
    omega_min,
)
from repro.topology.permutations import (
    ButterflyPermutation,
    Identity,
    InverseShuffle,
    PerfectShuffle,
    Permutation,
    from_digits,
    to_digits,
)
from repro.topology.spec import MINSpec

__all__ = [
    "BidirectionalMIN",
    "ButterflyPermutation",
    "FatTree",
    "Identity",
    "InverseShuffle",
    "MINSpec",
    "PerfectShuffle",
    "Permutation",
    "baseline_min",
    "butterfly_min",
    "cube_min",
    "flip_min",
    "from_digits",
    "omega_min",
    "to_digits",
]
