"""Builders for the Delta-class unidirectional MINs in the paper.

Each builder returns a :class:`~repro.topology.spec.MINSpec` for an
``N = k**n`` node network of ``k x k`` switches.  The two MINs the paper
evaluates are the **butterfly MIN** and the **cube MIN** (Fig. 4); the
Omega, flip and baseline networks are included because the paper's
conclusions discuss their partitionability equivalence classes.

Routing tags (Section 2):

* butterfly MIN: ``t_i = d_{i+1}`` for ``0 <= i <= n-2`` and
  ``t_{n-1} = d_0``;
* cube MIN (and Omega, baseline): ``t_i = d_{n-i-1}`` — destination
  digits consumed most-significant first;
* flip network: ``t_i = d_i`` — least-significant first.
"""

from __future__ import annotations

from repro.topology.permutations import (
    BlockInverseShuffle,
    ButterflyPermutation,
    Identity,
    InverseShuffle,
    PerfectShuffle,
    to_digits,
)
from repro.topology.spec import MINSpec


def _validate(k: int, n: int) -> int:
    if k < 2:
        raise ValueError("switch radix k must be >= 2")
    if n < 1:
        raise ValueError("need at least one stage")
    return k**n


def butterfly_min(k: int, n: int) -> MINSpec:
    """The butterfly MIN: ``C_i = beta_i`` (``beta_0 = I`` as ``C_0``/``C_n``)."""
    N = _validate(k, n)
    connections = [Identity(N)]  # C_0 = beta_0
    connections.extend(ButterflyPermutation(k, n, i) for i in range(1, n))
    connections.append(Identity(N))  # C_n = beta_0

    def tag(d: int) -> tuple[int, ...]:
        digits = to_digits(d, k, n)
        return tuple(digits[i + 1] for i in range(n - 1)) + (digits[0],)

    return MINSpec(k, n, connections, tag, name="butterfly")


def cube_min(k: int, n: int) -> MINSpec:
    """The cube MIN (indirect cube): ``C_0 = sigma``, ``C_i = beta_{n-i}``.

    The leading perfect shuffle is what gives the cube MIN its superior
    partitionability (Theorem 2 vs. Theorem 3).
    """
    N = _validate(k, n)
    connections = [PerfectShuffle(k, n)]
    connections.extend(ButterflyPermutation(k, n, n - i) for i in range(1, n))
    connections.append(Identity(N))  # C_n = beta_0

    def tag(d: int) -> tuple[int, ...]:
        digits = to_digits(d, k, n)
        return tuple(digits[n - i - 1] for i in range(n))

    return MINSpec(k, n, connections, tag, name="cube")


def omega_min(k: int, n: int) -> MINSpec:
    """The Omega network: every inter-stage connection is ``sigma``."""
    N = _validate(k, n)
    connections = [PerfectShuffle(k, n) for _ in range(n)]
    connections.append(Identity(N))

    def tag(d: int) -> tuple[int, ...]:
        digits = to_digits(d, k, n)
        return tuple(digits[n - i - 1] for i in range(n))

    return MINSpec(k, n, connections, tag, name="omega")


def flip_min(k: int, n: int) -> MINSpec:
    """The flip network: every connection is the inverse shuffle."""
    _validate(k, n)
    connections = [InverseShuffle(k, n) for _ in range(n + 1)]

    def tag(d: int) -> tuple[int, ...]:
        return to_digits(d, k, n)

    return MINSpec(k, n, connections, tag, name="flip")


def baseline_min(k: int, n: int) -> MINSpec:
    """The baseline network: ``C_i`` unshuffles the low ``n - i + 1`` digits.

    ``C_0`` and ``C_n`` are the identity; the recursive block structure
    halves (k-ths) the unshuffled block at each stage.
    """
    N = _validate(k, n)
    connections = [Identity(N)]
    connections.extend(BlockInverseShuffle(k, n, n - i + 1) for i in range(1, n))
    connections.append(Identity(N))

    def tag(d: int) -> tuple[int, ...]:
        digits = to_digits(d, k, n)
        return tuple(digits[n - i - 1] for i in range(n))

    return MINSpec(k, n, connections, tag, name="baseline")


#: Builders by topology name, for configuration files and CLIs.
TOPOLOGY_BUILDERS = {
    "butterfly": butterfly_min,
    "cube": cube_min,
    "omega": omega_min,
    "flip": flip_min,
    "baseline": baseline_min,
}


def build_min(name: str, k: int, n: int) -> MINSpec:
    """Build a unidirectional MIN by topology name."""
    try:
        builder = TOPOLOGY_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; choose from {sorted(TOPOLOGY_BUILDERS)}"
        ) from None
    return builder(k, n)
