"""Executable equivalence and admissibility checks for Delta MINs.

The paper cites Wu & Feng's result that the Delta-class MINs (Omega,
flip, cube, butterfly, baseline) are topologically and functionally
equivalent, yet shows they are *not* equivalent in partitionability.
This module provides the executable side of those statements:

* :func:`is_banyan` -- unique-path property (exactly one path per
  source/destination pair under destination-tag routing, and routing is
  correct for every pair);
* :func:`functionally_equivalent` -- two MINs connect the same set of
  (source, destination) pairs (trivially true for full Delta MINs; the
  check matters for trimmed or faulty variants);
* :func:`admissible` -- whether a full node permutation can be routed
  with no shared channel (used to reason about Fig. 20's permutation
  workloads: e.g. the shuffle permutation is inadmissible in a TMIN);
* :func:`channel_load` -- per-channel path counts for a traffic set,
  the static congestion signature behind the dynamic results.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.topology.spec import MINSpec


def is_banyan(spec: MINSpec) -> bool:
    """Check destination-tag routing delivers every (s, d) pair.

    Delta networks have a unique path per pair by construction (one tag
    per destination); the content of this check is that the tag rule
    and the connection patterns agree, i.e. the network is correctly
    wired.
    """
    return all(
        spec.delivers(s, d) for s in range(spec.N) for d in range(spec.N)
    )


def functionally_equivalent(a: MINSpec, b: MINSpec) -> bool:
    """Same (source, destination) connectivity under self-routing."""
    if a.N != b.N:
        return False
    return all(
        a.delivers(s, d) == b.delivers(s, d)
        for s in range(a.N)
        for d in range(a.N)
    )


def channel_load(
    spec: MINSpec, pairs: Iterable[tuple[int, int]]
) -> Counter:
    """Count how many (s, d) paths cross each channel.

    Channels are identified as ``(boundary, producer-side position)``
    per :meth:`MINSpec.channels_of_path`.
    """
    load: Counter = Counter()
    for s, d in pairs:
        for ch in spec.channels_of_path(s, d):
            load[ch] += 1
    return load


def max_channel_contention(
    spec: MINSpec, pairs: Iterable[tuple[int, int]]
) -> int:
    """The largest number of paths sharing any single channel."""
    load = channel_load(spec, pairs)
    return max(load.values(), default=0)


def admissible(spec: MINSpec, permutation: Sequence[int]) -> bool:
    """True iff the node permutation routes with pairwise-disjoint channels.

    ``permutation[s]`` is the destination of source ``s``.  In a
    blocking network an inadmissible permutation forces channel sharing
    and therefore serialization -- the static cause of the TMIN/VMIN
    collapse in Fig. 20.
    """
    if sorted(permutation) != list(range(spec.N)):
        raise ValueError("not a permutation of the node set")
    pairs = [(s, d) for s, d in enumerate(permutation) if s != d]
    return max_channel_contention(spec, pairs) <= 1


def admissible_fraction(
    spec: MINSpec, permutations: Iterable[Sequence[int]]
) -> float:
    """Fraction of the given permutations that are admissible."""
    perms = list(permutations)
    if not perms:
        raise ValueError("no permutations given")
    good = sum(1 for p in perms if admissible(spec, p))
    return good / len(perms)
