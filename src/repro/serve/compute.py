"""Executing one :class:`~repro.serve.job.PointSpec` to a cache payload.

This is the module workers import: :func:`run_point_spec` must be a
picklable module-level callable (it crosses the task queue), and its
output must be *canonically serializable* so a cached record is
byte-equal to a fresh recomputation (``tests/serve/test_cache.py``
proves this for every network on both engines).

Fault-free points go through the ordinary
:func:`repro.experiments.runner.run_point` path -- the same code the
figures use, so the service's answers are the repro's answers.  Faulted
points reuse the availability sweep's wiring (MTBF churn + source
retry) with the engine choice honored.
"""

from __future__ import annotations

from repro.experiments.config import RunConfig
from repro.experiments.runner import _run_until_delivered, run_point
from repro.metrics.collector import Measurement, MeasurementWindow, measurement_to_dict
from repro.serve.job import PointSpec
from repro.traffic.workload import Workload

PAYLOAD_VERSION = 1


def run_point_spec(point: PointSpec) -> dict:
    """Simulate one point; returns the cacheable payload mapping."""
    run_cfg = point.run.with_seed(point.seed)
    if point.stability is not None:
        return _run_stability_point(point, run_cfg)
    if point.transport is not None:
        return _run_transport_point(point, run_cfg)
    if point.faults is None:
        measurement = run_point(
            point.network,
            point.workload.builder(run_cfg),
            point.load,
            run_cfg,
            engine=point.engine,
        )
    else:
        measurement = _run_faulted_point(point, run_cfg)
    return {
        "version": PAYLOAD_VERSION,
        "measurement": measurement_to_dict(measurement),
    }


def _run_stability_point(point: PointSpec, run_cfg: RunConfig) -> dict:
    """The overload-toolkit execution path (bounded admission, AIMD
    governor, watchdog), selected by ``point.stability``.

    The payload carries the ordinary measurement block plus a
    ``stability`` block: the normalized configuration it ran under and
    the steady-state series summary.  ``knee_throughput`` is None --
    one point cannot know its network's knee -- so the classification
    distinguishes stable from metastable but never reports collapse.
    """
    from repro.experiments.stability import stability_point
    from repro.stability import BoundedQueue

    cfg = point.stability
    sp = stability_point(
        point.network,
        run_cfg,
        point.load,
        knee_throughput=None,
        admission=BoundedQueue(capacity=cfg["capacity"], mode=cfg["mode"]),
        governed=cfg["governed"],
        watchdog=cfg["watchdog"],
        batches=cfg["batches"],
        engine=point.engine,
    )
    return {
        "version": PAYLOAD_VERSION,
        "measurement": measurement_to_dict(sp.measurement),
        "stability": {
            "config": dict(cfg),
            "classification": sp.stability,
            "steady": {
                "samples": sp.steady.samples,
                "truncation": sp.steady.truncation,
                "mean": sp.steady.mean,
                "cv": sp.steady.cv,
                "drift": sp.steady.drift,
            },
            "mean_rate": sp.mean_rate,
            "stall_events": sp.stall_events,
            "sheds": sp.sheds,
            "throttles": sp.throttles,
        },
    }


def _run_transport_point(point: PointSpec, run_cfg: RunConfig) -> dict:
    """The end-to-end reliability path, selected by ``point.transport``.

    Sources hand messages to a :class:`ReliableTransport` (its own
    forked stream -- engine and workload draws are untouched) instead
    of offering raw packets; ``point.faults`` may overlay MTBF churn,
    the loss storm the transport exists to survive (no SourceRetry --
    retransmission *is* the recovery layer here).  The payload carries
    the ordinary measurement block plus a ``transport`` block with the
    normalized configuration and the end-to-end tallies.
    """
    from repro.faults.mtbf import MTBFChurn
    from repro.sim.core import Environment
    from repro.sim.rng import RandomStream
    from repro.transport import ReliableTransport, TransportConfig
    from repro.wormhole.engine import WormholeEngine, resolve_engine

    kind = resolve_engine(point.engine)
    env = Environment(scheduler="heap" if kind == "reference" else "calendar")
    root = RandomStream(run_cfg.seed, name="root")
    label = point.network.label
    engine = WormholeEngine(
        env,
        point.network.build(),
        rng=root.fork(f"engine/{label}/{point.load}"),
        fast=kind != "reference",
        batch=kind == "batch",
    )
    transport = ReliableTransport(
        engine,
        TransportConfig(**point.transport),
        root.fork(f"transport/{label}/{point.load}"),
    )
    faults = point.faults
    if faults is not None and faults.rate > 0.0:
        mtbf = faults.mttr * (1.0 - faults.rate) / faults.rate
        MTBFChurn(
            env,
            engine.network,
            root.fork(f"faults/{label}/{point.load}"),
            mtbf=mtbf,
            mttr=faults.mttr,
            engine=engine,
            severity=faults.severity,
        )
    workload: Workload = point.workload.builder(run_cfg)(point.load)
    workload.transport = transport
    installed = workload.install(
        env, engine, root.fork(f"workload/{label}/{point.load}")
    )
    if installed == 0:
        raise RuntimeError("workload installed no traffic sources")
    engine.start()

    warmup_deadline = env.now + run_cfg.max_cycles / 4
    _run_until_delivered(engine, run_cfg.warmup_packets, warmup_deadline)
    window = MeasurementWindow(engine)
    window.begin()
    deadline = env.now + run_cfg.max_cycles
    _run_until_delivered(engine, run_cfg.measure_packets, deadline)
    measurement = window.finish()
    settled = sum(
        1 for o in transport.outcomes.values() if o == "delivered"
    )
    return {
        "version": PAYLOAD_VERSION,
        "measurement": measurement_to_dict(measurement),
        "transport": {
            "config": dict(point.transport),
            "messages_sent": transport.messages_sent,
            "messages_delivered": transport.messages_delivered,
            "messages_aborted": transport.messages_aborted,
            "flows_aborted": transport.flows_aborted,
            "acks_lost": transport.acks_lost,
            "delivered_ratio": (
                settled / len(transport.outcomes)
                if transport.outcomes
                else None
            ),
        },
    }


def _run_faulted_point(point: PointSpec, run_cfg: RunConfig) -> Measurement:
    """The availability-style execution path, engine choice included."""
    from repro.faults.mtbf import MTBFChurn
    from repro.faults.recovery import RetryPolicy, SourceRetry
    from repro.sim.core import Environment
    from repro.sim.rng import RandomStream
    from repro.wormhole.engine import WormholeEngine, resolve_engine

    faults = point.faults
    kind = resolve_engine(point.engine)
    env = Environment(scheduler="heap" if kind == "reference" else "calendar")
    root = RandomStream(run_cfg.seed, name="root")
    label = point.network.label
    engine = WormholeEngine(
        env,
        point.network.build(),
        rng=root.fork(f"engine/{label}/{point.load}"),
        fast=kind != "reference",
        batch=kind == "batch",
    )
    SourceRetry(
        engine,
        RetryPolicy(max_attempts=faults.max_attempts),
        root.fork(f"retry/{label}/{point.load}"),
    )
    if faults.rate > 0.0:
        mtbf = faults.mttr * (1.0 - faults.rate) / faults.rate
        MTBFChurn(
            env,
            engine.network,
            root.fork(f"faults/{label}/{point.load}"),
            mtbf=mtbf,
            mttr=faults.mttr,
            engine=engine,
            severity=faults.severity,
        )
    workload: Workload = point.workload.builder(run_cfg)(point.load)
    installed = workload.install(
        env, engine, root.fork(f"workload/{label}/{point.load}")
    )
    if installed == 0:
        raise RuntimeError("workload installed no traffic sources")
    engine.start()

    warmup_deadline = env.now + run_cfg.max_cycles / 4
    _run_until_delivered(engine, run_cfg.warmup_packets, warmup_deadline)
    window = MeasurementWindow(engine)
    window.begin()
    deadline = env.now + run_cfg.max_cycles
    _run_until_delivered(engine, run_cfg.measure_packets, deadline)
    return window.finish()
