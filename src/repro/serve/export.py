"""Manifest-to-table export: served job results as long-form CSV.

A manifest names *which* points a job served; the measurements
themselves live in the content-addressed cache.  This module joins the
two back into the repo's standard long-form rows (the same
:data:`repro.metrics.summary.MEASUREMENT_COLUMNS` registry the figure
exports use), so served sweeps drop into the existing pandas/R
pipelines unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.experiments.export import write_rows_csv
from repro.metrics.collector import measurement_from_dict
from repro.metrics.summary import MEASUREMENT_COLUMNS, measurement_row
from repro.serve.cache import ResultCache
from repro.serve.job import JobManifest

#: Manifest CSV columns: point identity plus the shared registry.
MANIFEST_CSV_FIELDS = [
    "series", "offered_load", "seed", "engine", "point_key",
] + [c.name for c in MEASUREMENT_COLUMNS]


def manifest_rows(manifest: JobManifest, cache: ResultCache) -> list[dict]:
    """Long-form dict rows of every served point in a manifest.

    Unserved (failed / pending) points are skipped -- the manifest's
    ``incomplete`` list is the authoritative record of those.  A point
    whose cache entry has since been corrupted or evicted is skipped
    likewise (its quarantine is visible in the cache stats).
    """
    rows = []
    seen: set[str] = set()
    for entry in manifest.points:
        if entry["status"] not in ("cached", "computed"):
            continue
        dedupe_key = (
            f"{entry['key']}|{entry['network']}|{entry['workload']}"
            f"|{entry['load']}|{entry['seed']}"
        )
        if dedupe_key in seen:  # grid duplicates share one cache entry
            continue
        seen.add(dedupe_key)
        payload = cache.get(entry["key"])
        if payload is None:
            continue
        m = measurement_from_dict(payload["measurement"])
        row = {
            "series": f"{entry['network']} / {entry['workload']}",
            "offered_load": entry["load"],
            "seed": entry["seed"],
            "engine": entry["engine"],
            "point_key": entry["key"],
        }
        row.update(measurement_row(m))
        rows.append(row)
    return rows


def write_manifest_csv(
    manifest: JobManifest, cache: ResultCache, path: Union[str, Path]
) -> Path:
    """Write a served job as long-form CSV; returns the path."""
    return write_rows_csv(
        manifest_rows(manifest, cache), MANIFEST_CSV_FIELDS, path
    )
