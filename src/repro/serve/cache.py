"""Content-addressed result cache with integrity checksums.

Layout on disk (two-level fan-out keeps directories small at millions
of entries)::

    <root>/
      ab/
        ab3f...e1.json        # one entry per point hash
      quarantine/
        ab3f...e1.json.corrupt  # entries that failed verification

Each entry is an *envelope*::

    {"version": 1,
     "key": "<sha256 of the canonical point config>",
     "sha256": "<sha256 of payload_json(payload)>",
     "payload": {...}}

:meth:`ResultCache.get` re-canonicalizes the stored payload and
verifies the embedded checksum (and that the entry sits under its own
key), so silent bit-rot, torn writes and hand-edited entries are all
detected.  A bad entry is **quarantined** (moved aside, never deleted
-- forensics may want it) and reported as a miss, which makes the
caller transparently recompute; the rewrite then heals the cache.

Writes are write-temp-then-rename into the entry's final directory, so
a crash mid-write never leaves a torn entry under a valid name (the
same discipline as the PR 1 sweep checkpoints).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.serve.canonical import checksum, payload_json

ENTRY_VERSION = 1


@dataclass
class CacheStats:
    """Counters of one :class:`ResultCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0   # entries quarantined during get()
    writes: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
        }


class CorruptEntry(ValueError):
    """A cache entry failed structural or checksum verification."""


@dataclass
class ResultCache:
    """Content-addressed point-result store under ``root``."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------- layout

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        _validate_key(key)
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def __len__(self) -> int:
        """Number of (verified-or-not) entries currently on disk."""
        return sum(
            1
            for d in self.root.iterdir()
            if d.is_dir() and d.name != "quarantine"
            for _ in d.glob("*.json")
        )

    # ------------------------------------------------------------ get/put

    def get(self, key: str) -> Optional[dict]:
        """The verified payload for ``key``, or None (miss).

        A structurally invalid, checksum-mismatched or wrongly-keyed
        entry is moved to ``quarantine/`` and counted in
        ``stats.corrupt``; the call then reports a miss so the caller
        recomputes (and :meth:`put` heals the slot).
        """
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        try:
            payload = self._verify(key, raw)
        except CorruptEntry:
            self._quarantine(path)
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> Path:
        """Persist ``payload`` under ``key`` atomically; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = payload_json(payload)
        envelope = {
            "version": ENTRY_VERSION,
            "key": key,
            "sha256": checksum(body),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload_json(envelope))
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stats.writes += 1
        return path

    # ------------------------------------------------------ verification

    def _verify(self, key: str, raw: str) -> dict:
        """Parse + integrity-check one envelope; raises CorruptEntry."""
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CorruptEntry(f"unparseable entry: {exc}") from exc
        if not isinstance(envelope, dict):
            raise CorruptEntry("entry is not an object")
        if envelope.get("version") != ENTRY_VERSION:
            raise CorruptEntry(
                f"unknown entry version {envelope.get('version')!r}"
            )
        if envelope.get("key") != key:
            raise CorruptEntry(
                f"entry filed under {key} claims key {envelope.get('key')!r}"
            )
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            raise CorruptEntry("entry has no payload object")
        expected = envelope.get("sha256")
        actual = checksum(payload_json(payload))
        if actual != expected:
            raise CorruptEntry(
                f"payload checksum mismatch ({actual} != {expected})"
            )
        return payload

    def _quarantine(self, path: Path) -> Path:
        """Move a bad entry aside (never delete -- keep the evidence)."""
        qdir = self.quarantine_dir
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / f"{path.name}.corrupt"
        serial = 0
        while target.exists():
            serial += 1
            target = qdir / f"{path.name}.corrupt.{serial}"
        os.replace(path, target)
        return target


def _validate_key(key: str) -> None:
    if (
        not isinstance(key, str)
        or len(key) != 64
        or any(c not in "0123456789abcdef" for c in key)
    ):
        raise ValueError(f"not a sha256 content key: {key!r}")


def open_cache(root: Union[str, Path]) -> ResultCache:
    """Convenience constructor accepting a plain path string."""
    return ResultCache(Path(root))
