"""Job, point and manifest records of the sweep service.

A :class:`JobSpec` names a whole sweep grid (networks x loads x seeds,
one workload, one fidelity preset, one engine, optional fault model).
It expands into :class:`PointSpec` records -- one per simulation point
-- each of which canonicalizes into the content-addressed cache key of
:mod:`repro.serve.canonical`.  A finished (or interrupted) job is
described by a :class:`JobManifest`: the per-point serving status
(``cached`` / ``computed`` / ``failed`` / ``pending``), dedupe and
cache counters, and an explicit ``incomplete`` list when the job was
degraded rather than failed wholesale.

Everything here is plain data: picklable (points cross process
boundaries), JSON-able (specs arrive as files, manifests leave as
files), and deterministic (the same spec always expands to the same
points in the same order).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.experiments.config import PRESETS, NetworkConfig, RunConfig
from repro.experiments.workload_spec import WorkloadSpec
from repro.serve.canonical import canonical_value, config_hash
from repro.stability.admission import ADMISSION_MODES, SHED_NEWEST
from repro.traffic.workload import MessageSizeModel
from repro.transport import TransportConfig
from repro.wormhole.engine import ENGINE_KINDS, resolve_engine
from repro.wormhole.network import NetworkKind

#: Per-point serving statuses a manifest can record.
POINT_STATUSES = ("cached", "computed", "failed", "pending")

#: Canonical defaults of a stability-config mapping.  ``batches``
#: mirrors :data:`repro.experiments.stability.DEFAULT_BATCHES`;
#: ``capacity``/``mode`` mirror the :class:`BoundedQueue` defaults.
STABILITY_DEFAULTS = {
    "batches": 32,
    "capacity": 128,
    "governed": True,
    "mode": SHED_NEWEST,
    "watchdog": True,
}


def validate_stability(raw: Optional[dict]) -> Optional[dict]:
    """Normalize a stability-config mapping to its canonical form.

    A stability point runs through the overload toolkit
    (:func:`repro.experiments.stability.stability_point`): bounded
    admission (``capacity``/``mode``), optional AIMD governor
    (``governed``), optional progress watchdog + retry (``watchdog``),
    and a ``batches``-sample steady-state series.  Defaults are made
    explicit here so two spellings of the same configuration can never
    hash to different cache keys.  (No cached stability payloads
    predate this normalization: before it, any non-None ``stability``
    refused to run.)
    """
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ValueError(
            f"stability must be a mapping or None, got {type(raw).__name__}"
        )
    unknown = sorted(set(raw) - set(STABILITY_DEFAULTS))
    if unknown:
        raise ValueError(
            f"unknown stability key(s) {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(STABILITY_DEFAULTS))}"
        )
    cfg = {**STABILITY_DEFAULTS, **raw}
    cfg["batches"] = int(cfg["batches"])
    cfg["capacity"] = int(cfg["capacity"])
    cfg["governed"] = bool(cfg["governed"])
    cfg["mode"] = str(cfg["mode"])
    cfg["watchdog"] = bool(cfg["watchdog"])
    if cfg["batches"] < 8:
        raise ValueError("stability batches must be >= 8 (classifiable series)")
    if cfg["capacity"] < 1:
        raise ValueError("stability admission capacity must be >= 1")
    if cfg["mode"] not in ADMISSION_MODES:
        raise ValueError(
            f"unknown admission mode {cfg['mode']!r}; "
            f"valid: {', '.join(ADMISSION_MODES)}"
        )
    return dict(sorted(cfg.items()))


#: Canonical defaults of a transport-config mapping; mirror
#: :class:`repro.transport.TransportConfig` exactly (pinned by test).
TRANSPORT_DEFAULTS = {
    "window": 4,
    "max_window": 32,
    "ai_step": 1,
    "rto_base": 256.0,
    "rto_factor": 2.0,
    "rto_max": 8192.0,
    "jitter": 0.25,
    "max_attempts": 8,
    "ack_length": 4,
    "ack_delay": 4.0,
}

_TRANSPORT_INT_KEYS = ("window", "max_window", "ai_step", "max_attempts",
                       "ack_length")
_TRANSPORT_FLOAT_KEYS = ("rto_base", "rto_factor", "rto_max", "jitter",
                         "ack_delay")


def validate_transport(raw: Optional[dict]) -> Optional[dict]:
    """Normalize a transport-config mapping to its canonical form.

    A transport point runs the end-to-end reliability layer
    (:class:`repro.transport.ReliableTransport`) instead of raw source
    injection; defaults are made explicit here so two spellings of the
    same configuration can never hash to different cache keys, and the
    value set is validated eagerly by constructing the
    :class:`~repro.transport.TransportConfig` itself.
    """
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ValueError(
            f"transport must be a mapping or None, got {type(raw).__name__}"
        )
    unknown = sorted(set(raw) - set(TRANSPORT_DEFAULTS))
    if unknown:
        raise ValueError(
            f"unknown transport key(s) {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(TRANSPORT_DEFAULTS))}"
        )
    cfg = {**TRANSPORT_DEFAULTS, **raw}
    for k in _TRANSPORT_INT_KEYS:
        cfg[k] = int(cfg[k])
    for k in _TRANSPORT_FLOAT_KEYS:
        cfg[k] = float(cfg[k])
    TransportConfig(**cfg)  # field-level validation, one place
    return dict(sorted(cfg.items()))

MANIFEST_VERSION = 1


@dataclass(frozen=True)
class FaultSpec:
    """Optional fault model of a point (the cache key's ``faults`` part).

    Mirrors the availability sweep's wiring: MTBF channel churn at a
    target per-channel unavailability ``rate`` with mean-time-to-repair
    ``mttr``, plus exponential-backoff source retry capped at
    ``max_attempts`` injections per message.
    """

    rate: float
    mttr: float = 500.0
    severity: str = "hard"
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError("fault rate is an unavailability fraction in [0, 1)")
        if self.severity not in ("soft", "hard"):
            raise ValueError("severity must be 'soft' or 'hard'")
        if self.mttr <= 0 or self.max_attempts < 1:
            raise ValueError("need mttr > 0 and max_attempts >= 1")


@dataclass(frozen=True)
class PointSpec:
    """One content-addressed simulation point.

    ``run.seed`` and ``run.loads`` are *ignored* -- the point's own
    ``seed`` and ``load`` fields are authoritative, so a preset's
    incidental defaults never split the cache.  ``stability`` selects
    the overload-toolkit execution path: a canonical mapping validated
    by :func:`validate_stability` (admission capacity/mode, governor,
    watchdog, batch count) that routes the point through
    :func:`repro.experiments.stability.stability_point` and adds a
    ``stability`` block to the payload.  ``transport`` likewise selects
    the end-to-end reliability path (:func:`validate_transport`):
    sources send through :class:`repro.transport.ReliableTransport`,
    optionally combined with ``faults`` (the loss storm the transport
    exists to survive) -- but not with ``stability``, whose toolkit
    wiring owns the sources itself.
    """

    network: NetworkConfig
    workload: WorkloadSpec
    load: float
    seed: int
    run: RunConfig
    engine: str = "fast"
    faults: Optional[FaultSpec] = None
    stability: Optional[dict] = None
    transport: Optional[dict] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "load", float(self.load))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "engine", resolve_engine(self.engine))
        object.__setattr__(
            self, "stability", validate_stability(self.stability)
        )
        object.__setattr__(
            self, "transport", validate_transport(self.transport)
        )
        if self.stability is not None and self.faults is not None:
            raise ValueError(
                "a point cannot combine stability and faults: the "
                "overload toolkit path has no fault-injection wiring"
            )
        if self.stability is not None and self.transport is not None:
            raise ValueError(
                "a point cannot combine stability and transport: the "
                "overload toolkit owns the sources itself"
            )

    def config(self) -> dict:
        """The canonical configuration mapping this point hashes over."""
        out = {
            # NetworkConfig.canonical() (not the generic expansion):
            # it omits the direct-only fields for MIN kinds, keeping
            # every pre-direct point key byte-stable.
            "network": self.network.canonical(),
            # WorkloadSpec.canonical() likewise omits the arrival
            # fields at their Poisson defaults.
            "workload": self.workload.canonical(),
            "run": {
                "warmup_packets": self.run.warmup_packets,
                "measure_packets": self.run.measure_packets,
                "max_cycles": self.run.max_cycles,
                "sizes": canonical_value(self.run.sizes),
            },
            "load": self.load,
            "seed": self.seed,
            # The batch tier is an execution detail, not an identity:
            # its results are bit-identical to fast's (the differential
            # suite certifies this), so batch points share fast's cache
            # entries -- and every pre-batch cache key stays byte-stable.
            "engine": "fast" if self.engine == "batch" else self.engine,
            "faults": canonical_value(self.faults) if self.faults else None,
            "stability": (
                canonical_value(self.stability) if self.stability else None
            ),
        }
        # Emitted only when set so every pre-transport key stays
        # byte-stable (same precedent as JobSpec.to_dict's stability).
        if self.transport is not None:
            out["transport"] = canonical_value(self.transport)
        return out

    def key(self) -> str:
        """SHA-256 content address of this point's configuration."""
        return config_hash(self.config())

    @property
    def label(self) -> str:
        return (
            f"{self.network.label}/{self.workload.label}"
            f"@{self.load:g}#s{self.seed}"
        )

    def describe(self) -> dict:
        """The manifest's per-point identity block."""
        return {
            "network": self.network.label,
            "workload": self.workload.label,
            "load": self.load,
            "seed": self.seed,
            "engine": self.engine,
            "faults": canonical_value(self.faults) if self.faults else None,
        }


@dataclass(frozen=True)
class JobSpec:
    """A whole sweep request: networks x loads x seeds, one workload."""

    networks: tuple[NetworkConfig, ...]
    run: RunConfig
    workload: WorkloadSpec = WorkloadSpec()
    loads: tuple[float, ...] = ()   # empty -> run.loads
    seeds: tuple[int, ...] = ()     # empty -> (run.seed,)
    engine: str = "fast"
    faults: Optional[FaultSpec] = None
    stability: Optional[dict] = None
    transport: Optional[dict] = None

    def __post_init__(self) -> None:
        if not self.networks:
            raise ValueError("a job needs at least one network")
        object.__setattr__(self, "networks", tuple(self.networks))
        object.__setattr__(
            self, "loads", tuple(float(x) for x in self.loads)
        )
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if self.engine not in ENGINE_KINDS:
            raise ValueError(f"unknown engine {self.engine!r}")
        object.__setattr__(
            self, "stability", validate_stability(self.stability)
        )
        object.__setattr__(
            self, "transport", validate_transport(self.transport)
        )

    @property
    def effective_loads(self) -> tuple[float, ...]:
        return self.loads or self.run.loads

    @property
    def effective_seeds(self) -> tuple[int, ...]:
        return self.seeds or (self.run.seed,)

    def points(self) -> list[PointSpec]:
        """Expand the grid (duplicates preserved -- the service dedupes
        and reports them, so the requester sees the redundancy).

        The workload's geometry follows each network (one workload
        spec serves a grid of mixed-size networks), so its ``k``/``n``
        fields are replaced per point.
        """
        return [
            PointSpec(
                network=network,
                workload=dataclasses.replace(
                    self.workload, k=network.k, n=network.n
                ),
                load=load,
                seed=seed,
                run=self.run,
                engine=self.engine,
                faults=self.faults,
                stability=self.stability,
                transport=self.transport,
            )
            for network in self.networks
            for load in self.effective_loads
            for seed in self.effective_seeds
        ]

    @property
    def job_id(self) -> str:
        """Short stable identifier: hash prefix of the canonical spec."""
        return config_hash(self.to_dict())[:12]

    def to_dict(self) -> dict:
        out = {
            "networks": [n.canonical() for n in self.networks],
            "workload": self.workload.canonical(),
            "run": {
                "mode": self.run.name,
                "warmup_packets": self.run.warmup_packets,
                "measure_packets": self.run.measure_packets,
                "max_cycles": self.run.max_cycles,
                "sizes": canonical_value(self.run.sizes),
                "seed": self.run.seed,
            },
            "loads": list(self.effective_loads),
            "seeds": list(self.effective_seeds),
            "engine": self.engine,
            "faults": canonical_value(self.faults) if self.faults else None,
        }
        # Emitted only when set so plain jobs keep their pre-stability
        # (and pre-transport) job_ids (the id hashes this mapping).
        if self.stability is not None:
            out["stability"] = canonical_value(self.stability)
        if self.transport is not None:
            out["transport"] = canonical_value(self.transport)
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "JobSpec":
        """Parse a job spec from its JSON form.

        ``run`` may be a preset name (``{"run": {"mode": "smoke"}}`` or
        simply ``"smoke"``) or a full field mapping; network/workload
        entries are keyword mappings of their dataclasses, so omitted
        fields take the canonical defaults.
        """
        nets_raw = raw.get("networks")
        if isinstance(nets_raw, (str, bytes)) or not isinstance(
            nets_raw, (list, tuple)
        ):
            raise ValueError(
                "spec field 'networks' must be a list of kind names or "
                f"field mappings, got {nets_raw!r}"
            )
        networks = tuple(
            NetworkConfig(**n) if isinstance(n, dict) else NetworkConfig(str(n))
            for n in nets_raw
        )
        for net in networks:
            NetworkKind(net.kind)  # fail fast, before any dispatch
        workload = WorkloadSpec(**raw.get("workload", {}))
        run = _run_from_dict(raw.get("run", "scaled"))
        faults_raw = raw.get("faults")
        faults = FaultSpec(**faults_raw) if faults_raw else None
        return cls(
            networks=networks,
            run=run,
            workload=workload,
            loads=tuple(raw.get("loads", ())),
            seeds=tuple(raw.get("seeds", ())),
            engine=raw.get("engine", "fast"),
            faults=faults,
            stability=raw.get("stability"),
            transport=raw.get("transport"),
        )

    @classmethod
    def read(cls, path: Union[str, Path]) -> "JobSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))


def _run_from_dict(raw: Union[str, dict]) -> RunConfig:
    if isinstance(raw, str):
        return PRESETS[raw]
    raw = dict(raw)
    mode = raw.pop("mode", None)
    base = PRESETS[mode] if mode else PRESETS["scaled"]
    sizes = raw.pop("sizes", None)
    if sizes is not None:
        raw["sizes"] = MessageSizeModel(**sizes)
    if not raw:
        return base
    return dataclasses.replace(base, **raw)


# ----------------------------------------------------------------- manifest


@dataclass
class JobManifest:
    """What one job run actually served, point by point."""

    job_id: str
    spec: dict
    points: list[dict] = field(default_factory=list)
    counts: dict = field(default_factory=dict)
    complete: bool = False
    incomplete: list[str] = field(default_factory=list)
    cache: dict = field(default_factory=dict)
    supervisor: dict = field(default_factory=dict)
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "job_id": self.job_id,
            "spec": self.spec,
            "points": self.points,
            "counts": self.counts,
            "complete": self.complete,
            "incomplete": self.incomplete,
            "cache": self.cache,
            "supervisor": self.supervisor,
            "elapsed_s": self.elapsed_s,
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Atomic write-temp-then-rename persistence (crash-safe)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self.to_dict(), fh, indent=2)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "JobManifest":
        raw = json.loads(Path(path).read_text())
        if raw.get("version") != MANIFEST_VERSION:
            raise ValueError(f"unknown manifest version {raw.get('version')!r}")
        return cls(
            job_id=raw["job_id"],
            spec=raw["spec"],
            points=raw["points"],
            counts=raw["counts"],
            complete=raw["complete"],
            incomplete=list(raw["incomplete"]),
            cache=raw["cache"],
            supervisor=raw.get("supervisor", {}),
            elapsed_s=raw.get("elapsed_s", 0.0),
        )

    def statuses(self) -> dict[str, int]:
        """Status -> point count tally over the manifest."""
        tally = {s: 0 for s in POINT_STATUSES}
        for entry in self.points:
            tally[entry["status"]] = tally.get(entry["status"], 0) + 1
        return tally


def summarize_points(
    points: Sequence[PointSpec],
    statuses: dict[str, str],
    errors: Optional[dict[str, str]] = None,
) -> list[dict]:
    """Manifest ``points`` entries for an expanded grid.

    ``statuses`` maps point key -> status; ``errors`` maps key -> error
    string for failed points.  Duplicate grid entries share their key's
    status (they were served by the same cache entry).
    """
    errors = errors or {}
    out = []
    for p in points:
        key = p.key()
        entry = {"key": key, **p.describe()}
        entry["status"] = statuses.get(key, "pending")
        if key in errors:
            entry["error"] = errors[key]
        out.append(entry)
    return out
