"""The asyncio sweep-job service.

A :class:`SweepService` owns one :class:`~repro.serve.cache.ResultCache`
and serves :class:`~repro.serve.job.JobSpec` requests:

1. **canonicalize + dedupe** -- the spec's grid expands to points, each
   point canonicalizes to its content hash; duplicate points collapse
   to one computation and the manifest reports how many were folded;
2. **cache** -- every unique point is first looked up in the cache
   (corrupt entries quarantine themselves and read as misses);
3. **compute** -- the misses go to the supervised worker pool
   (:mod:`repro.serve.supervisor`); each point that completes is
   written to the cache *immediately* (atomic write-then-rename), so a
   crash at any instant loses at most the in-flight points;
4. **manifest** -- the job settles into a
   :class:`~repro.serve.job.JobManifest` naming every point's serving
   status; a degraded job (poisoned points, interrupted service) yields
   ``complete=False`` with an explicit ``incomplete`` list instead of
   an exception.

**Resume is free**: re-submitting the same spec (e.g. after SIGTERM)
re-canonicalizes to the same hashes and hits the cache for everything
that finished, recomputing only what was in flight.  There is no
separate journal to replay -- the content-addressed cache *is* the
checkpoint, with stronger integrity guarantees than the PR 1 sweep
checkpoint it generalizes.

Async usage::

    service = SweepService("cache/")
    manifest = await service.run_job(spec)          # one job
    handle = await service.submit(spec)             # queued job
    manifest = await service.wait(handle.job_id)

Sync usage (the CLI)::

    manifest = SweepService("cache/").run_job_sync(spec)
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.obs.progress import ProgressMeter
from repro.serve.cache import ResultCache
from repro.serve.compute import run_point_spec
from repro.serve.job import JobManifest, JobSpec, summarize_points
from repro.serve.supervisor import (
    PointOutcome,
    SupervisePolicy,
    WorkerSupervisor,
)


@dataclass
class JobHandle:
    """A submitted job: its id and the asyncio task computing it."""

    job_id: str
    task: "asyncio.Task[JobManifest]"


@dataclass
class SweepService:
    """Deduplicating, cache-backed, crash-tolerant sweep serving."""

    cache: Union[ResultCache, str, Path]
    policy: SupervisePolicy = SupervisePolicy()
    job_root: Optional[Path] = None       # manifests land here if set
    runner: Callable = run_point_spec     # picklable point executor
    progress: Optional[Callable[[int, int, str], None]] = None
    _jobs: dict = field(default_factory=dict, repr=False)
    _supervisor: Optional[WorkerSupervisor] = field(default=None, repr=False)
    _stop: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.cache, ResultCache):
            self.cache = ResultCache(Path(self.cache))
        if self.job_root is not None:
            self.job_root = Path(self.job_root)

    # ------------------------------------------------------------- control

    def request_stop(self) -> None:
        """Wind the active job down gracefully (signal-handler safe).

        Finished points are already in the cache; the manifest written
        on the way out lists the rest as ``incomplete``.  Re-running
        the same spec resumes from exactly there.
        """
        self._stop = True
        sup = self._supervisor
        if sup is not None:
            sup.request_stop()

    # ---------------------------------------------------------- async API

    async def run_job(self, spec: JobSpec) -> JobManifest:
        """Serve one job to completion (or graceful degradation)."""
        return await asyncio.to_thread(self.run_job_sync, spec)

    async def submit(self, spec: JobSpec) -> JobHandle:
        """Queue a job; returns immediately with its handle."""
        handle = JobHandle(
            job_id=spec.job_id,
            task=asyncio.create_task(self.run_job(spec)),
        )
        self._jobs[handle.job_id] = handle
        return handle

    async def wait(self, job_id: str) -> JobManifest:
        """Await a submitted job's manifest."""
        return await self._jobs[job_id].task

    # ----------------------------------------------------------- sync core

    def run_job_sync(self, spec: JobSpec) -> JobManifest:
        t0 = time.monotonic()  # lint-sim: ignore[RPV002] -- harness timing, not sim state
        points = spec.points()

        # Canonicalize + dedupe: identical points collapse to one key.
        unique: dict[str, object] = {}
        for p in points:
            unique.setdefault(p.key(), p)
        statuses: dict[str, str] = {}
        errors: dict[str, str] = {}

        # Serve from the cache first (corruption reads as a miss).
        to_run = []
        for key, p in unique.items():
            if self.cache.get(key) is not None:
                statuses[key] = "cached"
            else:
                to_run.append((key, p))

        done_counter = {"n": len(statuses)}
        total = len(unique)

        def on_result(key: str, outcome: PointOutcome) -> None:
            # Called in the supervision thread the moment a point
            # settles: persist immediately -- this is the crash-
            # tolerance write barrier.
            if outcome.ok:
                self.cache.put(key, outcome.payload)
            done_counter["n"] += 1
            if self.progress is not None:
                self.progress(done_counter["n"], total, key[:12])

        supervisor_counters: dict = {}
        interrupted = False
        if to_run and not self._stop:
            sup = WorkerSupervisor(
                self.runner, self.policy, on_result=on_result,
            )
            self._supervisor = sup
            if self._stop:  # stop raced with construction
                sup.request_stop()
            try:
                report = sup.run(to_run)
            finally:
                self._supervisor = None
            for key, outcome in report.outcomes.items():
                if outcome.ok:
                    statuses[key] = "computed"
                elif outcome.status == "failed":
                    statuses[key] = "failed"
                    errors[key] = outcome.error or "failed"
                # "interrupted" points stay pending in the manifest.
            supervisor_counters = report.counters()
            interrupted = report.interrupted

        incomplete = sorted(
            key
            for key in unique
            if statuses.get(key) not in ("cached", "computed")
        )
        counts = {
            "requested": len(points),
            "unique": total,
            "deduplicated": len(points) - total,
            "cached": sum(1 for s in statuses.values() if s == "cached"),
            "computed": sum(1 for s in statuses.values() if s == "computed"),
            "failed": sum(1 for s in statuses.values() if s == "failed"),
            "pending": len(incomplete)
            - sum(1 for s in statuses.values() if s == "failed"),
        }
        manifest = JobManifest(
            job_id=spec.job_id,
            spec=spec.to_dict(),
            points=summarize_points(points, statuses, errors),
            counts=counts,
            complete=not incomplete,
            incomplete=incomplete,
            cache=self.cache.stats.to_dict(),
            supervisor={**supervisor_counters, "interrupted": interrupted},
            elapsed_s=time.monotonic() - t0,  # lint-sim: ignore[RPV002] -- harness timing, not sim state
        )
        if self.job_root is not None:
            manifest.write(self.manifest_path(spec))
        return manifest

    def manifest_path(self, spec: JobSpec) -> Path:
        """Where this spec's manifest lands (requires ``job_root``)."""
        if self.job_root is None:
            raise ValueError("service has no job_root configured")
        return self.job_root / f"{spec.job_id}.manifest.json"


def default_progress() -> ProgressMeter:
    """A stderr heartbeat prefixed for the service."""
    return ProgressMeter(prefix="serve")
