"""CLI front of the sweep service.

Run a job from a spec file (and resume it after any crash by running
the same command again)::

    python -m repro.serve --spec job.json --cache cache/ --job-dir jobs/

or inline, without a spec file::

    python -m repro.serve --cache cache/ \\
        --networks dmin vmin --pattern uniform \\
        --loads 0.2 0.6 --seeds 1 2 --mode smoke

SIGTERM/SIGINT wind the service down gracefully: finished points are
already persisted in the content-addressed cache, a partial manifest
(``complete: false`` with an ``incomplete`` list) is written, and the
exit code is 3.  Re-running the identical command resumes -- cached
points are served from disk and only the unfinished remainder is
recomputed.  Exit codes: 0 complete, 3 incomplete/interrupted,
2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path

from repro.experiments.config import PRESETS, NetworkConfig
from repro.experiments.workload_spec import PATTERNS, WorkloadSpec
from repro.obs.progress import ProgressMeter
from repro.serve.job import FaultSpec, JobManifest, JobSpec
from repro.serve.service import SweepService
from repro.serve.supervisor import DEFAULT_RETRY, SupervisePolicy
from repro.wormhole.engine import ENGINE_KINDS

NETWORK_KINDS = ("tmin", "dmin", "vmin", "bmin")


def _build_spec(args: argparse.Namespace) -> JobSpec:
    if args.spec:
        return JobSpec.read(args.spec)
    if not args.networks:
        raise SystemExit("need --spec FILE or --networks KIND [KIND ...]")
    return JobSpec(
        networks=tuple(NetworkConfig(kind) for kind in args.networks),
        run=PRESETS[args.mode],
        workload=WorkloadSpec(pattern=args.pattern),
        loads=tuple(args.loads or ()),
        seeds=tuple(args.seeds or ()),
        engine=args.engine,
        faults=(
            FaultSpec(rate=args.fault_rate)
            if args.fault_rate is not None
            else None
        ),
    )


def _render_summary(manifest: JobManifest, elapsed_note: str = "") -> str:
    c = manifest.counts
    lines = [
        f"=== job {manifest.job_id} "
        f"{'COMPLETE' if manifest.complete else 'INCOMPLETE'} ===",
        f"points    {c['requested']} requested, {c['unique']} unique "
        f"({c['deduplicated']} deduplicated)",
        f"served    {c['cached']} cached + {c['computed']} computed",
    ]
    if c["failed"] or c["pending"]:
        lines.append(
            f"unserved  {c['failed']} failed (poisoned), "
            f"{c['pending']} pending"
        )
    sup = manifest.supervisor
    if sup:
        lines.append(
            f"workers   {sup.get('retries', 0)} retries, "
            f"{sup.get('worker_deaths', 0)} deaths, "
            f"{sup.get('stall_kills', 0)} stall kills, "
            f"{sup.get('hedges', 0)} hedges"
        )
    cache = manifest.cache
    lines.append(
        f"cache     {cache['hits']} hits / {cache['misses']} misses"
        + (f", {cache['corrupt']} quarantined" if cache["corrupt"] else "")
    )
    lines.append(f"elapsed   {manifest.elapsed_s:.1f}s{elapsed_note}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve sweep jobs from a content-addressed result cache.",
    )
    parser.add_argument("--spec", metavar="JOB.json", help="job spec file")
    parser.add_argument(
        "--cache", required=True, metavar="DIR", help="result cache root"
    )
    parser.add_argument(
        "--job-dir", metavar="DIR", default=None,
        help="manifest directory (default: <cache>/jobs)",
    )
    parser.add_argument(
        "--networks", nargs="+", choices=NETWORK_KINDS,
        help="inline spec: network kinds",
    )
    parser.add_argument(
        "--pattern", choices=PATTERNS, default="uniform",
        help="inline spec: traffic pattern (default: uniform)",
    )
    parser.add_argument(
        "--loads", type=float, nargs="+", help="inline spec: offered loads"
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", help="inline spec: seed replicates"
    )
    parser.add_argument(
        "--mode", choices=sorted(PRESETS), default="scaled",
        help="inline spec: fidelity preset (default: scaled)",
    )
    parser.add_argument(
        "--engine", choices=ENGINE_KINDS, default="fast",
        help="inline spec: execution path (default: fast)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=None,
        help="inline spec: per-channel unavailability fraction",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes (default: 2)"
    )
    parser.add_argument(
        "--point-timeout", type=float, default=None,
        help="cooperative per-point deadline, seconds",
    )
    parser.add_argument(
        "--stall-after", type=float, default=60.0,
        help="stale-heartbeat kill threshold, seconds (default: 60)",
    )
    parser.add_argument(
        "--hedge-after", type=float, default=None,
        help="straggler hedged re-dispatch threshold, seconds",
    )
    parser.add_argument(
        "--csv", metavar="OUT.csv",
        help="also export the served measurements as long-form CSV",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full manifest JSON instead of the summary",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the progress heartbeat"
    )
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error("--workers must be at least 1")
    try:
        spec = _build_spec(args)
    except (KeyError, OSError, TypeError, ValueError) as exc:
        parser.error(f"bad job spec: {exc}")
    cache_root = Path(args.cache)
    job_dir = Path(args.job_dir) if args.job_dir else cache_root / "jobs"
    policy = SupervisePolicy(
        workers=args.workers,
        retry=DEFAULT_RETRY,
        point_timeout=args.point_timeout,
        stall_after=args.stall_after,
        hedge_after=args.hedge_after,
    )
    service = SweepService(
        cache=cache_root,
        policy=policy,
        job_root=job_dir,
        progress=None if args.quiet else ProgressMeter(prefix="serve"),
    )

    def _wind_down(signum: int, frame: object) -> None:
        # Signal handlers must stay async-signal-safe-ish (RPV008):
        # print() takes the stderr buffer lock and can deadlock the very
        # process we are winding down; os.write is a single syscall.
        os.write(
            2,
            (
                f"[serve] signal {signum}: finishing in-flight "
                "bookkeeping, writing partial manifest\n"
            ).encode(),
        )
        service.request_stop()

    old_term = signal.signal(signal.SIGTERM, _wind_down)
    old_int = signal.signal(signal.SIGINT, _wind_down)
    try:
        manifest = service.run_job_sync(spec)
    finally:
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)

    if args.csv:
        from repro.serve.export import write_manifest_csv

        write_manifest_csv(manifest, service.cache, args.csv)
        print(f"(manifest CSV written to {args.csv})", file=sys.stderr)

    if args.json:
        print(json.dumps(manifest.to_dict(), indent=2))
    else:
        print(_render_summary(manifest))
        print(f"(manifest: {service.manifest_path(spec)})")
    return 0 if manifest.complete else 3


if __name__ == "__main__":
    sys.exit(main())
