"""Supervised worker pool: liveness, retry, quarantine, hedging.

``concurrent.futures`` cannot express the failure policy the sweep
service needs (a SIGKILLed worker poisons a ``ProcessPoolExecutor``
wholesale), so the supervisor manages ``multiprocessing.Process``
workers directly:

* **heartbeat liveness** -- each worker owns a
  :class:`repro.obs.progress.HeartbeatSlot` in a shared array and beats
  it from the simulation loop's cooperative check, so the parent can
  tell a *slow* point (recent beat) from a *wedged* worker (stale
  beat).  Wedged workers are killed and their point re-dispatched;
* **death recovery** -- a worker that dies (SIGKILL, OOM, segfault) is
  detected by ``Process.is_alive()``, respawned into the same slot, and
  its in-flight point retried on the fresh worker;
* **retry with backoff** -- failed attempts re-dispatch after
  :meth:`repro.faults.recovery.RetryPolicy.nominal_delay` (the same
  schedule the in-simulation source retry uses, in wall seconds);
* **poison-point quarantine** -- a point that fails
  ``retry.max_attempts`` times settles as ``failed`` instead of
  wedging the job: the service reports it in the manifest's
  ``incomplete`` list (graceful degradation, not job failure);
* **straggler hedging** -- a point in flight longer than
  ``hedge_after`` is dispatched a second time on another worker; the
  first result wins (results are deterministic, so the twin's answer
  is identical and simply discarded);
* **cooperative deadlines** -- ``point_timeout`` arms the PR 5
  monotonic per-point deadline inside each worker, converting runaway
  points into ordinary retryable errors.

The supervisor is synchronous (the asyncio service drives it from a
thread); :meth:`WorkerSupervisor.request_stop` is thread- and
signal-safe and turns the remaining points into ``interrupted``
outcomes, which a resumed job recomputes.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.experiments.runner import set_point_deadline, set_point_heartbeat
from repro.faults.recovery import RetryPolicy
from repro.obs.progress import HeartbeatSlot

#: Wall-seconds-scale backoff for worker re-dispatch (RetryPolicy's
#: defaults are simulation-cycle-scale; the schedule shape is shared).
DEFAULT_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.05, factor=2.0, max_delay=2.0, jitter=0.0
)

#: Outcome events the ``on_event`` callback can receive.
EVENT_KINDS = (
    "dispatch", "retry", "poison", "worker_death", "stall_kill", "hedge",
)


@dataclass(frozen=True)
class SupervisePolicy:
    """Knobs of the supervised pool."""

    workers: int = 2
    retry: RetryPolicy = DEFAULT_RETRY
    point_timeout: Optional[float] = None   # cooperative deadline, seconds
    stall_after: float = 60.0               # stale-heartbeat kill threshold
    hedge_after: Optional[float] = None     # straggler duplicate dispatch
    poll_interval: float = 0.05
    start_method: Optional[str] = None      # None -> fork where available

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.stall_after <= 0:
            raise ValueError("stall_after must be positive")
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ValueError("hedge_after must be positive")


@dataclass
class PointOutcome:
    """How one point settled."""

    key: str
    status: str                      # "ok" | "failed" | "interrupted"
    payload: Optional[dict] = None   # present iff status == "ok"
    error: Optional[str] = None
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class SupervisorReport:
    """Everything one :meth:`WorkerSupervisor.run` call did."""

    outcomes: dict[str, PointOutcome] = field(default_factory=dict)
    retries: int = 0
    worker_deaths: int = 0
    stall_kills: int = 0
    hedges: int = 0
    elapsed_s: float = 0.0
    interrupted: bool = False

    @property
    def results(self) -> dict[str, dict]:
        return {k: o.payload for k, o in self.outcomes.items() if o.ok}

    @property
    def failures(self) -> dict[str, str]:
        return {
            k: o.error or o.status
            for k, o in self.outcomes.items()
            if not o.ok
        }

    @property
    def complete(self) -> bool:
        return all(o.ok for o in self.outcomes.values())

    def counters(self) -> dict:
        return {
            "retries": self.retries,
            "worker_deaths": self.worker_deaths,
            "stall_kills": self.stall_kills,
            "hedges": self.hedges,
            "interrupted": self.interrupted,
        }


def _format_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _worker_main(
    worker_id: int,
    task_q: "queue_mod.Queue[object]",
    result_q: "queue_mod.Queue[tuple]",
    beats: Sequence[float],
    runner: Callable[[object], object],
    point_timeout: Optional[float],
) -> None:
    """One worker process: pull tasks until the ``None`` sentinel.

    Protocol on ``result_q`` (all tuples lead with the message kind):
    ``("start", worker_id, key)`` before computing,
    ``("done", worker_id, key, payload)`` /
    ``("error", worker_id, key, error_str)`` after.
    """
    slot = HeartbeatSlot(beats, worker_id)
    while True:
        item = task_q.get()
        if item is None:
            return
        key, task = item
        slot.beat()
        result_q.put(("start", worker_id, key))
        set_point_heartbeat(slot.beat)
        if point_timeout is not None:
            set_point_deadline(point_timeout)
        try:
            payload = runner(task)
        except BaseException as exc:  # report everything; parent decides
            result_q.put(("error", worker_id, key, _format_error(exc)))
        else:
            result_q.put(("done", worker_id, key, payload))
        finally:
            set_point_deadline(None)
            set_point_heartbeat(None)
            slot.beat()


@dataclass
class _Worker:
    """Parent-side view of one worker slot."""

    index: int
    proc: multiprocessing.Process
    current: Optional[str] = None    # key in flight on this worker
    started: float = 0.0             # dispatch instant of `current`


class WorkerSupervisor:
    """Runs keyed tasks across supervised workers (see module doc)."""

    def __init__(
        self,
        runner: Callable,
        policy: SupervisePolicy = SupervisePolicy(),
        on_result: Optional[Callable[[str, PointOutcome], None]] = None,
        on_event: Optional[Callable[..., None]] = None,
    ) -> None:
        self.runner = runner
        self.policy = policy
        self.on_result = on_result
        self.on_event = on_event
        self._stop = False

    # ------------------------------------------------------------- control

    def request_stop(self) -> None:
        """Ask the running supervision loop to wind down (signal-safe).

        Unsettled points become ``interrupted`` outcomes; a resumed job
        recomputes exactly those.
        """
        self._stop = True

    def _event(self, kind: str, **info: object) -> None:
        if self.on_event is not None:
            self.on_event(kind, **info)

    # ----------------------------------------------------------------- run

    def run(self, tasks: Sequence[tuple[str, object]]) -> SupervisorReport:
        """Execute every (key, task) pair; returns the settled report.

        Keys must be unique (the service dedupes before dispatch); the
        tasks and the runner must be picklable.
        """
        t0 = time.monotonic()  # lint-sim: ignore[RPV002] -- harness scheduling, not sim state
        self._stop = False
        report = SupervisorReport()
        tasks_by_key = dict(tasks)
        if len(tasks_by_key) != len(tasks):
            raise ValueError("duplicate task keys; dedupe before dispatch")
        if not tasks_by_key:
            return report

        policy = self.policy
        method = policy.start_method or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        ctx = multiprocessing.get_context(method)
        task_q = ctx.Queue()
        result_q = ctx.Queue()
        beats = ctx.RawArray("d", policy.workers)
        # The parent never touches the raw array directly (RPV009):
        # slot accessors keep the liveness protocol -- never-beaten
        # sentinel, monotonic source, age semantics -- in one place.
        slots = [HeartbeatSlot(beats, i) for i in range(policy.workers)]

        def spawn(index: int) -> _Worker:
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    index, task_q, result_q, beats,
                    self.runner, policy.point_timeout,
                ),
                daemon=True,
            )
            proc.start()
            slots[index].beat()
            return _Worker(index=index, proc=proc)

        workers = [spawn(i) for i in range(policy.workers)]

        unsettled = set(tasks_by_key)
        attempts: dict[str, int] = {k: 0 for k in tasks_by_key}
        hedged: set[str] = set()
        inflight: dict[str, set[int]] = {k: set() for k in tasks_by_key}
        #: (ready_time, serial, key) -- scheduled (re)dispatches.
        ready: list[tuple[float, int, str]] = []
        serial = 0
        queued = 0          # pushed but not yet "start"-acknowledged
        last_progress = t0  # last instant anything moved (orphan sweep)

        def schedule(key: str, delay: float = 0.0) -> None:
            nonlocal serial
            now = time.monotonic()  # lint-sim: ignore[RPV002] -- harness scheduling, not sim state
            heapq.heappush(ready, (now + delay, serial, key))
            serial += 1

        def settle(outcome: PointOutcome) -> None:
            nonlocal last_progress
            report.outcomes[outcome.key] = outcome
            unsettled.discard(outcome.key)
            last_progress = time.monotonic()  # lint-sim: ignore[RPV002] -- harness scheduling, not sim state
            if self.on_result is not None:
                self.on_result(outcome.key, outcome)

        def record_failure(key: str, error: str) -> None:
            """One attempt failed: retry, wait for a hedge twin, or poison."""
            if key not in unsettled:
                return
            if attempts[key] < policy.retry.max_attempts:
                delay = policy.retry.nominal_delay(max(attempts[key], 1))
                report.retries += 1
                self._event("retry", key=key, attempt=attempts[key], error=error)
                schedule(key, delay)
            elif not inflight[key]:
                self._event("poison", key=key, error=error)
                settle(PointOutcome(
                    key, "failed", error=error, attempts=attempts[key],
                ))
            # else: attempts exhausted but a hedge twin is still running;
            # its result (or failure) settles the point.

        def kill_worker(w: _Worker) -> None:
            w.proc.terminate()
            w.proc.join(timeout=1.0)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(timeout=5.0)

        for key in tasks_by_key:
            schedule(key)

        try:
            while unsettled and not self._stop:
                now = time.monotonic()  # lint-sim: ignore[RPV002] -- harness scheduling, not sim state

                # Dispatch due (re)tries while the queue has appetite.
                while (
                    ready
                    and ready[0][0] <= now
                    and queued < policy.workers
                ):
                    _, _, key = heapq.heappop(ready)
                    if key not in unsettled:
                        continue
                    attempts[key] += 1
                    task_q.put((key, tasks_by_key[key]))
                    queued += 1
                    self._event("dispatch", key=key, attempt=attempts[key])

                # Drain results (block briefly on the first).
                drained_any = False
                block = True
                while True:
                    try:
                        msg = result_q.get(
                            timeout=policy.poll_interval if block else 0
                        )
                    except queue_mod.Empty:
                        break
                    block = False
                    drained_any = True
                    kind, wid, key = msg[0], msg[1], msg[2]
                    w = workers[wid]
                    if kind == "start":
                        queued = max(0, queued - 1)
                        w.current = key
                        w.started = time.monotonic()  # lint-sim: ignore[RPV002] -- harness scheduling, not sim state
                        inflight.setdefault(key, set()).add(wid)
                    elif kind == "done":
                        if w.current == key:
                            w.current = None
                        inflight[key].discard(wid)
                        if key in unsettled:
                            settle(PointOutcome(
                                key, "ok", payload=msg[3],
                                attempts=attempts[key],
                            ))
                    elif kind == "error":
                        if w.current == key:
                            w.current = None
                        inflight[key].discard(wid)
                        record_failure(key, msg[3])
                if drained_any:
                    last_progress = time.monotonic()  # lint-sim: ignore[RPV002] -- harness scheduling, not sim state

                # Liveness sweep: deaths, wedges, stragglers.
                now = time.monotonic()  # lint-sim: ignore[RPV002] -- harness scheduling, not sim state
                for w in workers:
                    if not w.proc.is_alive():
                        exitcode = w.proc.exitcode
                        report.worker_deaths += 1
                        key = w.current
                        self._event(
                            "worker_death", worker=w.index, key=key,
                            exitcode=exitcode,
                        )
                        workers[w.index] = spawn(w.index)
                        if key is not None:
                            inflight[key].discard(w.index)
                            record_failure(
                                key,
                                f"worker died (exitcode {exitcode})",
                            )
                        last_progress = now
                        continue
                    key = w.current
                    if key is None:
                        continue
                    beat_age = slots[w.index].age()
                    if beat_age > policy.stall_after:
                        # Wedged: beating stopped but the process lives.
                        report.stall_kills += 1
                        self._event(
                            "stall_kill", worker=w.index, key=key,
                            beat_age=beat_age,
                        )
                        kill_worker(w)
                        workers[w.index] = spawn(w.index)
                        inflight[key].discard(w.index)
                        record_failure(
                            key,
                            f"worker wedged (no heartbeat for {beat_age:.1f}s)",
                        )
                        last_progress = now
                    elif (
                        policy.hedge_after is not None
                        and key in unsettled
                        and key not in hedged
                        and now - w.started > policy.hedge_after
                    ):
                        # Straggler: dispatch a twin; first result wins.
                        hedged.add(key)
                        report.hedges += 1
                        task_q.put((key, tasks_by_key[key]))
                        queued += 1
                        self._event("hedge", key=key)

                # Orphan sweep: a worker died between task_q.get() and
                # its "start" message, silently swallowing a dispatch.
                # If nothing has moved for a while and nothing is in
                # flight, re-issue every unsettled key.
                stale = now - last_progress > max(2.0, 4 * policy.poll_interval)
                if (
                    stale
                    and not ready
                    and all(w.current is None for w in workers)
                    and unsettled
                ):
                    for key in unsettled:
                        if not inflight[key]:
                            schedule(key)
                    queued = 0
                    last_progress = now
        finally:
            if unsettled:
                report.interrupted = self._stop
                for key in sorted(unsettled):
                    settle_status = "interrupted" if self._stop else "failed"
                    report.outcomes[key] = PointOutcome(
                        key, settle_status,
                        error="supervision loop exited early",
                        attempts=attempts[key],
                    )
            # Wind the pool down without letting a hung worker wedge us.
            # Every task is settled by now, so a worker still busy is
            # computing a stale answer (hedge twin, interrupted point):
            # kill it outright instead of waiting out the join deadline.
            for w in workers:
                if w.proc.is_alive() and w.current is None:
                    task_q.put(None)
                elif w.proc.is_alive():
                    kill_worker(w)
            deadline = time.monotonic() + 2.0  # lint-sim: ignore[RPV002] -- harness shutdown, not sim state
            for w in workers:
                w.proc.join(timeout=max(0.0, deadline - time.monotonic()))  # lint-sim: ignore[RPV002] -- harness shutdown, not sim state
                if w.proc.is_alive():
                    kill_worker(w)
            task_q.cancel_join_thread()
            result_q.cancel_join_thread()
            task_q.close()
            result_q.close()

        report.elapsed_s = time.monotonic() - t0  # lint-sim: ignore[RPV002] -- harness timing, not sim state
        return report


def kill_current_worker() -> None:  # pragma: no cover - used by tests' runners
    """SIGKILL the calling worker process (crash-drill helper)."""
    os.kill(os.getpid(), 9)
