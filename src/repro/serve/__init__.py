"""The resilient sweep service (:mod:`repro.serve`).

Turns the experiment runner into a serving layer: sweep jobs are
canonicalized into content-addressed simulation points, deduplicated,
answered from a checksummed on-disk result cache when possible, and
computed by a supervised pool of worker processes when not.  The whole
pipeline is crash-tolerant end to end -- workers may be SIGKILLed,
cache entries may be corrupted, and the service itself may be SIGTERMed
mid-job; a restart resumes from the cache and loses at most the
in-flight points.

Layers (each importable on its own):

* :mod:`repro.serve.canonical` -- canonical JSON form + SHA-256 config
  hashing (key-order / whitespace / default-materialization invariant);
* :mod:`repro.serve.cache` -- content-addressed result cache with
  per-entry integrity checksums, atomic writes and corruption
  quarantine;
* :mod:`repro.serve.job` -- :class:`PointSpec` / :class:`JobSpec` /
  :class:`JobManifest` records and their (de)serialization;
* :mod:`repro.serve.supervisor` -- heartbeat-supervised worker pool
  with retry/backoff, poison-point quarantine and hedged re-dispatch;
* :mod:`repro.serve.service` -- the asyncio job service tying it all
  together (``python -m repro.serve`` is the CLI front).
"""

from repro.serve.cache import CacheStats, ResultCache, open_cache
from repro.serve.canonical import canonical_json, canonical_value, config_hash
from repro.serve.compute import run_point_spec
from repro.serve.export import manifest_rows, write_manifest_csv
from repro.serve.job import FaultSpec, JobManifest, JobSpec, PointSpec
from repro.serve.service import SweepService
from repro.serve.supervisor import (
    PointOutcome,
    SupervisePolicy,
    SupervisorReport,
    WorkerSupervisor,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "open_cache",
    "canonical_json",
    "canonical_value",
    "config_hash",
    "run_point_spec",
    "manifest_rows",
    "write_manifest_csv",
    "FaultSpec",
    "JobManifest",
    "JobSpec",
    "PointSpec",
    "SweepService",
    "PointOutcome",
    "SupervisePolicy",
    "SupervisorReport",
    "WorkerSupervisor",
]
