"""Canonical configuration form and content-addressed hashing.

A simulation point is a pure function of its configuration, so two
requests for the same ``(network, pattern, load, seed, engine, faults,
stability)`` tuple must map to the same cache entry no matter how the
request was spelled.  :func:`canonical_value` normalizes any
configuration object (dataclasses, mappings, sequences, scalars) into
a plain JSON-able structure; :func:`canonical_json` renders it with
sorted keys and fixed separators; :func:`config_hash` is the SHA-256 of
those bytes.

The invariants tests rely on (``tests/serve/test_canonical.py``):

* **key order** -- mappings hash identically regardless of insertion
  order (``sort_keys=True``);
* **whitespace / formatting** -- hashing happens after parsing, on the
  canonical dump (fixed ``separators``, no indentation);
* **default materialization** -- dataclasses are expanded field by
  field, so ``NetworkConfig("dmin")`` and
  ``NetworkConfig("dmin", dilation=2, topology="cube")`` canonicalize
  to the same mapping;
* **cross-process stability** -- SHA-256 over a deterministic byte
  string; ``PYTHONHASHSEED`` never enters the picture.

Floats are rendered by :mod:`json` via ``repr`` (shortest round-trip),
which is deterministic across processes and platforms for equal
values.  ``-0.0`` is normalized to ``0.0``.  NaN/Inf are rejected in
*configuration* hashing (a config containing them is a bug) but
allowed in *payload* serialization (:func:`payload_json`), because
measurements legitimately carry NaN sentinels (e.g. an undefined CI
half-width).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping


def canonical_value(obj: Any) -> Any:
    """Recursively normalize ``obj`` into plain JSON-able structure.

    Dataclasses become dicts of *all* their fields (defaults
    materialized), mappings become dicts with stringified keys, tuples
    and lists become lists, ``-0.0`` becomes ``0.0``.  Anything that is
    not a scalar / mapping / sequence / dataclass raises ``TypeError``
    so un-hashable configuration never silently degrades to ``repr``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical_value(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(k): canonical_value(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_value(v) for v in obj]
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        if obj == 0.0:
            return 0.0  # normalize -0.0
        return obj
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} ({obj!r}); "
        "use scalars, mappings, sequences or dataclasses"
    )


def canonical_json(obj: Any, *, allow_nan: bool = False) -> str:
    """The canonical JSON rendering of ``obj`` (sorted keys, no spaces).

    Two configurations hash equal iff their canonical JSON is equal.
    """
    return json.dumps(
        canonical_value(obj),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=allow_nan,
    )


def payload_json(obj: Any) -> str:
    """Canonical JSON for *result payloads* (NaN/Inf permitted).

    Cache integrity checksums and the byte-equality determinism tests
    are computed over this rendering, so a cached record is byte-equal
    to a fresh recomputation iff the underlying values are identical.
    """
    return canonical_json(obj, allow_nan=True)


def config_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``obj``.

    This is the content address of a simulation point: equal configs
    (after canonicalization) always collide, distinct configs never do
    in practice (256-bit digest).
    """
    try:
        text = canonical_json(obj, allow_nan=False)
    except ValueError as exc:  # NaN / Inf in a config
        raise ValueError(f"non-finite value in configuration: {exc}") from exc
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def checksum(text: str) -> str:
    """SHA-256 hex digest of a canonical JSON string (integrity check)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
