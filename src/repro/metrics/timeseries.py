"""Interval time series of a running engine's throughput and backlog.

A :class:`ThroughputSampler` is a kernel process that snapshots an
engine every ``interval`` cycles, yielding per-interval delivered-flit
rates and queue depths.  This is the tool for *transient* phenomena the
steady-state window hides -- chiefly hot-spot tree saturation, where
early intervals deliver far above the structural cap before the
saturation tree builds up (the likely source of the paper's high
Fig. 19 numbers; see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.sim.core import Environment
from repro.wormhole.engine import WormholeEngine


@dataclass(frozen=True)
class IntervalSample:
    """One sampling interval's aggregates."""

    start: float
    end: float
    delivered_flits: int
    offered_flits: int
    in_flight: int        # packets in the network at interval end
    total_queued: int     # messages in source queues at interval end

    def __post_init__(self) -> None:
        # Out-of-order (or zero-width) timestamps would silently produce
        # negative/undefined rates downstream; reject them at the source.
        if self.end <= self.start:
            raise ValueError(
                f"interval timestamps out of order: start={self.start} "
                f"end={self.end}"
            )

    @property
    def throughput(self) -> float:
        """Delivered flits per node-cycle needs N; see sampler method."""
        return self.delivered_flits / (self.end - self.start)


class ThroughputSampler:
    """Samples an engine every ``interval`` cycles.

    Start with :meth:`install` (before or after ``engine.start()``);
    samples accumulate in :attr:`samples`.
    """

    def __init__(self, engine: WormholeEngine, interval: float = 500.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.interval = interval
        self.samples: list[IntervalSample] = []
        self._installed = False

    def install(self, env: Environment) -> None:
        """Start the sampling process (once per sampler)."""
        if self._installed:
            raise RuntimeError("sampler already installed")
        self._installed = True
        env.process(self._run(env), name="throughput-sampler")

    def _run(self, env: Environment) -> "Iterator[object]":
        last_delivered = self.engine.stats.delivered_flits
        last_offered = self.engine.stats.offered_flits
        while True:
            start = env.now
            yield env.timeout(self.interval)
            delivered = self.engine.stats.delivered_flits
            offered = self.engine.stats.offered_flits
            queued = sum(
                len(q) for q in self.engine.queues
            )
            self.samples.append(
                IntervalSample(
                    start=start,
                    end=env.now,
                    delivered_flits=delivered - last_delivered,
                    offered_flits=offered - last_offered,
                    in_flight=self.engine.in_flight,
                    total_queued=queued,
                )
            )
            last_delivered, last_offered = delivered, offered

    def throughput_fractions(self) -> list[float]:
        """Per-interval delivered flits per node-cycle (0..1)."""
        n = self.engine.network.N
        return [s.delivered_flits / (n * (s.end - s.start)) for s in self.samples]

    def backlog_series(self) -> list[int]:
        """Per-interval total source-queue depth (tree-saturation curve)."""
        return [s.total_queued for s in self.samples]
