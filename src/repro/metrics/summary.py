"""One summary dataclass + one column registry for the stats paths.

Before this module, latency statistics were computed in
``metrics/collector.py`` and then *named again* in three places --
``experiments/report.py`` (table headers), ``experiments/export.py``
(CSV field list + type conversions), and the JSON exporter.  Adding one
field meant editing four files in lockstep.

Now:

* :class:`LatencySummary` is the single place latency aggregates
  (mean/p50/p95/p99/max + CI half-width) are computed -- from raw
  values (exact, linear-interpolated percentiles) or from a merged
  :class:`repro.obs.histogram.LatencyHistogram` (bounded-error
  percentiles for production-scale / parallel runs);
* :data:`MEASUREMENT_COLUMNS` is the single registry of exported
  :class:`~repro.metrics.collector.Measurement` columns.  The CSV
  writer, the CSV reader's type conversions, the JSON exporter and the
  report table all iterate this list, so a new column is added in
  exactly one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.metrics.stats import batch_means, mean, percentile

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import Measurement
    from repro.obs.histogram import LatencyHistogram

_NAN = float("nan")


@dataclass(frozen=True)
class LatencySummary:
    """Latency aggregates of one measurement window (cycles)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    ci_half: float  # 95% CI half-width (batch means); nan if < 20 samples

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(0, _NAN, _NAN, _NAN, _NAN, _NAN, _NAN)

    @classmethod
    def from_values(
        cls, values: Sequence[float], batches: int = 10
    ) -> "LatencySummary":
        """Exact summary of in-memory samples (sorted once)."""
        if not values:
            return cls.empty()
        ordered = sorted(values)
        if len(ordered) >= 2 * batches:
            _, ci = batch_means(values, batches=batches)
        else:
            ci = _NAN
        return cls(
            count=len(ordered),
            mean=mean(ordered),
            p50=percentile(ordered, 50),
            p95=percentile(ordered, 95),
            p99=percentile(ordered, 99),
            max=ordered[-1],
            ci_half=ci,
        )

    @classmethod
    def from_histogram(
        cls, hist: "LatencyHistogram", ci_half: float = _NAN
    ) -> "LatencySummary":
        """Bounded-relative-error summary of an HDR histogram.

        The histogram keeps the exact sum and extrema, so ``mean`` and
        ``max`` are exact; percentiles carry the histogram's
        ``2**-sub_bucket_bits`` relative error.  Use for merged
        parallel-sweep points where raw samples were never centralized.
        """
        if hist.count == 0:
            return cls.empty()
        return cls(
            count=hist.count,
            mean=hist.mean,
            p50=hist.percentile(50),
            p95=hist.percentile(95),
            p99=hist.percentile(99),
            max=hist.max_value,
            ci_half=ci_half,
        )

    def to_dict(self) -> dict:
        def clean(v: float) -> "float | None":
            return None if isinstance(v, float) and math.isnan(v) else v

        return {
            "count": self.count,
            "mean": clean(self.mean),
            "p50": clean(self.p50),
            "p95": clean(self.p95),
            "p99": clean(self.p99),
            "max": clean(self.max),
            "ci_half": clean(self.ci_half),
        }


# --------------------------------------------------------------- registry


@dataclass(frozen=True)
class ColumnSpec:
    """One exported Measurement column, declared exactly once.

    ``attr`` is the :class:`~repro.metrics.collector.Measurement`
    attribute (or property) the value comes from; ``kind`` drives CSV
    round-trip conversion; the ``report_*`` fields place the column in
    the text table of :func:`repro.experiments.report.render_sweep`
    (``report_header=None`` keeps it CSV/JSON-only).
    """

    name: str                 # row key / CSV column name
    attr: str                 # Measurement attribute or property
    kind: str                 # "float" | "int" | "bool"
    report_header: str | None = None
    report_width: int = 9
    report_fmt: str = ".1f"   # format spec for the table cell
    fault_only: bool = False  # shown only when the series degraded
    transport_only: bool = False  # shown only when a transport ran

    def __post_init__(self) -> None:
        if self.kind not in ("float", "int", "bool"):
            raise ValueError(f"unknown column kind {self.kind!r}")

    def convert(self, raw: str) -> "float | int | bool":
        """Parse a CSV cell back to the Python value."""
        if self.kind == "float":
            return float(raw) if raw not in ("", "None") else _NAN
        if self.kind == "int":
            return int(raw or 0)
        return raw == "True"

    def cell(self, m: "Measurement") -> str:
        """Render the aligned text-table cell for one measurement."""
        value = getattr(m, self.attr)
        if self.kind == "bool":
            return f"{'yes' if value else 'NO':>{self.report_width}}"
        if isinstance(value, float) and math.isnan(value):
            return f"{'-':>{self.report_width}}"
        return f"{value:{self.report_width}{self.report_fmt}}"


#: Every exported Measurement column, in CSV order.  Extend HERE (only).
MEASUREMENT_COLUMNS: tuple[ColumnSpec, ...] = (
    ColumnSpec("throughput_percent", "throughput_percent", "float",
               report_header="thr %", report_width=7, report_fmt=".2f"),
    ColumnSpec("avg_latency", "avg_latency", "float",
               report_header="avg lat", report_width=9, report_fmt=".1f"),
    ColumnSpec("avg_network_latency", "avg_network_latency", "float",
               report_header="net lat", report_width=9, report_fmt=".1f"),
    ColumnSpec("p50_latency", "p50_latency", "float",
               report_header="p50", report_width=8, report_fmt=".0f"),
    ColumnSpec("p95_latency", "p95_latency", "float",
               report_header="p95", report_width=8, report_fmt=".0f"),
    ColumnSpec("p99_latency", "p99_latency", "float",
               report_header="p99", report_width=8, report_fmt=".0f"),
    ColumnSpec("max_latency", "max_latency", "float"),
    ColumnSpec("latency_ci_half", "latency_ci_half", "float"),
    ColumnSpec("delivered_packets", "delivered_packets", "int",
               report_header="pkts", report_width=6, report_fmt="d"),
    ColumnSpec("delivered_flits", "delivered_flits", "int"),
    ColumnSpec("offered_packets", "offered_packets", "int"),
    ColumnSpec("max_queue_len", "max_queue_len", "int",
               report_header="maxq", report_width=5, report_fmt="d"),
    ColumnSpec("sustainable", "sustainable", "bool",
               report_header="sust", report_width=4),
    ColumnSpec("cycles", "cycles", "float"),
    ColumnSpec("failed_packets", "failed_packets", "int", fault_only=True,
               report_header="fail", report_width=5, report_fmt="d"),
    ColumnSpec("retried_packets", "retried_packets", "int", fault_only=True,
               report_header="retry", report_width=5, report_fmt="d"),
    ColumnSpec("dropped_packets", "dropped_packets", "int", fault_only=True,
               report_header="drop", report_width=5, report_fmt="d"),
    ColumnSpec("shed_packets", "shed_packets", "int", fault_only=True,
               report_header="shed", report_width=5, report_fmt="d"),
    ColumnSpec("throttled_packets", "throttled_packets", "int",
               fault_only=True,
               report_header="thrtl", report_width=5, report_fmt="d"),
    ColumnSpec("stall_aborted_packets", "stall_aborted_packets", "int",
               fault_only=True,
               report_header="stall", report_width=5, report_fmt="d"),
    ColumnSpec("goodput_percent", "goodput_percent", "float",
               transport_only=True,
               report_header="good %", report_width=7, report_fmt=".2f"),
    ColumnSpec("retransmitted_packets", "retransmitted_packets", "int",
               transport_only=True,
               report_header="retx", report_width=5, report_fmt="d"),
    ColumnSpec("rto_fires", "rto_fires", "int", transport_only=True,
               report_header="rto", report_width=5, report_fmt="d"),
    ColumnSpec("dup_acks", "dup_acks", "int", transport_only=True,
               report_header="dup", report_width=5, report_fmt="d"),
    ColumnSpec("flows_aborted", "flows_aborted", "int", transport_only=True,
               report_header="fabrt", report_width=5, report_fmt="d"),
    ColumnSpec("ack_packets", "ack_packets", "int"),
    ColumnSpec("goodput_flits", "goodput_flits", "int"),
)


def measurement_row(m: "Measurement") -> dict:
    """Measurement -> {column name: value} for every registry column."""
    return {c.name: getattr(m, c.attr) for c in MEASUREMENT_COLUMNS}


def report_columns(degraded: bool, transport: bool = False) -> list[ColumnSpec]:
    """Registry columns shown in the text table (in order)."""
    return [
        c
        for c in MEASUREMENT_COLUMNS
        if c.report_header is not None
        and (degraded or not c.fault_only)
        and (transport or not c.transport_only)
    ]
