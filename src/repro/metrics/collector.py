"""Measurement windows over a running engine.

Usage::

    window = MeasurementWindow(engine)
    ...  # run warmup cycles
    window.begin()
    ...  # run measurement cycles
    m = window.finish()
    print(m.avg_latency, m.throughput_percent, m.sustainable)

The window resets the engine's counters at :meth:`begin` so warmup
traffic never contaminates the measurement, matching the standard
steady-state methodology the paper's experiments imply.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.metrics.summary import LatencySummary
from repro.wormhole.engine import FLITS_PER_MICROSECOND, WormholeEngine

#: "The throughput is considered sustainable when the number of messages
#: queued at their source nodes does not exceed some small limit, 100 in
#: the simulations." (Section 5)
SUSTAINABILITY_QUEUE_LIMIT = 100


@dataclass(frozen=True)
class Measurement:
    """Steady-state metrics over one measurement window."""

    cycles: float
    delivered_packets: int
    delivered_flits: int
    offered_packets: int
    offered_flits: int
    avg_latency: float            # cycles, incl. source queueing
    avg_network_latency: float    # cycles, excl. source queueing
    p95_latency: float
    latency_ci_half: float        # 95% CI half-width (batch means)
    throughput: float             # flits per node-cycle, 0..1
    max_queue_len: int
    sustainable: bool
    # Degradation accounting (fault injection / recovery; all zero in
    # fault-free runs, so they default for backward compatibility).
    failed_packets: int = 0       # aborted worms + dead-injection kills
    retried_packets: int = 0      # re-injections by a recovery layer
    dropped_packets: int = 0      # messages whose retries were exhausted
    # Overload accounting (bounded admission + progress watchdog; all
    # zero when neither is installed, so they default likewise).
    shed_packets: int = 0         # deliberate admission drops
    throttled_packets: int = 0    # offers refused by a blocking policy
    stall_aborted_packets: int = 0  # watchdog timeout-aborts (in failed)
    # End-to-end transport accounting (repro.transport; all zero when
    # no transport is installed, so they default likewise).
    retransmitted_packets: int = 0  # segment re-injections by transport
    rto_fires: int = 0            # retransmission timers that expired
    dup_acks: int = 0             # duplicate data arrivals suppressed
    flows_aborted: int = 0        # flows that exhausted max_attempts
    ack_packets: int = 0          # ack packets (also in delivered)
    goodput_flits: int = 0        # first-time end-to-end payload flits
    # Distribution tail (added with the observability subsystem; nan
    # defaults keep old checkpoints and callers constructible).
    p50_latency: float = float("nan")
    p99_latency: float = float("nan")
    max_latency: float = float("nan")

    @property
    def throughput_percent(self) -> float:
        """The paper's unit: % of maximum theoretical throughput."""
        return 100.0 * self.throughput

    @property
    def avg_latency_us(self) -> float:
        """Latency in the paper's microseconds (20 flits/us channels)."""
        return self.avg_latency / FLITS_PER_MICROSECOND

    @property
    def degraded(self) -> bool:
        """True when any packet failed, retried, dropped, shed or
        throttled in the window (i.e. not every offered message sailed
        straight through)."""
        return bool(
            self.failed_packets
            or self.retried_packets
            or self.dropped_packets
            or self.shed_packets
            or self.throttled_packets
            or self.stall_aborted_packets
            or self.retransmitted_packets
            or self.flows_aborted
        )

    @property
    def transport_active(self) -> bool:
        """True when an end-to-end transport touched this window."""
        return bool(
            self.retransmitted_packets
            or self.rto_fires
            or self.dup_acks
            or self.flows_aborted
            or self.ack_packets
            or self.goodput_flits
        )

    @property
    def goodput(self) -> float:
        """First-time end-to-end payload flits per node-cycle.

        Excludes duplicate data and ack traffic; equals
        :attr:`throughput` scaled by the goodput fraction of raw
        delivered flits.  ``nan`` when nothing was delivered.
        """
        if self.delivered_flits == 0:
            return float("nan")
        return self.throughput * (self.goodput_flits / self.delivered_flits)

    @property
    def goodput_percent(self) -> float:
        """Goodput in the paper's % -of-capacity unit."""
        return 100.0 * self.goodput

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of injection attempts in the window."""
        attempts = self.delivered_packets + self.failed_packets
        if attempts == 0:
            return float("nan")
        return self.delivered_packets / attempts

    def __str__(self) -> str:
        status = "" if self.sustainable else "  [UNSUSTAINABLE]"
        faults = (
            f"  fail={self.failed_packets}"
            f" retry={self.retried_packets}"
            f" drop={self.dropped_packets}"
            if self.degraded
            else ""
        )
        return (
            f"thr={self.throughput_percent:5.1f}%  "
            f"lat={self.avg_latency:8.1f}cyc (net {self.avg_network_latency:.1f}, "
            f"p95 {self.p95_latency:.0f}, ±{self.latency_ci_half:.1f})  "
            f"pkts={self.delivered_packets}{faults}{status}"
        )


def measurement_to_dict(m: Measurement) -> dict:
    """Field mapping of a measurement (checkpoint / cache persistence)."""
    return dataclasses.asdict(m)


def measurement_from_dict(d: dict) -> Measurement:
    """Rebuild a measurement persisted by :func:`measurement_to_dict`.

    Raises ``TypeError`` on unknown fields (a torn or foreign record),
    which the crash-tolerant loaders convert into quarantine-and-redo.
    """
    return Measurement(**d)


class MeasurementWindow:
    """Collects one warmup-then-measure window from an engine."""

    def __init__(
        self,
        engine: WormholeEngine,
        queue_limit: int = SUSTAINABILITY_QUEUE_LIMIT,
    ) -> None:
        self.engine = engine
        self.queue_limit = queue_limit
        self._started_at: Optional[float] = None

    def begin(self) -> None:
        """Discard warmup statistics and open the window."""
        self.engine.stats.reset_window(self.engine.env.now)
        self._started_at = self.engine.env.now

    def finish(self) -> Measurement:
        """Close the window and summarize it."""
        if self._started_at is None:
            raise RuntimeError("begin() must be called before finish()")
        stats = self.engine.stats
        now = self.engine.env.now
        cycles = now - self._started_at
        if cycles <= 0:
            raise RuntimeError("measurement window has zero length")

        # One summary object computes every latency aggregate (see
        # repro.metrics.summary -- percentile fields are added there,
        # in exactly one place).
        lat = LatencySummary.from_values([r.latency for r in stats.records])
        net_latencies = [r.network_latency for r in stats.records]
        avg_net = (
            sum(net_latencies) / len(net_latencies)
            if net_latencies
            else float("nan")
        )

        return Measurement(
            cycles=cycles,
            delivered_packets=stats.delivered_packets,
            delivered_flits=stats.delivered_flits,
            offered_packets=stats.offered_packets,
            offered_flits=stats.offered_flits,
            avg_latency=lat.mean,
            avg_network_latency=avg_net,
            p95_latency=lat.p95,
            latency_ci_half=lat.ci_half,
            throughput=stats.delivered_flits
            / (self.engine.network.N * cycles),
            max_queue_len=stats.max_queue_len,
            sustainable=stats.max_queue_len <= self.queue_limit,
            failed_packets=stats.failed_packets,
            retried_packets=stats.retried_packets,
            dropped_packets=stats.dropped_packets,
            shed_packets=stats.shed_packets,
            throttled_packets=stats.throttled_packets,
            stall_aborted_packets=stats.stall_aborted_packets,
            retransmitted_packets=stats.retransmitted_packets,
            rto_fires=stats.rto_fires,
            dup_acks=stats.dup_acks,
            flows_aborted=stats.flows_aborted,
            ack_packets=stats.ack_packets,
            goodput_flits=stats.goodput_flits,
            p50_latency=lat.p50,
            p99_latency=lat.p99,
            max_latency=lat.max,
        )
