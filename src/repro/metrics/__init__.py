"""Performance measurement: latency, throughput and sustainability.

Implements the paper's two headline metrics (Section 5):

* **average communication latency** -- from the source making a message
  available to the destination consuming its tail flit (source queueing
  included);
* **sustained network throughput** -- flits delivered per node-cycle as
  a percentage of the theoretical maximum (every delivery channel
  streaming continuously), *sustainable* only while no source queue
  exceeds 100 messages.

:mod:`repro.metrics.stats` holds the numeric helpers (means,
percentiles, batch-means confidence intervals);
:mod:`repro.metrics.collector` turns an engine's measurement window into
a :class:`~repro.metrics.collector.Measurement` record.
"""

from repro.metrics.collector import (
    SUSTAINABILITY_QUEUE_LIMIT,
    Measurement,
    MeasurementWindow,
)
from repro.metrics.stats import batch_means, mean, percentile, stddev
from repro.metrics.summary import (
    MEASUREMENT_COLUMNS,
    ColumnSpec,
    LatencySummary,
    measurement_row,
    report_columns,
)
from repro.metrics.timeseries import IntervalSample, ThroughputSampler

__all__ = [
    "ColumnSpec",
    "IntervalSample",
    "LatencySummary",
    "MEASUREMENT_COLUMNS",
    "Measurement",
    "MeasurementWindow",
    "SUSTAINABILITY_QUEUE_LIMIT",
    "ThroughputSampler",
    "batch_means",
    "mean",
    "measurement_row",
    "percentile",
    "report_columns",
    "stddev",
]
