"""Numeric helpers for simulation output analysis.

Plain functions over sequences of floats; no numpy dependency here so
the collector stays importable in minimal environments (numpy is used
by the analysis extras instead).
"""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0.0 for a single value."""
    n = len(values)
    if n == 0:
        raise ValueError("stddev of empty sequence")
    if n == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    value = ordered[lo] * (1 - frac) + ordered[hi] * frac
    # Float interpolation can overshoot the bracketing order statistics
    # by one ulp (e.g. frac ~ 1); clamp so p99 never exceeds the max.
    return min(max(value, ordered[lo]), ordered[hi])


#: t-distribution 97.5% quantiles for small degrees of freedom; beyond
#: the table the normal approximation (1.96) is close enough.
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    15: 2.131, 20: 2.086, 30: 2.042,
}


def _t_quantile(dof: int) -> float:
    if dof in _T_975:
        return _T_975[dof]
    for known in sorted(_T_975, reverse=True):
        if dof >= known:
            return _T_975[known]
    return _T_975[1]  # pragma: no cover


def batch_means(
    values: Sequence[float], batches: int = 10
) -> tuple[float, float]:
    """Mean and 95% confidence half-width via the batch-means method.

    Consecutive observations are grouped into ``batches`` equal batches;
    the batch averages are treated as (approximately) independent.  The
    standard remedy for autocorrelated steady-state simulation output.
    """
    if batches < 2:
        raise ValueError("need at least two batches")
    if len(values) < batches:
        raise ValueError(
            f"need at least {batches} observations, got {len(values)}"
        )
    size = len(values) // batches
    batch_avgs = [
        mean(values[i * size : (i + 1) * size]) for i in range(batches)
    ]
    m = mean(batch_avgs)
    s = stddev(batch_avgs)
    half = _t_quantile(batches - 1) * s / math.sqrt(batches)
    return m, half
