"""The simulation environment: clock, event heap, and run loop."""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Generator, Iterable, Optional, Union

from repro.sim.events import (
    PRIORITY_NORMAL,
    AllOf,
    AnyOf,
    Event,
    Process,
    ProcessCrash,
    Timeout,
)


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at an event."""


Infinity = float("inf")


class Environment:
    """Execution environment of a simulation.

    Keeps the current simulation time (:attr:`now`) and a priority queue
    of scheduled events.  Time advances by processing events in
    ``(time, priority, insertion order)`` order.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default 0).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = initial_time
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        # Always-on kernel counters (plain increments; read by
        # :class:`repro.obs.profiler.KernelProfiler`).
        #: Total events pushed onto the schedule.
        self.events_scheduled = 0
        #: Total events popped and dispatched by :meth:`step`.
        self.events_fired = 0
        #: High-water mark of the pending-event heap.
        self.max_heap_depth = 0

    # -- clock and introspection ------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else Infinity

    def __len__(self) -> int:
        """Number of scheduled (not yet processed) events."""
        return len(self._queue)

    # -- scheduling --------------------------------------------------------

    def schedule(
        self, event: Event, priority: int = PRIORITY_NORMAL, delay: float = 0.0
    ) -> None:
        """Schedule ``event`` to be processed ``delay`` time units from now."""
        heappush(self._queue, (self._now + delay, priority, next(self._eid), event))
        self.events_scheduled += 1
        depth = len(self._queue)
        if depth > self.max_heap_depth:
            self.max_heap_depth = depth

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event occurring ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering once all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering once any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- run loop -----------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events are left, and
        :class:`ProcessCrash` if the event failed with nobody handling it.
        """
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self.events_fired += 1

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event.defused:
            exc = event._value
            raise ProcessCrash(
                f"unhandled failure in {event!r}: {exc!r}"
            ) from exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run until ``until``.

        * ``None`` -- run until no events remain.
        * a number -- run until the clock reaches that time.
        * an :class:`Event` -- run until the event is processed and
          return its value (re-raising its exception on failure).
        """
        stop: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop = until
            if stop.callbacks is None:
                # Already processed: nothing to run.
                if stop._ok:
                    return stop._value
                raise stop._value
            stop.callbacks.append(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(f"until ({at}) must not be before now ({self._now})")
            stop = Event(self)
            stop._ok = True
            stop._value = None
            # Urgent priority: stop before any same-time normal event.
            heappush(self._queue, (at, -1, next(self._eid), stop))
            self.events_scheduled += 1
            if len(self._queue) > self.max_heap_depth:
                self.max_heap_depth = len(self._queue)
            stop.callbacks.append(self._stop_callback)

        try:
            while True:
                self.step()
        except StopSimulation:
            assert stop is not None
            if stop._ok:
                return stop._value
            raise stop._value from None
        except EmptySchedule:
            if stop is not None and not stop.processed:
                raise RuntimeError(
                    f"no scheduled events left but {stop!r} was not triggered"
                ) from None
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation(event)
