"""The simulation environment: clock, event scheduler, and run loop.

Two interchangeable schedulers back :class:`Environment`:

``"heap"``
    The classic single binary heap ordered by ``(time, priority,
    insertion order)``.  Every push/pop costs O(log n).  This is the
    reference scheduler: simple, obviously correct, and kept verbatim
    for differential testing.

``"calendar"`` (default)
    A calendar-queue hybrid.  Cycle simulations schedule almost every
    event at an *integral* timestamp (the engine clock ticks once per
    cycle, idle fast-forwards land on whole cycles).  Those events go
    into a ring of :data:`RING_SLOTS` buckets -- one bucket per
    consecutive integral timestamp -- so the dominant unit-delay events
    are pushed and popped in O(1).  Events with fractional timestamps
    (e.g. exponential inter-arrival draws) or timestamps outside the
    ring window fall back to a small binary heap.  :meth:`step` merges
    the two sources by ``(time, priority, insertion order)``, so the
    dispatch order is **bit-identical** to the heap scheduler: both
    orders are the unique total order over the shared insertion
    counter.

The choice never changes observable simulation behaviour -- only the
cost of scheduling.  ``tests/differential`` asserts this exhaustively.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Generator, Iterable, Optional, Union

from repro.sim.events import (
    PRIORITY_NORMAL,
    AllOf,
    AnyOf,
    Event,
    Process,
    ProcessCrash,
    Timeout,
)


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at an event."""


Infinity = float("inf")

#: Slots in the calendar ring (power of two).  The ring covers one
#: window of consecutive integral timestamps ``[base, base + RING_SLOTS)``;
#: anything outside falls back to the heap, so the size is a performance
#: knob, not a correctness bound.
RING_SLOTS = 1024
_RING_MASK = RING_SLOTS - 1

#: Recognised scheduler names (see module docstring).
SCHEDULERS = ("calendar", "heap")


class Environment:
    """Execution environment of a simulation.

    Keeps the current simulation time (:attr:`now`) and a priority queue
    of scheduled events.  Time advances by processing events in
    ``(time, priority, insertion order)`` order.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default 0).
    scheduler:
        ``"calendar"`` (default) uses the O(1) bucket ring for integral
        timestamps with a heap fallback; ``"heap"`` uses only the
        binary heap.  Event dispatch order is identical either way.
    """

    def __init__(
        self, initial_time: float = 0.0, scheduler: str = "calendar"
    ) -> None:
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}"
            )
        self._initial_time = initial_time
        self._now = initial_time
        self.scheduler = scheduler
        self._calendar = scheduler == "calendar"
        #: Heap fallback: ``(time, priority, eid, event)`` tuples.
        self._queue: list[tuple[float, int, int, Event]] = []
        #: Bucket ring: one ``(priority, eid, event)`` heap per integral
        #: timestamp in the current window (calendar mode only).
        self._ring: list[list[tuple[int, int, Event]]] = (
            [[] for _ in range(RING_SLOTS)] if self._calendar else []
        )
        self._ring_base = int(initial_time)
        self._ring_count = 0
        self._eid = count()
        self._active_process: Optional[Process] = None
        # Always-on kernel counters (plain increments; read by
        # :class:`repro.obs.profiler.KernelProfiler`).
        #: Total events pushed onto the schedule.
        self.events_scheduled = 0
        #: Total events popped and dispatched by :meth:`step`.
        self.events_fired = 0
        #: High-water mark of the pending-event count (ring + heap).
        self.max_heap_depth = 0

    # -- clock and introspection ------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        heap_t = self._queue[0][0] if self._queue else Infinity
        if self._ring_count:
            ring = self._ring
            base = self._ring_base
            while not ring[base & _RING_MASK]:
                base += 1
            self._ring_base = base  # skipped slots were empty; safe
            if base < heap_t:
                return float(base)
        return heap_t

    def __len__(self) -> int:
        """Number of scheduled (not yet processed) events."""
        return self._ring_count + len(self._queue)

    def advance_to(self, when: float) -> None:
        """Advance the clock to ``when`` without dispatching an event.

        The batched-wake fast path: a clock process that has proven --
        via :meth:`peek` -- that no event is scheduled at or before
        ``when`` may move time forward directly instead of scheduling
        a wake event and round-tripping through :meth:`step`.  The
        caller owns that proof; dispatch order is unaffected because
        the skipped wake event would have been the only one in the
        window.
        """
        if when < self._now:
            raise ValueError(
                f"when ({when}) must not be before now ({self._now})"
            )
        self._now = when

    # -- scheduling --------------------------------------------------------

    def schedule(
        self, event: Event, priority: int = PRIORITY_NORMAL, delay: float = 0.0
    ) -> None:
        """Schedule ``event`` to be processed ``delay`` time units from now."""
        self._schedule_at(self._now + delay, priority, event)

    def _schedule_at(self, t: float, priority: int, event: Event) -> None:
        """Push ``event`` at absolute time ``t`` (scheduler-dispatching)."""
        self.events_scheduled += 1
        if self._calendar:
            ti = int(t)
            if ti == t:
                base = self._ring_base
                if self._ring_count == 0 and ti >= base:
                    # Ring empty: re-anchor the window at this timestamp
                    # so long idle gaps never force the heap fallback.
                    self._ring_base = base = ti
                if base <= ti < base + RING_SLOTS:
                    heappush(
                        self._ring[ti & _RING_MASK],
                        (priority, next(self._eid), event),
                    )
                    self._ring_count += 1
                    depth = self._ring_count + len(self._queue)
                    if depth > self.max_heap_depth:
                        self.max_heap_depth = depth
                    return
        heappush(self._queue, (t, priority, next(self._eid), event))
        depth = self._ring_count + len(self._queue)
        if depth > self.max_heap_depth:
            self.max_heap_depth = depth

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event occurring ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Event:
        """An event occurring at the *absolute* time ``when``.

        The batched wake primitive: a clock that skips ``k`` provably
        event-free cycles must land exactly on the tick-grid timestamp
        ``t + k`` of its chained unit timeouts.  ``timeout(when - now)``
        schedules at ``now + (when - now)``, which for fractional
        ``now`` need not equal ``when`` in floating point; scheduling
        the absolute value sidesteps the round trip entirely.
        """
        if when < self._now:
            raise ValueError(
                f"when ({when}) must not be before now ({self._now})"
            )
        event = Event(self)
        event._ok = True
        event._value = value
        self._schedule_at(when, PRIORITY_NORMAL, event)
        return event

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering once all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering once any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- run loop -----------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events are left, and
        :class:`ProcessCrash` if the event failed with nobody handling it.
        """
        if self._ring_count:
            ring = self._ring
            base = self._ring_base
            slot = ring[base & _RING_MASK]
            while not slot:
                base += 1
                slot = ring[base & _RING_MASK]
            self._ring_base = base
            queue = self._queue
            take_heap = False
            if queue:
                head = queue[0]
                ht = head[0]
                # Merge by (time, priority, eid): strictly earlier heap
                # time wins; at equal times the smaller (priority, eid)
                # pair wins -- exactly the single-heap total order.
                if ht < base or (ht == base and head[1:3] < slot[0][:2]):
                    take_heap = True
            if take_heap:
                self._now, _, _, event = heappop(queue)
            else:
                _, _, event = heappop(slot)
                self._ring_count -= 1
                self._now = float(base)
        else:
            try:
                self._now, _, _, event = heappop(self._queue)
            except IndexError:
                raise EmptySchedule() from None
        self.events_fired += 1

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event.defused:
            exc = event._value
            raise ProcessCrash(
                f"unhandled failure in {event!r}: {exc!r}"
            ) from exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run until ``until``.

        * ``None`` -- run until no events remain.
        * a number -- run until the clock reaches that time.
        * an :class:`Event` -- run until the event is processed and
          return its value (re-raising its exception on failure).
        """
        stop: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop = until
            if stop.callbacks is None:
                # Already processed: nothing to run.
                if stop._ok:
                    return stop._value
                raise stop._value
            stop.callbacks.append(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(f"until ({at}) must not be before now ({self._now})")
            stop = Event(self)
            stop._ok = True
            stop._value = None
            # Urgent priority: stop before any same-time normal event.
            self._schedule_at(at, -1, stop)
            stop.callbacks.append(self._stop_callback)

        try:
            while True:
                self.step()
        except StopSimulation:
            assert stop is not None
            if stop._ok:
                return stop._value
            raise stop._value from None
        except EmptySchedule:
            if stop is not None and not stop.processed:
                raise RuntimeError(
                    f"no scheduled events left but {stop!r} was not triggered"
                ) from None
        return None

    def reset(self) -> None:
        """Discard pending events; restart the clock and kernel counters.

        After ``reset()`` the environment is indistinguishable from a
        freshly constructed one (same ``initial_time`` and scheduler):
        the profiler counters (:attr:`events_scheduled`,
        :attr:`events_fired`, :attr:`max_heap_depth`) are zeroed so
        back-to-back simulation points never leak kernel statistics
        into each other.
        """
        self._now = self._initial_time
        self._queue.clear()
        if self._ring_count:
            for slot in self._ring:
                if slot:
                    slot.clear()
        self._ring_base = int(self._initial_time)
        self._ring_count = 0
        self._eid = count()
        self._active_process = None
        self.events_scheduled = 0
        self.events_fired = 0
        self.max_heap_depth = 0

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation(event)
