"""Reproducible random-variate streams for workload generation.

Every stochastic element of the simulator (arrival times, destinations,
message lengths, adaptive channel choices) draws from a
:class:`RandomStream`.  A stream is seeded explicitly, and independent
sub-streams can be forked deterministically with :meth:`RandomStream.fork`
so that, e.g., changing the arrival process of node 7 does not perturb
the draws seen by node 8 — the standard variance-reduction discipline
for simulation comparison studies like the paper's.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class RandomStream:
    """A seeded random stream with the variate generators the paper needs."""

    def __init__(self, seed: Optional[int] = None, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        # The one sanctioned use of the stdlib PRNG: RandomStream *is*
        # the seeded wrapper everything else must draw from.
        self._rng = random.Random(seed)  # lint-sim: ignore[RPV001]

    def fork(self, key: str) -> "RandomStream":
        """A deterministically derived, independent sub-stream."""
        child_seed = self._derive_seed(key)
        return RandomStream(child_seed, name=f"{self.name}/{key}")

    def _derive_seed(self, key: str) -> int:
        # Stable across runs and Python processes (unlike hash()).
        base = self.seed if self.seed is not None else 0
        acc = 1469598103934665603  # FNV-1a offset basis
        for ch in f"{base}:{key}":
            acc ^= ord(ch)
            acc = (acc * 1099511628211) & 0xFFFFFFFFFFFFFFFF
        return acc

    # -- variates ---------------------------------------------------------

    def exponential(self, mean: float) -> float:
        """Negative-exponential variate with the given mean (> 0)."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        u = self._rng.random()
        while u <= 0.0:  # pragma: no cover - probability ~0
            u = self._rng.random()
        return -mean * math.log(u)

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer on [low, high] inclusive."""
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        return self._rng.randint(low, high)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform float on [low, high)."""
        return low + (high - low) * self._rng.random()

    def random(self) -> float:
        """Uniform float on [0, 1)."""
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly random element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self._rng.randrange(len(seq))]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher–Yates shuffle."""
        self._rng.shuffle(seq)

    def bimodal_int(
        self, low: int, high: int, short_fraction: float, split: int
    ) -> int:
        """Bimodal integer: short uniform [low, split] w.p. ``short_fraction``,
        else long uniform (split, high].

        Models the short/long/bimodal message-size study the paper lists
        as future work.
        """
        if not (low <= split < high):
            raise ValueError("need low <= split < high")
        if not 0.0 <= short_fraction <= 1.0:
            raise ValueError("short_fraction must be in [0, 1]")
        if self._rng.random() < short_fraction:
            return self._rng.randint(low, split)
        return self._rng.randint(split + 1, high)

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Index i with probability weights[i] / sum(weights)."""
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must have a positive sum")
        x = self._rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            if w < 0:
                raise ValueError("weights must be non-negative")
            acc += w
            if x < acc:
                return i
        return len(weights) - 1  # pragma: no cover - float edge

    def __repr__(self) -> str:
        return f"<RandomStream {self.name!r} seed={self.seed}>"
