"""Shared-resource primitives built on the event kernel.

These follow the SimPy resource model:

* :class:`Resource` -- ``capacity`` slots; processes ``yield
  resource.request()`` to acquire and call ``resource.release(req)`` (or
  use the request as a context manager) to free a slot.
* :class:`PriorityResource` -- requests carry a priority; lower values
  acquire first.
* :class:`Store` -- a FIFO buffer of Python objects with optional
  capacity; ``put(item)`` / ``get()`` are events.
* :class:`Container` -- a continuous level (e.g. fuel); ``put(amount)``
  / ``get(amount)`` are events.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

Infinity = float("inf")


class Request(Event):
    """Acquisition event for :class:`Resource`; usable as context manager."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """A resource with a fixed number of usage slots."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Request a slot; the returned event triggers when granted."""
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Free the slot held by ``request``; grants the next waiter."""
        try:
            self.users.remove(request)
        except ValueError:
            raise RuntimeError(f"{request!r} does not hold {self!r}") from None
        self._grant_next()

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.pop(0)
            self.users.append(nxt)
            nxt.succeed()

    def _cancel(self, request: Request) -> None:
        if request in self.queue:
            self.queue.remove(request)
        elif request in self.users:
            self.release(request)


class PriorityRequest(Request):
    """Request with a priority (lower value = earlier grant)."""

    __slots__ = ("priority", "_order")

    def __init__(self, resource: "PriorityResource", priority: int) -> None:
        self.priority = priority
        self._order = next(resource._ticket)
        super().__init__(resource)

    def __lt__(self, other: "PriorityRequest") -> bool:
        return (self.priority, self._order) < (other.priority, other._order)


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is ordered by priority."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        self._ticket = count()
        super().__init__(env, capacity)
        self._heap: list[PriorityRequest] = []

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        """Request a slot; lower ``priority`` values are granted first."""
        req = PriorityRequest(self, priority)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            heappush(self._heap, req)
            self.queue = list(self._heap)  # keep the public view coherent
        return req

    def _grant_next(self) -> None:
        while self._heap and len(self.users) < self.capacity:
            nxt = heappop(self._heap)
            self.users.append(nxt)
            nxt.succeed()
        self.queue = list(self._heap)

    def _cancel(self, request: Request) -> None:
        if request in self._heap:
            self._heap.remove(request)
            self.queue = list(self._heap)
        elif request in self.users:
            self.release(request)


class Preempted:
    """Cause attached to the Interrupt a preemption victim receives."""

    def __init__(self, by: "PreemptiveRequest", usage_since: float) -> None:
        self.by = by
        self.usage_since = usage_since

    def __repr__(self) -> str:
        return f"<Preempted by priority {self.by.priority} (held since {self.usage_since})>"


class PreemptiveRequest(PriorityRequest):
    """Priority request that may evict a lower-priority holder."""

    __slots__ = ("preempt", "holder_process", "acquired_at")

    def __init__(
        self, resource: "PreemptiveResource", priority: int, preempt: bool
    ) -> None:
        self.preempt = preempt
        #: The requesting process (captured at request time -- the
        #: grant may happen later, inside another process's context),
        #: so a preemptor knows whom to interrupt.
        self.holder_process = resource.env.active_process
        self.acquired_at: float = -1.0
        super().__init__(resource, priority)


class PreemptiveResource(PriorityResource):
    """A priority resource where urgent requests evict lesser holders.

    A request with ``preempt=True`` that finds the resource full evicts
    the holder with the *worst* priority, provided it is strictly worse
    than the requester's: the victim's slot is reclaimed and its process
    receives an :class:`~repro.sim.events.Interrupt` whose cause is a
    :class:`Preempted` record.  The victim must not release the request
    again (the eviction already did).
    """

    def request(  # type: ignore[override]
        self, priority: int = 0, preempt: bool = True
    ) -> PreemptiveRequest:
        """Request a slot, optionally evicting a worse-priority holder."""
        req = PreemptiveRequest(self, priority, preempt)
        if len(self.users) >= self.capacity and req.preempt:
            victim = max(
                (u for u in self.users if isinstance(u, PreemptiveRequest)),
                key=lambda u: (u.priority, u._order),
                default=None,
            )
            if victim is not None and victim.priority > req.priority:
                self.users.remove(victim)
                if victim.holder_process is not None and victim.holder_process.is_alive:
                    victim.holder_process.interrupt(
                        Preempted(req, victim.acquired_at)
                    )
        if len(self.users) < self.capacity:
            self._grant(req)
        else:
            heappush(self._heap, req)
            self.queue = list(self._heap)
        return req

    def _grant(self, req: PreemptiveRequest) -> None:
        self.users.append(req)
        req.acquired_at = self.env.now
        req.succeed()

    def _grant_next(self) -> None:
        while self._heap and len(self.users) < self.capacity:
            nxt = heappop(self._heap)
            self._grant(nxt)
        self.queue = list(self._heap)

    def release(self, request: Request) -> None:
        """Free the slot; tolerates a victim double-releasing after
        eviction (the context-manager exit path)."""
        if request not in self.users:
            if isinstance(request, PreemptiveRequest):
                self._cancel(request)
                return
            raise RuntimeError(f"{request!r} does not hold {self!r}")
        self.users.remove(request)
        self._grant_next()


class StorePut(Event):
    """Triggers once the item has been stored."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Triggers with the retrieved item as its value."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]]) -> None:
        super().__init__(store.env)
        self.filter = filter


class Store:
    """A FIFO buffer of items with optional capacity."""

    def __init__(self, env: "Environment", capacity: float = Infinity) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._putters: list[StorePut] = []
        self._getters: list[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Event that triggers once ``item`` has been stored."""
        ev = StorePut(self, item)
        self._putters.append(ev)
        self._settle()
        return ev

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Event that triggers with the next item (optionally filtered)."""
        ev = StoreGet(self, filter)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit pending puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.pop(0)
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Serve getters whose filter matches something.
            i = 0
            while i < len(self._getters):
                get = self._getters[i]
                idx = self._match(get)
                if idx is None:
                    i += 1
                    continue
                item = self.items.pop(idx)
                self._getters.pop(i)
                get.succeed(item)
                progressed = True

    def _match(self, get: StoreGet) -> Optional[int]:
        if get.filter is None:
            return 0 if self.items else None
        for idx, item in enumerate(self.items):
            if get.filter(item):
                return idx
        return None


class ContainerPut(Event):
    """Triggers once the amount fits into the container."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.env)
        self.amount = amount


class ContainerGet(Event):
    """Triggers once the amount is available to remove."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.env)
        self.amount = amount


class Container:
    """A continuous quantity with a level between 0 and ``capacity``."""

    def __init__(
        self, env: "Environment", capacity: float = Infinity, init: float = 0.0
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._putters: list[ContainerPut] = []
        self._getters: list[ContainerGet] = []

    @property
    def level(self) -> float:
        """Current amount in the container."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Event triggering once ``amount`` has been added."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        ev = ContainerPut(self, amount)
        self._putters.append(ev)
        self._settle()
        return ev

    def get(self, amount: float) -> ContainerGet:
        """Event triggering once ``amount`` has been removed."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        ev = ContainerGet(self, amount)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and self._level + self._putters[0].amount <= self.capacity:
                put = self._putters.pop(0)
                self._level += put.amount
                put.succeed()
                progressed = True
            if self._getters and self._getters[0].amount <= self._level:
                get = self._getters.pop(0)
                self._level -= get.amount
                get.succeed()
                progressed = True
