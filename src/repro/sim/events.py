"""Event primitives for the DES kernel.

An :class:`Event` is a one-shot occurrence with a value.  Processes wait
on events by ``yield``-ing them; when the event is *triggered* (succeeds
or fails), every registered callback runs and waiting processes resume.

The lifecycle of an event is::

    untriggered --> triggered (scheduled) --> processed (callbacks ran)

Events may *succeed* with a value or *fail* with an exception.  A failed
event re-raises its exception inside every process that waits on it,
unless the failure was explicitly marked as *defused* (e.g. because a
condition event already consumed it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.core import Environment

# Scheduling priorities: lower value runs earlier at equal times.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

_PENDING = object()  #: sentinel for "no value yet"


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    The interrupting party may attach an arbitrary ``cause``.
    """

    @property
    def cause(self) -> Any:
        """The value passed to :meth:`Process.interrupt`."""
        return self.args[0]


class ProcessCrash(RuntimeError):
    """Raised by :meth:`Environment.run` when a process dies unhandled."""


class Event:
    """A one-shot occurrence that processes can wait for.

    Parameters
    ----------
    env:
        The environment the event lives in.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks invoked (with the event) once the event is processed.
        #: ``None`` once the event has been processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: A failed event whose exception was handled elsewhere sets this
        #: to avoid crashing the environment.
        self.defused = False

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to occur."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise AttributeError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._value is _PENDING:
            raise AttributeError(f"{self!r} has not yet been triggered")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule the event to occur now with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule the event to occur now, failing with ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if self.triggered:
            return
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} ({state}) at {id(self):#x}>"

    # -- composition -----------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that occurs ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Initialize(Event):
    """Internal: starts a process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=PRIORITY_URGENT)


class Process(Event):
    """Wraps a generator; the event triggers when the generator finishes.

    The generator yields :class:`Event` instances; it is resumed with the
    event's value (or the event's exception is thrown into it).  The
    value of a ``StopIteration`` / ``return`` becomes the process value.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process currently waits on (None when running).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not exited."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        # If we were interrupted while waiting, detach from the old target
        # so its eventual trigger does not resume us twice.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self._target = None
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event.defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                # Misuse: yielded a non-event.  Kill the process loudly.
                self._ok = False
                self._value = TypeError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                env.schedule(self)
                break

            if next_event.callbacks is not None:
                # Not yet processed: register and go to sleep.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: continue immediately with its outcome.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"


class Condition(Event):
    """Base for events composed of several sub-events (AllOf / AnyOf)."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")
        # Register on sub-events (immediately check processed ones).
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self._events and not self.triggered:
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        """Values of all processed, successful sub-events, in order."""
        return {
            event: event._value
            for event in self._events
            if event.callbacks is None and event._ok
        }

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._satisfied():
            self.succeed(self._collect())


class AllOf(Condition):
    """Triggers when *all* sub-events have triggered."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self._events)


class AnyOf(Condition):
    """Triggers when *any* sub-event has triggered."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1
