"""Discrete-event simulation kernel.

A small, self-contained process-based DES kernel in the style of SimPy,
written from scratch because this reproduction may not rely on external
simulation packages.  It provides:

* :class:`~repro.sim.core.Environment` -- the event loop / scheduler.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.Process` -- the event primitives.  Processes
  are Python generators that ``yield`` events to wait on them.
* :class:`~repro.sim.events.AllOf` / :class:`~repro.sim.events.AnyOf` --
  condition events over multiple sub-events.
* :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.PriorityResource`,
  :class:`~repro.sim.resources.Store` and
  :class:`~repro.sim.resources.Container` -- shared-resource primitives.
* :class:`~repro.sim.rng.RandomStream` -- reproducible random-variate
  streams (exponential, uniform-integer, bimodal, ...) used by the
  workload generators.

The wormhole network engine (:mod:`repro.wormhole`) uses this kernel for
its master clock and for packet-arrival processes; the kernel is equally
usable standalone (see ``examples/`` and the unit tests).
"""

from repro.sim.core import Environment, EmptySchedule, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessCrash,
    Timeout,
)
from repro.sim.resources import (
    Container,
    Preempted,
    PreemptiveResource,
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.rng import RandomStream

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "Preempted",
    "PreemptiveResource",
    "PriorityResource",
    "Process",
    "ProcessCrash",
    "RandomStream",
    "Resource",
    "StopSimulation",
    "Store",
    "Timeout",
]
