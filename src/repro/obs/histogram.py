"""HDR-style latency histogram: log-bucketed, mergeable, percentile-exact
to a bounded relative error.

The measurement layer used to keep every delivery record and sort it for
one p95; that works for thousands of packets but not for the
"production-scale" runs the roadmap targets.  A :class:`LatencyHistogram`
records values into geometrically growing buckets (each power-of-two
range split into ``2**sub_bucket_bits`` linear sub-buckets, the
HdrHistogram layout), so

* memory is O(log(max)/precision), independent of sample count;
* recording is O(1) with integer math only;
* any quantile is recoverable with relative error <= 2**-sub_bucket_bits;
* histograms merge exactly (parallel sweep points can be combined).

No external dependency: this is a from-scratch implementation of the
bucketing idea, not a binding.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator


class LatencyHistogram:
    """Counts of non-negative values in HDR-style log/linear buckets.

    Parameters
    ----------
    sub_bucket_bits:
        Linear sub-buckets per power-of-two range (precision knob).
        The default 5 gives <= 3.1% relative quantile error.
    """

    __slots__ = (
        "sub_bucket_bits",
        "_sub",
        "_counts",
        "count",
        "total",
        "min_value",
        "max_value",
    )

    def __init__(self, sub_bucket_bits: int = 5) -> None:
        if not 0 <= sub_bucket_bits <= 12:
            raise ValueError("sub_bucket_bits must be in [0, 12]")
        self.sub_bucket_bits = sub_bucket_bits
        self._sub = 1 << sub_bucket_bits
        self._counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    # -- recording ---------------------------------------------------------

    def record(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times).  Negative values raise."""
        if value < 0:
            raise ValueError(f"latency histogram takes values >= 0, got {value}")
        if count < 1:
            raise ValueError("count must be >= 1")
        index = self._index(value)
        self._counts[index] = self._counts.get(index, 0) + count
        self.count += count
        self.total += value * count
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def record_many(self, values: Iterable[float]) -> None:
        """Record every value of an iterable."""
        for v in values:
            self.record(v)

    # -- bucket math -------------------------------------------------------

    def _index(self, value: float) -> int:
        """Flat bucket index of a value (0 collapses to bucket 0)."""
        v = int(value)
        if v < self._sub:
            return v  # the first ranges are exact integers
        # v has bit_length >= bits+1; shifting by (bit_length - bits - 1)
        # lands v >> exp in [sub, 2*sub), matching _lower_bound's inverse.
        exp = v.bit_length() - self.sub_bucket_bits - 1
        return ((exp + 1) << self.sub_bucket_bits) + (v >> exp) - self._sub

    def _lower_bound(self, index: int) -> float:
        if index < self._sub:
            return float(index)
        exp = (index >> self.sub_bucket_bits) - 1
        sub = (index & (self._sub - 1)) + self._sub
        return float(sub << exp)

    def _bucket_width(self, index: int) -> float:
        if index < self._sub:
            return 1.0
        exp = (index >> self.sub_bucket_bits) - 1
        return float(1 << exp)

    # -- queries -----------------------------------------------------------

    @property
    def mean(self) -> float:
        """Exact mean of the recorded values (sum is kept exactly)."""
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Value at the q-th percentile (bucket midpoint estimate)."""
        if not 0 <= q <= 100:
            raise ValueError("q must be within [0, 100]")
        if self.count == 0:
            return math.nan
        target = q / 100.0 * self.count
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= target:
                mid = self._lower_bound(index) + 0.5 * self._bucket_width(index)
                # Clamp to the observed range so p0/p100 are exact.
                return min(max(mid, self.min_value), self.max_value)
        return self.max_value  # pragma: no cover - float guard

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same precision) into this one."""
        if other.sub_bucket_bits != self.sub_bucket_bits:
            raise ValueError(
                "cannot merge histograms of different sub_bucket_bits "
                f"({self.sub_bucket_bits} vs {other.sub_bucket_bits})"
            )
        for index, n in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    def buckets(self) -> Iterator[tuple[float, float, int]]:
        """Yield ``(lower_bound, width, count)`` for occupied buckets."""
        for index in sorted(self._counts):
            yield (
                self._lower_bound(index),
                self._bucket_width(index),
                self._counts[index],
            )

    def to_dict(self) -> dict:
        """JSON-ready summary (percentiles + occupied buckets)."""
        return {
            "count": self.count,
            "mean": None if self.count == 0 else self.mean,
            "min": None if self.count == 0 else self.min_value,
            "max": None if self.count == 0 else self.max_value,
            "p50": _none_if_nan(self.percentile(50)),
            "p95": _none_if_nan(self.percentile(95)),
            "p99": _none_if_nan(self.percentile(99)),
            "buckets": [
                {"lo": lo, "width": w, "count": n} for lo, w, n in self.buckets()
            ],
        }

    def render(self, width: int = 48, max_rows: int = 16) -> str:
        """ASCII rendering: one bar per (possibly coalesced) bucket."""
        if self.count == 0:
            return "(empty histogram)"
        rows = list(self.buckets())
        # Coalesce adjacent buckets down to max_rows for readability.
        while len(rows) > max_rows:
            merged = []
            for i in range(0, len(rows) - 1, 2):
                lo, w, n = rows[i]
                lo2, w2, n2 = rows[i + 1]
                merged.append((lo, (lo2 + w2) - lo, n + n2))
            if len(rows) % 2:
                merged.append(rows[-1])
            rows = merged
        peak = max(n for _, _, n in rows)
        out = []
        for lo, w, n in rows:
            bar = "#" * max(1, round(width * n / peak))
            out.append(f"{lo:10.0f} .. {lo + w:10.0f} | {n:7d} {bar}")
        out.append(
            f"{'':>10}    {'':>10}   n={self.count} "
            f"p50={self.percentile(50):.0f} p95={self.percentile(95):.0f} "
            f"p99={self.percentile(99):.0f} max={self.max_value:.0f}"
        )
        return "\n".join(out)

    def __repr__(self) -> str:
        if self.count == 0:
            return "<LatencyHistogram empty>"
        return (
            f"<LatencyHistogram n={self.count} mean={self.mean:.1f} "
            f"p99={self.percentile(99):.1f} max={self.max_value:.1f}>"
        )


def _none_if_nan(value: float):
    return None if isinstance(value, float) and math.isnan(value) else value
