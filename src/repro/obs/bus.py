"""The structured telemetry bus the simulator publishes into.

Every :class:`~repro.wormhole.engine.WormholeEngine` owns one
:class:`EventBus`.  The engine *publishes* typed events at the points
where the simulation state changes (a message offered, a header
acquiring or blocking on a channel, a flit crossing a wire, a worm
delivered or aborted); *sinks* subscribe to the kinds they care about.
The existing :class:`~repro.wormhole.trace.Tracer` and the fault
recovery layer (:class:`~repro.faults.recovery.SourceRetry`) are plain
subscribers of this bus, as are the observability sinks in
:mod:`repro.obs.contention` and :mod:`repro.obs.perfetto`.

Design constraints (the bus lives on the simulator's hottest path):

* **compile-away fast path** -- with no sinks attached, the only cost a
  publish site pays is one attribute read and a branch.  The engine
  hoists ``bus if bus.hot else None`` once per cycle, so the per-flit
  check is a local ``is not None``.
* **two enable tiers** -- :attr:`EventBus.enabled` is True when *any*
  sink is attached; :attr:`EventBus.hot` only when a sink subscribes to
  a hot-path kind (inject/acquire/block/release/transmit).  A fault
  recovery layer that only wants packet lifecycle events therefore does
  not tax the per-flit loop at all.
* **typed publish methods** -- one method per kind
  (``publish_offer(t, packet)`` ...), no event-object allocation, no
  dict lookup on the hot path.

Event kinds and their callback signatures:

=========== =================================================== ======
kind        callback signature                                  tier
=========== =================================================== ======
``offer``    ``on_offer(t, packet)``                            cold
``inject``   ``on_inject(t, packet)``                           hot
``acquire``  ``on_acquire(t, packet, channel, lane_index)``     hot
``block``    ``on_blocked(t, packet, channels)``                hot
``release``  ``on_release(t, packet, channel, lane_index)``     hot
``transmit`` ``on_transmit(t, channel, lane)``                  hot
``deliver``  ``on_deliver(t, packet)``                          cold
``abort``    ``on_abort(t, packet)``                            cold
``shed``     ``on_shed(t, packet)``                             cold
``throttle`` ``on_throttle(t, node)``                           cold
``stall``    ``on_stall(t, packet, age, verdict)``              cold
``rate``     ``on_rate(t, node, rate)``                         cold
=========== =================================================== ======

``block`` fires once per cycle per blocked header (sinks wanting
per-spell events dedup themselves, as the Tracer does); ``transmit``
fires once per flit moved, so it only exists while a hot sink is
attached.

The last four kinds belong to the overload-robustness subsystem
(:mod:`repro.stability`): ``shed`` fires when a bounded admission
policy drops a message (the packet is in ``PacketState.SHED``),
``throttle`` when the *block* policy refuses an offer outright (no
packet exists -- only the source node id is published), ``stall`` when
the progress watchdog flags a worm (``verdict`` is one of the
:mod:`repro.stability.watchdog` classifications), and ``rate`` when the
AIMD injection governor changes a source's rate multiplier.  All four
are cold: publishing them never taxes the per-flit loop.

A *sink* is any object; :meth:`EventBus.attach` registers whichever of
the ``on_<kind>`` methods above the object defines.  Individual
callables go through :meth:`EventBus.subscribe`.
"""

from __future__ import annotations

from typing import Any, Callable

#: kind -> the sink method name ``attach`` looks for.
KIND_METHODS: dict[str, str] = {
    "offer": "on_offer",
    "inject": "on_inject",
    "acquire": "on_acquire",
    "block": "on_blocked",
    "release": "on_release",
    "transmit": "on_transmit",
    "deliver": "on_deliver",
    "abort": "on_abort",
    "shed": "on_shed",
    "throttle": "on_throttle",
    "stall": "on_stall",
    "rate": "on_rate",
}

#: Every valid event kind, in publish order of a typical packet life.
KINDS: tuple[str, ...] = tuple(KIND_METHODS)

#: Kinds published from inside the engine's per-cycle / per-flit loops.
HOT_KINDS: frozenset[str] = frozenset(
    {"inject", "acquire", "block", "release", "transmit"}
)


class EventBus:
    """Typed publish/subscribe fan-out with a zero-sink fast path."""

    __slots__ = (
        "enabled",
        "hot",
        "_subs",
        "_attached",
        "published",
    )

    def __init__(self) -> None:
        #: True when at least one subscription exists (any kind).
        self.enabled = False
        #: True when a hot-path kind has a subscriber (engine hoists
        #: this once per cycle; see module docs).
        self.hot = False
        self._subs: dict[str, list[Callable[..., None]]] = {
            kind: [] for kind in KINDS
        }
        #: id(sink) -> [(kind, fn), ...] registered by attach().
        self._attached: dict[int, list[tuple[str, Callable[..., None]]]] = {}
        #: Total events fanned out (cheap observability of the bus
        #: itself; incremented per publish call, not per subscriber).
        self.published = 0

    # -- subscription management ------------------------------------------

    def subscribe(self, kind: str, fn: Callable[..., None]) -> None:
        """Register ``fn`` for one event kind (see module table)."""
        if kind not in self._subs:
            raise KeyError(
                f"unknown event kind {kind!r}; valid: {', '.join(KINDS)}"
            )
        self._subs[kind].append(fn)
        self._refresh()

    def unsubscribe(self, kind: str, fn: Callable[..., None]) -> None:
        """Remove one registration; raises ``ValueError`` if absent."""
        self._subs[kind].remove(fn)
        self._refresh()

    def attach(self, sink: Any) -> list[str]:
        """Register every ``on_<kind>`` method ``sink`` defines.

        Returns the kinds subscribed (useful for tests/diagnostics).
        Attaching the same object twice raises ``ValueError`` --
        double-counted events are a silent corruption, not a feature.
        """
        if id(sink) in self._attached:
            raise ValueError(f"{sink!r} is already attached to this bus")
        regs: list[tuple[str, Callable[..., None]]] = []
        for kind, method in KIND_METHODS.items():
            fn = getattr(sink, method, None)
            if callable(fn):
                self._subs[kind].append(fn)
                regs.append((kind, fn))
        if not regs:
            raise ValueError(
                f"{sink!r} defines none of the sink methods "
                f"({', '.join(KIND_METHODS.values())})"
            )
        self._attached[id(sink)] = regs
        self._refresh()
        return [kind for kind, _ in regs]

    def detach(self, sink: Any) -> None:
        """Undo :meth:`attach`; unknown sinks are ignored (idempotent)."""
        regs = self._attached.pop(id(sink), None)
        if not regs:
            return
        for kind, fn in regs:
            try:
                self._subs[kind].remove(fn)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._refresh()

    def subscriber_count(self, kind: str | None = None) -> int:
        """Subscribers of one kind, or total across kinds."""
        if kind is not None:
            return len(self._subs[kind])
        return sum(len(v) for v in self._subs.values())

    def _refresh(self) -> None:
        self.enabled = any(self._subs[k] for k in KINDS)
        self.hot = any(self._subs[k] for k in HOT_KINDS)

    # -- typed publish methods --------------------------------------------
    #
    # Publish sites in the engine guard each call with ``bus.enabled``
    # (cold kinds) or a hoisted ``bus.hot`` local (hot kinds); calling
    # these with no subscribers is correct, just wasteful.

    def publish_offer(self, t: float, packet) -> None:
        self.published += 1
        for fn in self._subs["offer"]:
            fn(t, packet)

    def publish_inject(self, t: float, packet) -> None:
        self.published += 1
        for fn in self._subs["inject"]:
            fn(t, packet)

    def publish_acquire(self, t: float, packet, channel, lane_index: int) -> None:
        self.published += 1
        for fn in self._subs["acquire"]:
            fn(t, packet, channel, lane_index)

    def publish_block(self, t: float, packet, channels) -> None:
        self.published += 1
        for fn in self._subs["block"]:
            fn(t, packet, channels)

    def publish_release(self, t: float, packet, channel, lane_index: int) -> None:
        self.published += 1
        for fn in self._subs["release"]:
            fn(t, packet, channel, lane_index)

    def publish_transmit(self, t: float, channel, lane) -> None:
        self.published += 1
        for fn in self._subs["transmit"]:
            fn(t, channel, lane)

    def publish_deliver(self, t: float, packet) -> None:
        self.published += 1
        for fn in self._subs["deliver"]:
            fn(t, packet)

    def publish_abort(self, t: float, packet) -> None:
        self.published += 1
        for fn in self._subs["abort"]:
            fn(t, packet)

    def publish_shed(self, t: float, packet) -> None:
        self.published += 1
        for fn in self._subs["shed"]:
            fn(t, packet)

    def publish_throttle(self, t: float, node: int) -> None:
        self.published += 1
        for fn in self._subs["throttle"]:
            fn(t, node)

    def publish_stall(self, t: float, packet, age: int, verdict: str) -> None:
        self.published += 1
        for fn in self._subs["stall"]:
            fn(t, packet, age, verdict)

    def publish_rate(self, t: float, node: int, rate: float) -> None:
        self.published += 1
        for fn in self._subs["rate"]:
            fn(t, node, rate)

    def __repr__(self) -> str:
        kinds = [k for k in KINDS if self._subs[k]]
        state = "hot" if self.hot else ("enabled" if self.enabled else "idle")
        return f"<EventBus {state} kinds={kinds} published={self.published}>"
