"""Perfetto / Chrome ``trace_event`` JSON export of a simulation run.

A :class:`PerfettoSink` subscribes to the hot bus kinds and renders the
run as a trace the Perfetto UI (https://ui.perfetto.dev) or
``chrome://tracing`` loads directly:

* **one track per lane** (virtual channel) of every physical channel,
  named after the channel label (``b1[3].0`` style for multi-lane
  wires), in topological order top to bottom;
* **occupancy slices** -- a ``X`` (complete) event per lane ownership
  spell, from header acquire to tail release, named after the worm
  (``pkt#17 3->12``);
* **transmit slices** -- nested ``xmit`` slices covering exactly the
  cycles the wire moved a flit for that lane (coalesced runs, so the
  slice durations sum to the lane's flit count -- the same busy
  intervals :class:`repro.obs.contention.ContentionSink` accumulates);
* **flow arrows** -- ``s``/``t``/``f`` flow events with ``id`` = packet
  id connect each worm's occupancy slices across tracks, so clicking a
  packet shows its path through the network.

Timestamps are microseconds (the ``trace_event`` unit): cycles scale by
0.05 us/cycle, the paper's 20 flits/us channel bandwidth.

The exporter keeps every event in memory; ``max_events`` caps the list
(drops are counted in :attr:`PerfettoSink.dropped`, never silent).
"""

from __future__ import annotations

import json
from typing import IO, TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.wormhole.channel import Lane, PhysChannel
    from repro.wormhole.engine import WormholeEngine
    from repro.wormhole.packet import Packet

#: Microseconds per simulation cycle (1 / the paper's 20 flits/us);
#: mirrors ``repro.wormhole.engine.FLITS_PER_MICROSECOND``.
CYCLE_MICROSECONDS = 0.05

#: The single "process" all tracks live under.
TRACE_PID = 1


class PerfettoSink:
    """Bus sink emitting Chrome ``trace_event`` JSON.

    Parameters
    ----------
    max_events:
        Hard cap on stored trace events; once reached, further events
        are dropped and counted (see :attr:`dropped`).
    """

    def __init__(self, max_events: int = 2_000_000) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = max_events
        self.dropped = 0
        self.engine: Optional["WormholeEngine"] = None
        self.start_time = 0.0
        self._events: list[dict] = []
        #: (channel label, lane index) -> track id.
        self._tids: dict[tuple[str, int], int] = {}
        self._thread_names: list[tuple[int, str]] = []
        #: Open occupancy spells: (label, lane index) -> (t0, packet).
        self._open: dict[tuple[str, int], tuple[float, "Packet"]] = {}
        #: Open transmit runs: (label, lane index) -> [start, end).
        self._runs: dict[tuple[str, int], list[float]] = {}
        #: Packet ids that already emitted their flow-start event.
        self._flow_started: set[int] = set()
        #: pid -> tid of the packet's most recent acquire (flow end).
        self._last_tid: dict[int, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def install(self, engine: "WormholeEngine") -> "PerfettoSink":
        """Bind to an engine: assign one track per lane, mark t0."""
        self.engine = engine
        self.start_time = engine.env.now
        tid = 0
        for ch in engine.network.topo_channels:
            for lane in ch.lanes:
                self._tids[(ch.label, lane.index)] = tid
                name = (
                    ch.label
                    if ch.num_lanes == 1
                    else f"{ch.label}.{lane.index}"
                )
                self._thread_names.append((tid, name))
                tid += 1
        return self

    def finish(self, now: Optional[float] = None) -> None:
        """Close open occupancy slices and flush transmit runs."""
        if now is None:
            assert self.engine is not None, "install() before finish()"
            now = self.engine.env.now
        for key, (t0, packet) in sorted(self._open.items()):
            self._emit_occupancy(key, t0, max(now, t0 + 1.0), packet)
        self._open.clear()
        for key in sorted(self._runs):
            self._flush_run(key)

    # -- event emission ----------------------------------------------------

    def _emit(self, event: dict) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    def _ts(self, t: float) -> float:
        return (t - self.start_time) * CYCLE_MICROSECONDS

    def _emit_occupancy(
        self, key: tuple[str, int], t0: float, t1: float, packet: "Packet"
    ) -> None:
        self._emit(
            {
                "ph": "X",
                "pid": TRACE_PID,
                "tid": self._tid(key),
                "ts": self._ts(t0),
                "dur": (t1 - t0) * CYCLE_MICROSECONDS,
                "cat": "occupancy",
                "name": f"pkt#{packet.pid} {packet.src}->{packet.dst}",
                "args": {
                    "pid": packet.pid,
                    "src": packet.src,
                    "dst": packet.dst,
                    "length": packet.length,
                },
            }
        )

    def _flush_run(self, key: tuple[str, int]) -> None:
        run = self._runs.pop(key, None)
        if run is None:
            return
        start, end = run
        self._emit(
            {
                "ph": "X",
                "pid": TRACE_PID,
                "tid": self._tid(key),
                "ts": self._ts(start),
                "dur": (end - start) * CYCLE_MICROSECONDS,
                "cat": "xmit",
                "name": "xmit",
                "args": {"flits": int(round(end - start))},
            }
        )

    def _tid(self, key: tuple[str, int]) -> int:
        tid = self._tids.get(key)
        if tid is None:  # channel born after install (defensive)
            tid = len(self._tids)
            self._tids[key] = tid
            self._thread_names.append((tid, f"{key[0]}.{key[1]}"))
        return tid

    # -- bus callbacks -----------------------------------------------------

    def on_acquire(
        self, t: float, packet: "Packet", channel: "PhysChannel", lane_index: int
    ) -> None:
        key = (channel.label, lane_index)
        self._open[key] = (t, packet)
        tid = self._tid(key)
        ph = "t" if packet.pid in self._flow_started else "s"
        self._flow_started.add(packet.pid)
        self._last_tid[packet.pid] = tid
        self._emit(
            {
                "ph": ph,
                "pid": TRACE_PID,
                "tid": tid,
                "ts": self._ts(t),
                "cat": "worm",
                "name": f"pkt#{packet.pid}",
                "id": packet.pid,
            }
        )

    def on_release(
        self, t: float, packet: "Packet", channel: "PhysChannel", lane_index: int
    ) -> None:
        key = (channel.label, lane_index)
        spell = self._open.pop(key, None)
        if spell is None:  # release without observed acquire (late attach)
            return
        t0, owner = spell
        self._emit_occupancy(key, t0, max(t, t0 + 1.0), owner)

    def on_transmit(self, t: float, channel: "PhysChannel", lane: "Lane") -> None:
        key = (channel.label, lane.index)
        run = self._runs.get(key)
        # A flit moved during cycle [t, t+1): extend or start a run.
        if run is not None and run[1] == t:
            run[1] = t + 1.0
        else:
            if run is not None:
                self._flush_run(key)
            self._runs[key] = [t, t + 1.0]

    def on_deliver(self, t: float, packet: "Packet") -> None:
        tid = self._last_tid.pop(packet.pid, None)
        self._flow_started.discard(packet.pid)
        if tid is None:
            return
        self._emit(
            {
                "ph": "f",
                "bp": "e",
                "pid": TRACE_PID,
                "tid": tid,
                "ts": self._ts(t),
                "cat": "worm",
                "name": f"pkt#{packet.pid}",
                "id": packet.pid,
            }
        )

    def on_abort(self, t: float, packet: "Packet") -> None:
        # An aborted worm's spells were closed by the release events its
        # flush produced; just retire the flow bookkeeping.
        self._last_tid.pop(packet.pid, None)
        self._flow_started.discard(packet.pid)

    # -- export ------------------------------------------------------------

    def trace_events(self) -> list[dict]:
        """The full event list: metadata first, then slices by ``ts``."""
        meta: list[dict] = [
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": 0,
                "ts": 0,
                "name": "process_name",
                "args": {"name": self._process_name()},
            }
        ]
        for tid, name in self._thread_names:
            meta.append(
                {
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "ts": 0,
                    "name": "thread_name",
                    "args": {"name": name},
                }
            )
            meta.append(
                {
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "ts": 0,
                    "name": "thread_sort_index",
                    "args": {"sort_index": tid},
                }
            )
        # Stable sort keeps same-ts ordering deterministic; Perfetto does
        # not require sorted input but monotone-per-track is testable.
        body = sorted(self._events, key=lambda ev: (ev["ts"], ev["tid"]))
        return meta + body

    def to_dict(self) -> dict:
        """JSON-ready trace (``traceEvents`` object form)."""
        return {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ns",
            "otherData": {
                "network": self._process_name(),
                "cycle_us": CYCLE_MICROSECONDS,
                "dropped_events": self.dropped,
            },
        }

    def write_trace(self, path_or_file: Union[str, IO[str]]) -> int:
        """Write the trace JSON; returns the number of events written."""
        doc = self.to_dict()
        if hasattr(path_or_file, "write"):
            json.dump(doc, path_or_file)
        else:
            with open(path_or_file, "w") as fh:
                json.dump(doc, fh)
        return len(doc["traceEvents"])

    def _process_name(self) -> str:
        if self.engine is None:
            return "wormhole"
        net = self.engine.network
        return f"wormhole {net.kind.value} N={net.N}"

    def __repr__(self) -> str:
        return (
            f"<PerfettoSink events={len(self._events)} "
            f"tracks={len(self._tids)} dropped={self.dropped}>"
        )
