"""Contention attribution: who is busy, who is waiting, and on what.

A :class:`ContentionSink` subscribes to the hot bus kinds
(acquire/release/transmit/block) and maintains, per physical channel:

* **flit counts and coalesced busy intervals** -- a channel is *busy*
  during a cycle iff its wire moved a flit; consecutive busy cycles
  coalesce into ``[start, end)`` intervals.  By construction the
  interval lengths sum to the flit count, so utilization derived from
  either agrees exactly (the Perfetto exporter draws the same
  intervals; see ``tests/obs/test_perfetto.py``).
* **a blocked-time ledger** -- each cycle a header sits blocked, one
  header-cycle of wait is attributed to the candidate channels it was
  waiting for (split 1/n across the candidates, so ledger totals equal
  total blocked header-cycles).
* **bucketed utilization timelines** -- flits per ``bucket``-cycle
  window, the raw material for stage heatmaps
  (``examples/hot_channels.py``).
* **acquisition and release counts** per channel.

Aggregation helpers group channels by *stage* (the label prefix before
``[``: ``inj``, ``b1``, ``b2``, ``dlv``, ``fwd0``, ``bwd2``, ...), which
is how the paper reasons about where saturation builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.wormhole.channel import Lane, PhysChannel
    from repro.wormhole.engine import WormholeEngine
    from repro.wormhole.packet import Packet


def stage_of(label: str) -> str:
    """Stage key of a channel label (prefix before the ``[`` index)."""
    i = label.find("[")
    return label if i < 0 else label[:i]


@dataclass
class ChannelLedger:
    """Per-channel accumulators (one per :class:`PhysChannel`)."""

    label: str
    stage: str
    num_lanes: int
    flits: int = 0
    acquisitions: int = 0
    releases: int = 0
    blocked_time: float = 0.0   # header-cycles attributed to this channel
    blocked_headers: int = 0    # block events naming this channel
    #: Coalesced busy intervals [start, end), end-exclusive.
    busy_intervals: list[tuple[float, float]] = field(default_factory=list)
    _last_end: float = field(default=-1.0, repr=False)
    #: bucket index -> flits moved in that bucket.
    timeline: dict[int, int] = field(default_factory=dict)

    def busy_cycles(self) -> float:
        """Total busy time; equals ``flits`` by construction."""
        return sum(end - start for start, end in self.busy_intervals)

    def utilization(self, elapsed: float) -> float:
        """Fraction of cycles the wire moved a flit (0..1)."""
        return self.flits / elapsed if elapsed > 0 else 0.0


class ContentionSink:
    """Bus sink building the per-channel / per-stage contention picture.

    Attach with ``engine.bus.attach(sink)`` after ``install(engine)``,
    or use :class:`repro.obs.session.ObsSession` which wires everything.
    """

    def __init__(self, bucket: float = 256.0) -> None:
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        self.bucket = bucket
        self.ledgers: dict[str, ChannelLedger] = {}
        self.engine: Optional["WormholeEngine"] = None
        self.start_time = 0.0
        self.end_time: Optional[float] = None
        self.total_blocked_time = 0.0

    # -- lifecycle ---------------------------------------------------------

    def install(self, engine: "WormholeEngine") -> "ContentionSink":
        """Bind to an engine: pre-create ledgers, mark the start time."""
        self.engine = engine
        self.start_time = engine.env.now
        for ch in engine.network.topo_channels:
            self.ledgers[ch.label] = ChannelLedger(
                ch.label, stage_of(ch.label), ch.num_lanes
            )
        return self

    def finish(self, now: Optional[float] = None) -> None:
        """Freeze the observation window (idempotent)."""
        if now is None:
            assert self.engine is not None, "install() before finish()"
            now = self.engine.env.now
        self.end_time = now

    @property
    def elapsed(self) -> float:
        """Length of the observation window in cycles."""
        end = self.end_time
        if end is None:
            assert self.engine is not None, "install() before elapsed"
            end = self.engine.env.now
        return end - self.start_time

    def _ledger(self, channel: "PhysChannel") -> ChannelLedger:
        led = self.ledgers.get(channel.label)
        if led is None:  # channel born after install (defensive)
            led = ChannelLedger(
                channel.label, stage_of(channel.label), channel.num_lanes
            )
            self.ledgers[channel.label] = led
        return led

    # -- bus callbacks -----------------------------------------------------

    def on_acquire(
        self, t: float, packet: "Packet", channel: "PhysChannel", lane_index: int
    ) -> None:
        self._ledger(channel).acquisitions += 1

    def on_release(
        self, t: float, packet: "Packet", channel: "PhysChannel", lane_index: int
    ) -> None:
        self._ledger(channel).releases += 1

    def on_transmit(self, t: float, channel: "PhysChannel", lane: "Lane") -> None:
        led = self._ledger(channel)
        led.flits += 1
        # Coalesce: a flit moved during cycle [t, t+1).
        if led._last_end == t and led.busy_intervals:
            start, _ = led.busy_intervals[-1]
            led.busy_intervals[-1] = (start, t + 1.0)
        else:
            led.busy_intervals.append((t, t + 1.0))
        led._last_end = t + 1.0
        idx = int((t - self.start_time) // self.bucket)
        led.timeline[idx] = led.timeline.get(idx, 0) + 1

    def on_blocked(self, t: float, packet: "Packet", channels) -> None:
        if not channels:
            return
        share = 1.0 / len(channels)
        self.total_blocked_time += 1.0
        for ch in channels:
            led = self._ledger(ch)
            led.blocked_time += share
            led.blocked_headers += 1

    # -- queries -----------------------------------------------------------

    def hot_channels(
        self, top: int = 10, by: str = "blocked_time"
    ) -> list[ChannelLedger]:
        """Ledgers sorted by ``blocked_time`` | ``flits`` | ``acquisitions``."""
        if by not in ("blocked_time", "flits", "acquisitions"):
            raise ValueError(f"unknown sort key {by!r}")
        ranked = sorted(
            self.ledgers.values(), key=lambda led: getattr(led, by), reverse=True
        )
        return ranked[:top]

    def stage_table(self) -> list[dict]:
        """Per-stage aggregates, in topological label order of appearance."""
        elapsed = self.elapsed
        stages: dict[str, dict] = {}
        for led in self.ledgers.values():
            row = stages.get(led.stage)
            if row is None:
                row = stages[led.stage] = {
                    "stage": led.stage,
                    "channels": 0,
                    "flits": 0,
                    "blocked_time": 0.0,
                    "max_utilization": 0.0,
                }
            row["channels"] += 1
            row["flits"] += led.flits
            row["blocked_time"] += led.blocked_time
            row["max_utilization"] = max(
                row["max_utilization"], led.utilization(elapsed)
            )
        for row in stages.values():
            row["mean_utilization"] = (
                row["flits"] / (row["channels"] * elapsed) if elapsed > 0 else 0.0
            )
        return list(stages.values())

    def stage_heatmap(self, chars: str = " .:-=+*#%@") -> str:
        """ASCII heatmap: one row per stage, one cell per channel.

        Cell brightness encodes that channel's utilization over the
        window -- the stage-level picture of *where* worms block (the
        VMIN permutation collapse shows as a saturated delivery/stage
        row while earlier stages idle).
        """
        elapsed = self.elapsed
        by_stage: dict[str, list[ChannelLedger]] = {}
        for led in self.ledgers.values():
            by_stage.setdefault(led.stage, []).append(led)
        width = max(len(v) for v in by_stage.values()) if by_stage else 0
        lines = [f"channel-utilization heatmap ({width} channels/stage max)"]
        for stage, leds in by_stage.items():
            cells = []
            for led in sorted(leds, key=lambda led: led.label):
                u = led.utilization(elapsed)
                cells.append(chars[min(len(chars) - 1, int(u * len(chars)))])
            lines.append(f"  {stage:>6} |{''.join(cells)}|")
        lines.append(
            f"  scale: '{chars[0]}'=idle .. '{chars[-1]}'=100% busy, "
            f"window={elapsed:g} cycles"
        )
        return "\n".join(lines)

    def channel_rows(self) -> list[dict]:
        """Long-form per-channel rows (CSV/JSON export)."""
        elapsed = self.elapsed
        return [
            {
                "channel": led.label,
                "stage": led.stage,
                "lanes": led.num_lanes,
                "flits": led.flits,
                "utilization": led.utilization(elapsed),
                "busy_cycles": led.busy_cycles(),
                "blocked_time": led.blocked_time,
                "blocked_headers": led.blocked_headers,
                "acquisitions": led.acquisitions,
                "releases": led.releases,
            }
            for led in self.ledgers.values()
        ]

    def render(self, top: int = 8) -> str:
        """Human-readable contention report (stages + hot channels)."""
        elapsed = self.elapsed
        lines = [
            f"contention over {elapsed:g} cycles "
            f"(total blocked header-cycles: {self.total_blocked_time:g})",
            "",
            f"{'stage':>8} | {'chans':>5} | {'flits':>9} | "
            f"{'mean util':>9} | {'max util':>8} | {'blocked':>9}",
        ]
        lines.append("-" * len(lines[-1]))
        for row in self.stage_table():
            lines.append(
                f"{row['stage']:>8} | {row['channels']:5d} | {row['flits']:9d} | "
                f"{row['mean_utilization']:8.1%} | {row['max_utilization']:7.1%} "
                f"| {row['blocked_time']:9.1f}"
            )
        hot = [led for led in self.hot_channels(top) if led.blocked_time > 0]
        if hot:
            lines += [
                "",
                f"hot channels (by blocked time attributed, top {len(hot)}):",
                f"{'channel':>12} | {'util':>6} | {'blocked':>9} | "
                f"{'headers':>7} | {'acq':>5}",
            ]
            for led in hot:
                lines.append(
                    f"{led.label:>12} | {led.utilization(elapsed):5.1%} | "
                    f"{led.blocked_time:9.1f} | {led.blocked_headers:7d} | "
                    f"{led.acquisitions:5d}"
                )
        return "\n".join(lines)
