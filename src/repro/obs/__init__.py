"""repro.obs -- the observability subsystem.

Layered over the structured :class:`~repro.obs.bus.EventBus` every
:class:`~repro.wormhole.engine.WormholeEngine` publishes into:

* :class:`EventBus` -- typed pub/sub with a compile-away fast path
  (zero hot-loop cost with no sinks attached);
* :class:`ContentionSink` -- per-channel / per-stage utilization,
  busy intervals, and blocked-time attribution;
* :class:`LatencyHistogram` -- HDR-style mergeable histogram
  (p50/p95/p99/max at bounded relative error, O(1) record);
* :class:`PerfettoSink` -- Chrome/Perfetto ``trace_event`` JSON export
  (one track per lane, per-packet flow arrows);
* :class:`KernelProfiler` -- sim-kernel rates (events/s, cycles/s,
  wall-us per sim-us, heap depth);
* :class:`ProgressMeter` -- throttled stderr heartbeat for long sweeps;
* :class:`ObsSession` -- bundles the standard sinks with one call.

See ``docs/observability.md`` for the architecture tour.
"""

from repro.obs.bus import HOT_KINDS, KIND_METHODS, KINDS, EventBus
from repro.obs.contention import ChannelLedger, ContentionSink, stage_of
from repro.obs.histogram import LatencyHistogram
from repro.obs.perfetto import CYCLE_MICROSECONDS, PerfettoSink
from repro.obs.profiler import KernelProfiler
from repro.obs.progress import ProgressMeter
from repro.obs.session import ObsSession

__all__ = [
    "EventBus",
    "KINDS",
    "HOT_KINDS",
    "KIND_METHODS",
    "ContentionSink",
    "ChannelLedger",
    "stage_of",
    "LatencyHistogram",
    "PerfettoSink",
    "CYCLE_MICROSECONDS",
    "KernelProfiler",
    "ProgressMeter",
    "ObsSession",
]
