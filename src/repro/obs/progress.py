"""Live progress heartbeat for long sweeps.

A :class:`ProgressMeter` is a callable ``meter(done, total, label)``
that the parallel experiment runner invokes after every completed point
(see :func:`repro.experiments.parallel.parallel_sweep`).  It prints a
throttled one-line heartbeat to stderr -- completed/total, percentage,
points/minute, and an ETA -- so multi-hour sweeps are observable without
tailing checkpoint files.

Wall-clock reads here are harness-side only (they never feed back into
the simulation), hence the RPV002 lint exemptions.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional


def _fmt_eta(seconds: float) -> str:
    """``1h02m`` / ``4m30s`` / ``12s`` rendering of a duration."""
    seconds = max(0.0, seconds)
    if seconds >= 3600:
        return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"
    if seconds >= 60:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{int(round(seconds))}s"


class HeartbeatSlot:
    """One worker's liveness slot in a shared heartbeat array.

    The sweep service's supervisor allocates one ``multiprocessing``
    double array for its pool; each worker owns index ``index`` and
    writes ``time.monotonic()`` into it via :meth:`beat` -- from the
    simulation loop's cooperative check
    (:func:`repro.experiments.runner.set_point_heartbeat`), so a beat
    costs one float store every ``_CHUNK`` sim-cycles.  The supervisor
    reads :meth:`age` to separate a *slow* point (recent beat) from a
    *wedged* worker (stale beat), which is what decides killing and
    re-dispatching.  ``CLOCK_MONOTONIC`` is system-wide on the
    platforms we run on, so parent and child timestamps compare
    directly.
    """

    def __init__(self, array, index: int) -> None:
        self.array = array
        self.index = index

    def beat(self) -> None:
        """Record liveness now (called from the owning worker)."""
        self.array[self.index] = time.monotonic()  # lint-sim: ignore[RPV002] -- harness liveness, not sim state

    def last(self) -> float:
        """The slot's last beat instant (0.0 = never beaten)."""
        return self.array[self.index]

    def age(self) -> float:
        """Seconds since the last beat (inf if never beaten)."""
        at = self.array[self.index]
        if at <= 0.0:
            return float("inf")
        return time.monotonic() - at  # lint-sim: ignore[RPV002] -- harness liveness, not sim state


class ProgressMeter:
    """Throttled stderr heartbeat: call with ``(done, total, label)``.

    Parameters
    ----------
    interval:
        Minimum wall seconds between printed lines (the final
        ``done == total`` line always prints).
    stream:
        Output stream; defaults to ``sys.stderr`` so heartbeats never
        contaminate piped CSV/JSON on stdout.
    """

    def __init__(
        self,
        interval: float = 5.0,
        stream: Optional[IO[str]] = None,
        prefix: str = "progress",
    ) -> None:
        if interval < 0:
            raise ValueError("interval must be >= 0")
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self.prefix = prefix
        self.lines_printed = 0
        self._t0 = time.perf_counter()  # lint-sim: ignore[RPV002] -- harness heartbeat, not sim state
        self._last_print = -float("inf")

    def __call__(self, done: int, total: int, label: str = "") -> None:
        now = time.perf_counter()  # lint-sim: ignore[RPV002] -- harness heartbeat, not sim state
        final = total > 0 and done >= total
        if not final and now - self._last_print < self.interval:
            return
        self._last_print = now
        elapsed = now - self._t0
        rate = done / elapsed * 60.0 if elapsed > 0 else 0.0
        if total > 0:
            pct = 100.0 * done / total
            eta = (total - done) / (done / elapsed) if done and elapsed > 0 else 0.0
            line = (
                f"[{self.prefix}] {done}/{total} ({pct:.0f}%) "
                f"{rate:.1f} pts/min elapsed {_fmt_eta(elapsed)} "
                f"eta {_fmt_eta(eta)}"
            )
        else:
            line = (
                f"[{self.prefix}] {done} done "
                f"{rate:.1f} pts/min elapsed {_fmt_eta(elapsed)}"
            )
        if label:
            line += f" -- {label}"
        print(line, file=self.stream, flush=True)
        self.lines_printed += 1
